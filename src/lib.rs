//! Workspace facade for the Approximate Random Dropout (DATE 2019)
//! reproduction.
//!
//! Re-exports the member crates so that the examples and integration tests
//! can use one coherent namespace:
//!
//! * [`tensor`] — dense matrix substrate (GEMM, compacted GEMM).
//! * [`approx_dropout`] — the paper's contribution: row/tile dropout patterns
//!   and the SGD-based pattern-distribution search.
//! * [`nn`] — MLP/LSTM training substrate (the stand-in for Caffe).
//! * [`gpu_sim`] — SIMT GPU timing model (the stand-in for the GTX 1080Ti).
//! * [`data`] — synthetic MNIST-like and PTB-like datasets.
//! * [`serve`] — training-as-a-service front end: sharded fair queue,
//!   dynamic batching, memoized `DropoutPlan` cache, worker shards.

pub use approx_dropout;
pub use data;
pub use gpu_sim;
pub use nn;
pub use serve;
pub use tensor;
