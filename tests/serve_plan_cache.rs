//! Integration tests for the serving-layer `DropoutPlan` cache: cached
//! plans must be bitwise identical to freshly sampled ones for every
//! scheme family, cache hits must recycle the destination buffers, and a
//! serve engine must produce bit-for-bit the same losses with the cache
//! on and off.

use approx_dropout::{
    scheme, DropoutPlan, DropoutRate, DropoutScheme, LayerShape, PlanCache, PlanKey, RowPattern,
    SchemeSpec, TilePattern,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{JobKind, JobSpec, ModelSpec, QosClass, ShardEngine};
use std::sync::Arc;

fn all_schemes() -> Vec<Box<dyn DropoutScheme>> {
    vec![
        scheme::none(),
        scheme::bernoulli(DropoutRate::new(0.5).unwrap()),
        scheme::divergent_bernoulli(DropoutRate::new(0.3).unwrap()),
        Box::new(RowPattern::new(3, 1).unwrap()),
        Box::new(TilePattern::new(2, 0, 8).unwrap()),
        scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap(),
        scheme::tile(DropoutRate::new(0.5).unwrap(), 8, 16).unwrap(),
        scheme::nm(2, 4).unwrap(),
        scheme::block_unit(DropoutRate::new(0.5).unwrap(), 8).unwrap(),
    ]
}

/// Samples the plan for `key` exactly the way the serve engine does on a
/// cache miss: a fresh rng seeded from the key, drawn through `plan_into`.
fn sample_for_key(scheme: &mut dyn DropoutScheme, key: PlanKey, out: &mut DropoutPlan) {
    let mut rng = StdRng::seed_from_u64(key.seed());
    scheme.plan_into(&mut rng, key.shape, out);
}

/// The serving determinism contract: for every scheme family, a plan that
/// went through the cache (miss, then hit into a recycled dirty buffer)
/// is bitwise identical to one sampled directly from the key.
#[test]
fn cached_plan_is_bitwise_identical_to_fresh_for_every_scheme() {
    let cache = PlanCache::new(4);
    let shape = LayerShape::new(64, 96);
    for (id, reference) in all_schemes().into_iter().enumerate() {
        let mut sampler = reference.clone();
        let mut direct = reference.clone();
        for epoch in 0..3u64 {
            let key = PlanKey::new(id as u64, shape, epoch);
            let mut fresh = DropoutPlan::default();
            sample_for_key(direct.as_mut(), key, &mut fresh);

            // Miss path: the cache samples into the destination.
            let mut via_miss = DropoutPlan::default();
            let hit = cache.fetch(key, &mut via_miss, |out| {
                sample_for_key(sampler.as_mut(), key, out)
            });
            assert!(!hit, "first fetch of {} must miss", reference.label());
            assert_eq!(fresh, via_miss, "miss diverged for {}", reference.label());

            // Hit path: clone_from into a deliberately dirty buffer of a
            // different family, so stale state would surface.
            let mut via_hit = fresh.clone();
            let mut tile = TilePattern::new(3, 2, 4).unwrap();
            tile.plan_into(
                &mut StdRng::seed_from_u64(0),
                LayerShape::new(8, 8),
                &mut via_hit,
            );
            let hit = cache.fetch(key, &mut via_hit, |_| {
                panic!("second fetch of {} must not re-sample", reference.label())
            });
            assert!(hit);
            assert_eq!(fresh, via_hit, "hit diverged for {}", reference.label());
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.hits, stats.misses, "every key fetched twice");
}

/// Eviction costs a re-miss, never a different plan: re-sampling after
/// `evict_before` reproduces the evicted entry bit for bit.
#[test]
fn eviction_resamples_identical_plans() {
    let cache = PlanCache::new(2);
    let shape = LayerShape::vector(80);
    let mut scheme = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
    let key = PlanKey::new(7, shape, 2);

    let mut first = DropoutPlan::default();
    cache.fetch(key, &mut first, |out| {
        sample_for_key(scheme.as_mut(), key, out)
    });
    assert_eq!(cache.evict_before(3), 1, "epoch-2 entry must be evicted");

    let mut again = DropoutPlan::default();
    let hit = cache.fetch(key, &mut again, |out| {
        sample_for_key(scheme.as_mut(), key, out)
    });
    assert!(!hit, "evicted key must re-miss");
    assert_eq!(first, again, "re-sampled plan diverged from evicted one");
}

/// A deterministic multi-model trace (MLP and LSTM replicas, train and
/// infer dispatches, several seed epochs, enough dispatches to trigger
/// cache eviction) produces bit-for-bit identical losses whether plans
/// come from the shared cache or are sampled per dispatch.
#[test]
fn serve_results_bitwise_identical_with_and_without_cache() {
    let catalog = vec![
        ModelSpec::mlp(
            "mlp",
            12,
            vec![16, 16],
            4,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        ),
        ModelSpec::lstm(
            "lstm",
            32,
            16,
            2,
            6,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        ),
    ];
    let trace: Vec<Vec<JobSpec>> = (0..24)
        .map(|step| {
            let model = step % 2;
            let kind = if step % 5 == 4 {
                JobKind::Infer
            } else {
                JobKind::Train
            };
            (0..1 + step % 3)
                .map(|j| JobSpec {
                    tenant: j as u64,
                    model,
                    rows: 2 + (step + j) % 3,
                    seed: (step * 31 + j) as u64,
                    kind,
                    qos: QosClass::Batch,
                })
                .collect()
        })
        .collect();

    let run = |cache: Option<Arc<PlanCache>>| -> Vec<u32> {
        let mut engine = ShardEngine::new(&catalog, |_| true, cache, 2, 42);
        trace
            .iter()
            .map(|batch| engine.execute(batch).value.to_bits())
            .collect()
    };

    let cache = Arc::new(PlanCache::new(4));
    let cached = run(Some(Arc::clone(&cache)));
    let uncached = run(None);
    assert_eq!(
        cached, uncached,
        "losses must be bitwise identical with the plan cache on and off"
    );
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "the trace must actually exercise the hit path (got {stats:?})"
    );
}

/// The transformer replica rides the same determinism contract: a trace of
/// whole-head-drop train and infer dispatches against `TransformerLm`
/// replicas produces bit-for-bit the same losses with the shared plan
/// cache on and off.
#[test]
fn transformer_serve_results_bitwise_identical_with_and_without_cache() {
    let catalog = vec![ModelSpec::transformer_lm(
        "transformer",
        40,
        16,
        4,
        32,
        2,
        6,
        SchemeSpec::Transformer {
            rate: 0.5,
            head_dim: 4,
        },
    )];
    let trace: Vec<Vec<JobSpec>> = (0..18)
        .map(|step| {
            let kind = if step % 4 == 3 {
                JobKind::Infer
            } else {
                JobKind::Train
            };
            (0..1 + step % 2)
                .map(|j| JobSpec {
                    tenant: j as u64,
                    model: 0,
                    rows: 2 + (step + j) % 3,
                    seed: (step * 17 + j) as u64,
                    kind,
                    qos: QosClass::Batch,
                })
                .collect()
        })
        .collect();

    let run = |cache: Option<Arc<PlanCache>>| -> Vec<u32> {
        let mut engine = ShardEngine::new(&catalog, |_| true, cache, 2, 7);
        trace
            .iter()
            .map(|batch| engine.execute(batch).value.to_bits())
            .collect()
    };

    let cache = Arc::new(PlanCache::new(4));
    let cached = run(Some(Arc::clone(&cache)));
    let uncached = run(None);
    assert_eq!(
        cached, uncached,
        "transformer losses must be bitwise identical with the plan cache on and off"
    );
    assert!(
        cached.iter().all(|bits| f32::from_bits(*bits).is_finite()),
        "every trace step must produce a finite loss"
    );
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "the transformer trace must exercise the hit path (got {stats:?})"
    );
}
