//! Cross-crate integration tests: pattern search (core) → training (nn) on
//! synthetic data (data) → timing model (gpu-sim), exercised through the
//! workspace facade exactly the way the experiment binaries use it.
//!
//! Includes the plan–execute acceptance checks: the compacted plan path
//! reproduces the masked-dense path's loss trajectory from the same RNG
//! seed, and the timing model — driven by the *same* sampled plans — shows a
//! row-pattern speedup over the Bernoulli baseline.

use approx_random_dropout::approx_dropout::{
    scheme, search, DropoutPlan, DropoutRate, DropoutScheme, LayerShape, PatternKind, SearchConfig,
};
use approx_random_dropout::data::{CorpusConfig, MnistConfig, SyntheticCorpus, SyntheticMnist};
use approx_random_dropout::gpu_sim::{
    GpuConfig, MlpSpec, NetworkTimingModel, DEFAULT_TIMING_SAMPLES,
};
use approx_random_dropout::nn::builder::{LstmBuilder, NetworkBuilder};
use approx_random_dropout::nn::Linear;
use approx_random_dropout::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn pattern_scheme(rate: f64, kind: PatternKind) -> Box<dyn DropoutScheme> {
    let rate = DropoutRate::new(rate).unwrap();
    match kind {
        PatternKind::Row => scheme::row(rate, 8).unwrap(),
        PatternKind::Tile => scheme::tile(rate, 8, 16).unwrap(),
    }
}

fn train_mlp_accuracy(dropout: Box<dyn DropoutScheme>, iterations: usize) -> f64 {
    let data = SyntheticMnist::new(MnistConfig::small());
    let mut rng = StdRng::seed_from_u64(123);
    let mut mlp = NetworkBuilder::new(data.dim(), data.classes())
        .hidden_layers(&[96, 96])
        .dropout(dropout)
        .learning_rate(0.05)
        .momentum(0.5)
        .build(&mut rng);
    for it in 0..iterations {
        let (x, y) = data.batch(64, it as u64);
        let _ = mlp.train_batch(&x, &y, &mut rng);
    }
    let (ex, ey) = data.eval_set(200);
    mlp.evaluate(&ex, &ey).1
}

#[test]
fn row_pattern_training_matches_baseline_accuracy_on_synthetic_mnist() {
    let iterations = 120;
    let baseline = train_mlp_accuracy(
        scheme::bernoulli(DropoutRate::new(0.5).unwrap()),
        iterations,
    );
    let row = train_mlp_accuracy(pattern_scheme(0.5, PatternKind::Row), iterations);
    assert!(baseline > 0.8, "baseline accuracy {baseline}");
    assert!(row > 0.8, "row-pattern accuracy {row}");
    // The paper reports < 0.5% accuracy loss at full scale; on the small
    // synthetic task we allow a few points of noise but no collapse.
    assert!(
        (baseline - row).abs() < 0.10,
        "accuracy gap too large: baseline {baseline}, row {row}"
    );
}

#[test]
fn tile_pattern_training_matches_baseline_accuracy_on_synthetic_mnist() {
    let iterations = 120;
    let baseline = train_mlp_accuracy(
        scheme::bernoulli(DropoutRate::new(0.5).unwrap()),
        iterations,
    );
    let tile = train_mlp_accuracy(pattern_scheme(0.5, PatternKind::Tile), iterations);
    assert!(tile > 0.8, "tile-pattern accuracy {tile}");
    assert!(
        (baseline - tile).abs() < 0.10,
        "accuracy gap too large: baseline {baseline}, tile {tile}"
    );
}

#[test]
fn searched_distribution_drives_both_training_and_timing() {
    // Algorithm 1's distribution fuels one scheme object; the same scheme
    // type is what both the trainer and the timing model consume.
    let rate = DropoutRate::new(0.7).unwrap();
    let dist = search::sgd_search(rate, 16, &SearchConfig::default()).unwrap();
    assert!((dist.expected_global_rate() - 0.7).abs() < 0.02);

    let model = NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::with_hidden(4096, 4096));
    let speedup = model.speedup(
        &*scheme::bernoulli(rate),
        &*scheme::row(rate, 16).unwrap(),
        DEFAULT_TIMING_SAMPLES,
        0,
    );
    // Paper Table I: ~2.16x for the 4096x4096 network at rate 0.7.
    assert!(speedup > 1.5, "speedup {speedup}");
    assert!(speedup < 3.5, "speedup {speedup}");

    let small = NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::with_hidden(1024, 64));
    let small_speedup = small.speedup(
        &*scheme::bernoulli(rate),
        &*scheme::row(rate, 16).unwrap(),
        DEFAULT_TIMING_SAMPLES,
        0,
    );
    assert!(
        small_speedup < speedup,
        "speedup should grow with network size"
    );
}

#[test]
fn lstm_language_model_trains_with_pattern_dropout_end_to_end() {
    let corpus = SyntheticCorpus::new(CorpusConfig {
        vocab: 80,
        ..CorpusConfig::small()
    });
    let mut rng = StdRng::seed_from_u64(5);
    let mut lm = LstmBuilder::new(corpus.vocab(), 24)
        .embed_dim(24)
        .layers(2)
        .dropout(pattern_scheme(0.3, PatternKind::Row))
        .learning_rate(0.5)
        .momentum(0.0)
        .grad_clip(5.0)
        .build(&mut rng);
    let first = lm.train_batch(&corpus.batch(8, 10, 0), &mut rng);
    for it in 1..80 {
        let _ = lm.train_batch(&corpus.batch(8, 10, it), &mut rng);
    }
    let eval = lm.evaluate(&corpus.batch(8, 10, 9999));
    assert!(eval.loss.is_finite());
    assert!(
        eval.perplexity < first.perplexity,
        "perplexity did not improve: {} -> {}",
        first.perplexity,
        eval.perplexity
    );
    assert!(eval.accuracy > 1.0 / 80.0, "accuracy {}", eval.accuracy);
}

/// Wraps a row scheme and rewrites every plan into the equivalent dense
/// per-column mask plan — the masked-dense formulation the seed repository
/// executed. Numerically both formulations must coincide, so a training run
/// from the same RNG seed must reproduce the same loss trajectory.
#[derive(Debug)]
struct MaskedDenseAdapter(Box<dyn DropoutScheme>);

impl DropoutScheme for MaskedDenseAdapter {
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        let plan = self.0.plan(rng, shape);
        match plan.compact_rows() {
            Some(kept) => {
                let mask: Vec<f32> = (0..shape.out_features)
                    .map(|j| if kept.contains(&j) { 1.0 } else { 0.0 })
                    .collect();
                DropoutPlan::bernoulli(shape, mask, plan.scale(), plan.nominal_rate())
            }
            None => plan,
        }
    }

    fn nominal_rate(&self) -> f64 {
        self.0.nominal_rate()
    }

    fn label(&self) -> &'static str {
        "masked-dense"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(MaskedDenseAdapter(self.0.clone()))
    }
}

#[test]
fn plan_path_reproduces_masked_dense_loss_trajectory_from_same_seed() {
    let data = SyntheticMnist::new(MnistConfig::small());
    let rate = DropoutRate::new(0.5).unwrap();

    let build = |dropout: Box<dyn DropoutScheme>| {
        let mut rng = StdRng::seed_from_u64(2024);
        NetworkBuilder::new(data.dim(), data.classes())
            .hidden_layers(&[64, 64])
            .dropout(dropout)
            .learning_rate(0.05)
            .momentum(0.5)
            .build(&mut rng)
    };
    // Identical weight init (same seed) and identical per-iteration RNG
    // draws: the row scheme consumes the same draws inside the adapter.
    let mut compact = build(scheme::row(rate, 8).unwrap());
    let mut dense = build(Box::new(MaskedDenseAdapter(scheme::row(rate, 8).unwrap())));

    let mut rng_compact = StdRng::seed_from_u64(99);
    let mut rng_dense = StdRng::seed_from_u64(99);
    for it in 0..50 {
        let (x, y) = data.batch(32, it);
        let a = compact.train_batch(&x, &y, &mut rng_compact).loss;
        let b = dense.train_batch(&x, &y, &mut rng_dense).loss;
        let tolerance = 1e-3 * (1.0 + a.abs());
        assert!(
            (a - b).abs() < tolerance,
            "iteration {it}: compacted loss {a} vs masked-dense loss {b}"
        );
    }
}

#[test]
fn timing_model_prices_the_training_plans_with_row_speedup() {
    // The acceptance check: both nn and gpu_sim consume plans from the same
    // scheme path, and the row pattern beats the Bernoulli baseline > 1x.
    let model = NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::paper_mlp());
    let rate = DropoutRate::new(0.5).unwrap();
    let speedup = model.speedup(
        &*scheme::bernoulli(rate),
        &*scheme::row(rate, 16).unwrap(),
        DEFAULT_TIMING_SAMPLES,
        1,
    );
    assert!(
        speedup > 1.0,
        "row speedup over Bernoulli baseline {speedup}"
    );

    // Per-iteration times come from concrete sampled plans: a plan with more
    // kept rows must never be faster than one with fewer.
    let mut sparse = scheme::row(DropoutRate::new(0.7).unwrap(), 16).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let shapes = model.layer_shapes();
    let sparse_plans: Vec<DropoutPlan> = shapes.iter().map(|&s| sparse.plan(&mut rng, s)).collect();
    let dense_plans: Vec<DropoutPlan> = shapes.iter().map(|&s| DropoutPlan::none(s)).collect();
    let t_sparse = model.iteration_time_from_plans(&sparse_plans).total_us();
    let t_dense = model.iteration_time_from_plans(&dense_plans).total_us();
    assert!(
        t_sparse < t_dense,
        "sparse plans {t_sparse} should beat dense plans {t_dense}"
    );
}

#[test]
fn linear_layer_is_reused_by_both_consumers() {
    // Compile-and-run check that the facade exposes the plan API end to end:
    // a plan built by hand drives a Linear exactly like scheme-sampled ones.
    let mut rng = StdRng::seed_from_u64(8);
    let mut layer = Linear::new(&mut rng, 6, 6);
    let plan = DropoutPlan::none(LayerShape::new(6, 6));
    let y = layer.forward(&Matrix::ones(2, 6), &plan);
    assert_eq!(y.shape(), (2, 6));
}

#[test]
fn facade_reexports_every_member_crate() {
    // Compile-time check that the workspace facade exposes the crates the
    // examples rely on.
    let _gpu = approx_random_dropout::gpu_sim::GpuConfig::gtx_1080ti();
    let _rate = approx_random_dropout::approx_dropout::DropoutRate::new(0.3).unwrap();
    let _mnist = approx_random_dropout::data::MnistConfig::small();
    let _matrix = approx_random_dropout::tensor::Matrix::zeros(1, 1);
    let _sgd = approx_random_dropout::nn::Sgd::default();
    let _scheme = approx_random_dropout::nn::schemes::none();
}
