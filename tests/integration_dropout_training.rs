//! Cross-crate integration tests: pattern search (core) → training (nn) on
//! synthetic data (data) → timing model (gpu-sim), exercised through the
//! workspace facade exactly the way the experiment binaries use it.

use approx_random_dropout::approx_dropout::{
    search, DropoutRate, PatternKind, SearchConfig,
};
use approx_random_dropout::data::{CorpusConfig, MnistConfig, SyntheticCorpus, SyntheticMnist};
use approx_random_dropout::gpu_sim::{DropoutTiming, GpuConfig, MlpSpec, NetworkTimingModel};
use approx_random_dropout::nn::dropout::DropoutConfig;
use approx_random_dropout::nn::lstm::{LstmLm, LstmLmConfig};
use approx_random_dropout::nn::mlp::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pattern_config(rate: f64, kind: PatternKind) -> DropoutConfig {
    DropoutConfig::pattern_with(DropoutRate::new(rate).unwrap(), kind, 8, 16).unwrap()
}

fn train_mlp_accuracy(dropout: DropoutConfig, iterations: usize) -> f64 {
    let data = SyntheticMnist::new(MnistConfig::small());
    let mut rng = StdRng::seed_from_u64(123);
    let config = MlpConfig {
        input_dim: data.dim(),
        hidden: vec![96, 96],
        output_dim: data.classes(),
        dropout,
        learning_rate: 0.05,
        momentum: 0.5,
    };
    let mut mlp = Mlp::new(&config, &mut rng);
    for it in 0..iterations {
        let (x, y) = data.batch(64, it as u64);
        let _ = mlp.train_batch(&x, &y, &mut rng);
    }
    let (ex, ey) = data.eval_set(200);
    mlp.evaluate(&ex, &ey).1
}

#[test]
fn row_pattern_training_matches_baseline_accuracy_on_synthetic_mnist() {
    let iterations = 120;
    let baseline = train_mlp_accuracy(
        DropoutConfig::Bernoulli(DropoutRate::new(0.5).unwrap()),
        iterations,
    );
    let row = train_mlp_accuracy(pattern_config(0.5, PatternKind::Row), iterations);
    assert!(baseline > 0.8, "baseline accuracy {baseline}");
    assert!(row > 0.8, "row-pattern accuracy {row}");
    // The paper reports < 0.5% accuracy loss at full scale; on the small
    // synthetic task we allow a few points of noise but no collapse.
    assert!(
        (baseline - row).abs() < 0.10,
        "accuracy gap too large: baseline {baseline}, row {row}"
    );
}

#[test]
fn tile_pattern_training_matches_baseline_accuracy_on_synthetic_mnist() {
    let iterations = 120;
    let baseline = train_mlp_accuracy(
        DropoutConfig::Bernoulli(DropoutRate::new(0.5).unwrap()),
        iterations,
    );
    let tile = train_mlp_accuracy(pattern_config(0.5, PatternKind::Tile), iterations);
    assert!(tile > 0.8, "tile-pattern accuracy {tile}");
    assert!(
        (baseline - tile).abs() < 0.10,
        "accuracy gap too large: baseline {baseline}, tile {tile}"
    );
}

#[test]
fn searched_distribution_drives_both_training_and_timing() {
    // One distribution: used to (a) train and (b) estimate the speedup, the
    // way the fig4 binary composes the crates.
    let rate = DropoutRate::new(0.7).unwrap();
    let dist = search::sgd_search(rate, 16, &SearchConfig::default()).unwrap();
    assert!((dist.expected_global_rate() - 0.7).abs() < 0.02);

    let model = NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::with_hidden(4096, 4096));
    let speedup = model.speedup(
        &DropoutTiming::Conventional(0.7),
        &DropoutTiming::Row(dist.clone()),
    );
    // Paper Table I: ~2.16x for the 4096x4096 network at rate 0.7.
    assert!(speedup > 1.5, "speedup {speedup}");
    assert!(speedup < 3.5, "speedup {speedup}");

    let small = NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::with_hidden(1024, 64));
    let small_speedup = small.speedup(
        &DropoutTiming::Conventional(0.7),
        &DropoutTiming::Row(dist),
    );
    assert!(small_speedup < speedup, "speedup should grow with network size");
}

#[test]
fn lstm_language_model_trains_with_pattern_dropout_end_to_end() {
    let corpus = SyntheticCorpus::new(CorpusConfig {
        vocab: 80,
        ..CorpusConfig::small()
    });
    let mut rng = StdRng::seed_from_u64(5);
    let config = LstmLmConfig {
        vocab: corpus.vocab(),
        embed_dim: 24,
        hidden: 24,
        layers: 2,
        dropout: pattern_config(0.3, PatternKind::Row),
        learning_rate: 0.5,
        momentum: 0.0,
        grad_clip: 5.0,
    };
    let mut lm = LstmLm::new(&config, &mut rng);
    let first = lm.train_batch(&corpus.batch(8, 10, 0), &mut rng);
    for it in 1..80 {
        let _ = lm.train_batch(&corpus.batch(8, 10, it), &mut rng);
    }
    let eval = lm.evaluate(&corpus.batch(8, 10, 9999));
    assert!(eval.loss.is_finite());
    assert!(
        eval.perplexity < first.perplexity,
        "perplexity did not improve: {} -> {}",
        first.perplexity,
        eval.perplexity
    );
    assert!(eval.accuracy > 1.0 / 80.0, "accuracy {}", eval.accuracy);
}

#[test]
fn facade_reexports_every_member_crate() {
    // Compile-time check that the workspace facade exposes the crates the
    // examples rely on.
    let _gpu = approx_random_dropout::gpu_sim::GpuConfig::gtx_1080ti();
    let _rate = approx_random_dropout::approx_dropout::DropoutRate::new(0.3).unwrap();
    let _mnist = approx_random_dropout::data::MnistConfig::small();
    let _matrix = approx_random_dropout::tensor::Matrix::zeros(1, 1);
    let _sgd = approx_random_dropout::nn::Sgd::default();
}
