//! SIMD-vs-scalar parity for the runtime-dispatched vector micro-kernels.
//!
//! The `tensor::simd` contract is that switching the dispatch level never
//! changes ReLU/Identity results by a single bit: every vector kernel
//! replicates the scalar accumulation order exactly (mul-then-add, no FMA,
//! the 8-lane `dot` reduction preserved). These tests pin that contract
//! through the public API — raw micro-kernels, the dense/transposed GEMMs
//! and every compacted kernel family via `Linear::forward_act_into`, at
//! serial and parallel pool widths — and bound the documented polynomial
//! tolerance of the sigmoid/tanh epilogues against libm. A dispatch test
//! asserts the detected ISA is actually what gets selected.
//!
//! The SIMD level is process-global state, so every test here serialises
//! on one mutex and restores the entry level before returning.

use approx_dropout::{scheme, Activation, DropoutRate, DropoutScheme};
use nn::{DropoutPlan, LayerShape, Linear, TransformerLm, TransformerLmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use tensor::{blocked_gemm, gemm_a_bt, gemm_at_b, init, pool, simd, Matrix, SimdLevel};

/// Serialises tests that rebind the process-global SIMD level.
fn level_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// One plan per schedule family (dense, bernoulli-masked, gather, row,
/// tile, N:M, block, CRS, row×CRS), resolved against a `(in, out)` layer.
/// Odd widths exercise the ragged vector tails of every kernel.
fn family_plans(in_features: usize, out_features: usize) -> Vec<(&'static str, DropoutPlan)> {
    let shape = LayerShape::new(in_features, out_features);
    let mut plans = Vec::new();
    plans.push(("none", DropoutPlan::none(shape)));
    let mut bernoulli = scheme::bernoulli(DropoutRate::new(0.5).unwrap());
    plans.push((
        "bernoulli",
        bernoulli.plan(&mut StdRng::seed_from_u64(5), shape),
    ));
    let mut divergent = scheme::divergent_bernoulli(DropoutRate::new(0.5).unwrap());
    plans.push((
        "divergent",
        divergent.plan(&mut StdRng::seed_from_u64(6), shape),
    ));
    let mut row = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
    plans.push(("row", row.plan(&mut StdRng::seed_from_u64(7), shape)));
    let mut tile = scheme::tile(DropoutRate::new(0.5).unwrap(), 8, 16).unwrap();
    plans.push(("tile", tile.plan(&mut StdRng::seed_from_u64(8), shape)));
    let mut nm = scheme::nm(2, 4).unwrap();
    plans.push(("nm", nm.plan(&mut StdRng::seed_from_u64(9), shape)));
    let mut block = scheme::block_unit(DropoutRate::new(0.5).unwrap(), 16).unwrap();
    plans.push(("block", block.plan(&mut StdRng::seed_from_u64(10), shape)));
    let mut crs = scheme::crs(0.5).unwrap();
    plans.push(("crs", crs.plan(&mut StdRng::seed_from_u64(11), shape)));
    let mut row_crs = scheme::row_crs(DropoutRate::new(0.5).unwrap(), 8, 0.5).unwrap();
    plans.push((
        "row_crs",
        row_crs.plan(&mut StdRng::seed_from_u64(12), shape),
    ));
    plans
}

fn workload(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    init::uniform(rng, rows, cols, -1.0, 1.0)
}

#[test]
fn runtime_dispatch_selects_the_detected_isa() {
    let _g = level_guard();
    let entry = simd::level();
    let detected = simd::detected_level();
    // On x86-64 the detector must report what the CPU actually has; a CPU
    // with AVX2 silently landing on the scalar path would be the exact
    // regression this test exists to catch.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        assert_ne!(
            detected,
            SimdLevel::Scalar,
            "AVX2 is available but detection chose the scalar path"
        );
    }
    #[cfg(target_arch = "aarch64")]
    assert_eq!(detected, SimdLevel::Neon, "NEON is baseline on aarch64");
    // Selecting the detected level is honoured verbatim…
    assert_eq!(simd::set_level(detected), detected);
    assert_eq!(simd::level(), detected);
    // …and the mandatory scalar fallback is always selectable.
    assert_eq!(simd::set_level(SimdLevel::Scalar), SimdLevel::Scalar);
    assert_eq!(simd::level(), SimdLevel::Scalar);
    simd::set_level(entry);
}

#[test]
fn micro_kernels_match_scalar_bitwise_at_ragged_lengths() {
    let _g = level_guard();
    let entry = simd::level();
    let mut rng = StdRng::seed_from_u64(0x51D0);
    // 31 floats: three 8-lane blocks (one 16-lane + rags on AVX-512) plus
    // a 7-element scalar tail.
    let x: Vec<f32> = workload(&mut rng, 1, 31).as_slice().to_vec();
    let y: Vec<f32> = workload(&mut rng, 1, 31).as_slice().to_vec();
    let quads: Vec<Vec<f32>> = (0..4)
        .map(|_| workload(&mut rng, 1, 31).as_slice().to_vec())
        .collect();

    simd::set_level(SimdLevel::Scalar);
    let mut axpy_scalar = x.clone();
    simd::axpy(&mut axpy_scalar, 0.37, &y);
    let mut axpy4_scalar = x.clone();
    simd::axpy4(
        &mut axpy4_scalar,
        [0.1, -0.2, 0.3, -0.4],
        &quads[0],
        &quads[1],
        &quads[2],
        &quads[3],
    );
    let dot_scalar = simd::dot(&x, &y);

    simd::set_level(simd::detected_level());
    let mut axpy_vec = x.clone();
    simd::axpy(&mut axpy_vec, 0.37, &y);
    let mut axpy4_vec = x.clone();
    simd::axpy4(
        &mut axpy4_vec,
        [0.1, -0.2, 0.3, -0.4],
        &quads[0],
        &quads[1],
        &quads[2],
        &quads[3],
    );
    let dot_vec = simd::dot(&x, &y);
    simd::set_level(entry);

    assert_eq!(
        axpy_scalar, axpy_vec,
        "axpy must be bitwise level-invariant"
    );
    assert_eq!(
        axpy4_scalar, axpy4_vec,
        "axpy4 must be bitwise level-invariant"
    );
    assert_eq!(
        dot_scalar.to_bits(),
        dot_vec.to_bits(),
        "dot must reproduce the 8-lane reduction order bitwise"
    );
}

#[test]
fn dense_and_transposed_gemms_match_scalar_bitwise() {
    let _g = level_guard();
    let entry = simd::level();
    pool::set_threads(1);
    let mut rng = StdRng::seed_from_u64(0x51D1);
    // Odd shapes: ragged in every vector width.
    let a = workload(&mut rng, 13, 37);
    let b = workload(&mut rng, 37, 29);
    let a_t = a.transpose();
    let b_t = b.transpose();

    simd::set_level(SimdLevel::Scalar);
    let dense_scalar = blocked_gemm(&a, &b).unwrap();
    let at_b_scalar = gemm_at_b(&a_t, &b).unwrap();
    let a_bt_scalar = gemm_a_bt(&a, &b_t).unwrap();

    simd::set_level(simd::detected_level());
    let dense_vec = blocked_gemm(&a, &b).unwrap();
    let at_b_vec = gemm_at_b(&a_t, &b).unwrap();
    let a_bt_vec = gemm_a_bt(&a, &b_t).unwrap();
    simd::set_level(entry);

    assert_eq!(dense_scalar, dense_vec, "dense GEMM (axpy4/axpy path)");
    assert_eq!(at_b_scalar, at_b_vec, "AᵀB GEMM");
    assert_eq!(a_bt_scalar, a_bt_vec, "ABᵀ GEMM (dot path)");
}

#[test]
fn all_kernel_families_match_scalar_bitwise_at_one_and_four_threads() {
    let _g = level_guard();
    let entry = simd::level();
    let mut rng = StdRng::seed_from_u64(0x51D2);
    // Batch above the pool's serial-fallback threshold so the 4-thread
    // pass really runs parallel.
    let x = workload(&mut rng, 40, 29);
    let mut layer = Linear::new(&mut rng, 29, 48);
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        for (label, plan) in family_plans(29, 48) {
            // Identity and ReLU epilogues are scalar-exact at every level;
            // the transcendental epilogues are covered by the ULP test.
            for act in [Activation::Identity, Activation::Relu] {
                simd::set_level(SimdLevel::Scalar);
                let mut scalar = Matrix::default();
                layer.forward_act_into(&x, &plan, act, &mut scalar);
                simd::set_level(simd::detected_level());
                let mut vector = Matrix::default();
                layer.forward_act_into(&x, &plan, act, &mut vector);
                assert_eq!(
                    scalar,
                    vector,
                    "{label}/{act:?} at {threads} thread(s) must be bitwise \
                     identical between scalar and {:?}",
                    simd::detected_level()
                );
            }
        }
    }
    pool::set_threads(1);
    simd::set_level(entry);
}

/// Same-seed transformer training losses plus a deterministic eval loss,
/// as bit patterns.
fn transformer_trajectory(attn: &dyn DropoutScheme, ffn: &dyn DropoutScheme) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(0x51D5);
    let config = TransformerLmConfig {
        vocab: 40,
        model_dim: 16,
        heads: 4,
        ff_dim: 32,
        layers: 2,
        attn_dropout: attn.clone_box(),
        ffn_dropout: ffn.clone_box(),
        learning_rate: 0.05,
        momentum: 0.0,
        grad_clip: 5.0,
    };
    let mut lm = TransformerLm::new(&config, &mut rng);
    let batch: Vec<Vec<usize>> = (0..8)
        .map(|s| (0..9).map(|t| (s * 5 + t * 11) % 40).collect())
        .collect();
    let mut bits: Vec<u32> = (0..5)
        .map(|_| lm.train_batch(&batch, &mut rng).loss.to_bits())
        .collect();
    bits.push(lm.evaluate(&batch).loss.to_bits());
    bits
}

#[test]
fn transformer_attention_matches_scalar_bitwise_for_every_structured_path() {
    // The attention forward/backward pipeline is built entirely from the
    // level-invariant kernels (GEMMs, block-compacted GEMMs, gathers) plus
    // scalar softmax/cross-entropy, so whole training trajectories — head
    // drop, 2:4 projections, FFN row dropout — must not move by a bit when
    // the dispatch level changes.
    let _g = level_guard();
    let entry = simd::level();
    pool::set_threads(1);
    let rate = DropoutRate::new(0.5).unwrap();
    #[allow(clippy::type_complexity)]
    let variants: Vec<(&str, Box<dyn DropoutScheme>, Box<dyn DropoutScheme>)> = vec![
        (
            "head_drop",
            scheme::block_unit(rate, 4).unwrap(),
            scheme::none(),
        ),
        ("nm_proj", scheme::nm(2, 4).unwrap(), scheme::none()),
        ("ffn_row", scheme::none(), scheme::row(rate, 8).unwrap()),
    ];
    for (label, attn, ffn) in &variants {
        simd::set_level(SimdLevel::Scalar);
        let scalar = transformer_trajectory(&**attn, &**ffn);
        simd::set_level(simd::detected_level());
        let vector = transformer_trajectory(&**attn, &**ffn);
        assert_eq!(
            scalar,
            vector,
            "transformer {label} must be bitwise identical between scalar and {:?}",
            simd::detected_level()
        );
    }
    simd::set_level(entry);
}

/// ULP distance between two finite floats (sign-aware, 0 for ±0.0 pairs).
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        let mapped = if bits < 0 { i32::MIN - bits } else { bits };
        i64::from(mapped)
    }
    ordered(a).abs_diff(ordered(b))
}

#[test]
fn sigmoid_and_tanh_epilogues_stay_within_documented_ulp_of_libm() {
    let _g = level_guard();
    let entry = simd::level();
    pool::set_threads(1);
    let mut rng = StdRng::seed_from_u64(0x51D3);
    let x = workload(&mut rng, 24, 33);
    let mut layer = Linear::new(&mut rng, 33, 47);
    let plan = DropoutPlan::none(LayerShape::new(33, 47));
    // Evaluate at the *detected* level: the polynomial forms are what the
    // vector epilogues run. (At scalar the std formulas are used and the
    // distance is identically zero.)
    simd::set_level(simd::detected_level());
    let mut pre = Matrix::default();
    layer.forward_act_into(&x, &plan, Activation::Identity, &mut pre);
    for (act, bound) in [(Activation::Sigmoid, 16u64), (Activation::Tanh, 32u64)] {
        let mut out = Matrix::default();
        layer.forward_act_into(&x, &plan, act, &mut out);
        for (&p, &o) in pre.as_slice().iter().zip(out.as_slice()) {
            let reference = match act {
                Activation::Sigmoid => 1.0 / (1.0 + (-p).exp()),
                Activation::Tanh => p.tanh(),
                _ => unreachable!(),
            };
            let ulp = ulp_distance(o, reference);
            assert!(
                ulp <= bound || (o - reference).abs() <= 1e-6,
                "{act:?}({p}) = {o} is {ulp} ULP from libm's {reference} (bound {bound})"
            );
        }
    }
    simd::set_level(entry);
}
