//! Integration tests for the fused whole-layer kernels
//! (GEMM + bias + activation in one launch) across the plan–execute–price
//! pipeline: bitwise equivalence of the fused and unfused executors for
//! every activation × every dropout schedule family, at serial and parallel
//! pool settings; whole-training-trajectory equality for the fused `Mlp`;
//! buffer recycling of the fused output path; and the timing-model identity
//! that a fused launch never prices above the chain of parts it replaces.

use approx_dropout::{scheme, Activation, DropoutRate, DropoutScheme, KernelSchedule, RowPattern};
use gpu_sim::{GpuConfig, MlpSpec, NetworkTimingModel};
use nn::{DropoutPlan, LayerShape, Linear, Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, pool, Matrix};

const ACTIVATIONS: [Activation; 4] = [
    Activation::Identity,
    Activation::Relu,
    Activation::Sigmoid,
    Activation::Tanh,
];

/// One plan per schedule family, resolved against a `(in, out)` layer. The
/// odd width exercises ragged tails of every compacted kernel.
fn family_plans(in_features: usize, out_features: usize) -> Vec<(&'static str, DropoutPlan)> {
    let shape = LayerShape::new(in_features, out_features);
    let mut plans = Vec::new();
    plans.push(("none", DropoutPlan::none(shape)));
    let mut bernoulli = scheme::bernoulli(DropoutRate::new(0.5).unwrap());
    plans.push((
        "bernoulli",
        bernoulli.plan(&mut StdRng::seed_from_u64(5), shape),
    ));
    let mut divergent = scheme::divergent_bernoulli(DropoutRate::new(0.5).unwrap());
    plans.push((
        "divergent",
        divergent.plan(&mut StdRng::seed_from_u64(6), shape),
    ));
    let mut row = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
    plans.push(("row", row.plan(&mut StdRng::seed_from_u64(7), shape)));
    let mut tile = scheme::tile(DropoutRate::new(0.5).unwrap(), 8, 16).unwrap();
    plans.push(("tile", tile.plan(&mut StdRng::seed_from_u64(8), shape)));
    let mut nm = scheme::nm(2, 4).unwrap();
    plans.push(("nm", nm.plan(&mut StdRng::seed_from_u64(9), shape)));
    let mut block = scheme::block_unit(DropoutRate::new(0.5).unwrap(), 16).unwrap();
    plans.push(("block", block.plan(&mut StdRng::seed_from_u64(10), shape)));
    let mut crs = scheme::crs(0.5).unwrap();
    plans.push(("crs", crs.plan(&mut StdRng::seed_from_u64(11), shape)));
    let mut row_crs = scheme::row_crs(DropoutRate::new(0.5).unwrap(), 8, 0.5).unwrap();
    plans.push((
        "row_crs",
        row_crs.plan(&mut StdRng::seed_from_u64(12), shape),
    ));
    plans
}

/// Unfused reference: `Linear::forward` followed by the stand-alone
/// elementwise activation — the chain the fused kernel replaces.
fn unfused_reference(
    layer: &mut Linear,
    x: &Matrix,
    plan: &DropoutPlan,
    act: Activation,
) -> Matrix {
    let mut z = layer.forward(x, plan);
    z.map_inplace(|v| act.apply(v));
    z
}

/// All global-pool mutation lives in this single test: the pool is
/// process-wide state and the tests of one binary run concurrently.
#[test]
fn fused_forward_is_bitwise_identical_to_unfused_for_all_families() {
    let mut rng = StdRng::seed_from_u64(1);
    // Batch above PAR_MIN_ROWS so the 4-thread pass really runs parallel.
    let x = init::uniform(&mut rng, 40, 29, -1.0, 1.0);
    let mut layer = Linear::new(&mut rng, 29, 48);
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        assert_eq!(pool::threads(), threads);
        for (label, plan) in family_plans(29, 48) {
            for act in ACTIVATIONS {
                let reference = unfused_reference(&mut layer, &x, &plan, act);
                let mut fused = Matrix::default();
                layer.forward_act_into(&x, &plan, act, &mut fused);
                assert_eq!(
                    fused, reference,
                    "{label}/{act:?} at {threads} thread(s) must be bitwise identical"
                );
            }
        }
    }
    // Parallel-vs-serial invariance of the fused kernels themselves.
    let plan = family_plans(29, 48).swap_remove(3).1; // row plan
    pool::set_threads(1);
    let mut serial = Matrix::default();
    layer.forward_act_into(&x, &plan, Activation::Relu, &mut serial);
    pool::set_threads(4);
    let mut parallel = Matrix::default();
    layer.forward_act_into(&x, &plan, Activation::Relu, &mut parallel);
    assert_eq!(serial, parallel, "fused kernel must be thread-invariant");
    pool::set_threads(1);
}

#[test]
fn fused_backward_matches_unfused_backward_exactly() {
    // The fused forward caches exactly what the unfused forward caches, so
    // the backward pass behind either must produce identical gradients.
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(&mut rng, 6, 21, -1.0, 1.0);
    let dy = init::uniform(&mut rng, 6, 32, -1.0, 1.0);
    for (label, plan) in family_plans(21, 32) {
        let mut rng_l = StdRng::seed_from_u64(3);
        let mut fused_layer = Linear::new(&mut rng_l, 21, 32);
        let mut unfused_layer = fused_layer.clone();
        let mut out = Matrix::default();
        fused_layer.forward_act_into(&x, &plan, Activation::Relu, &mut out);
        let _ = unfused_layer.forward(&x, &plan);
        let dx_fused = fused_layer.backward(&dy);
        let dx_unfused = unfused_layer.backward(&dy);
        assert_eq!(dx_fused, dx_unfused, "{label}: dX must match");
        assert_eq!(
            fused_layer.weight_grad(),
            unfused_layer.weight_grad(),
            "{label}: dW must match"
        );
    }
}

#[test]
fn fused_mlp_training_trajectory_is_bitwise_identical() {
    // Same init, same RNG stream: N training steps through the fused
    // whole-layer executor and through the separate-kernel chain must visit
    // exactly the same losses (fusion changes time, never numerics).
    let mut rng = StdRng::seed_from_u64(11);
    let config = MlpConfig {
        input_dim: 12,
        hidden: vec![40, 40],
        output_dim: 3,
        dropout: scheme::row(DropoutRate::new(0.5).unwrap(), 4).unwrap(),
        learning_rate: 0.05,
        momentum: 0.9,
    };
    let inputs = init::uniform(&mut rng, 36, 12, -1.0, 1.0);
    let labels: Vec<usize> = (0..36).map(|i| i % 3).collect();
    let mut fused = Mlp::new(&config, &mut rng);
    let mut unfused = fused.clone();
    assert!(fused.fused());
    unfused.set_fused(false);
    assert!(!unfused.fused());
    let mut rng_a = StdRng::seed_from_u64(21);
    let mut rng_b = StdRng::seed_from_u64(21);
    for step in 0..20 {
        let stats_fused = fused.train_batch(&inputs, &labels, &mut rng_a);
        let stats_unfused = unfused.train_batch(&inputs, &labels, &mut rng_b);
        assert_eq!(
            stats_fused.loss, stats_unfused.loss,
            "loss diverged at step {step}"
        );
        assert_eq!(stats_fused.accuracy, stats_unfused.accuracy);
    }
    // And the evaluation-time forward agrees too.
    let (loss_fused, acc_fused) = fused.evaluate(&inputs, &labels);
    let (loss_unfused, acc_unfused) = unfused.evaluate(&inputs, &labels);
    assert_eq!(loss_fused, loss_unfused);
    assert_eq!(acc_fused, acc_unfused);
}

#[test]
fn fused_output_buffer_is_recycled_across_iterations() {
    let mut rng = StdRng::seed_from_u64(12);
    let x = init::uniform(&mut rng, 8, 10, -1.0, 1.0);
    let mut layer = Linear::new(&mut rng, 10, 16);
    let mut scheme = RowPattern::new(2, 0).unwrap();
    let shape = LayerShape::new(10, 16);
    let mut plan = scheme.plan(&mut StdRng::seed_from_u64(1), shape);
    let mut out = Matrix::default();
    layer.forward_act_into(&x, &plan, Activation::Relu, &mut out);
    let ptr = out.as_slice().as_ptr();
    // Different kept set, same shapes: no reallocation anywhere.
    let mut scheme2 = RowPattern::new(2, 1).unwrap();
    scheme2.plan_into(&mut StdRng::seed_from_u64(2), shape, &mut plan);
    layer.forward_act_into(&x, &plan, Activation::Relu, &mut out);
    assert_eq!(
        ptr,
        out.as_slice().as_ptr(),
        "fused output buffer must be reused"
    );
}

#[test]
fn fused_model_prices_at_or_below_the_unfused_chain_on_both_presets() {
    // Network-level restatement of the pricing identity
    // `fused_cost <= sum(parts)` through the public API, plus monotonicity
    // of the fused pricing in the kept fraction.
    for gpu in [GpuConfig::gtx_1080ti(), GpuConfig::server_hbm()] {
        let unfused = NetworkTimingModel::mlp(gpu.clone(), MlpSpec::paper_mlp());
        let fused = unfused.clone().with_fusion(true);
        for s in [
            scheme::none(),
            scheme::bernoulli(DropoutRate::new(0.5).unwrap()),
            scheme::row(DropoutRate::new(0.5).unwrap(), 16).unwrap(),
            scheme::tile(DropoutRate::new(0.5).unwrap(), 16, 32).unwrap(),
            scheme::nm(2, 4).unwrap(),
            scheme::block_unit(DropoutRate::new(0.5).unwrap(), 32).unwrap(),
            scheme::crs(0.5).unwrap(),
            scheme::row_crs(DropoutRate::new(0.5).unwrap(), 16, 0.5).unwrap(),
        ] {
            let t_unfused = unfused.expected_iteration_time(&*s, 32, 77).total_us();
            let t_fused = fused.expected_iteration_time(&*s, 32, 77).total_us();
            assert!(
                t_fused <= t_unfused,
                "{}: fused {t_fused} > unfused {t_unfused} for {}",
                gpu.name,
                s.label()
            );
        }
        // Monotonicity in kept fraction under fusion: dropping more neurons
        // never prices slower.
        let series: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&dp| {
                let plans: Vec<DropoutPlan> = fused
                    .layer_shapes()
                    .into_iter()
                    .map(|shape| {
                        RowPattern::new(dp, 0)
                            .unwrap()
                            .plan(&mut StdRng::seed_from_u64(1), shape)
                    })
                    .collect();
                fused.iteration_time_from_plans(&plans).total_us()
            })
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{}: fused pricing not monotonic: {series:?}",
                gpu.name
            );
        }
    }
}

#[test]
fn fused_schedule_survives_the_plan_pipeline() {
    // A plan's schedule wrapped by the executor keeps its compaction
    // semantics: kept_fraction, is_compacted and the round trip through
    // `unfused` are loss-free.
    let mut s = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
    let plan = s.plan(&mut StdRng::seed_from_u64(4), LayerShape::new(64, 64));
    let schedule = *plan.kernel_schedule();
    let fused = schedule.fused(Activation::Relu);
    assert!(matches!(fused, KernelSchedule::Fused { .. }));
    assert_eq!(fused.unfused(), schedule);
    assert_eq!(fused.kept_fraction(), schedule.kept_fraction());
    assert_eq!(fused.is_compacted(), schedule.is_compacted());
}
