//! Property-based tests of the core invariants, spanning the `approx-dropout`
//! and `tensor` crates.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use a small in-house harness: every property is checked over many
//! deterministically seeded random cases, and a failure message reports the
//! case seed so the exact inputs can be reproduced.

use approx_random_dropout::approx_dropout::{
    search, DropoutRate, PatternDistribution, PatternKind, PatternSampler, RowPattern,
    SampledPattern, SearchConfig, TileGrid, TilePattern,
};
use approx_random_dropout::tensor::{gemm, init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each property is checked over.
const CASES: u64 = 64;

/// Runs `body` over `CASES` deterministically seeded RNGs.
fn for_each_case(salt: u64, mut body: impl FnMut(u64, &mut StdRng)) {
    for case in 0..CASES {
        let seed = salt.wrapping_mul(0x9E37_79B9) ^ case;
        let mut rng = StdRng::seed_from_u64(seed);
        body(seed, &mut rng);
    }
}

/// A row pattern keeps exactly the residue class of its bias.
#[test]
fn row_pattern_keeps_one_residue_class() {
    for_each_case(1, |seed, rng| {
        let dp = rng.gen_range(1usize..32);
        let bias = rng.gen_range(0usize..32) % dp;
        let n = rng.gen_range(1usize..512);
        let pattern = RowPattern::new(dp, bias).unwrap();
        let kept = pattern.kept_rows(n);
        let expected: Vec<usize> = (0..n).filter(|i| i % dp == bias).collect();
        assert_eq!(kept, expected, "case seed {seed}");
        let dropped = pattern.dropped_rows(n);
        assert_eq!(kept.len() + dropped.len(), n, "case seed {seed}");
    });
}

/// The realised dropout fraction of a sampled pattern never exceeds the
/// nominal (dp−1)/dp rate by more than one unit's worth.
#[test]
fn sampled_pattern_fraction_close_to_nominal() {
    for_each_case(2, |seed, rng| {
        let dp = rng.gen_range(1usize..16);
        let n = rng.gen_range(16usize..256);
        let pattern = RowPattern::new(dp, 0).unwrap();
        let sampled = SampledPattern::from_row(pattern, n);
        let nominal = (dp - 1) as f64 / dp as f64;
        assert!(
            (sampled.realized_dropout_fraction() - nominal).abs() <= dp as f64 / n as f64,
            "case seed {seed}"
        );
    });
}

/// A tile pattern's kept tiles and dropped tiles partition the grid.
#[test]
fn tile_pattern_partitions_grid() {
    for_each_case(3, |seed, rng| {
        let dp = rng.gen_range(1usize..16);
        let rows = rng.gen_range(1usize..200);
        let cols = rng.gen_range(1usize..200);
        let tile = rng.gen_range(1usize..64);
        let grid = TileGrid::new(rows, cols, tile).unwrap();
        let pattern = TilePattern::new(dp, dp - 1, tile).unwrap();
        let kept = pattern.kept_tiles(&grid);
        let dropped = pattern.dropped_tiles(&grid);
        assert_eq!(
            kept.len() + dropped.len(),
            grid.total_tiles(),
            "case seed {seed}"
        );
        for &t in &kept {
            assert!(t < grid.total_tiles(), "case seed {seed}");
        }
    });
}

/// Row-compacted GEMM equals the dense GEMM with dropped columns zeroed,
/// for arbitrary shapes and kept sets.
#[test]
fn row_compact_gemm_matches_masked_dense() {
    for_each_case(4, |seed, rng| {
        let m = rng.gen_range(1usize..12);
        let k = rng.gen_range(1usize..12);
        let n = rng.gen_range(1usize..12);
        let dp = rng.gen_range(1usize..6);
        let a = init::uniform(rng, m, k, -1.0, 1.0);
        let w = init::uniform(rng, k, n, -1.0, 1.0);
        let pattern = RowPattern::new(dp, 0).unwrap();
        let kept = pattern.kept_rows(n);
        let compact = gemm::row_compact_gemm(&a, &w, &kept).unwrap();
        let mut masked = w.clone();
        for j in 0..n {
            if !kept.contains(&j) {
                for p in 0..k {
                    masked[(p, j)] = 0.0;
                }
            }
        }
        let reference = gemm::naive_gemm(&a, &masked).unwrap();
        assert!(
            approx_random_dropout::tensor::approx_eq_slice(
                compact.as_slice(),
                reference.as_slice(),
                1e-3
            ),
            "case seed {seed}"
        );
    });
}

/// Tile-compacted GEMM equals the explicitly masked dense reference.
#[test]
fn tile_compact_gemm_matches_masked_dense() {
    for_each_case(5, |seed, rng| {
        let m = rng.gen_range(1usize..10);
        let k = rng.gen_range(2usize..14);
        let n = rng.gen_range(2usize..14);
        let tile = rng.gen_range(1usize..6);
        let dp = rng.gen_range(1usize..5);
        let a = init::uniform(rng, m, k, -1.0, 1.0);
        let w = init::uniform(rng, k, n, -1.0, 1.0);
        let grid = TileGrid::new(k, n, tile).unwrap();
        let pattern = TilePattern::new(dp, 0, tile).unwrap();
        let kept = pattern.kept_tiles(&grid);
        let compact = gemm::tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = gemm::tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(
            approx_random_dropout::tensor::approx_eq_slice(
                compact.as_slice(),
                reference.as_slice(),
                1e-3
            ),
            "case seed {seed}"
        );
    });
}

/// Any normalised distribution has an expected global rate within [0, 1)
/// and an entropy no larger than ln(N).
#[test]
fn distribution_invariants() {
    for_each_case(6, |seed, rng| {
        let n = rng.gen_range(1usize..24);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..10.0)).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            return;
        }
        let dist = PatternDistribution::new(weights).unwrap();
        let rate = dist.expected_global_rate();
        assert!((0.0..1.0).contains(&rate), "case seed {seed}");
        assert!(dist.entropy() <= (n as f64).ln() + 1e-9, "case seed {seed}");
        let total: f64 = dist.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case seed {seed}");
    });
}

/// Algorithm 1 hits arbitrary target rates within tolerance.
#[test]
fn search_matches_arbitrary_targets() {
    for_each_case(7, |seed, rng| {
        let target = rng.gen_range(0.05f64..0.85);
        let max_dp = rng.gen_range(8usize..24);
        let dist = search::sgd_search(
            DropoutRate::new(target).unwrap(),
            max_dp,
            &SearchConfig::default(),
        )
        .unwrap();
        assert!(
            (dist.expected_global_rate() - target).abs() < 0.03,
            "case seed {seed}: target {target}, achieved {}",
            dist.expected_global_rate()
        );
    });
}

/// The sampler only ever emits periods the distribution supports and
/// biases below the period.
#[test]
fn sampler_emits_valid_patterns() {
    for_each_case(8, |seed, rng| {
        let n_units = rng.gen_range(1usize..200);
        let dist = PatternDistribution::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sampler = PatternSampler::new(dist, PatternKind::Row);
        let pattern = sampler.sample(rng, n_units);
        assert!(
            pattern.dp() >= 1 && pattern.dp() <= 4.min(n_units.max(1)),
            "case seed {seed}"
        );
        assert!(pattern.bias() < pattern.dp(), "case seed {seed}");
        for &k in pattern.kept_indices() {
            assert!(k < n_units, "case seed {seed}");
        }
    });
}

/// Matrix transpose is an involution and preserves the Frobenius norm.
#[test]
fn transpose_involution() {
    for_each_case(9, |seed, rng| {
        let rows = rng.gen_range(1usize..20);
        let cols = rng.gen_range(1usize..20);
        let m = init::uniform(rng, rows, cols, -5.0, 5.0);
        let tt = m.transpose().transpose();
        assert_eq!(tt, m, "case seed {seed}");
        assert!(
            (m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-3,
            "case seed {seed}"
        );
    });
}

/// Blocked GEMM agrees with the naive reference on arbitrary shapes.
#[test]
fn blocked_gemm_matches_naive() {
    for_each_case(10, |seed, rng| {
        let m = rng.gen_range(1usize..20);
        let k = rng.gen_range(1usize..20);
        let n = rng.gen_range(1usize..20);
        let a = init::uniform(rng, m, k, -1.0, 1.0);
        let b = init::uniform(rng, k, n, -1.0, 1.0);
        let naive = gemm::naive_gemm(&a, &b).unwrap();
        let blocked = gemm::blocked_gemm(&a, &b).unwrap();
        assert!(
            approx_random_dropout::tensor::approx_eq_slice(
                naive.as_slice(),
                blocked.as_slice(),
                1e-3
            ),
            "case seed {seed}"
        );
    });
}

/// Scatter of selected rows restores the original rows in place.
#[test]
fn select_then_scatter_restores_rows() {
    for_each_case(11, |seed, rng| {
        let rows = rng.gen_range(1usize..16);
        let cols = rng.gen_range(1usize..16);
        let stride = rng.gen_range(1usize..4);
        let m = init::uniform(rng, rows, cols, -1.0, 1.0);
        let indices: Vec<usize> = (0..rows).step_by(stride).collect();
        let compact = m.select_rows(&indices);
        let scattered = m.scatter_rows_of(&compact, &indices);
        for (pos, &r) in indices.iter().enumerate() {
            assert_eq!(scattered.row(r), compact.row(pos), "case seed {seed}");
        }
    });
}

#[test]
fn bernoulli_and_pattern_long_run_rates_agree() {
    // Statistical check: over many iterations the pattern sampler and a
    // Bernoulli mask drop units at the same long-run rate.
    use approx_random_dropout::approx_dropout::equivalence::measure_equivalence;
    let dist =
        search::sgd_search(DropoutRate::new(0.6).unwrap(), 16, &SearchConfig::default()).unwrap();
    let sampler = PatternSampler::new(dist, PatternKind::Row);
    let mut rng = StdRng::seed_from_u64(77);
    let report = measure_equivalence(&sampler, &mut rng, 128, 6_000);
    assert!((report.empirical_mean - 0.6).abs() < 0.03, "{report:?}");
}

#[test]
fn compacted_training_matrix_zero_fraction_matches_pattern() {
    // The realised sparsity of a masked weight matrix equals the pattern's
    // global dropout rate (up to edge effects).
    let grid = TileGrid::new(128, 128, 32).unwrap();
    let pattern = TilePattern::new(4, 1, 32).unwrap();
    let mask = pattern.weight_mask(&grid);
    let zero_fraction = mask.zero_fraction() as f64;
    assert!(
        (zero_fraction - 0.75).abs() < 1e-6,
        "zero fraction {zero_fraction}"
    );
    let _ = Matrix::zeros(1, 1);
}
