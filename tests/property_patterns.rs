//! Property-based tests of the core invariants, spanning the `approx-dropout`
//! and `tensor` crates.

use approx_random_dropout::approx_dropout::{
    search, DropoutRate, PatternDistribution, PatternKind, PatternSampler, RowPattern,
    SearchConfig, TileGrid, TilePattern,
};
use approx_random_dropout::tensor::{gemm, init, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A row pattern keeps exactly ⌈(n − bias)/dp⌉ of n neurons, and the
    /// kept set is precisely the residue class of the bias.
    #[test]
    fn row_pattern_keeps_one_residue_class(dp in 1usize..32, bias_seed in 0usize..32, n in 1usize..512) {
        let bias = bias_seed % dp;
        let pattern = RowPattern::new(dp, bias).unwrap();
        let kept = pattern.kept_rows(n);
        let expected: Vec<usize> = (0..n).filter(|i| i % dp == bias).collect();
        prop_assert_eq!(&kept, &expected);
        let dropped = pattern.dropped_rows(n);
        prop_assert_eq!(kept.len() + dropped.len(), n);
    }

    /// The realised dropout fraction of a sampled pattern never exceeds the
    /// nominal (dp−1)/dp rate by more than one unit's worth.
    #[test]
    fn sampled_pattern_fraction_close_to_nominal(dp in 1usize..16, n in 16usize..256) {
        let pattern = RowPattern::new(dp, 0).unwrap();
        let sampled = approx_random_dropout::approx_dropout::SampledPattern::from_row(pattern, n);
        let nominal = (dp - 1) as f64 / dp as f64;
        prop_assert!((sampled.realized_dropout_fraction() - nominal).abs() <= 1.0 / n as f64 * dp as f64);
    }

    /// A tile pattern's kept tiles and dropped tiles partition the grid.
    #[test]
    fn tile_pattern_partitions_grid(dp in 1usize..16, rows in 1usize..200, cols in 1usize..200, tile in 1usize..64) {
        let grid = TileGrid::new(rows, cols, tile).unwrap();
        let pattern = TilePattern::new(dp, dp - 1, tile).unwrap();
        let kept = pattern.kept_tiles(&grid);
        let dropped = pattern.dropped_tiles(&grid);
        prop_assert_eq!(kept.len() + dropped.len(), grid.total_tiles());
        for &t in &kept {
            prop_assert!(t < grid.total_tiles());
        }
    }

    /// Row-compacted GEMM equals the dense GEMM with dropped columns zeroed,
    /// for arbitrary shapes and kept sets.
    #[test]
    fn row_compact_gemm_matches_masked_dense(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        dp in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let w = init::uniform(&mut rng, k, n, -1.0, 1.0);
        let pattern = RowPattern::new(dp, 0).unwrap();
        let kept = pattern.kept_rows(n);
        let compact = gemm::row_compact_gemm(&a, &w, &kept).unwrap();
        let mut masked = w.clone();
        for j in 0..n {
            if !kept.contains(&j) {
                for p in 0..k {
                    masked[(p, j)] = 0.0;
                }
            }
        }
        let reference = gemm::naive_gemm(&a, &masked).unwrap();
        prop_assert!(approx_random_dropout::tensor::approx_eq_slice(
            compact.as_slice(), reference.as_slice(), 1e-3));
    }

    /// Tile-compacted GEMM equals the explicitly masked dense reference.
    #[test]
    fn tile_compact_gemm_matches_masked_dense(
        m in 1usize..10,
        k in 2usize..14,
        n in 2usize..14,
        tile in 1usize..6,
        dp in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let w = init::uniform(&mut rng, k, n, -1.0, 1.0);
        let grid = TileGrid::new(k, n, tile).unwrap();
        let pattern = TilePattern::new(dp, 0, tile).unwrap();
        let kept = pattern.kept_tiles(&grid);
        let compact = gemm::tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = gemm::tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        prop_assert!(approx_random_dropout::tensor::approx_eq_slice(
            compact.as_slice(), reference.as_slice(), 1e-3));
    }

    /// Any normalised distribution has an expected global rate within [0, 1)
    /// and an entropy no larger than ln(N).
    #[test]
    fn distribution_invariants(weights in proptest::collection::vec(0.0f64..10.0, 1..24)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let n = weights.len();
        let dist = PatternDistribution::new(weights).unwrap();
        let rate = dist.expected_global_rate();
        prop_assert!((0.0..1.0).contains(&rate));
        prop_assert!(dist.entropy() <= (n as f64).ln() + 1e-9);
        let total: f64 = dist.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Algorithm 1 hits arbitrary target rates within tolerance.
    #[test]
    fn search_matches_arbitrary_targets(target in 0.05f64..0.85, max_dp in 8usize..24) {
        let dist = search::sgd_search(
            DropoutRate::new(target).unwrap(),
            max_dp,
            &SearchConfig::default(),
        ).unwrap();
        prop_assert!((dist.expected_global_rate() - target).abs() < 0.03);
    }

    /// The sampler only ever emits periods the distribution supports and
    /// biases below the period.
    #[test]
    fn sampler_emits_valid_patterns(seed in 0u64..500, n_units in 1usize..200) {
        let dist = PatternDistribution::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sampler = PatternSampler::new(dist, PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(seed);
        let pattern = sampler.sample(&mut rng, n_units);
        prop_assert!(pattern.dp() >= 1 && pattern.dp() <= 4.min(n_units.max(1)));
        prop_assert!(pattern.bias() < pattern.dp());
        for &k in pattern.kept_indices() {
            prop_assert!(k < n_units);
        }
    }

    /// Matrix transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_involution(rows in 1usize..20, cols in 1usize..20, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = init::uniform(&mut rng, rows, cols, -5.0, 5.0);
        let tt = m.transpose().transpose();
        prop_assert_eq!(&tt, &m);
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-3);
    }

    /// Blocked GEMM agrees with the naive reference on arbitrary shapes.
    #[test]
    fn blocked_gemm_matches_naive(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let b = init::uniform(&mut rng, k, n, -1.0, 1.0);
        let naive = gemm::naive_gemm(&a, &b).unwrap();
        let blocked = gemm::blocked_gemm(&a, &b).unwrap();
        prop_assert!(approx_random_dropout::tensor::approx_eq_slice(
            naive.as_slice(), blocked.as_slice(), 1e-3));
    }

    /// Scatter of selected rows restores the original rows in place.
    #[test]
    fn select_then_scatter_restores_rows(rows in 1usize..16, cols in 1usize..16, stride in 1usize..4, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = init::uniform(&mut rng, rows, cols, -1.0, 1.0);
        let indices: Vec<usize> = (0..rows).step_by(stride).collect();
        let compact = m.select_rows(&indices);
        let scattered = m.scatter_rows_of(&compact, &indices);
        for (pos, &r) in indices.iter().enumerate() {
            prop_assert_eq!(scattered.row(r), compact.row(pos));
        }
        let zero_rows: usize = (0..rows).filter(|r| !indices.contains(r)).count();
        let _ = zero_rows;
    }
}

#[test]
fn bernoulli_and_pattern_long_run_rates_agree() {
    // Non-proptest statistical check: over many iterations the pattern
    // sampler and a Bernoulli mask drop units at the same long-run rate.
    use approx_random_dropout::approx_dropout::equivalence::measure_equivalence;
    let dist = search::sgd_search(
        DropoutRate::new(0.6).unwrap(),
        16,
        &SearchConfig::default(),
    )
    .unwrap();
    let sampler = PatternSampler::new(dist, PatternKind::Row);
    let mut rng = StdRng::seed_from_u64(77);
    let report = measure_equivalence(&sampler, &mut rng, 128, 6_000);
    assert!((report.empirical_mean - 0.6).abs() < 0.03, "{report:?}");
}

#[test]
fn compacted_training_matrix_zero_fraction_matches_pattern() {
    // The realised sparsity of a masked weight matrix equals the pattern's
    // global dropout rate (up to edge effects).
    let grid = TileGrid::new(128, 128, 32).unwrap();
    let pattern = TilePattern::new(4, 1, 32).unwrap();
    let mask = pattern.weight_mask(&grid);
    let zero_fraction = mask.zero_fraction() as f64;
    assert!((zero_fraction - 0.75).abs() < 1e-6, "zero fraction {zero_fraction}");
    let _ = Matrix::zeros(1, 1);
}
