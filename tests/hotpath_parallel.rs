//! Integration tests for the allocation-free, multi-threaded training hot
//! path: parallel-vs-serial kernel equivalence, `plan_into` draw-for-draw
//! fidelity and buffer recycling, and proof that the per-layer scratch
//! workspaces are numerically inert.

use approx_dropout::{
    scheme, DropoutPlan, DropoutRate, DropoutScheme, LayerShape, PlanCache, PlanKey, RowPattern,
    TilePattern,
};
use nn::{Linear, Mlp, MlpConfig, TransformerLm, TransformerLmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{
    block_compact_gemm, block_compact_gemm_a_bt_into, block_compact_gemm_at_b_into, blocked_gemm,
    gather_k_backward_into, gather_k_gemm_bias_act_into, gather_k_gemm_into, gemm_a_bt, gemm_at_b,
    init, pool, row_compact_gemm, tile_compact_gemm, GatherKScratch, Matrix,
};

/// All global-pool mutation lives in this single test: the pool is
/// process-wide state and the tests of one binary run concurrently.
#[test]
fn parallel_execution_is_bitwise_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(1);
    // Odd, non-panel-aligned shapes on purpose: they exercise every scalar
    // tail of the unrolled kernels and the ragged last row chunk.
    let a = init::uniform(&mut rng, 67, 53, -1.0, 1.0);
    let b = init::uniform(&mut rng, 53, 41, -1.0, 1.0);
    let g = init::uniform(&mut rng, 67, 41, -1.0, 1.0); // shares a's batch dim
    let w2 = init::uniform(&mut rng, 41, 53, -1.0, 1.0);
    let g2 = init::uniform(&mut rng, 53, 53, -1.0, 1.0); // shares b's batch dim and w2's width
    let kept_cols: Vec<usize> = (1..53).step_by(3).collect();
    let kept_tiles = vec![0, 2, 5, 7, 11]; // 12-tile grid for 41x53 @ tile 16

    let kept_blocks = vec![0, 2, 3]; // 4-block grid for 53 cols @ block 16
    let kept_k: Vec<usize> = (0..53).step_by(2).collect(); // K-gather over a·b's inner dim
    let bias = init::uniform(&mut rng, 1, 41, -0.5, 0.5);
    let run_kernels = || {
        let mut block_dw = Matrix::zeros(0, 0);
        block_compact_gemm_at_b_into(&b, &g2, &kept_blocks, 16, 2.0, &mut block_dw).unwrap();
        let mut block_dx = Matrix::zeros(0, 0);
        block_compact_gemm_a_bt_into(&g2, &w2, &kept_blocks, 16, 2.0, &mut block_dx).unwrap();
        let mut crs_scratch = GatherKScratch::default();
        let mut crs_fwd = Matrix::zeros(0, 0);
        gather_k_gemm_bias_act_into(
            &a,
            &b,
            &kept_k,
            &bias,
            53.0 / kept_k.len() as f32,
            tensor::Activation::Relu,
            &mut crs_scratch,
            &mut crs_fwd,
        )
        .unwrap();
        let mut crs_dw = Matrix::zeros(0, 0);
        let mut crs_dx = Matrix::zeros(0, 0);
        gather_k_backward_into(
            &a,
            &g,
            &b,
            &kept_k,
            53.0 / kept_k.len() as f32,
            &mut crs_scratch,
            &mut crs_dw,
            &mut crs_dx,
        )
        .unwrap();
        (
            blocked_gemm(&a, &b).unwrap(),
            gemm_at_b(&a, &g).unwrap(),
            gemm_a_bt(&a, &w2).unwrap(),
            row_compact_gemm(&b, &w2, &kept_cols).unwrap(),
            tile_compact_gemm(&b, &w2, &kept_tiles, 16).unwrap(),
            block_compact_gemm(&b, &w2, &kept_blocks, 16).unwrap(),
            block_dw,
            block_dx,
            crs_fwd,
            crs_dw,
            crs_dx,
        )
    };
    pool::set_threads(1);
    assert_eq!(pool::threads(), 1);
    let serial = run_kernels();
    pool::set_threads(4);
    assert_eq!(pool::threads(), 4);
    let parallel = run_kernels();
    assert_eq!(serial.0, parallel.0, "dense GEMM must be thread-invariant");
    assert_eq!(serial.1, parallel.1, "AᵀB must be thread-invariant");
    assert_eq!(serial.2, parallel.2, "ABᵀ must be thread-invariant");
    assert_eq!(serial.3, parallel.3, "row-compact must be thread-invariant");
    assert_eq!(
        serial.4, parallel.4,
        "tile-compact must be thread-invariant"
    );
    assert_eq!(
        serial.5, parallel.5,
        "block-compact must be thread-invariant"
    );
    assert_eq!(
        serial.6, parallel.6,
        "block-compact AᵀB must be thread-invariant"
    );
    assert_eq!(
        serial.7, parallel.7,
        "block-compact ABᵀ must be thread-invariant"
    );
    assert_eq!(
        serial.8, parallel.8,
        "fused K-gather GEMM must be thread-invariant"
    );
    assert_eq!(serial.9, parallel.9, "K-gather dW must be thread-invariant");
    assert_eq!(
        serial.10, parallel.10,
        "K-gather dX must be thread-invariant"
    );

    // Whole-model check: a same-seed training trajectory (batch wide enough
    // to engage the pool) is identical at 1 and 4 threads.
    let losses_serial = {
        pool::set_threads(1);
        train_losses()
    };
    let losses_parallel = {
        pool::set_threads(4);
        train_losses()
    };
    assert_eq!(
        losses_serial, losses_parallel,
        "training must be bitwise thread-invariant"
    );

    // Transformer attention forward + backward: every structured-attention
    // execution path (whole-head block drop, 2:4 projections, FFN row
    // dropout) must produce bitwise-identical training trajectories and
    // eval losses at 1 and 4 threads.
    for (label, attn, ffn) in transformer_variants() {
        pool::set_threads(1);
        let serial = transformer_trajectory(&*attn, &*ffn);
        pool::set_threads(4);
        let parallel = transformer_trajectory(&*attn, &*ffn);
        assert_eq!(
            serial, parallel,
            "transformer {label} training must be bitwise thread-invariant"
        );
    }
    pool::set_threads(1);
}

/// The structured-attention variants whose kernels the transformer
/// thread-invariance matrix covers: whole-head drop, N:M projections, FFN
/// row dropout.
#[allow(clippy::type_complexity)]
fn transformer_variants() -> Vec<(&'static str, Box<dyn DropoutScheme>, Box<dyn DropoutScheme>)> {
    let rate = DropoutRate::new(0.5).unwrap();
    vec![
        (
            "head_drop",
            scheme::block_unit(rate, 4).unwrap(),
            scheme::none(),
        ),
        ("nm_proj", scheme::nm(2, 4).unwrap(), scheme::none()),
        ("ffn_row", scheme::none(), scheme::row(rate, 8).unwrap()),
    ]
}

/// Same-seed training losses plus a deterministic eval loss — the bits the
/// thread-invariance assertions compare.
fn transformer_trajectory(attn: &dyn DropoutScheme, ffn: &dyn DropoutScheme) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(77);
    let config = TransformerLmConfig {
        vocab: 40,
        model_dim: 16,
        heads: 4,
        ff_dim: 32,
        layers: 2,
        attn_dropout: attn.clone_box(),
        ffn_dropout: ffn.clone_box(),
        learning_rate: 0.05,
        momentum: 0.0,
        grad_clip: 5.0,
    };
    let mut lm = TransformerLm::new(&config, &mut rng);
    // Batch of 8 sequences × 8 steps = 64 rows: wide enough to engage the
    // pool on the attention and FFN GEMMs.
    let batch: Vec<Vec<usize>> = (0..8)
        .map(|s| (0..9).map(|t| (s * 3 + t * 7) % 40).collect())
        .collect();
    let mut bits: Vec<u32> = (0..6)
        .map(|_| lm.train_batch(&batch, &mut rng).loss.to_bits())
        .collect();
    bits.push(lm.evaluate(&batch).loss.to_bits());
    bits
}

fn train_losses() -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(42);
    let config = MlpConfig {
        input_dim: 24,
        hidden: vec![48, 48],
        output_dim: 4,
        dropout: scheme::row(DropoutRate::new(0.5).unwrap(), 4).unwrap(),
        learning_rate: 0.02,
        momentum: 0.9,
    };
    let mut mlp = Mlp::new(&config, &mut rng);
    let inputs = init::uniform(&mut rng, 64, 24, -1.0, 1.0);
    let labels: Vec<usize> = (0..64).map(|i| i % 4).collect();
    (0..10)
        .map(|_| mlp.train_batch(&inputs, &labels, &mut rng).loss)
        .collect()
}

fn all_schemes() -> Vec<Box<dyn DropoutScheme>> {
    vec![
        scheme::none(),
        scheme::bernoulli(DropoutRate::new(0.5).unwrap()),
        scheme::divergent_bernoulli(DropoutRate::new(0.3).unwrap()),
        Box::new(RowPattern::new(3, 1).unwrap()),
        Box::new(TilePattern::new(2, 0, 8).unwrap()),
        scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap(),
        scheme::tile(DropoutRate::new(0.5).unwrap(), 8, 16).unwrap(),
        scheme::nm(2, 4).unwrap(),
        scheme::block_unit(DropoutRate::new(0.5).unwrap(), 8).unwrap(),
        scheme::crs(0.5).unwrap(),
        scheme::row_crs(DropoutRate::new(0.5).unwrap(), 8, 0.5).unwrap(),
    ]
}

#[test]
fn plan_into_equals_fresh_plan_for_every_scheme() {
    let shape = LayerShape::new(64, 96);
    for reference in all_schemes() {
        let mut planner = reference.clone();
        let mut recycler = reference.clone();
        let mut rng_plan = StdRng::seed_from_u64(99);
        let mut rng_into = StdRng::seed_from_u64(99);
        // Start from a deliberately dirty buffer of a *different* shape and
        // family so stale state would be detected.
        let mut buf = DropoutPlan::none(LayerShape::new(3, 7));
        let mut tile_scheme = TilePattern::new(3, 2, 4).unwrap();
        tile_scheme.plan_into(
            &mut StdRng::seed_from_u64(0),
            LayerShape::new(8, 8),
            &mut buf,
        );
        for iteration in 0..6 {
            let fresh = planner.plan(&mut rng_plan, shape);
            recycler.plan_into(&mut rng_into, shape, &mut buf);
            assert_eq!(
                fresh,
                buf,
                "scheme {} diverged at iteration {iteration}",
                reference.label()
            );
        }
    }
}

#[test]
fn plan_into_recycles_kept_index_and_mask_buffers() {
    // Fixed row pattern: the kept count is constant, so after the first
    // resolve the buffer capacity is settled and the pointer must not move.
    let mut row = RowPattern::new(3, 0).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let shape = LayerShape::vector(120);
    let mut buf = DropoutPlan::default();
    row.plan_into(&mut rng, shape, &mut buf);
    let kept_ptr = buf.compact_rows().unwrap().as_ptr();
    for _ in 0..5 {
        row.plan_into(&mut rng, shape, &mut buf);
        assert_eq!(
            kept_ptr,
            buf.compact_rows().unwrap().as_ptr(),
            "kept-index buffer must be reused, not reallocated"
        );
    }

    // Bernoulli: the mask length equals out_features every iteration.
    let mut bern = scheme::bernoulli(DropoutRate::new(0.4).unwrap());
    let mut buf = DropoutPlan::default();
    bern.plan_into(&mut rng, shape, &mut buf);
    let mask_ptr = buf.bernoulli_mask().unwrap().as_ptr();
    for _ in 0..5 {
        bern.plan_into(&mut rng, shape, &mut buf);
        assert_eq!(
            mask_ptr,
            buf.bernoulli_mask().unwrap().as_ptr(),
            "mask buffer must be reused, not reallocated"
        );
    }

    // Matrix cache reuse (the Linear workspace primitive): same-shape
    // clone_from must keep the allocation.
    let src = Matrix::ones(13, 17);
    let mut dst = Matrix::zeros(13, 17);
    let ptr = dst.as_slice().as_ptr();
    dst.clone_from(&src);
    assert_eq!(ptr, dst.as_slice().as_ptr());
    assert_eq!(dst, src);
}

/// The serving-layer plan cache rides the same recycling contract: once a
/// destination buffer is warmed to a key's plan family, repeated cache
/// hits `clone_from` into it without moving the allocation. This is the
/// "cache hits allocate nothing" half of the serve acceptance criteria;
/// bitwise fidelity is covered in `tests/serve_plan_cache.rs`.
#[test]
fn plan_cache_hits_recycle_destination_buffers() {
    let cache = PlanCache::new(2);
    let shape = LayerShape::vector(120);

    // Fixed-dp row plan: the kept count is constant, so the kept-index
    // pointer must be stable from the first hit on.
    let mut row = RowPattern::new(3, 0).unwrap();
    let key = PlanKey::new(1, shape, 0);
    let mut dest = DropoutPlan::default();
    let sample = |scheme: &mut dyn DropoutScheme, key: PlanKey, out: &mut DropoutPlan| {
        let mut rng = StdRng::seed_from_u64(key.seed());
        scheme.plan_into(&mut rng, key.shape, out);
    };
    assert!(!cache.fetch(key, &mut dest, |out| sample(&mut row, key, out)));
    assert!(cache.fetch(key, &mut dest, |out| sample(&mut row, key, out)));
    let kept_ptr = dest.compact_rows().unwrap().as_ptr();
    for _ in 0..5 {
        assert!(cache.fetch(key, &mut dest, |out| sample(&mut row, key, out)));
        assert_eq!(
            kept_ptr,
            dest.compact_rows().unwrap().as_ptr(),
            "cache hit must reuse the kept-index buffer, not reallocate"
        );
    }

    // Bernoulli mask: length equals out_features for every epoch of the
    // same shape, so hits across epochs keep the mask allocation too.
    let mut bern = scheme::bernoulli(DropoutRate::new(0.4).unwrap());
    let mut dest = DropoutPlan::default();
    for epoch in 0..4 {
        let key = PlanKey::new(2, shape, epoch);
        assert!(!cache.fetch(key, &mut dest, |out| sample(bern.as_mut(), key, out)));
    }
    let mask_ptr = dest.bernoulli_mask().unwrap().as_ptr();
    for epoch in 0..4 {
        let key = PlanKey::new(2, shape, epoch);
        assert!(cache.fetch(key, &mut dest, |out| sample(bern.as_mut(), key, out)));
        assert_eq!(
            mask_ptr,
            dest.bernoulli_mask().unwrap().as_ptr(),
            "cross-epoch cache hits must reuse the mask buffer"
        );
    }
}

/// The scratch-workspace refactor must be numerically inert: a layer whose
/// workspace is reused across iterations (with the plan *family* changing
/// between iterations, so stale row/tile/mask state would surface) produces
/// exactly the outputs and gradients of a pristine layer run once.
#[test]
fn linear_workspace_reuse_is_numerically_inert() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut reused = Linear::new(&mut rng, 12, 16);
    let pristine = reused.clone();
    let shape = LayerShape::new(12, 16);
    let mut schemes = all_schemes();
    let mut plan_rng = StdRng::seed_from_u64(3);
    let mut data_rng = StdRng::seed_from_u64(4);
    // Vary the batch size too: workspace buffers must resize correctly.
    let batches = [8usize, 3, 16, 8, 33, 5, 8, 12, 6, 9, 14];
    let scheme_count = schemes.len();
    for (iteration, &batch) in batches.iter().enumerate() {
        let scheme = &mut schemes[iteration % scheme_count];
        let plan = scheme.plan(&mut plan_rng, shape);
        let x = init::uniform(&mut data_rng, batch, 12, -1.0, 1.0);
        let dy = init::uniform(&mut data_rng, batch, 16, -1.0, 1.0);

        let mut fresh = pristine.clone();
        let y_fresh = fresh.forward(&x, &plan);
        let dx_fresh = fresh.backward(&dy);

        let y_reused = reused.forward(&x, &plan);
        let dx_reused = reused.backward(&dy);

        assert_eq!(y_fresh, y_reused, "forward diverged at {iteration}");
        assert_eq!(dx_fresh, dx_reused, "input grad diverged at {iteration}");
        assert_eq!(
            fresh.weight_grad(),
            reused.weight_grad(),
            "weight grad diverged at {iteration}"
        );
    }
}

/// The backward counterpart of the buffer-reuse checks above:
/// `Linear::backward_into` must (a) produce exactly the matrix
/// `Linear::backward` allocates, for every plan family, and (b) recycle the
/// caller's `dx` buffer — once the shape is warmed the pointer never moves,
/// no matter which execution path the iteration's plan selects.
#[test]
fn backward_into_matches_backward_and_recycles_dx_buffer() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut reused = Linear::new(&mut rng, 12, 16);
    let pristine = reused.clone();
    let shape = LayerShape::new(12, 16);
    let mut schemes = all_schemes();
    let mut plan_rng = StdRng::seed_from_u64(22);
    let mut data_rng = StdRng::seed_from_u64(23);
    let scheme_count = schemes.len();

    let mut dx = Matrix::default();
    let mut dx_ptr = None;
    for iteration in 0..(2 * scheme_count) {
        let scheme = &mut schemes[iteration % scheme_count];
        let plan = scheme.plan(&mut plan_rng, shape);
        let x = init::uniform(&mut data_rng, 8, 12, -1.0, 1.0);
        let dy = init::uniform(&mut data_rng, 8, 16, -1.0, 1.0);

        let mut fresh = pristine.clone();
        let _ = fresh.forward(&x, &plan);
        let dx_fresh = fresh.backward(&dy);

        let _ = reused.forward(&x, &plan);
        reused.backward_into(&dy, &mut dx);

        assert_eq!(dx_fresh, dx, "dx diverged at iteration {iteration}");
        assert_eq!(
            fresh.weight_grad(),
            reused.weight_grad(),
            "weight grad diverged at iteration {iteration}"
        );
        match dx_ptr {
            None => dx_ptr = Some(dx.as_slice().as_ptr()),
            Some(ptr) => assert_eq!(
                ptr,
                dx.as_slice().as_ptr(),
                "dx buffer must be reused, not reallocated (iteration {iteration}, scheme {})",
                schemes[iteration % scheme_count].label()
            ),
        }
    }
}

/// The K-gather scratch type rides the same recycling contract as the other
/// workspaces: once warmed for a shape, repeated calls with a *different*
/// kept set of the same size move no output allocation.
#[test]
fn gather_k_output_buffers_are_recycled_across_kept_sets() {
    let mut rng = StdRng::seed_from_u64(31);
    let a = init::uniform(&mut rng, 9, 24, -1.0, 1.0);
    let w = init::uniform(&mut rng, 24, 13, -1.0, 1.0);
    let g = init::uniform(&mut rng, 9, 13, -1.0, 1.0);
    let kept_a: Vec<usize> = (0..24).step_by(2).collect();
    let kept_b: Vec<usize> = (1..24).step_by(2).collect();

    let mut scratch = GatherKScratch::default();
    let mut out = Matrix::default();
    gather_k_gemm_into(&a, &w, &kept_a, &mut scratch, &mut out).unwrap();
    let mut dw = Matrix::default();
    let mut dx = Matrix::default();
    gather_k_backward_into(&a, &g, &w, &kept_a, 2.0, &mut scratch, &mut dw, &mut dx).unwrap();
    let (out_ptr, dw_ptr, dx_ptr) = (
        out.as_slice().as_ptr(),
        dw.as_slice().as_ptr(),
        dx.as_slice().as_ptr(),
    );

    gather_k_gemm_into(&a, &w, &kept_b, &mut scratch, &mut out).unwrap();
    gather_k_backward_into(&a, &g, &w, &kept_b, 2.0, &mut scratch, &mut dw, &mut dx).unwrap();
    assert_eq!(
        out_ptr,
        out.as_slice().as_ptr(),
        "forward out must be reused"
    );
    assert_eq!(dw_ptr, dw.as_slice().as_ptr(), "dW buffer must be reused");
    assert_eq!(dx_ptr, dx.as_slice().as_ptr(), "dX buffer must be reused");
}

/// Same-seed loss trajectories are exactly reproducible through the
/// `plan_into` + workspace path end to end (MLP train loop).
#[test]
fn same_seed_mlp_trajectories_are_identical() {
    let run = || train_losses();
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first.iter().all(|l| l.is_finite()));
}
