//! Property-style tests over the fully-connected pricing dispatch
//! (`gpu_sim::price_fc_schedule`): cost must be monotonic in every GEMM
//! dimension for **every** `KernelSchedule` arm on **every** device preset,
//! the hardware 2:4 path on the sparse-tensor-core preset must strictly
//! beat both its own SIMT-gather pricing and the Bernoulli-masked dense
//! baseline, and the fused-layer identity `fused ≤ sum(parts)` must hold on
//! the new preset like on the old ones.

use approx_dropout::{Activation, DropoutPlan, KernelSchedule, LayerShape};
use gpu_sim::{price_fc_schedule, GpuConfig, NetworkTimingModel, TransformerSpec};

/// Every stand-alone schedule arm, with parameters chosen so each one is a
/// genuine instance of its family (kept fractions strictly inside (0, 1)).
fn all_schedules() -> Vec<KernelSchedule> {
    vec![
        KernelSchedule::Dense,
        KernelSchedule::DenseWithMask,
        KernelSchedule::DenseDivergent { rate: 0.5 },
        KernelSchedule::RowCompact {
            kept: 512,
            total: 1024,
        },
        KernelSchedule::TileCompact {
            kept: 2048,
            total: 4096,
        },
        KernelSchedule::NmCompact { n: 2, m: 4 },
        KernelSchedule::NmCompact { n: 1, m: 4 },
        KernelSchedule::BlockCompact {
            kept: 32,
            total: 64,
            block: 32,
        },
    ]
}

fn all_presets() -> Vec<GpuConfig> {
    vec![
        GpuConfig::gtx_1080ti(),
        GpuConfig::server_hbm(),
        GpuConfig::sparse_tensor_core(),
        GpuConfig::small_embedded(),
    ]
}

/// Whole-layer cost of one schedule: forward + backward + dropout kernels.
fn layer_cost(
    gpu: &GpuConfig,
    schedule: &KernelSchedule,
    batch: usize,
    k_eff: usize,
    out_features: usize,
) -> f64 {
    let (fwd, bwd, drop) = price_fc_schedule(gpu, schedule, batch, k_eff, out_features);
    fwd.time_us() + bwd.time_us() + drop
}

#[test]
fn cost_is_monotonic_in_every_gemm_dimension_for_every_arm_and_preset() {
    // Growing any one dimension (batch, effective input width, output
    // width) while the others stay fixed must never price *cheaper*: the
    // kernel does strictly more arithmetic and moves strictly more bytes.
    // This covers the capability-aware dispatch too — on the
    // sparse-tensor-core preset the 2:4 arm walks the tensor-core roofline
    // while 1:4 walks the gather model, and both must stay monotone.
    type ShapeOf = fn(usize) -> (usize, usize, usize);
    let sweeps: [(&str, ShapeOf); 3] = [
        ("batch", |v| (v, 512, 512)),
        ("k_eff", |v| (64, v, 512)),
        ("out_features", |v| (64, 512, v)),
    ];
    let fused_of = |s: &KernelSchedule| s.fused(Activation::Relu);
    for gpu in all_presets() {
        for schedule in all_schedules() {
            for variant in [schedule, fused_of(&schedule)] {
                for (dim, shape_of) in sweeps {
                    let series: Vec<f64> = [128usize, 256, 512, 1024, 2048]
                        .iter()
                        .map(|&v| {
                            let (b, k, n) = shape_of(v);
                            layer_cost(&gpu, &variant, b, k, n)
                        })
                        .collect();
                    for w in series.windows(2) {
                        assert!(
                            w[1] >= w[0] - 1e-9,
                            "{}: {variant:?} cost fell as {dim} grew: {series:?}",
                            gpu.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn hardware_2_4_is_strictly_cheaper_than_gather_and_masked_dense() {
    // The tentpole ordering on the sparse-tensor-core preset: a 2:4
    // NmCompact layer must price strictly below (a) the same schedule on
    // identical silicon with the tensor cores stripped — the plan's
    // SIMT-gather pricing — and (b) the conventional Bernoulli-masked dense
    // layer on the same device.
    let sparse = GpuConfig::sparse_tensor_core();
    let stripped = sparse.without_tensor_cores();
    let nm24 = KernelSchedule::NmCompact { n: 2, m: 4 };
    for (batch, k, n) in [(128, 2048, 2048), (64, 784, 2048), (256, 1500, 6000)] {
        let tc = layer_cost(&sparse, &nm24, batch, k, n);
        let gather = layer_cost(&stripped, &nm24, batch, k, n);
        let masked = layer_cost(&sparse, &KernelSchedule::DenseWithMask, batch, k, n);
        assert!(
            tc < gather,
            "({batch},{k},{n}): tensor-core 2:4 {tc} >= gather pricing {gather}"
        );
        assert!(
            tc < masked,
            "({batch},{k},{n}): tensor-core 2:4 {tc} >= masked dense {masked}"
        );
    }
    // On the SIMT-only presets the same schedule prices identically whether
    // or not the device is the stripped twin — the capability block is the
    // only thing that moves N:M between cost models.
    for gpu in [GpuConfig::gtx_1080ti(), GpuConfig::server_hbm()] {
        let a = layer_cost(&gpu, &nm24, 128, 1024, 1024);
        let b = layer_cost(&gpu.without_tensor_cores(), &nm24, 128, 1024, 1024);
        assert_eq!(a, b, "{}", gpu.name);
    }
}

#[test]
fn non_2_4_shapes_gain_nothing_from_the_sparse_capability() {
    // Only the hardware shape is accelerated: 1:4 must price as the gather
    // model even on the sparse-tensor-core preset (the dense GEMM rate
    // still differs from the stripped twin, so compare against the gather
    // kernel through the same device, not the stripped one).
    let sparse = GpuConfig::sparse_tensor_core();
    let (fwd_a, bwd_a, _) = price_fc_schedule(
        &sparse,
        &KernelSchedule::NmCompact { n: 1, m: 4 },
        128,
        1024,
        1024,
    );
    let gather_fwd = gpu_sim::kernels::nm_gather_gemm(&sparse, 128, 1024, 1024, 1, 4);
    // The forward stats embed the gather kernel plus the bias/activation
    // elementwise kernel; subtracting the elementwise pass must recover the
    // gather kernel's time exactly.
    let elementwise = gpu_sim::kernels::elementwise(&sparse, 128, 256, 1, 1, 2.0);
    assert!(
        (fwd_a.time_us() - gather_fwd.time_us() - elementwise.time_us()).abs() < 1e-9,
        "1:4 forward must be gather + elementwise: {} vs {} + {}",
        fwd_a.time_us(),
        gather_fwd.time_us(),
        elementwise.time_us()
    );
    assert!(bwd_a.time_us() > 0.0);
}

#[test]
fn fused_never_prices_above_sum_of_parts_on_the_sparse_preset() {
    // PR 4's fusion identity must survive the capability-aware dispatch:
    // on the sparse-tensor-core preset the fused 2:4 body rides the
    // tensor-core roofline, and folding the epilogue in still only saves
    // cost (launch overhead + the elementwise pass's extra traffic).
    let sparse = GpuConfig::sparse_tensor_core();
    for schedule in all_schedules() {
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh] {
            let (u_fwd, u_bwd, u_drop) = price_fc_schedule(&sparse, &schedule, 128, 2048, 2048);
            let (f_fwd, f_bwd, f_drop) =
                price_fc_schedule(&sparse, &schedule.fused(act), 128, 2048, 2048);
            assert!(
                f_fwd.time_us() <= u_fwd.time_us(),
                "fused fwd {} > unfused {} for {schedule:?}/{act:?}",
                f_fwd.time_us(),
                u_fwd.time_us()
            );
            let unfused_total = u_fwd.time_us() + u_bwd.time_us() + u_drop;
            let fused_total = f_fwd.time_us() + f_bwd.time_us() + f_drop;
            assert!(
                fused_total <= unfused_total,
                "fused total {fused_total} > unfused {unfused_total} for {schedule:?}"
            );
            assert_eq!(f_fwd.launches, 1, "{schedule:?}");
            assert_eq!(u_fwd.launches, 2, "{schedule:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Transformer encoder pricing properties
// ---------------------------------------------------------------------------

fn transformer_presets() -> Vec<GpuConfig> {
    vec![
        GpuConfig::gtx_1080ti(),
        GpuConfig::server_hbm(),
        GpuConfig::sparse_tensor_core(),
    ]
}

/// Per-position plans for one transformer iteration: a whole-head-drop
/// block-unit plan keeping `kept_heads` heads at every attention position,
/// dense everywhere else. `kept_heads == heads` degenerates to all-dense.
fn head_drop_plans(spec: &TransformerSpec, kept_heads: usize) -> Vec<DropoutPlan> {
    let d = spec.model_dim;
    let hd = spec.head_dim();
    let attn_shape = LayerShape::new(d, d);
    let ffn_shape = LayerShape::new(d, spec.ff_dim);
    let mut plans = Vec::with_capacity(spec.dropout_layers());
    for _ in 0..spec.layers {
        if kept_heads == spec.heads {
            plans.push(DropoutPlan::none(attn_shape));
        } else {
            let kept: Vec<usize> = (0..kept_heads).collect();
            let scale = spec.heads as f32 / kept_heads as f32;
            let rate = 1.0 - kept_heads as f64 / spec.heads as f64;
            plans.push(DropoutPlan::block_unit(attn_shape, hd, kept, scale, rate));
        }
        plans.push(DropoutPlan::none(ffn_shape));
    }
    plans
}

fn transformer_iteration_us(gpu: &GpuConfig, spec: &TransformerSpec, kept_heads: usize) -> f64 {
    let model = NetworkTimingModel::transformer(gpu.clone(), spec.clone());
    model
        .iteration_time_from_plans(&head_drop_plans(spec, kept_heads))
        .total_us()
}

#[test]
fn transformer_cost_is_monotonic_in_kept_heads() {
    // Keeping one more head never prices cheaper: the three Q/K/V
    // projections widen, both batched attention GEMMs and the softmax grow
    // a head, and O's input gather widens. Strict at the dense end too —
    // dropping any head must actually buy time on every preset.
    let spec = TransformerSpec::paper_ptb_transformer();
    for gpu in transformer_presets() {
        let series: Vec<f64> = (1..=spec.heads)
            .map(|kept| transformer_iteration_us(&gpu, &spec, kept))
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{}: iteration time fell as kept heads grew: {series:?}",
                gpu.name
            );
        }
        let dense = *series.last().unwrap();
        for (kept, &t) in series.iter().enumerate().take(spec.heads - 1) {
            assert!(
                t < dense,
                "{}: head drop to {} kept heads must beat dense ({t} >= {dense})",
                gpu.name,
                kept + 1
            );
        }
    }
}

#[test]
fn transformer_cost_is_monotonic_in_seq_len_and_batch() {
    // Growing the sequence (quadratic in the attention GEMMs, linear in the
    // token count) or the batch must never price cheaper, dense or with
    // half the heads dropped.
    let base = TransformerSpec::paper_ptb_transformer();
    for gpu in transformer_presets() {
        for kept in [base.heads / 2, base.heads] {
            let seq_series: Vec<f64> = [16usize, 35, 70, 140]
                .iter()
                .map(|&seq_len| {
                    let spec = TransformerSpec {
                        seq_len,
                        ..base.clone()
                    };
                    transformer_iteration_us(&gpu, &spec, kept)
                })
                .collect();
            for w in seq_series.windows(2) {
                assert!(
                    w[1] > w[0],
                    "{}: cost fell as seq_len grew (kept {kept}): {seq_series:?}",
                    gpu.name
                );
            }
            let batch_series: Vec<f64> = [5usize, 20, 80, 320]
                .iter()
                .map(|&batch| {
                    let spec = TransformerSpec {
                        batch,
                        ..base.clone()
                    };
                    transformer_iteration_us(&gpu, &spec, kept)
                })
                .collect();
            for w in batch_series.windows(2) {
                assert!(
                    w[1] > w[0],
                    "{}: cost fell as batch grew (kept {kept}): {batch_series:?}",
                    gpu.name
                );
            }
        }
    }
}

#[test]
fn transformer_fused_never_prices_above_unfused() {
    // The forward-epilogue fusion toggle can only save cost on the encoder,
    // exactly as on the fc-only networks: the FFN's activation epilogue
    // folds into its GEMM launch.
    let spec = TransformerSpec::paper_ptb_transformer();
    for gpu in transformer_presets() {
        for kept in [1, spec.heads / 2, spec.heads] {
            let plans = head_drop_plans(&spec, kept);
            let unfused = NetworkTimingModel::transformer(gpu.clone(), spec.clone())
                .with_fusion(false)
                .iteration_time_from_plans(&plans)
                .total_us();
            let fused = NetworkTimingModel::transformer(gpu.clone(), spec.clone())
                .with_fusion(true)
                .iteration_time_from_plans(&plans)
                .total_us();
            assert!(
                fused <= unfused,
                "{}: fused {fused} > unfused {unfused} (kept {kept})",
                gpu.name
            );
        }
    }
}
