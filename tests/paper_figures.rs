//! Paper-figure regression suite: golden-value pins on the simulated
//! speedup curves.
//!
//! The headline results of the reproduced papers are *curves of simulated
//! speedups* — Fig. 5-style MLP/LSTM iteration speedups for the approximate
//! dropout patterns (Song & Jiang, arXiv:1805.08939) and the structured
//! N:M / block schedules of the follow-up work (arXiv:2203.05705,
//! arXiv:2411.01238) — evaluated here on all three device presets. Before
//! this suite, the only guard on those numbers was a handful of inline
//! monotonicity asserts; a cost-model edit could move every curve by 2×
//! without failing a test. Each golden value below pins one point of one
//! curve to within [`REL_TOL`]; when a cost-model change moves them *on
//! purpose*, regenerate the table with
//!
//! ```sh
//! cargo test --test paper_figures -- --ignored print_golden_table --nocapture
//! ```
//!
//! and paste the printed rows over [`GOLDEN`], stating the cause in the
//! commit. The ordering tests further down never need regeneration — they
//! encode the papers' qualitative claims and must hold for any reasonable
//! cost model.

use approx_dropout::{scheme, DropoutRate, DropoutScheme};
use gpu_sim::{GpuConfig, LstmSpec, MlpSpec, NetworkTimingModel, TransformerSpec};

/// Relative tolerance on each golden speedup. The model is deterministic
/// (fixed seeds, f64 arithmetic), so this slack only absorbs innocuous
/// refactors — a real cost-model change moves the curves far further.
const REL_TOL: f64 = 0.02;

/// Samples per Monte-Carlo expectation. Pattern-period distributions have
/// at most 16 support points, so this pins the means well below [`REL_TOL`].
const SAMPLES: usize = 128;

/// Seed shared by every expectation (golden values depend on it).
const SEED: u64 = 0xF165;

fn rate(p: f64) -> DropoutRate {
    DropoutRate::new(p).unwrap()
}

/// The benchmarked schedule family: key, rate-matched Bernoulli baseline
/// rate, and the scheme itself (fresh per call — schemes carry sampling
/// state).
fn schemes() -> Vec<(&'static str, f64, Box<dyn DropoutScheme>)> {
    vec![
        ("rdp_row_0.5", 0.5, scheme::row(rate(0.5), 16).unwrap()),
        (
            "tdp_tile_0.5",
            0.5,
            scheme::tile(rate(0.5), 16, 32).unwrap(),
        ),
        ("nm_2_4", 0.5, scheme::nm(2, 4).unwrap()),
        ("nm_1_4", 0.75, scheme::nm(1, 4).unwrap()),
        (
            "block_32_0.5",
            0.5,
            scheme::block_unit(rate(0.5), 32).unwrap(),
        ),
    ]
}

fn devices() -> Vec<(&'static str, GpuConfig)> {
    vec![
        ("gtx_1080ti", GpuConfig::gtx_1080ti()),
        ("server_hbm", GpuConfig::server_hbm()),
        ("sparse_tensor_core", GpuConfig::sparse_tensor_core()),
    ]
}

fn networks(gpu: &GpuConfig) -> Vec<(&'static str, NetworkTimingModel)> {
    vec![
        (
            "mlp",
            NetworkTimingModel::mlp(gpu.clone(), MlpSpec::paper_mlp()),
        ),
        (
            "lstm",
            NetworkTimingModel::lstm(gpu.clone(), LstmSpec::paper_dictionary_lstm()),
        ),
    ]
}

/// Computes every curve point: `(network, device, scheme) -> speedup` over
/// the rate-matched Bernoulli baseline.
fn compute_speedups() -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for (device_key, gpu) in devices() {
        for (network_key, model) in networks(&gpu) {
            for (scheme_key, base_rate, scheme) in schemes() {
                let baseline = scheme::bernoulli(rate(base_rate));
                let speedup = model.speedup(&*baseline, &*scheme, SAMPLES, SEED);
                rows.push((format!("{network_key}.{device_key}.{scheme_key}"), speedup));
            }
        }
    }
    // The tensor-core-vs-gather pin: the same 2:4 plans priced on the
    // sparse-tensor-core device and on its tensor-core-stripped twin. MLP
    // only — the LSTM's droppable sites never price an fc N:M kernel (its
    // recurrent GEMMs are dense and the projection is never dropped), so
    // the ratio is 1.0 there by construction.
    let sparse = GpuConfig::sparse_tensor_core();
    let model = NetworkTimingModel::mlp(sparse.clone(), MlpSpec::paper_mlp());
    let stripped = NetworkTimingModel::mlp(sparse.without_tensor_cores(), MlpSpec::paper_mlp());
    let nm = scheme::nm(2, 4).unwrap();
    let t_tc = model
        .expected_iteration_time(&*nm, SAMPLES, SEED)
        .total_us();
    let t_gather = stripped
        .expected_iteration_time(&*nm, SAMPLES, SEED)
        .total_us();
    rows.push((
        "mlp.sparse_tensor_core.nm_2_4_tc_over_gather".to_string(),
        t_gather / t_tc,
    ));
    // Transformer encoder curve points: structured attention dropout vs the
    // rate-matched conventional baseline at the same scheme positions.
    for (device_key, gpu) in devices() {
        let spec = TransformerSpec::paper_ptb_transformer();
        let model = NetworkTimingModel::transformer(gpu, spec.clone());
        for (scheme_key, attn_base, ffn_base, attn, ffn) in transformer_schemes(&spec) {
            let mut baseline = transformer_positions(&*attn_base, &*ffn_base, spec.layers);
            let mut new = transformer_positions(&*attn, &*ffn, spec.layers);
            let speedup = model.speedup_per_layer(&mut baseline, &mut new, SAMPLES, SEED);
            rows.push((format!("transformer.{device_key}.{scheme_key}"), speedup));
        }
    }
    rows
}

/// The transformer variants of the curve: `(key, attn_baseline, ffn_baseline,
/// attn_scheme, ffn_scheme)`. Baselines are rate-matched Bernoulli at the
/// same positions, so each speedup isolates the structure, not the rate.
#[allow(clippy::type_complexity)]
fn transformer_schemes(
    spec: &TransformerSpec,
) -> Vec<(
    &'static str,
    Box<dyn DropoutScheme>,
    Box<dyn DropoutScheme>,
    Box<dyn DropoutScheme>,
    Box<dyn DropoutScheme>,
)> {
    let hd = spec.head_dim();
    vec![
        (
            "head_drop_0.5",
            scheme::bernoulli(rate(0.5)),
            scheme::none(),
            scheme::block_unit(rate(0.5), hd).unwrap(),
            scheme::none(),
        ),
        (
            "nm_2_4_proj",
            scheme::bernoulli(rate(0.5)),
            scheme::none(),
            scheme::nm(2, 4).unwrap(),
            scheme::none(),
        ),
        (
            "ffn_row_0.5",
            scheme::none(),
            scheme::bernoulli(rate(0.5)),
            scheme::none(),
            scheme::row(rate(0.5), 16).unwrap(),
        ),
    ]
}

/// Per-position scheme vector for the transformer timing model: one
/// `(attention, ffn)` pair per encoder block.
fn transformer_positions(
    attn: &dyn DropoutScheme,
    ffn: &dyn DropoutScheme,
    layers: usize,
) -> Vec<Box<dyn DropoutScheme>> {
    let mut schemes = Vec::with_capacity(2 * layers);
    for _ in 0..layers {
        schemes.push(attn.clone_box());
        schemes.push(ffn.clone_box());
    }
    schemes
}

/// Golden speedup table. Regenerate with the ignored `print_golden_table`
/// test (see module docs) when a cost-model change moves the curves on
/// purpose.
const GOLDEN: &[(&str, f64)] = &[
    ("mlp.gtx_1080ti.rdp_row_0.5", 1.8515),
    ("mlp.gtx_1080ti.tdp_tile_0.5", 1.3830),
    ("mlp.gtx_1080ti.nm_2_4", 1.8165),
    ("mlp.gtx_1080ti.nm_1_4", 3.0760),
    ("mlp.gtx_1080ti.block_32_0.5", 1.9180),
    ("lstm.gtx_1080ti.rdp_row_0.5", 1.2488),
    ("lstm.gtx_1080ti.tdp_tile_0.5", 1.0149),
    ("lstm.gtx_1080ti.nm_2_4", 1.2393),
    ("lstm.gtx_1080ti.nm_1_4", 1.4008),
    ("lstm.gtx_1080ti.block_32_0.5", 1.2489),
    ("mlp.server_hbm.rdp_row_0.5", 1.8265),
    ("mlp.server_hbm.tdp_tile_0.5", 0.9797),
    ("mlp.server_hbm.nm_2_4", 1.7799),
    ("mlp.server_hbm.nm_1_4", 2.8611),
    ("mlp.server_hbm.block_32_0.5", 1.8832),
    ("lstm.server_hbm.rdp_row_0.5", 1.2550),
    ("lstm.server_hbm.tdp_tile_0.5", 1.0273),
    ("lstm.server_hbm.nm_2_4", 1.2458),
    ("lstm.server_hbm.nm_1_4", 1.4013),
    ("lstm.server_hbm.block_32_0.5", 1.2551),
    ("mlp.sparse_tensor_core.rdp_row_0.5", 1.8121),
    ("mlp.sparse_tensor_core.tdp_tile_0.5", 0.8861),
    ("mlp.sparse_tensor_core.nm_2_4", 1.8424),
    ("mlp.sparse_tensor_core.nm_1_4", 2.7594),
    ("mlp.sparse_tensor_core.block_32_0.5", 1.8645),
    ("lstm.sparse_tensor_core.rdp_row_0.5", 1.2578),
    ("lstm.sparse_tensor_core.tdp_tile_0.5", 1.0344),
    ("lstm.sparse_tensor_core.nm_2_4", 1.2488),
    ("lstm.sparse_tensor_core.nm_1_4", 1.4002),
    ("lstm.sparse_tensor_core.block_32_0.5", 1.2578),
    ("mlp.sparse_tensor_core.nm_2_4_tc_over_gather", 1.0451),
    ("transformer.gtx_1080ti.head_drop_0.5", 1.1106),
    ("transformer.gtx_1080ti.nm_2_4_proj", 1.0946),
    ("transformer.gtx_1080ti.ffn_row_0.5", 1.1113),
    ("transformer.server_hbm.head_drop_0.5", 1.1101),
    ("transformer.server_hbm.nm_2_4_proj", 1.0941),
    ("transformer.server_hbm.ffn_row_0.5", 1.1109),
    ("transformer.sparse_tensor_core.head_drop_0.5", 1.1099),
    ("transformer.sparse_tensor_core.nm_2_4_proj", 1.0994),
    ("transformer.sparse_tensor_core.ffn_row_0.5", 1.1104),
];

#[test]
#[ignore = "regeneration helper: prints the golden table for copy-paste"]
fn print_golden_table() {
    println!("const GOLDEN: &[(&str, f64)] = &[");
    for (key, value) in compute_speedups() {
        println!("    (\"{key}\", {value:.4}),");
    }
    println!("];");
}

#[test]
fn golden_speedups_have_not_moved() {
    let actual = compute_speedups();
    assert_eq!(
        actual.len(),
        GOLDEN.len(),
        "curve-point count changed — regenerate the golden table"
    );
    let mut failures = Vec::new();
    for ((key, value), (golden_key, golden)) in actual.iter().zip(GOLDEN) {
        assert_eq!(key, golden_key, "curve-point order changed");
        let rel = (value - golden).abs() / golden;
        if rel > REL_TOL {
            failures.push(format!(
                "{key}: {value:.4} vs golden {golden:.4} ({:+.1}%)",
                (value / golden - 1.0) * 100.0
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "speedup curves moved beyond {:.0}% tolerance:\n  {}",
        REL_TOL * 100.0,
        failures.join("\n  ")
    );
}

/// Looks one curve point up in the freshly computed table.
fn speedup_of(rows: &[(String, f64)], key: &str) -> f64 {
    rows.iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing curve point {key}"))
        .1
}

#[test]
fn speedup_orderings_hold_on_every_preset() {
    // The papers' qualitative claims, pinned per device. Unlike the golden
    // table these never need regeneration — any reasonable cost model must
    // reproduce them.
    let rows = compute_speedups();
    for device in ["gtx_1080ti", "server_hbm", "sparse_tensor_core"] {
        for network in ["mlp", "lstm"] {
            let of = |scheme: &str| speedup_of(&rows, &format!("{network}.{device}.{scheme}"));
            // Every whole-neuron scheme beats the conventional baseline.
            for scheme in ["rdp_row_0.5", "nm_2_4", "nm_1_4", "block_32_0.5"] {
                assert!(
                    of(scheme) > 1.0,
                    "{network}.{device}.{scheme}: {}",
                    of(scheme)
                );
            }
            // RDP beats TDP at equal rate (paper §IV-A: TDP pays position
            // bookkeeping and a worse gather).
            assert!(
                of("rdp_row_0.5") > of("tdp_tile_0.5"),
                "{network}.{device}: rdp {} <= tdp {}",
                of("rdp_row_0.5"),
                of("tdp_tile_0.5")
            );
            // Dropping more never speeds up less (1:4 vs 2:4).
            assert!(
                of("nm_1_4") > of("nm_2_4"),
                "{network}.{device}: 1:4 {} <= 2:4 {}",
                of("nm_1_4"),
                of("nm_2_4")
            );
        }
    }
    // On the SIMT presets the 2:4 gather pays more than RDP's contiguous
    // compaction at the same rate …
    for device in ["gtx_1080ti", "server_hbm"] {
        let rdp = speedup_of(&rows, &format!("mlp.{device}.rdp_row_0.5"));
        let nm = speedup_of(&rows, &format!("mlp.{device}.nm_2_4"));
        assert!(
            nm < rdp,
            "mlp.{device}: gather-priced 2:4 {nm} >= rdp {rdp}"
        );
    }
    // … and on the sparse-tensor-core preset the hardware 2:4 path finally
    // overtakes it — the win the preset exists to show (arXiv:2203.05705).
    let rdp = speedup_of(&rows, "mlp.sparse_tensor_core.rdp_row_0.5");
    let nm = speedup_of(&rows, "mlp.sparse_tensor_core.nm_2_4");
    assert!(
        nm > rdp,
        "mlp.sparse_tensor_core: hardware 2:4 {nm} must beat rdp {rdp}"
    );
    // The same plans priced without the tensor cores are strictly slower.
    let tc_over_gather = speedup_of(&rows, "mlp.sparse_tensor_core.nm_2_4_tc_over_gather");
    assert!(
        tc_over_gather > 1.0,
        "tensor-core 2:4 must beat its gather pricing: {tc_over_gather}"
    );
    // Transformer encoder: every structured attention/FFN scheme beats the
    // rate-matched conventional baseline on every preset — head drop shrinks
    // the projections and both batched attention GEMMs, 2:4 compacts the
    // projections, row dropout compacts the FFN.
    for device in ["gtx_1080ti", "server_hbm", "sparse_tensor_core"] {
        for scheme in ["head_drop_0.5", "nm_2_4_proj", "ffn_row_0.5"] {
            let s = speedup_of(&rows, &format!("transformer.{device}.{scheme}"));
            assert!(s > 1.0, "transformer.{device}.{scheme}: {s}");
        }
    }
}
