//! Integration tests for the serving layer's overload behavior: weighted
//! fairness across QoS classes, price-based shedding order, autoscaler
//! hysteresis, the `SchemeSpec` text grammar round-trip, and the latency
//! split contract of completed jobs.

use serve::{
    AdmissionError, AutoscaleConfig, Autoscaler, BatchPolicy, JobKind, JobSpec, ModelSpec, Push,
    QosClass, QosWeights, ScaleDecision, SchemeSpec, ServeConfig, Server, ShardedQueue,
};
use std::time::{Duration, Instant};

fn tiny_catalog() -> Vec<ModelSpec> {
    vec![ModelSpec::mlp(
        "m",
        16,
        vec![32],
        4,
        SchemeSpec::Row {
            rate: 0.5,
            max_dp: 4,
        },
    )]
}

fn job(tenant: u64, seed: u64, kind: JobKind, qos: QosClass) -> JobSpec {
    JobSpec {
        tenant,
        model: 0,
        rows: 4,
        seed,
        kind,
        qos,
    }
}

/// A flooding Background tenant cannot starve an Interactive tenant: with
/// the default 8/2/1 weights, every Interactive job is served long before
/// the Background backlog drains.
#[test]
fn weighted_fairness_serves_interactive_before_a_background_flood() {
    let queue: ShardedQueue<u64> = ShardedQueue::new(1, QosWeights::default());
    // 90 Background jobs queued first, then 10 Interactive arrivals.
    for i in 0..90u64 {
        queue.push(0, 1, QosClass::Background, 1, 4, i);
    }
    for i in 0..10u64 {
        queue.push(0, 2, QosClass::Interactive, 4, 4, 100 + i);
    }
    let order: Vec<u64> = std::iter::from_fn(|| queue.pop_fair(0)).collect();
    assert_eq!(order.len(), 100);
    let last_interactive = order
        .iter()
        .rposition(|&v| v >= 100)
        .expect("interactive jobs were queued");
    // 8:1 weights — all 10 interactive jobs fit in the first ~12 weighted
    // slots; leave slack for the catch-up rule on lane activation.
    assert!(
        last_interactive < 25,
        "interactive jobs must finish early, last at position {last_interactive} of {order:?}"
    );
    // Background still makes progress before interactive finishes (weighted
    // fairness, not strict priority).
    let backgrounds_before = order[..last_interactive]
        .iter()
        .filter(|&&v| v < 100)
        .count();
    assert!(
        backgrounds_before > 0,
        "background traffic must not be starved either"
    );
}

/// Price-based shedding on a full queue evicts in rank order — Background
/// before Batch before Interactive, Infer before Train within a class —
/// and bounces an arrival that is no more valuable than anything queued.
#[test]
fn shedding_order_is_background_first_and_infer_before_train() {
    let queue: ShardedQueue<&'static str> = ShardedQueue::with_bound(1, QosWeights::default(), 4);
    let specs = [
        ("bg-infer", QosClass::Background, JobKind::Infer),
        ("bg-train", QosClass::Background, JobKind::Train),
        ("batch-infer", QosClass::Batch, JobKind::Infer),
        ("batch-train", QosClass::Batch, JobKind::Train),
    ];
    for (label, qos, kind) in specs {
        let rank = qos.rank() * 2 + kind.rank();
        assert!(matches!(
            queue.push(0, 0, qos, rank, 4, label),
            Push::Enqueued
        ));
    }
    // The queue is at its bound; an Interactive/Train arrival (rank 5)
    // displaces the cheapest victim, and repeated arrivals walk the rank
    // order upward.
    let rank_interactive_train = QosClass::Interactive.rank() * 2 + JobKind::Train.rank();
    let mut evicted = Vec::new();
    for i in 0..4 {
        match queue.push(
            0,
            9,
            QosClass::Interactive,
            rank_interactive_train,
            4,
            "interactive",
        ) {
            Push::Displaced(victim) => evicted.push(victim),
            other => panic!("push {i} should displace, got {other:?}"),
        }
    }
    assert_eq!(
        evicted,
        vec!["bg-infer", "bg-train", "batch-infer", "batch-train"],
        "victims must leave in shed-rank order"
    );
    // Now only rank-5 jobs remain: an equal-rank arrival is rejected, not
    // displaced (no same-class churn).
    assert!(matches!(
        queue.push(
            0,
            9,
            QosClass::Interactive,
            rank_interactive_train,
            4,
            "one-too-many"
        ),
        Push::Rejected("one-too-many")
    ));
    assert_eq!(queue.shed_count(), 4);
    assert_eq!(queue.rejected_count(), 1);
}

/// The autoscaler's hysteresis: a noisy queue depth oscillating around the
/// watermarks produces isolated, cooldown-spaced events — never an
/// up/down thrash within one cooldown window.
#[test]
fn autoscaler_hysteresis_does_not_thrash() {
    let config = AutoscaleConfig {
        min_workers: 1,
        max_workers: 4,
        high_watermark: 8.0,
        low_watermark: 1.0,
        alpha: 0.5,
        cooldown: Duration::from_millis(10),
        interval: Duration::from_millis(1),
    };
    let mut scaler = Autoscaler::new(config);
    let start = Instant::now();
    let mut active = 1usize;
    let mut events = Vec::new();
    // Depth alternates between deep and empty every millisecond — the kind
    // of sawtooth a batch-draining worker produces.
    for step in 0..60u64 {
        let queued = if step % 2 == 0 { 40 } else { 0 };
        let now = start + Duration::from_millis(step);
        if let Some(decision) = scaler.observe(queued, active, false, now) {
            match decision {
                ScaleDecision::Up => active += 1,
                ScaleDecision::Down => active -= 1,
            }
            events.push((step, decision));
        }
    }
    assert!(
        !events.is_empty(),
        "a sustained deep queue must eventually scale up"
    );
    assert!(
        events.iter().all(|(_, d)| matches!(d, ScaleDecision::Up)),
        "the smoothed sawtooth averages deep — scaling down would thrash: {events:?}"
    );
    for pair in events.windows(2) {
        assert!(
            pair[1].0 - pair[0].0 >= 10,
            "events within one cooldown window: {events:?}"
        );
    }
}

/// Every scheme family round-trips exactly through the text grammar, and
/// every canonical spelling builds a working scheme.
#[test]
fn scheme_spec_round_trips_every_family() {
    let specs = [
        SchemeSpec::None,
        SchemeSpec::Bernoulli { rate: 0.5 },
        SchemeSpec::Divergent { rate: 0.3 },
        SchemeSpec::Row {
            rate: 0.5,
            max_dp: 8,
        },
        SchemeSpec::Tile {
            rate: 0.5,
            max_dp: 8,
            tile: 32,
        },
        SchemeSpec::Nm { n: 2, m: 4 },
        SchemeSpec::Block {
            rate: 0.5,
            block: 16,
        },
        SchemeSpec::Crs { keep: 0.5 },
        SchemeSpec::RowCrs {
            rate: 0.5,
            max_dp: 8,
            keep: 0.5,
        },
    ];
    for spec in specs {
        let text = spec.to_string();
        let parsed: SchemeSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("{text:?} must re-parse: {e}"));
        assert_eq!(parsed, spec, "round trip changed {text:?}");
        let scheme = spec
            .build()
            .unwrap_or_else(|e| panic!("{text:?} must build: {e}"));
        assert!(!scheme.label().is_empty());
    }
    assert!("hexagonal:0.5".parse::<SchemeSpec>().is_err());
    assert!("row:0.5".parse::<SchemeSpec>().is_err(), "wrong arity");
    assert!("nm:two:4".parse::<SchemeSpec>().is_err(), "bad number");
}

/// End-to-end: a bounded server under a Background flood completes every
/// Interactive job (displacing flood work to make room) and reports the
/// losses; completed jobs obey `latency == queue_wait + exec`.
#[test]
fn bounded_server_never_drops_interactive_jobs() {
    let config = ServeConfig::builder()
        .workers(1)
        .policy(BatchPolicy::PerRequest)
        .queue_bound(8)
        .build()
        .expect("test config is valid");
    let server = Server::start(config, tiny_catalog());
    let client = server.client();
    // Flood: enough Background training work to keep the bounded queue
    // full many times over while the single worker grinds through it.
    let flood: Vec<_> = (0..120u64)
        .map(|i| client.submit(job(1, i, JobKind::Train, QosClass::Background)))
        .collect();
    // Interactive burst arrives on top of the full queue.
    let interactive: Vec<_> = (0..6u64)
        .map(|i| {
            client
                .submit(job(2, 1000 + i, JobKind::Infer, QosClass::Interactive))
                .expect("interactive jobs always displace flood work")
        })
        .collect();
    let mut interactive_done = 0;
    for rx in interactive {
        let result = rx
            .recv()
            .expect("worker answers every admitted job")
            .expect("interactive jobs are never shed");
        assert_eq!(
            result.latency,
            result.queue_wait + result.exec,
            "latency must split exactly into queue wait and execution"
        );
        interactive_done += 1;
    }
    assert_eq!(interactive_done, 6);
    let mut flood_lost = 0;
    for outcome in flood {
        match outcome {
            Err(AdmissionError::Rejected { .. }) => flood_lost += 1,
            Err(AdmissionError::Shed { .. }) => unreachable!("submit never returns Shed"),
            Ok(rx) => match rx.recv().expect("worker answers every admitted job") {
                Ok(_) => {}
                Err(AdmissionError::Shed { by }) => {
                    assert_eq!(by, QosClass::Interactive, "only interactive arrivals evict");
                    flood_lost += 1;
                }
                Err(AdmissionError::Rejected { .. }) => {
                    unreachable!("reply channels never carry Rejected")
                }
            },
        }
    }
    let report = server.shutdown();
    assert!(
        flood_lost > 0,
        "a 120-job flood against a bound of 8 must lose work"
    );
    assert_eq!(
        report.shed + report.rejected,
        flood_lost,
        "the report must account for every lost flood job"
    );
}
