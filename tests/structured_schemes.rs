//! End-to-end coverage of the structured-sparsity scheme family: N:M and
//! block-unit plans executing through `Mlp` / `LstmLm` training and being
//! priced by `NetworkTimingModel` from the *same* sampled `KernelSchedule`
//! — the acceptance path of the plan–execute–price contract.

use approx_dropout::{scheme, DropoutRate, KernelSchedule, LayerShape};
use gpu_sim::{GpuConfig, MlpSpec, NetworkTimingModel};
use nn::builder::{LstmBuilder, NetworkBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{init, Matrix};

fn rate(p: f64) -> DropoutRate {
    DropoutRate::new(p).unwrap()
}

/// A tiny two-cluster classification task.
fn toy_problem(rng: &mut StdRng, n: usize) -> (Matrix, Vec<usize>) {
    let mut data = Matrix::zeros(n, 8);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        labels.push(class);
        for j in 0..8 {
            let center = if class == 0 { 1.0 } else { -1.0 };
            data[(i, j)] = center + 0.3 * init::standard_normal(rng);
        }
    }
    (data, labels)
}

#[test]
fn mlp_learns_with_structured_schemes() {
    for (label, dropout) in [
        ("nm 2:4", scheme::nm(2, 4).unwrap()),
        ("block 8", scheme::block_unit(rate(0.5), 8).unwrap()),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = toy_problem(&mut rng, 64);
        let mut mlp = NetworkBuilder::new(8, 2)
            .hidden_layers(&[64, 64])
            .dropout(dropout)
            .learning_rate(0.01)
            .momentum(0.5)
            .build(&mut rng);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            last_loss = mlp.train_batch(&x, &y, &mut rng).loss;
        }
        assert!(last_loss.is_finite(), "{label}: training diverged");
        let (_, acc) = mlp.evaluate(&x, &y);
        assert!(acc > 0.9, "{label}: accuracy {acc}");
    }
}

#[test]
fn lstm_trains_with_structured_inter_layer_dropout() {
    for dropout in [
        scheme::nm(2, 4).unwrap(),
        scheme::block_unit(rate(0.3), 4).unwrap(),
    ] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lm = LstmBuilder::new(12, 16)
            .layers(2)
            .dropout(dropout)
            .learning_rate(0.5)
            .grad_clip(5.0)
            .build(&mut rng);
        let batch: Vec<Vec<usize>> = (0..6)
            .map(|b| (0..=8).map(|t| (b + t) % 12).collect())
            .collect();
        for _ in 0..20 {
            let stats = lm.train_batch(&batch, &mut rng);
            assert!(stats.loss.is_finite());
        }
        let eval = lm.evaluate(&batch);
        assert!(eval.loss.is_finite());
    }
}

/// The exact plan the training side would execute is the one the timing
/// model prices: same scheme, same RNG draw, same `KernelSchedule`.
#[test]
fn structured_plans_price_through_their_own_schedule() {
    let model = NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::paper_mlp());

    let mut nm = scheme::nm(2, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let plans = model.plan_iteration(&mut [nm.clone_box(), nm.clone_box()], &mut rng);
    for plan in &plans {
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::NmCompact { n: 2, m: 4 }
        );
        assert!((plan.kernel_schedule().kept_fraction() - 0.5).abs() < 1e-12);
    }
    let nm_time = model.iteration_time_from_plans(&plans).total_us();

    let mut block = scheme::block_unit(rate(0.5), 32).unwrap();
    let block_plans = model.plan_iteration(&mut [block.clone_box(), block.clone_box()], &mut rng);
    for plan in &block_plans {
        assert!(matches!(
            plan.kernel_schedule(),
            KernelSchedule::BlockCompact { block: 32, .. }
        ));
    }
    let block_time = model.iteration_time_from_plans(&block_plans).total_us();

    let dense_plans: Vec<_> = model
        .layer_shapes()
        .into_iter()
        .map(approx_dropout::DropoutPlan::none)
        .collect();
    let dense_time = model.iteration_time_from_plans(&dense_plans).total_us();
    assert!(nm_time < dense_time, "nm {nm_time} vs dense {dense_time}");
    assert!(
        block_time < dense_time,
        "block {block_time} vs dense {dense_time}"
    );

    // The planning side and the pricing side saw the same sampled decision:
    // re-planning with the same seed reproduces the schedule exactly.
    let mut rng_again = StdRng::seed_from_u64(3);
    let plans_again = model.plan_iteration(&mut [nm.clone_box(), nm.clone_box()], &mut rng_again);
    assert_eq!(plans, plans_again);
    let _ = (&mut nm, &mut block);
}

/// `plan_into` and `plan` are draw-for-draw identical for the structured
/// schemes at LSTM-style vector shapes too (the MLP-shape parity is covered
/// by `tests/hotpath_parallel.rs`).
#[test]
fn structured_plan_into_parity_on_vector_shapes() {
    let shape = LayerShape::vector(96);
    for reference in [
        scheme::nm(1, 4).unwrap(),
        scheme::block_unit(rate(0.5), 8).unwrap(),
    ] {
        let mut planner = reference.clone();
        let mut recycler = reference.clone();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut buf = approx_dropout::DropoutPlan::default();
        for it in 0..8 {
            let fresh = planner.plan(&mut rng_a, shape);
            recycler.plan_into(&mut rng_b, shape, &mut buf);
            assert_eq!(
                fresh,
                buf,
                "{} diverged at iteration {it}",
                reference.label()
            );
        }
    }
}
