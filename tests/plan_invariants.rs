//! Property tests of the plan–execute API invariants, across every
//! [`DropoutScheme`] implementation: realised keep-fractions track the target
//! rate, `column_multiplier` is consistent with the kept units, and the
//! compacted-GEMM execution of a plan is numerically equivalent to the
//! masked-dense formulation the paper starts from.

use approx_random_dropout::approx_dropout::{
    scheme, DropoutPlan, DropoutRate, DropoutScheme, LayerShape, RowPattern, SchemeSpec,
    TilePattern,
};
use approx_random_dropout::nn::Linear;
use approx_random_dropout::tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every scheme implementation under test, with its target dropout rate.
fn all_schemes() -> Vec<(Box<dyn DropoutScheme>, f64)> {
    let rate = |p: f64| DropoutRate::new(p).unwrap();
    vec![
        (scheme::none(), 0.0),
        (scheme::bernoulli(rate(0.5)), 0.5),
        (scheme::divergent_bernoulli(rate(0.3)), 0.3),
        (scheme::row(rate(0.5), 16).unwrap(), 0.5),
        (scheme::tile(rate(0.7), 16, 8).unwrap(), 0.7),
        (Box::new(RowPattern::new(4, 1).unwrap()), 0.75),
        (Box::new(TilePattern::new(2, 0, 8).unwrap()), 0.5),
        (scheme::nm(2, 4).unwrap(), 0.5),
        (scheme::nm(1, 4).unwrap(), 0.75),
        (scheme::block_unit(rate(0.5), 8).unwrap(), 0.5),
    ]
}

/// Over many iterations every scheme's realised drop fraction converges to
/// its nominal rate (the statistical-equivalence claim, Eq. 2/3, extended to
/// the whole scheme family).
#[test]
fn realized_drop_fraction_tracks_nominal_rate() {
    let shape = LayerShape::new(256, 256);
    for (mut s, target) in all_schemes() {
        let mut rng = StdRng::seed_from_u64(42);
        let iters = 2_000;
        let mut acc = 0.0;
        for _ in 0..iters {
            acc += s.plan(&mut rng, shape).realized_drop_fraction();
        }
        let mean = acc / iters as f64;
        assert!(
            (mean - target).abs() < 0.05,
            "scheme {} realised {mean}, target {target}",
            s.label()
        );
        assert!(
            (s.nominal_rate() - target).abs() < 1e-9,
            "scheme {} nominal rate",
            s.label()
        );
    }
}

/// `column_multiplier` is consistent with the plan's kept units: kept
/// columns carry exactly `scale()`, dropped columns exactly 0, and columns
/// past the dropout site exactly 1.
#[test]
fn column_multiplier_is_consistent_with_kept_indices() {
    let shape = LayerShape::new(64, 64);
    for (mut s, _) in all_schemes() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let plan = s.plan(&mut rng, shape);
            let mult = plan.column_multiplier(shape.out_features);
            if let Some(kept) = plan.compact_rows() {
                for (j, &m) in mult.iter().enumerate() {
                    let expected = if kept.contains(&j) { plan.scale() } else { 0.0 };
                    assert_eq!(m, expected, "scheme {} column {j}", s.label());
                }
            } else if let Some(mask) = plan.bernoulli_mask() {
                for (j, &m) in mult.iter().enumerate() {
                    assert_eq!(m, mask[j] * plan.scale(), "scheme {} column {j}", s.label());
                }
            } else if let Some((kept, grid)) = plan.kept_tiles() {
                let mut covered = vec![false; shape.out_features];
                for &t in kept {
                    let (_, cols) = grid.tile_bounds(t);
                    for c in cols {
                        if c < covered.len() {
                            covered[c] = true;
                        }
                    }
                }
                for (j, &m) in mult.iter().enumerate() {
                    let expected = if covered[j] { plan.scale() } else { 0.0 };
                    assert_eq!(m, expected, "scheme {} column {j}", s.label());
                }
            } else if let Some((kept, _, _)) = plan.nm_lanes() {
                for (j, &m) in mult.iter().enumerate() {
                    let expected = if kept.contains(&j) { plan.scale() } else { 0.0 };
                    assert_eq!(m, expected, "scheme {} column {j}", s.label());
                }
            } else if let Some((kept_blocks, block, _)) = plan.kept_unit_blocks() {
                for (j, &m) in mult.iter().enumerate() {
                    let expected = if kept_blocks.contains(&(j / block)) {
                        plan.scale()
                    } else {
                        0.0
                    };
                    assert_eq!(m, expected, "scheme {} column {j}", s.label());
                }
            } else {
                assert!(mult.iter().all(|&m| m == 1.0), "identity scheme multiplier");
            }
            // Columns beyond the resolved dropout site always pass through
            // untouched (regression test for the seed's out-of-range
            // rescaling bug).
            let wide = plan.column_multiplier(shape.out_features + 5);
            for &m in &wide[shape.out_features..] {
                assert_eq!(m, 1.0, "scheme {} out-of-site column", s.label());
            }
        }
    }
}

/// The plan's `active_output_fraction` matches its kept-neuron count for
/// every family that drops whole neurons (row, N:M, block), and is exactly
/// 1 for every other plan.
#[test]
fn active_output_fraction_matches_kept_neurons() {
    let shape = LayerShape::new(48, 48);
    for (mut s, _) in all_schemes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let plan = s.plan(&mut rng, shape);
            let expected = if let Some(kept) = plan.compact_rows() {
                kept.len() as f64 / shape.out_features as f64
            } else if let Some((kept, _, _)) = plan.nm_lanes() {
                kept.len() as f64 / shape.out_features as f64
            } else if let Some((kept_blocks, block, _)) = plan.kept_unit_blocks() {
                let neurons: usize = kept_blocks
                    .iter()
                    .map(|&b| ((b + 1) * block).min(shape.out_features) - b * block)
                    .sum();
                neurons as f64 / shape.out_features as f64
            } else {
                1.0
            };
            assert!(
                (plan.active_output_fraction() - expected).abs() < 1e-12,
                "scheme {}",
                s.label()
            );
        }
    }
}

/// Executing a plan through the compacted GEMM paths of `Linear` equals the
/// masked-dense reference built from the same plan, for every scheme and
/// many random layers — the numeric core of the paper's "compact the GEMM
/// instead of masking" claim.
#[test]
fn compacted_execution_matches_masked_dense_reference() {
    let mut case_rng = StdRng::seed_from_u64(0xFACADE);
    for case in 0..40u64 {
        let in_features = case_rng.gen_range(4usize..24);
        let out_features = case_rng.gen_range(4usize..24);
        let batch = case_rng.gen_range(1usize..5);
        let shape = LayerShape::new(in_features, out_features);
        for (mut s, _) in all_schemes() {
            let mut rng = StdRng::seed_from_u64(1000 + case);
            let plan = s.plan(&mut rng, shape);
            let layer = Linear::new(&mut rng, in_features, out_features);
            let x = init::uniform(&mut rng, batch, in_features, -1.0, 1.0);
            let executed = layer.clone().forward(&x, &plan);
            let reference = masked_dense_reference(&layer, &x, &plan);
            for i in 0..batch {
                for j in 0..out_features {
                    assert!(
                        (executed[(i, j)] - reference[(i, j)]).abs() < 1e-3,
                        "scheme {} case {case} at ({i},{j}): {} vs {}",
                        s.label(),
                        executed[(i, j)],
                        reference[(i, j)]
                    );
                }
            }
        }
    }
}

/// The attention-head invariant behind the transformer family: a whole-head
/// block-unit plan never drops every head, no matter how aggressive the
/// rate or how small the head count — the `SchemeSpec::Transformer` arm and
/// the raw `scheme::block_unit` constructor both inherit the guard, so the
/// attention output is never all-zero and the inverted-dropout scale stays
/// finite.
#[test]
fn whole_head_plans_never_drop_every_head() {
    let rate = DropoutRate::new(0.9).unwrap();
    for (heads, head_dim) in [(2usize, 4usize), (4, 8), (8, 64)] {
        let model_dim = heads * head_dim;
        let shape = LayerShape::new(model_dim, model_dim);
        let mut from_scheme = scheme::block_unit(rate, head_dim).unwrap();
        let mut from_spec = SchemeSpec::Transformer {
            rate: 0.9,
            head_dim,
        }
        .build()
        .unwrap();
        for s in [&mut from_scheme, &mut from_spec] {
            let mut rng = StdRng::seed_from_u64(0xD00D);
            for iteration in 0..2_000 {
                let plan = s.plan(&mut rng, shape);
                let (kept, block, total) = plan
                    .kept_unit_blocks()
                    .expect("whole-head plan must be a block-unit plan");
                assert_eq!(block, head_dim);
                assert_eq!(total, heads);
                assert!(
                    !kept.is_empty(),
                    "{} dropped every one of {heads} heads at iteration {iteration}",
                    s.label()
                );
                assert!(
                    plan.scale().is_finite() && plan.scale() > 0.0,
                    "scale must stay finite with at least one kept head"
                );
            }
        }
    }
}

/// Dense formulation of a plan: mask weights for tile plans, mask + scale
/// the biased dense output for row/Bernoulli plans.
fn masked_dense_reference(layer: &Linear, x: &Matrix, plan: &DropoutPlan) -> Matrix {
    if let Some((kept, grid)) = plan.kept_tiles() {
        // W ⊙ M, dense multiply, scale, add bias (bias is not scaled).
        let (rows, cols) = grid.weight_shape();
        let mut mask = Matrix::zeros(rows, cols);
        for &t in kept {
            let (rr, cc) = grid.tile_bounds(t);
            for r in rr.clone() {
                for c in cc.clone() {
                    mask[(r, c)] = 1.0;
                }
            }
        }
        let masked_w = layer.weight().hadamard(&mask).unwrap();
        return x
            .matmul(&masked_w)
            .scale(plan.scale())
            .add_row_broadcast(layer.bias())
            .unwrap();
    }
    // Row and Bernoulli plans are per-output-column multipliers on the dense
    // biased output; the identity plan is the all-ones multiplier.
    let dense = x
        .matmul(layer.weight())
        .add_row_broadcast(layer.bias())
        .unwrap();
    let mult = plan.column_multiplier(layer.out_features());
    Matrix::from_fn(dense.rows(), dense.cols(), |i, j| dense[(i, j)] * mult[j])
}
