//! Statistical-equivalence checks (paper §III-D, Eq. 2 and Eq. 3).
//!
//! The paper argues that, over the whole training run, the probability `p_n`
//! of a single neuron/synapse being dropped under the sampled regular
//! patterns equals the global dropout rate `p_g = Σ k_dp (dp−1)/dp`, which
//! Algorithm 1 drives towards the target rate `p`. This module provides the
//! empirical counterpart: it simulates many iterations of pattern sampling
//! and measures the per-unit drop frequency, so tests and experiments can
//! verify the equivalence numerically.

use crate::pattern::PatternKind;
use crate::sampler::PatternSampler;
use crate::search::PatternDistribution;
use rand::Rng;

/// Result of an empirical equivalence measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Analytic per-unit drop probability `p_n = Σ k_dp (dp−1)/dp` (Eq. 2).
    pub analytic_rate: f64,
    /// Mean of the measured per-unit drop frequencies.
    pub empirical_mean: f64,
    /// Standard deviation of the per-unit drop frequencies across units;
    /// small values mean the drop probability is uniform across units, which
    /// is what the uniformly random bias is responsible for.
    pub empirical_std: f64,
    /// Largest absolute deviation of any single unit's frequency from the
    /// analytic rate.
    pub max_unit_deviation: f64,
    /// Number of iterations simulated.
    pub iterations: usize,
    /// Number of units tracked.
    pub unit_count: usize,
}

impl EquivalenceReport {
    /// Returns `true` when both the mean and the per-unit deviations are
    /// within `tolerance` of the analytic rate.
    pub fn is_equivalent(&self, tolerance: f64) -> bool {
        (self.empirical_mean - self.analytic_rate).abs() <= tolerance
            && self.max_unit_deviation <= tolerance
    }
}

/// Analytic per-unit drop probability implied by a pattern distribution
/// (Eq. 2); identical to the expected global rate of Eq. 3, which is the
/// paper's equivalence argument in closed form.
pub fn analytic_unit_drop_rate(distribution: &PatternDistribution) -> f64 {
    distribution.expected_global_rate()
}

/// Simulates `iterations` of pattern sampling over `unit_count` units and
/// measures how often each unit is dropped.
///
/// Returns one drop frequency per unit.
pub fn empirical_unit_drop_rates<R: Rng + ?Sized>(
    sampler: &PatternSampler,
    rng: &mut R,
    unit_count: usize,
    iterations: usize,
) -> Vec<f64> {
    let mut dropped = vec![0usize; unit_count];
    for _ in 0..iterations {
        let pattern = sampler.sample(rng, unit_count);
        let mut kept = vec![false; unit_count];
        for &k in pattern.kept_indices() {
            kept[k] = true;
        }
        for (u, &is_kept) in kept.iter().enumerate() {
            if !is_kept {
                dropped[u] += 1;
            }
        }
    }
    dropped
        .into_iter()
        .map(|d| d as f64 / iterations.max(1) as f64)
        .collect()
}

/// Runs a full equivalence measurement: samples `iterations` patterns over
/// `unit_count` units and compares the per-unit empirical drop rate against
/// the analytic rate of the sampler's distribution.
pub fn measure_equivalence<R: Rng + ?Sized>(
    sampler: &PatternSampler,
    rng: &mut R,
    unit_count: usize,
    iterations: usize,
) -> EquivalenceReport {
    let analytic = analytic_unit_drop_rate(sampler.distribution());
    let rates = empirical_unit_drop_rates(sampler, rng, unit_count, iterations);
    let mean = if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    };
    let std = if rates.is_empty() {
        0.0
    } else {
        (rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64).sqrt()
    };
    let max_dev = rates
        .iter()
        .map(|r| (r - analytic).abs())
        .fold(0.0, f64::max);
    EquivalenceReport {
        analytic_rate: analytic,
        empirical_mean: mean,
        empirical_std: std,
        max_unit_deviation: max_dev,
        iterations,
        unit_count,
    }
}

/// Counts how many *distinct* sub-models (unique kept-index sets) appear over
/// `iterations` sampled patterns — the paper's diversity argument for why the
/// entropy term in Algorithm 1 matters and why TDP outperforms RDP in
/// accuracy.
pub fn distinct_sub_models<R: Rng + ?Sized>(
    sampler: &PatternSampler,
    rng: &mut R,
    unit_count: usize,
    iterations: usize,
) -> usize {
    use std::collections::HashSet;
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    for _ in 0..iterations {
        let pattern = sampler.sample(rng, unit_count);
        seen.insert(pattern.kept_indices().to_vec());
    }
    seen.len()
}

/// Convenience: builds a row-pattern sampler from a distribution and runs
/// [`measure_equivalence`] with a fresh deterministic RNG seed.
pub fn quick_row_equivalence(
    distribution: PatternDistribution,
    unit_count: usize,
    iterations: usize,
    seed: u64,
) -> EquivalenceReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let sampler = PatternSampler::new(distribution, PatternKind::Row);
    let mut rng = StdRng::seed_from_u64(seed);
    measure_equivalence(&sampler, &mut rng, unit_count, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::DropoutRate;
    use crate::search::{sgd_search, SearchConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn point_mass_pattern_drops_exactly_its_rate() {
        // dp = 2 always: every unit is dropped exactly half the time thanks
        // to the uniform bias.
        let dist = PatternDistribution::point_mass(2, 2).unwrap();
        let report = quick_row_equivalence(dist, 64, 20_000, 0);
        assert!((report.analytic_rate - 0.5).abs() < 1e-12);
        assert!(report.is_equivalent(0.02), "report: {report:?}");
    }

    #[test]
    fn searched_distribution_is_statistically_equivalent() {
        for &p in &[0.3, 0.5, 0.7] {
            let dist =
                sgd_search(DropoutRate::new(p).unwrap(), 16, &SearchConfig::default()).unwrap();
            let report = quick_row_equivalence(dist, 128, 8_000, 42);
            assert!(
                (report.empirical_mean - p).abs() < 0.03,
                "target {p}, empirical {:.4}",
                report.empirical_mean
            );
            assert!(
                report.max_unit_deviation < 0.06,
                "target {p}, max deviation {:.4}",
                report.max_unit_deviation
            );
        }
    }

    #[test]
    fn per_unit_rates_are_uniform_across_units() {
        let dist = PatternDistribution::new(vec![0.2, 0.3, 0.5]).unwrap();
        let report = quick_row_equivalence(dist, 96, 20_000, 7);
        assert!(
            report.empirical_std < 0.02,
            "std {:.4}",
            report.empirical_std
        );
    }

    #[test]
    fn empirical_rates_have_one_entry_per_unit() {
        let dist = PatternDistribution::point_mass(3, 4).unwrap();
        let sampler = PatternSampler::new(dist, PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(1);
        let rates = empirical_unit_drop_rates(&sampler, &mut rng, 10, 100);
        assert_eq!(rates.len(), 10);
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn distinct_sub_models_grow_with_entropy() {
        let mut rng = StdRng::seed_from_u64(2);
        let point = PatternSampler::new(
            PatternDistribution::point_mass(4, 8).unwrap(),
            PatternKind::Row,
        );
        let dense = PatternSampler::new(
            PatternDistribution::new(vec![1.0; 8]).unwrap(),
            PatternKind::Row,
        );
        let point_models = distinct_sub_models(&point, &mut rng, 64, 500);
        let dense_models = distinct_sub_models(&dense, &mut rng, 64, 500);
        // The point mass can only produce `dp` distinct biases; the dense
        // distribution reaches many more sub-models.
        assert!(point_models <= 4);
        assert!(dense_models > point_models);
    }

    #[test]
    fn zero_iteration_report_is_well_formed() {
        let dist = PatternDistribution::point_mass(2, 2).unwrap();
        let sampler = PatternSampler::new(dist, PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(3);
        let report = measure_equivalence(&sampler, &mut rng, 8, 0);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.empirical_mean, 0.0);
    }
}
