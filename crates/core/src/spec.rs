//! [`SchemeSpec`] — the single plain-data description of a dropout scheme.
//!
//! Every layer of the repo that needs to *name* a scheme configuration —
//! the serving catalog, the bench binaries, examples, CLI flags — used to
//! grow its own ad-hoc surface (the serve crate had a private `SchemeKind`
//! enum, the bench crate hand-rolled constructor calls). `SchemeSpec`
//! unifies them: one `Copy` enum that mirrors the [`crate::scheme`]
//! constructors, parses from a compact text form ([`FromStr`]), prints the
//! same form back ([`fmt::Display`], round-tripping exactly), and
//! materializes the boxed [`DropoutScheme`] with [`SchemeSpec::build`].
//!
//! The text grammar is `family[:param[:param...]]` with one canonical
//! spelling per family:
//!
//! | spec                  | scheme                                        |
//! |-----------------------|-----------------------------------------------|
//! | `none`                | dense execution, no dropout                   |
//! | `bernoulli:0.5`       | conventional per-unit Bernoulli               |
//! | `divergent:0.5`       | in-kernel `if (kept)` skip (anti-pattern)     |
//! | `row:0.5:8`           | row patterns, rate 0.5, periods up to 8       |
//! | `tile:0.5:8:32`       | 32×32 tile patterns, rate 0.5, periods ≤ 8    |
//! | `nm:2:4`              | keep 2 of every 4 output lanes (N:M)          |
//! | `block:0.5:16`        | block-structured unit dropout, 16-wide blocks |
//! | `crs:0.5`             | sampled GEMM, keep half the inner dimension   |
//! | `row_crs:0.5:8:0.5`   | composed row dropout × CRS sampling           |
//! | `transformer:0.25:64` | whole-head attention dropout, 64-wide heads   |
//!
//! Parsing reports a typed [`SchemeSpecError`]; parameter *ranges* are not
//! checked until [`SchemeSpec::validate`] / [`SchemeSpec::build`], so a
//! spec can describe a configuration before deciding whether it is legal.

use crate::error::DropoutError;
use crate::rate::DropoutRate;
use crate::scheme::{self, DropoutScheme};
use std::fmt;
use std::str::FromStr;

/// Plain-data description of a dropout scheme; see the module docs for the
/// text grammar each variant round-trips through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// No dropout (dense execution).
    None,
    /// Conventional per-unit Bernoulli dropout (the paper's baseline).
    Bernoulli {
        /// Dropout rate in `(0, 1)`.
        rate: f64,
    },
    /// Bernoulli numerics scheduled as the divergent in-kernel skip — the
    /// paper's motivating anti-pattern, priced but never faster.
    Divergent {
        /// Dropout rate in `(0, 1)`.
        rate: f64,
    },
    /// Row-based Dropout Pattern via Algorithm 1.
    Row {
        /// Target global dropout rate.
        rate: f64,
        /// Maximum pattern period explored by the search.
        max_dp: usize,
    },
    /// Tile-based Dropout Pattern via Algorithm 1 (32×32 tiles by default).
    Tile {
        /// Target global dropout rate.
        rate: f64,
        /// Maximum pattern period explored by the search.
        max_dp: usize,
        /// Tile edge length (32 in the paper).
        tile: usize,
    },
    /// N:M structured sparsity (keep `n` of every `m` output lanes).
    Nm {
        /// Kept lanes per group.
        n: usize,
        /// Group width.
        m: usize,
    },
    /// Block-structured unit dropout.
    Block {
        /// Per-block drop probability.
        rate: f64,
        /// Contiguous block width.
        block: usize,
    },
    /// Sampled GEMM under column-row sampling (CRS): keep a `keep` fraction
    /// of the inner (K) dimension, scaled by `K/k` for unbiasedness.
    Crs {
        /// Kept fraction of the inner dimension, in `(0, 1]`.
        keep: f64,
    },
    /// Composed row-dropout × CRS: row dropout compacts the output (N)
    /// dimension while CRS samples the inner (K) dimension of the same
    /// kernel call.
    RowCrs {
        /// Target global dropout rate of the row axis.
        rate: f64,
        /// Maximum pattern period explored by the row search.
        max_dp: usize,
        /// Kept fraction of the inner dimension, in `(0, 1]`.
        keep: f64,
    },
    /// Whole-head attention dropout for the transformer family: each head
    /// is one contiguous `head_dim`-wide unit block of the attention
    /// output, dropped as a unit (SDropout on attention). Builds as
    /// [`scheme::block_unit`] with `block = head_dim`, inheriting the
    /// never-fully-dark guard — at least one head survives every plan.
    Transformer {
        /// Per-head drop probability in `[0, 1)`.
        rate: f64,
        /// Width of one attention head (the block unit).
        head_dim: usize,
    },
}

/// Why a scheme spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeSpecError {
    /// The family name (the part before the first `:`) is not recognized.
    UnknownFamily(String),
    /// The family takes a different number of `:`-separated parameters.
    WrongArity {
        /// Family that was being parsed.
        family: &'static str,
        /// Parameters the family requires.
        expected: usize,
        /// Parameters the input supplied.
        got: usize,
    },
    /// A parameter failed to parse as a number.
    BadNumber {
        /// Family that was being parsed.
        family: &'static str,
        /// The offending parameter text.
        value: String,
    },
}

impl fmt::Display for SchemeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeSpecError::UnknownFamily(name) => write!(
                f,
                "unknown scheme family {name:?} (expected one of: none, bernoulli, divergent, \
                 row, tile, nm, block, crs, row_crs, transformer)"
            ),
            SchemeSpecError::WrongArity {
                family,
                expected,
                got,
            } => write!(
                f,
                "scheme family {family:?} takes {expected} parameter(s), got {got}"
            ),
            SchemeSpecError::BadNumber { family, value } => {
                write!(f, "scheme family {family:?}: {value:?} is not a number")
            }
        }
    }
}

impl std::error::Error for SchemeSpecError {}

impl SchemeSpec {
    /// The family name this spec prints and parses under.
    pub fn family(&self) -> &'static str {
        match self {
            SchemeSpec::None => "none",
            SchemeSpec::Bernoulli { .. } => "bernoulli",
            SchemeSpec::Divergent { .. } => "divergent",
            SchemeSpec::Row { .. } => "row",
            SchemeSpec::Tile { .. } => "tile",
            SchemeSpec::Nm { .. } => "nm",
            SchemeSpec::Block { .. } => "block",
            SchemeSpec::Crs { .. } => "crs",
            SchemeSpec::RowCrs { .. } => "row_crs",
            SchemeSpec::Transformer { .. } => "transformer",
        }
    }

    /// Checks parameter ranges without running the (potentially expensive)
    /// pattern-distribution search that [`SchemeSpec::build`] performs.
    pub fn validate(&self) -> Result<(), DropoutError> {
        let rate_ok = |r: f64| DropoutRate::new(r).map(|_| ());
        match *self {
            SchemeSpec::None => Ok(()),
            SchemeSpec::Bernoulli { rate } | SchemeSpec::Divergent { rate } => rate_ok(rate),
            SchemeSpec::Row { rate, max_dp } => {
                rate_ok(rate)?;
                if max_dp < 2 {
                    return Err(DropoutError::InvalidPattern(format!(
                        "row scheme needs max_dp >= 2, got {max_dp}"
                    )));
                }
                Ok(())
            }
            SchemeSpec::Tile { rate, max_dp, tile } => {
                rate_ok(rate)?;
                if max_dp < 2 {
                    return Err(DropoutError::InvalidPattern(format!(
                        "tile scheme needs max_dp >= 2, got {max_dp}"
                    )));
                }
                if tile == 0 {
                    return Err(DropoutError::InvalidPattern(
                        "tile scheme needs a nonzero tile edge".into(),
                    ));
                }
                Ok(())
            }
            SchemeSpec::Nm { n, m } => {
                if n == 0 || m == 0 || n > m {
                    return Err(DropoutError::InvalidPattern(format!(
                        "n:m sparsity needs 1 <= n <= m, got {n}:{m}"
                    )));
                }
                Ok(())
            }
            SchemeSpec::Block { rate, block } => {
                rate_ok(rate)?;
                if block == 0 {
                    return Err(DropoutError::InvalidPattern(
                        "block scheme needs a nonzero block width".into(),
                    ));
                }
                Ok(())
            }
            SchemeSpec::Crs { keep } => {
                if !(keep > 0.0 && keep <= 1.0) {
                    return Err(DropoutError::InvalidPattern(format!(
                        "crs keep fraction must be in (0, 1], got {keep}"
                    )));
                }
                Ok(())
            }
            SchemeSpec::RowCrs { rate, max_dp, keep } => {
                SchemeSpec::Row { rate, max_dp }.validate()?;
                SchemeSpec::Crs { keep }.validate()
            }
            SchemeSpec::Transformer { rate, head_dim } => {
                rate_ok(rate)?;
                if head_dim == 0 {
                    return Err(DropoutError::InvalidPattern(
                        "transformer scheme needs a nonzero head_dim".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Materializes the boxed [`DropoutScheme`] (running Algorithm 1 for
    /// the pattern families), or reports why the configuration is invalid.
    pub fn build(&self) -> Result<Box<dyn DropoutScheme>, DropoutError> {
        let rate = |r: f64| DropoutRate::new(r);
        match *self {
            SchemeSpec::None => Ok(scheme::none()),
            SchemeSpec::Bernoulli { rate: r } => Ok(scheme::bernoulli(rate(r)?)),
            SchemeSpec::Divergent { rate: r } => Ok(scheme::divergent_bernoulli(rate(r)?)),
            SchemeSpec::Row { rate: r, max_dp } => scheme::row(rate(r)?, max_dp),
            SchemeSpec::Tile {
                rate: r,
                max_dp,
                tile,
            } => scheme::tile(rate(r)?, max_dp, tile),
            SchemeSpec::Nm { n, m } => scheme::nm(n, m),
            SchemeSpec::Block { rate: r, block } => scheme::block_unit(rate(r)?, block),
            SchemeSpec::Crs { keep } => scheme::crs(keep),
            SchemeSpec::RowCrs {
                rate: r,
                max_dp,
                keep,
            } => scheme::row_crs(rate(r)?, max_dp, keep),
            SchemeSpec::Transformer { rate: r, head_dim } => scheme::block_unit(rate(r)?, head_dim),
        }
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchemeSpec::None => write!(f, "none"),
            SchemeSpec::Bernoulli { rate } => write!(f, "bernoulli:{rate}"),
            SchemeSpec::Divergent { rate } => write!(f, "divergent:{rate}"),
            SchemeSpec::Row { rate, max_dp } => write!(f, "row:{rate}:{max_dp}"),
            SchemeSpec::Tile { rate, max_dp, tile } => write!(f, "tile:{rate}:{max_dp}:{tile}"),
            SchemeSpec::Nm { n, m } => write!(f, "nm:{n}:{m}"),
            SchemeSpec::Block { rate, block } => write!(f, "block:{rate}:{block}"),
            SchemeSpec::Crs { keep } => write!(f, "crs:{keep}"),
            SchemeSpec::RowCrs { rate, max_dp, keep } => {
                write!(f, "row_crs:{rate}:{max_dp}:{keep}")
            }
            SchemeSpec::Transformer { rate, head_dim } => {
                write!(f, "transformer:{rate}:{head_dim}")
            }
        }
    }
}

impl FromStr for SchemeSpec {
    type Err = SchemeSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let family = parts.next().unwrap_or("").trim();
        let params: Vec<&str> = parts.map(str::trim).collect();
        let arity = |name: &'static str, expected: usize| {
            if params.len() == expected {
                Ok(())
            } else {
                Err(SchemeSpecError::WrongArity {
                    family: name,
                    expected,
                    got: params.len(),
                })
            }
        };
        fn num<T: FromStr>(family: &'static str, value: &str) -> Result<T, SchemeSpecError> {
            value.parse().map_err(|_| SchemeSpecError::BadNumber {
                family,
                value: value.to_string(),
            })
        }
        match family {
            "none" => {
                arity("none", 0)?;
                Ok(SchemeSpec::None)
            }
            "bernoulli" => {
                arity("bernoulli", 1)?;
                Ok(SchemeSpec::Bernoulli {
                    rate: num("bernoulli", params[0])?,
                })
            }
            "divergent" => {
                arity("divergent", 1)?;
                Ok(SchemeSpec::Divergent {
                    rate: num("divergent", params[0])?,
                })
            }
            "row" => {
                arity("row", 2)?;
                Ok(SchemeSpec::Row {
                    rate: num("row", params[0])?,
                    max_dp: num("row", params[1])?,
                })
            }
            "tile" => {
                arity("tile", 3)?;
                Ok(SchemeSpec::Tile {
                    rate: num("tile", params[0])?,
                    max_dp: num("tile", params[1])?,
                    tile: num("tile", params[2])?,
                })
            }
            "nm" => {
                arity("nm", 2)?;
                Ok(SchemeSpec::Nm {
                    n: num("nm", params[0])?,
                    m: num("nm", params[1])?,
                })
            }
            "block" => {
                arity("block", 2)?;
                Ok(SchemeSpec::Block {
                    rate: num("block", params[0])?,
                    block: num("block", params[1])?,
                })
            }
            "crs" => {
                arity("crs", 1)?;
                Ok(SchemeSpec::Crs {
                    keep: num("crs", params[0])?,
                })
            }
            "row_crs" => {
                arity("row_crs", 3)?;
                Ok(SchemeSpec::RowCrs {
                    rate: num("row_crs", params[0])?,
                    max_dp: num("row_crs", params[1])?,
                    keep: num("row_crs", params[2])?,
                })
            }
            "transformer" => {
                arity("transformer", 2)?;
                Ok(SchemeSpec::Transformer {
                    rate: num("transformer", params[0])?,
                    head_dim: num("transformer", params[1])?,
                })
            }
            other => Err(SchemeSpecError::UnknownFamily(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One spec per family, all valid — the round-trip corpus.
    fn corpus() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::None,
            SchemeSpec::Bernoulli { rate: 0.5 },
            SchemeSpec::Divergent { rate: 0.3 },
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 8,
            },
            SchemeSpec::Tile {
                rate: 0.5,
                max_dp: 8,
                tile: 32,
            },
            SchemeSpec::Nm { n: 2, m: 4 },
            SchemeSpec::Block {
                rate: 0.5,
                block: 16,
            },
            SchemeSpec::Crs { keep: 0.5 },
            SchemeSpec::RowCrs {
                rate: 0.5,
                max_dp: 8,
                keep: 0.75,
            },
            SchemeSpec::Transformer {
                rate: 0.25,
                head_dim: 64,
            },
        ]
    }

    #[test]
    fn display_then_parse_round_trips_every_family() {
        for spec in corpus() {
            let text = spec.to_string();
            let parsed: SchemeSpec = text.parse().expect("printed spec must parse");
            assert_eq!(parsed, spec, "round trip through {text:?}");
        }
    }

    #[test]
    fn every_corpus_spec_validates_and_builds() {
        for spec in corpus() {
            spec.validate().expect("corpus specs are valid");
            let built = spec.build().expect("corpus specs must build");
            if let SchemeSpec::None = spec {
                assert_eq!(built.label(), "none");
            }
        }
    }

    #[test]
    fn canonical_strings_parse() {
        for (text, spec) in [
            (
                "row:0.5:8",
                SchemeSpec::Row {
                    rate: 0.5,
                    max_dp: 8,
                },
            ),
            ("nm:2:4", SchemeSpec::Nm { n: 2, m: 4 }),
            ("crs:0.5", SchemeSpec::Crs { keep: 0.5 }),
            (
                "transformer:0.25:64",
                SchemeSpec::Transformer {
                    rate: 0.25,
                    head_dim: 64,
                },
            ),
        ] {
            assert_eq!(text.parse::<SchemeSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        assert_eq!(
            "gaussian:0.5".parse::<SchemeSpec>(),
            Err(SchemeSpecError::UnknownFamily("gaussian".into()))
        );
        assert_eq!(
            "row:0.5".parse::<SchemeSpec>(),
            Err(SchemeSpecError::WrongArity {
                family: "row",
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            "crs:lots".parse::<SchemeSpec>(),
            Err(SchemeSpecError::BadNumber {
                family: "crs",
                value: "lots".into()
            })
        );
        assert!("gaussian:0.5"
            .parse::<SchemeSpec>()
            .unwrap_err()
            .to_string()
            .contains("gaussian"));
    }

    #[test]
    fn validate_rejects_out_of_range_parameters() {
        assert!(SchemeSpec::Bernoulli { rate: 1.5 }.validate().is_err());
        assert!(SchemeSpec::Row {
            rate: 0.5,
            max_dp: 1
        }
        .validate()
        .is_err());
        assert!(SchemeSpec::Nm { n: 5, m: 4 }.validate().is_err());
        assert!(SchemeSpec::Crs { keep: 0.0 }.validate().is_err());
        assert!(SchemeSpec::Block {
            rate: 0.5,
            block: 0
        }
        .validate()
        .is_err());
        assert!(SchemeSpec::Transformer {
            rate: 0.25,
            head_dim: 0
        }
        .validate()
        .is_err());
        assert!(SchemeSpec::Transformer {
            rate: 1.5,
            head_dim: 64
        }
        .validate()
        .is_err());
    }
}
