//! The *plan* half of the plan–execute dropout API.
//!
//! The paper's central observation is that a regular dropout pattern is known
//! **before** the GEMM is launched, so the kernel can be planned around it:
//! compact operands, `1/dp` of the work, no mask kernel. [`DropoutPlan`]
//! captures exactly that pre-launch decision for one training iteration of
//! one layer. Every consumer — the CPU forward/backward passes in `nn` and
//! the GPU timing model in `gpu_sim` — reads the *same* plan object, so
//! training numerics and speedup figures can never drift apart.
//!
//! A plan is produced by [`crate::DropoutScheme::plan`] and exposes:
//!
//! * [`DropoutPlan::compact_rows`] — kept output neurons for a row-compacted
//!   GEMM (`None` when the GEMM is dense),
//! * [`DropoutPlan::kept_tiles`] — kept weight tiles for a tile-compacted
//!   GEMM,
//! * [`DropoutPlan::mask_activations`] / [`DropoutPlan::apply_mask`] — the
//!   post-GEMM Bernoulli mask of the conventional baseline,
//! * [`DropoutPlan::column_multiplier`] — the per-output-unit multiplier the
//!   LSTM applies between stacked layers,
//! * [`DropoutPlan::active_output_fraction`] — how much of the layer output
//!   the *next* layer still has to process,
//! * [`DropoutPlan::kernel_schedule`] — the kernel launches this plan implies
//!   on a GPU, consumed by the `gpu_sim` timing model.

use crate::pattern::{SampledPattern, TileGrid};
use crate::structured::{StructuredKind, StructuredUnits};
use tensor::{Activation, Matrix};

/// Shape of the layer a plan is resolved against: the weight matrix is
/// `in_features × out_features` and dropout acts on the output units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Input width of the layer (rows of the weight matrix).
    pub in_features: usize,
    /// Output width of the layer (columns of the weight matrix; the units
    /// dropout acts on).
    pub out_features: usize,
}

impl LayerShape {
    /// Creates a shape for an `in_features × out_features` layer.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        Self {
            in_features,
            out_features,
        }
    }

    /// Shape of a per-unit dropout site with no meaningful input width, as
    /// used for the inter-layer dropout of the LSTM (`1 × width`).
    pub fn vector(width: usize) -> Self {
        Self::new(1, width)
    }
}

/// Device-independent description of the kernel launches a [`DropoutPlan`]
/// implies for one layer's GEMMs — the contract between a sampled plan and
/// the `gpu_sim` timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelSchedule {
    /// Dense GEMM, no dropout kernels at all.
    Dense,
    /// Dense GEMM plus the mask-generation and mask-multiply kernels of the
    /// conventional baseline (paper Fig. 1(a)).
    DenseWithMask,
    /// Dense GEMM with naive `if (kept)` skipping inside the kernel (paper
    /// Fig. 1(b)): pays the SIMT divergence penalty and skips nothing.
    DenseDivergent {
        /// Dropout rate determining how many warps diverge.
        rate: f64,
    },
    /// Row-compacted GEMM over `kept` of `total` output neurons (RDP).
    RowCompact {
        /// Output neurons actually computed.
        kept: usize,
        /// Output neurons of the full layer.
        total: usize,
    },
    /// Tile-compacted GEMM over `kept` of `total` weight tiles (TDP).
    TileCompact {
        /// Weight tiles participating in the GEMM.
        kept: usize,
        /// Tiles in the full weight grid.
        total: usize,
    },
    /// Group-compacted GEMM under N:M fine-grained sparsity: exactly `n` of
    /// every `m` consecutive output lanes are computed, so the executed
    /// fraction is the constant `n/m`.
    NmCompact {
        /// Kept lanes per group.
        n: usize,
        /// Group size.
        m: usize,
    },
    /// Block-compacted GEMM under structured unit dropout: `kept` of `total`
    /// contiguous `block`-wide output-neuron blocks are computed as dense
    /// column strips.
    BlockCompact {
        /// Blocks participating in the GEMM.
        kept: usize,
        /// Blocks the layer's outputs split into.
        total: usize,
        /// Block width in neurons.
        block: usize,
    },
    /// Sampled GEMM under column-row sampling (CRS, arXiv:1805.08079): only
    /// `kept_k` of the `total_k` inner products are computed, the product is
    /// scaled by `K/k` for unbiasedness, and the output stays full-width
    /// dense — the compaction is on the *inner* dimension, orthogonal to
    /// every output-neuron dropout family above.
    CrsCompact {
        /// Inner-dimension indices actually multiplied.
        kept_k: usize,
        /// Inner dimension of the full GEMM.
        total_k: usize,
    },
    /// Composed row-dropout × CRS launch: the N dimension is compacted by a
    /// row dropout plan while the K dimension is sampled by CRS in the same
    /// kernel call, so the executed fraction is the *product* of both axes.
    RowCrsCompact {
        /// Output neurons actually computed.
        kept_n: usize,
        /// Output neurons of the full layer.
        total_n: usize,
        /// Inner-dimension indices actually multiplied.
        kept_k: usize,
        /// Inner dimension of the full GEMM.
        total_k: usize,
    },
    /// Fused whole-layer launch: the GEMM runs `body`'s compaction and the
    /// bias add + activation execute in the kernel's write-back loop — one
    /// launch per layer instead of the GEMM → bias/activation elementwise
    /// chain, so launch overhead and the extra pass over the activation
    /// matrix are paid once, not per epilogue kernel.
    Fused {
        /// Compaction of the GEMM body (mirrors the stand-alone variants).
        body: FusedBody,
        /// Activation fused into the epilogue.
        activation: Activation,
    },
}

/// GEMM-body compaction of a fused whole-layer launch
/// ([`KernelSchedule::Fused`]) — a carbon copy of the stand-alone
/// [`KernelSchedule`] variants, flattened so the schedule stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedBody {
    /// Dense GEMM body.
    Dense,
    /// Dense GEMM body whose Bernoulli column mask is folded into the fused
    /// epilogue; the mask-*generation* kernel still runs separately.
    DenseWithMask,
    /// Dense GEMM body with naive in-kernel `if (kept)` skipping.
    DenseDivergent {
        /// Dropout rate determining how many warps diverge.
        rate: f64,
    },
    /// Row-compacted body over `kept` of `total` output neurons.
    RowCompact {
        /// Output neurons actually computed.
        kept: usize,
        /// Output neurons of the full layer.
        total: usize,
    },
    /// Tile-compacted body over `kept` of `total` weight tiles.
    TileCompact {
        /// Weight tiles participating in the GEMM.
        kept: usize,
        /// Tiles in the full weight grid.
        total: usize,
    },
    /// Group-compacted body under N:M structured sparsity.
    NmCompact {
        /// Kept lanes per group.
        n: usize,
        /// Group size.
        m: usize,
    },
    /// Block-compacted body over `kept` of `total` `block`-wide strips.
    BlockCompact {
        /// Blocks participating in the GEMM.
        kept: usize,
        /// Blocks the layer's outputs split into.
        total: usize,
        /// Block width in neurons.
        block: usize,
    },
    /// CRS-sampled body over `kept_k` of `total_k` inner products.
    CrsCompact {
        /// Inner-dimension indices actually multiplied.
        kept_k: usize,
        /// Inner dimension of the full GEMM.
        total_k: usize,
    },
    /// Composed row-dropout × CRS body.
    RowCrsCompact {
        /// Output neurons actually computed.
        kept_n: usize,
        /// Output neurons of the full layer.
        total_n: usize,
        /// Inner-dimension indices actually multiplied.
        kept_k: usize,
        /// Inner dimension of the full GEMM.
        total_k: usize,
    },
}

impl FusedBody {
    /// The stand-alone (unfused) schedule this body corresponds to.
    pub fn schedule(self) -> KernelSchedule {
        match self {
            FusedBody::Dense => KernelSchedule::Dense,
            FusedBody::DenseWithMask => KernelSchedule::DenseWithMask,
            FusedBody::DenseDivergent { rate } => KernelSchedule::DenseDivergent { rate },
            FusedBody::RowCompact { kept, total } => KernelSchedule::RowCompact { kept, total },
            FusedBody::TileCompact { kept, total } => KernelSchedule::TileCompact { kept, total },
            FusedBody::NmCompact { n, m } => KernelSchedule::NmCompact { n, m },
            FusedBody::BlockCompact { kept, total, block } => {
                KernelSchedule::BlockCompact { kept, total, block }
            }
            FusedBody::CrsCompact { kept_k, total_k } => {
                KernelSchedule::CrsCompact { kept_k, total_k }
            }
            FusedBody::RowCrsCompact {
                kept_n,
                total_n,
                kept_k,
                total_k,
            } => KernelSchedule::RowCrsCompact {
                kept_n,
                total_n,
                kept_k,
                total_k,
            },
        }
    }
}

impl KernelSchedule {
    /// Fraction of the dense GEMM work the scheduled kernel actually
    /// executes (1.0 for every dense variant).
    pub fn kept_fraction(&self) -> f64 {
        match *self {
            KernelSchedule::RowCompact { kept, total }
            | KernelSchedule::TileCompact { kept, total }
            | KernelSchedule::BlockCompact { kept, total, .. } => {
                if total == 0 {
                    1.0
                } else {
                    kept as f64 / total as f64
                }
            }
            KernelSchedule::NmCompact { n, m } => n as f64 / m as f64,
            KernelSchedule::CrsCompact { kept_k, total_k } => {
                if total_k == 0 {
                    1.0
                } else {
                    kept_k as f64 / total_k as f64
                }
            }
            KernelSchedule::RowCrsCompact {
                kept_n,
                total_n,
                kept_k,
                total_k,
            } => {
                // Both axes compact independently, so the executed fraction
                // of the dense GEMM is the product of the two ratios.
                KernelSchedule::RowCompact {
                    kept: kept_n,
                    total: total_n,
                }
                .kept_fraction()
                    * KernelSchedule::CrsCompact { kept_k, total_k }.kept_fraction()
            }
            KernelSchedule::Fused { body, .. } => body.schedule().kept_fraction(),
            _ => 1.0,
        }
    }

    /// `true` when the plan pays for separate dropout-mask kernels. (A fused
    /// masked layer folds the mask *multiply* into its epilogue but still
    /// launches the mask-generation kernel.)
    pub fn needs_mask_kernel(&self) -> bool {
        matches!(
            self,
            KernelSchedule::DenseWithMask
                | KernelSchedule::Fused {
                    body: FusedBody::DenseWithMask,
                    ..
                }
        )
    }

    /// `true` when the GEMM operands are compacted before launch.
    pub fn is_compacted(&self) -> bool {
        match *self {
            KernelSchedule::RowCompact { .. }
            | KernelSchedule::TileCompact { .. }
            | KernelSchedule::NmCompact { .. }
            | KernelSchedule::BlockCompact { .. }
            | KernelSchedule::CrsCompact { .. }
            | KernelSchedule::RowCrsCompact { .. } => true,
            KernelSchedule::Fused { body, .. } => body.schedule().is_compacted(),
            _ => false,
        }
    }

    /// The fused whole-layer form of this schedule with `activation` in the
    /// epilogue. An already-fused schedule keeps its body and only swaps the
    /// activation. This is how an executor (or the timing model) declares
    /// that a layer's bias/activation epilogue rides inside the GEMM launch.
    pub fn fused(self, activation: Activation) -> KernelSchedule {
        let body = match self {
            KernelSchedule::Dense => FusedBody::Dense,
            KernelSchedule::DenseWithMask => FusedBody::DenseWithMask,
            KernelSchedule::DenseDivergent { rate } => FusedBody::DenseDivergent { rate },
            KernelSchedule::RowCompact { kept, total } => FusedBody::RowCompact { kept, total },
            KernelSchedule::TileCompact { kept, total } => FusedBody::TileCompact { kept, total },
            KernelSchedule::NmCompact { n, m } => FusedBody::NmCompact { n, m },
            KernelSchedule::BlockCompact { kept, total, block } => {
                FusedBody::BlockCompact { kept, total, block }
            }
            KernelSchedule::CrsCompact { kept_k, total_k } => {
                FusedBody::CrsCompact { kept_k, total_k }
            }
            KernelSchedule::RowCrsCompact {
                kept_n,
                total_n,
                kept_k,
                total_k,
            } => FusedBody::RowCrsCompact {
                kept_n,
                total_n,
                kept_k,
                total_k,
            },
            KernelSchedule::Fused { body, .. } => body,
        };
        KernelSchedule::Fused { body, activation }
    }

    /// The stand-alone form of this schedule (identity for non-fused ones).
    pub fn unfused(self) -> KernelSchedule {
        match self {
            KernelSchedule::Fused { body, .. } => body.schedule(),
            other => other,
        }
    }
}

/// The sampled column-row selection (CRS, arXiv:1805.08079) a plan carries
/// when its GEMM is K-dimension sampled: the kept inner indices in ascending
/// order, the full inner width, and the `K/k` unbiasedness scale.
///
/// The CRS scale is deliberately *not* folded into [`DropoutPlan::scale`]:
/// the dropout scale multiplies post-bias activations while the CRS scale
/// corrects the raw GEMM product *before* the bias is added, so the two live
/// on different sides of the epilogue.
#[derive(Debug, PartialEq)]
pub struct CrsSelection {
    /// Kept inner-dimension indices, strictly ascending.
    kept: Vec<usize>,
    /// Inner dimension of the full GEMM.
    total: usize,
}

impl Clone for CrsSelection {
    fn clone(&self) -> Self {
        Self {
            kept: self.kept.clone(),
            total: self.total,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.kept.clone_from(&source.kept);
        self.total = source.total;
    }
}

impl CrsSelection {
    /// An empty selection — the natural initial state of a recycled buffer.
    pub fn empty() -> Self {
        Self {
            kept: Vec::new(),
            total: 0,
        }
    }

    /// Re-resolves the selection in place, recycling the kept-index vector:
    /// `fill` receives the cleared vector and must push kept inner indices
    /// in strictly ascending order, at least one unless `total` is zero.
    fn resolve(&mut self, total: usize, fill: impl FnOnce(&mut Vec<usize>)) {
        self.total = total;
        self.kept.clear();
        fill(&mut self.kept);
        assert!(
            !self.kept.is_empty() || total == 0,
            "CRS must keep at least one inner index"
        );
        debug_assert!(
            self.kept.windows(2).all(|w| w[0] < w[1]),
            "kept inner indices must be strictly ascending"
        );
        debug_assert!(
            self.kept.iter().all(|&i| i < total),
            "kept inner index out of bounds"
        );
    }

    /// Kept inner-dimension indices in ascending order.
    pub fn kept_indices(&self) -> &[usize] {
        &self.kept
    }

    /// Inner dimension of the full GEMM.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The `K/k` unbiasedness multiplier for the sampled product — exactly
    /// 1.0 in the `k == K` degeneracy so the dense path is reproduced
    /// bitwise.
    pub fn scale(&self) -> f32 {
        if self.kept.is_empty() || self.kept.len() == self.total {
            1.0
        } else {
            self.total as f32 / self.kept.len() as f32
        }
    }
}

/// The concrete dropout decision for one iteration of one layer, produced by
/// [`crate::DropoutScheme::plan`] before any GEMM runs.
///
/// A plan is also a *reusable buffer*: [`crate::DropoutScheme::plan_into`]
/// re-resolves an existing plan in place through the `reset_*` methods, so
/// the kept-index / mask vectors are recycled across training iterations
/// instead of being reallocated every step.
#[derive(Debug, PartialEq)]
pub struct DropoutPlan {
    shape: LayerShape,
    /// Inverted-dropout multiplier for kept units (1.0 when nothing is
    /// dropped).
    scale: f32,
    /// Sampled row pattern (kept output neurons), if this is a row plan.
    rows: Option<SampledPattern>,
    /// Sampled tile pattern and the weight grid it was resolved against, if
    /// this is a tile plan.
    tiles: Option<(SampledPattern, TileGrid)>,
    /// Per-output-neuron 0/1 Bernoulli mask (1 = kept), if this is a
    /// conventional plan.
    mask: Option<Vec<f32>>,
    /// Sampled structured-sparsity decision (N:M lanes or unit blocks), if
    /// this is a structured plan.
    structured: Option<StructuredUnits>,
    /// Sampled inner-dimension (CRS) selection, if this plan's GEMM is
    /// K-sampled. Orthogonal to the output-neuron families above and may
    /// coexist with `rows` (the composed row × CRS launch).
    crs: Option<CrsSelection>,
    schedule: KernelSchedule,
    nominal_rate: f64,
}

impl Clone for DropoutPlan {
    fn clone(&self) -> Self {
        Self {
            shape: self.shape,
            scale: self.scale,
            rows: self.rows.clone(),
            tiles: self.tiles.clone(),
            mask: self.mask.clone(),
            structured: self.structured.clone(),
            crs: self.crs.clone(),
            schedule: self.schedule,
            nominal_rate: self.nominal_rate,
        }
    }

    /// Copies `source` into `self`, reusing the kept-index / mask buffers
    /// whenever both sides hold the same plan family. This is what lets a
    /// layer cache the iteration's plan without a per-step allocation.
    fn clone_from(&mut self, source: &Self) {
        self.shape = source.shape;
        self.scale = source.scale;
        self.schedule = source.schedule;
        self.nominal_rate = source.nominal_rate;
        match (&mut self.rows, &source.rows) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.tiles, &source.tiles) {
            (Some((dst, dst_grid)), Some((src, src_grid))) => {
                dst.clone_from(src);
                *dst_grid = *src_grid;
            }
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.mask, &source.mask) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.structured, &source.structured) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.crs, &source.crs) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl Default for DropoutPlan {
    /// An identity plan for a degenerate `0 × 0` layer — the natural initial
    /// state of a reusable plan buffer.
    fn default() -> Self {
        Self::none(LayerShape::new(0, 0))
    }
}

impl DropoutPlan {
    /// A plan that drops nothing and schedules a plain dense GEMM.
    pub fn none(shape: LayerShape) -> Self {
        Self {
            shape,
            scale: 1.0,
            rows: None,
            tiles: None,
            mask: None,
            structured: None,
            crs: None,
            schedule: KernelSchedule::Dense,
            nominal_rate: 0.0,
        }
    }

    /// A conventional-dropout plan: dense GEMM followed by the given
    /// per-output-neuron 0/1 mask with inverted-dropout `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match `shape.out_features`.
    pub fn bernoulli(shape: LayerShape, mask: Vec<f32>, scale: f32, nominal_rate: f64) -> Self {
        assert_eq!(
            mask.len(),
            shape.out_features,
            "mask length must match out_features"
        );
        Self {
            shape,
            scale,
            rows: None,
            tiles: None,
            mask: Some(mask),
            structured: None,
            crs: None,
            schedule: KernelSchedule::DenseWithMask,
            nominal_rate,
        }
    }

    /// Like [`DropoutPlan::bernoulli`] but scheduling the naive in-kernel
    /// `if (kept)` skip of Fig. 1(b) instead of mask kernels — numerically
    /// identical, slower on a SIMT device.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match `shape.out_features`.
    pub fn divergent(shape: LayerShape, mask: Vec<f32>, scale: f32, nominal_rate: f64) -> Self {
        let mut plan = Self::bernoulli(shape, mask, scale, nominal_rate);
        plan.schedule = KernelSchedule::DenseDivergent { rate: nominal_rate };
        plan
    }

    /// A row-pattern plan: compacted GEMM over the pattern's kept output
    /// neurons, kept outputs scaled by `dp`.
    pub fn row(shape: LayerShape, pattern: SampledPattern) -> Self {
        let schedule = KernelSchedule::RowCompact {
            kept: pattern.kept_indices().len(),
            total: pattern.unit_count(),
        };
        Self {
            shape,
            scale: pattern.inverted_scale(),
            nominal_rate: pattern.nominal_rate().value(),
            rows: Some(pattern),
            tiles: None,
            mask: None,
            structured: None,
            crs: None,
            schedule,
        }
    }

    /// A tile-pattern plan: compacted GEMM over the pattern's kept weight
    /// tiles, the product scaled by `dp`.
    pub fn tile(shape: LayerShape, pattern: SampledPattern, grid: TileGrid) -> Self {
        let schedule = KernelSchedule::TileCompact {
            kept: pattern.kept_indices().len(),
            total: grid.total_tiles(),
        };
        Self {
            shape,
            scale: pattern.inverted_scale(),
            nominal_rate: pattern.nominal_rate().value(),
            rows: None,
            tiles: Some((pattern, grid)),
            mask: None,
            structured: None,
            crs: None,
            schedule,
        }
    }

    /// An N:M structured-sparsity plan: group-compacted GEMM over the kept
    /// lanes (`n` of every `m` consecutive output neurons), kept outputs
    /// scaled by `m/n`.
    pub fn nm(shape: LayerShape, n: usize, m: usize, kept: Vec<usize>) -> Self {
        let mut plan = Self::none(shape);
        plan.reset_nm_with(shape, n, m, |buf| *buf = kept);
        plan
    }

    /// A block-structured unit-dropout plan: block-compacted GEMM over the
    /// kept contiguous `block`-wide output-neuron blocks, kept outputs
    /// scaled by the inverted-dropout `scale`.
    pub fn block_unit(
        shape: LayerShape,
        block: usize,
        kept_blocks: Vec<usize>,
        scale: f32,
        nominal_rate: f64,
    ) -> Self {
        let mut plan = Self::none(shape);
        plan.reset_block_unit_with(shape, block, scale, nominal_rate, |buf| *buf = kept_blocks);
        plan
    }

    /// Extracts whichever sampled-pattern buffer the plan currently holds so
    /// a `reset_*` call can recycle its kept-index vector.
    fn take_pattern_buffer(&mut self) -> SampledPattern {
        if let Some(pattern) = self.rows.take() {
            pattern
        } else if let Some((pattern, _)) = self.tiles.take() {
            pattern
        } else {
            SampledPattern::empty()
        }
    }

    /// Extracts whichever structured-units buffer the plan currently holds
    /// so a `reset_nm_with` / `reset_block_unit_with` call can recycle its
    /// kept-index vector.
    fn take_structured_buffer(&mut self) -> StructuredUnits {
        self.structured
            .take()
            .unwrap_or_else(StructuredUnits::empty)
    }

    /// Extracts the CRS-selection buffer (if any) so a `reset_crs_with` /
    /// `attach_crs_with` call can recycle its kept-index vector.
    fn take_crs_buffer(&mut self) -> CrsSelection {
        self.crs.take().unwrap_or_else(CrsSelection::empty)
    }

    /// Re-resolves this plan in place as the identity (dense GEMM, nothing
    /// dropped).
    pub fn reset_none(&mut self, shape: LayerShape) {
        self.shape = shape;
        self.scale = 1.0;
        self.rows = None;
        self.tiles = None;
        self.mask = None;
        self.structured = None;
        self.crs = None;
        self.schedule = KernelSchedule::Dense;
        self.nominal_rate = 0.0;
    }

    /// Re-resolves this plan in place as a conventional-dropout plan,
    /// recycling the mask buffer: `fill` receives the cleared vector and must
    /// push exactly `shape.out_features` 0/1 entries.
    ///
    /// # Panics
    ///
    /// Panics if `fill` leaves the mask with the wrong length.
    pub fn reset_bernoulli_with(
        &mut self,
        shape: LayerShape,
        scale: f32,
        nominal_rate: f64,
        fill: impl FnOnce(&mut Vec<f32>),
    ) {
        let mut mask = self.mask.take().unwrap_or_default();
        mask.clear();
        fill(&mut mask);
        assert_eq!(
            mask.len(),
            shape.out_features,
            "mask length must match out_features"
        );
        self.shape = shape;
        self.scale = scale;
        self.rows = None;
        self.tiles = None;
        self.mask = Some(mask);
        self.structured = None;
        self.crs = None;
        self.schedule = KernelSchedule::DenseWithMask;
        self.nominal_rate = nominal_rate;
    }

    /// Like [`DropoutPlan::reset_bernoulli_with`] but scheduling the naive
    /// in-kernel `if (kept)` skip of Fig. 1(b).
    ///
    /// # Panics
    ///
    /// Panics if `fill` leaves the mask with the wrong length.
    pub fn reset_divergent_with(
        &mut self,
        shape: LayerShape,
        scale: f32,
        nominal_rate: f64,
        fill: impl FnOnce(&mut Vec<f32>),
    ) {
        self.reset_bernoulli_with(shape, scale, nominal_rate, fill);
        self.schedule = KernelSchedule::DenseDivergent { rate: nominal_rate };
    }

    /// Re-resolves this plan in place as a row plan for `pattern`, recycling
    /// the kept-index buffer. Equivalent to (but allocation-free compared
    /// with) rebuilding through [`DropoutPlan::row`].
    pub fn reset_row(&mut self, shape: LayerShape, pattern: crate::pattern::RowPattern) {
        let mut sampled = self.take_pattern_buffer();
        sampled.resolve_row(pattern, shape.out_features);
        self.schedule = KernelSchedule::RowCompact {
            kept: sampled.kept_indices().len(),
            total: sampled.unit_count(),
        };
        self.scale = sampled.inverted_scale();
        self.nominal_rate = sampled.nominal_rate().value();
        self.shape = shape;
        self.rows = Some(sampled);
        self.tiles = None;
        self.mask = None;
        self.structured = None;
        self.crs = None;
    }

    /// Re-resolves this plan in place as a tile plan for `pattern` on `grid`,
    /// recycling the kept-index buffer. Equivalent to (but allocation-free
    /// compared with) rebuilding through [`DropoutPlan::tile`].
    pub fn reset_tile(
        &mut self,
        shape: LayerShape,
        pattern: crate::pattern::TilePattern,
        grid: TileGrid,
    ) {
        let mut sampled = self.take_pattern_buffer();
        sampled.resolve_tile_units(pattern, grid.total_tiles());
        self.schedule = KernelSchedule::TileCompact {
            kept: sampled.kept_indices().len(),
            total: grid.total_tiles(),
        };
        self.scale = sampled.inverted_scale();
        self.nominal_rate = sampled.nominal_rate().value();
        self.shape = shape;
        self.rows = None;
        self.tiles = Some((sampled, grid));
        self.mask = None;
        self.structured = None;
        self.crs = None;
    }

    /// Re-resolves this plan in place as an N:M plan, recycling the
    /// kept-index buffer: `fill` receives the cleared vector and must push
    /// the kept neuron indices in ascending order (exactly `n` per complete
    /// `m`-group). Equivalent to (but allocation-free compared with)
    /// rebuilding through [`DropoutPlan::nm`].
    pub fn reset_nm_with(
        &mut self,
        shape: LayerShape,
        n: usize,
        m: usize,
        fill: impl FnOnce(&mut Vec<usize>),
    ) {
        let mut units = self.take_structured_buffer();
        units.resolve_nm(n, m, shape.out_features, fill);
        self.schedule = KernelSchedule::NmCompact { n, m };
        self.scale = m as f32 / n as f32;
        self.nominal_rate = 1.0 - n as f64 / m as f64;
        self.shape = shape;
        self.rows = None;
        self.tiles = None;
        self.mask = None;
        self.structured = Some(units);
        self.crs = None;
    }

    /// Re-resolves this plan in place as a block-unit plan, recycling the
    /// kept-index buffer: `fill` receives the cleared vector and must push
    /// kept *block* indices in ascending order. Equivalent to (but
    /// allocation-free compared with) rebuilding through
    /// [`DropoutPlan::block_unit`].
    pub fn reset_block_unit_with(
        &mut self,
        shape: LayerShape,
        block: usize,
        scale: f32,
        nominal_rate: f64,
        fill: impl FnOnce(&mut Vec<usize>),
    ) {
        let mut units = self.take_structured_buffer();
        units.resolve_block(block, shape.out_features, fill);
        let (kept, total) = match units.kind() {
            StructuredKind::Block { total, .. } => (units.kept_indices().len(), total),
            StructuredKind::Nm { .. } => unreachable!("resolve_block sets the block kind"),
        };
        self.schedule = KernelSchedule::BlockCompact { kept, total, block };
        self.scale = scale;
        self.nominal_rate = nominal_rate;
        self.shape = shape;
        self.rows = None;
        self.tiles = None;
        self.mask = None;
        self.structured = Some(units);
        self.crs = None;
    }

    /// Re-resolves this plan in place as a pure CRS-sampling plan: dense
    /// output (nothing dropped), `kept_k` of `total_k` inner products
    /// executed, recycling the kept-index buffer. `fill` receives the
    /// cleared vector and must push kept inner indices in strictly
    /// ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `fill` keeps nothing while `total_k > 0`.
    pub fn reset_crs_with(
        &mut self,
        shape: LayerShape,
        total_k: usize,
        fill: impl FnOnce(&mut Vec<usize>),
    ) {
        let mut selection = self.take_crs_buffer();
        selection.resolve(total_k, fill);
        let kept_k = selection.kept_indices().len();
        self.shape = shape;
        self.scale = 1.0;
        // CRS drops no neurons; the nominal rate records the fraction of
        // inner products skipped, which is what the pricing model needs.
        self.nominal_rate = if total_k == 0 {
            0.0
        } else {
            1.0 - kept_k as f64 / total_k as f64
        };
        self.rows = None;
        self.tiles = None;
        self.mask = None;
        self.structured = None;
        self.crs = Some(selection);
        self.schedule = KernelSchedule::CrsCompact { kept_k, total_k };
    }

    /// Attaches a CRS inner-dimension selection to an already-resolved plan,
    /// composing the two approximation axes: a dense plan upgrades to
    /// [`KernelSchedule::CrsCompact`], a row-compacted plan to the composed
    /// [`KernelSchedule::RowCrsCompact`] launch. The dropout fields (rows,
    /// scale, nominal rate) are left untouched — CRS is a GEMM
    /// approximation, not extra dropout.
    ///
    /// # Panics
    ///
    /// Panics if `fill` keeps nothing while `total_k > 0`, or if the plan's
    /// schedule is neither dense nor row-compacted (CRS does not compose
    /// with the mask, tile, N:M or block families).
    pub fn attach_crs_with(&mut self, total_k: usize, fill: impl FnOnce(&mut Vec<usize>)) {
        let mut selection = self.take_crs_buffer();
        selection.resolve(total_k, fill);
        let kept_k = selection.kept_indices().len();
        self.schedule = match self.schedule {
            KernelSchedule::Dense => KernelSchedule::CrsCompact { kept_k, total_k },
            KernelSchedule::RowCompact { kept, total } => KernelSchedule::RowCrsCompact {
                kept_n: kept,
                total_n: total,
                kept_k,
                total_k,
            },
            other => panic!("CRS composes with dense or row-compacted plans, not {other:?}"),
        };
        self.crs = Some(selection);
    }

    /// The layer shape this plan was resolved against.
    pub fn shape(&self) -> LayerShape {
        self.shape
    }

    /// Inverted-dropout multiplier applied to kept units.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Nominal dropout rate of the decision this plan encodes.
    pub fn nominal_rate(&self) -> f64 {
        self.nominal_rate
    }

    /// The kernel launches this plan implies on a GPU.
    pub fn kernel_schedule(&self) -> &KernelSchedule {
        &self.schedule
    }

    /// Kept output neurons for a row-compacted GEMM; `None` when the GEMM is
    /// dense or tile-compacted.
    pub fn compact_rows(&self) -> Option<&[usize]> {
        self.rows.as_ref().map(|p| p.kept_indices())
    }

    /// Kept weight tiles and the grid they index into, for a tile-compacted
    /// GEMM; `None` otherwise.
    pub fn kept_tiles(&self) -> Option<(&[usize], &TileGrid)> {
        self.tiles
            .as_ref()
            .map(|(p, grid)| (p.kept_indices(), grid))
    }

    /// The per-output-neuron Bernoulli mask (1 = kept), if this plan applies
    /// one after a dense GEMM.
    pub fn bernoulli_mask(&self) -> Option<&[f32]> {
        self.mask.as_deref()
    }

    /// Kept output lanes and the `(n, m)` group parameters, if this is an
    /// N:M structured-sparsity plan.
    pub fn nm_lanes(&self) -> Option<(&[usize], usize, usize)> {
        match &self.structured {
            Some(units) => match units.kind() {
                StructuredKind::Nm { n, m } => Some((units.kept_indices(), n, m)),
                StructuredKind::Block { .. } => None,
            },
            None => None,
        }
    }

    /// Kept block indices, the block width and the total block count, if
    /// this is a block-unit plan.
    pub fn kept_unit_blocks(&self) -> Option<(&[usize], usize, usize)> {
        match &self.structured {
            Some(units) => match units.kind() {
                StructuredKind::Block { block, total } => {
                    Some((units.kept_indices(), block, total))
                }
                StructuredKind::Nm { .. } => None,
            },
            None => None,
        }
    }

    /// The sampled inner-dimension (CRS) selection, if this plan's GEMM is
    /// K-sampled.
    pub fn crs_selection(&self) -> Option<&CrsSelection> {
        self.crs.as_ref()
    }

    /// The `K/k` unbiasedness multiplier the kernel applies to the sampled
    /// GEMM product before the bias (1.0 when the plan is not CRS-sampled
    /// or keeps every inner index).
    pub fn crs_scale(&self) -> f32 {
        self.crs.as_ref().map_or(1.0, CrsSelection::scale)
    }

    /// `true` when the plan performs no approximation at all.
    pub fn is_identity(&self) -> bool {
        self.rows.is_none()
            && self.tiles.is_none()
            && self.mask.is_none()
            && self.structured.is_none()
            && self.crs.is_none()
    }

    /// Per-output-column multiplier implementing this plan on an activation
    /// matrix with `n_cols` columns: kept columns carry the inverted-dropout
    /// scale, dropped columns 0, and columns beyond the plan's resolved
    /// width stay at exactly 1.0 (they are outside the dropout site and must
    /// pass through untouched).
    pub fn column_multiplier(&self, n_cols: usize) -> Vec<f32> {
        let mut mult = Vec::new();
        self.column_multiplier_into(n_cols, &mut mult);
        mult
    }

    /// Like [`DropoutPlan::column_multiplier`] but writing into a
    /// caller-owned vector so the per-iteration multiplier of the LSTM's
    /// inter-layer dropout can be recycled instead of reallocated.
    pub fn column_multiplier_into(&self, n_cols: usize, out: &mut Vec<f32>) {
        out.clear();
        if let Some(mask) = &self.mask {
            // Columns the mask does not cover are untouched (multiplier 1.0),
            // *not* rescaled: the inverted-dropout scale compensates for
            // masked columns only.
            out.extend((0..n_cols).map(|j| mask.get(j).map_or(1.0, |&m| m * self.scale)));
            return;
        }
        if let Some(pattern) = &self.rows {
            out.resize(n_cols, 0.0);
            for &j in pattern.kept_indices() {
                if j < n_cols {
                    out[j] = self.scale;
                }
            }
            for m in out.iter_mut().skip(pattern.unit_count()) {
                *m = 1.0;
            }
            return;
        }
        if let Some((pattern, grid)) = &self.tiles {
            out.resize(n_cols, 0.0);
            for &t in pattern.kept_indices() {
                if t < grid.total_tiles() {
                    let (_, cols) = grid.tile_bounds(t);
                    for c in cols {
                        if c < n_cols {
                            out[c] = self.scale;
                        }
                    }
                }
            }
            let (_, covered_cols) = grid.weight_shape();
            for m in out.iter_mut().skip(covered_cols) {
                *m = 1.0;
            }
            return;
        }
        if let Some(units) = &self.structured {
            out.resize(n_cols, 0.0);
            match units.kind() {
                StructuredKind::Nm { .. } => {
                    for &j in units.kept_indices() {
                        if j < n_cols {
                            out[j] = self.scale;
                        }
                    }
                }
                StructuredKind::Block { block, .. } => {
                    for &b in units.kept_indices() {
                        let start = (b * block).min(n_cols);
                        let end = (b * block + block).min(units.unit_count()).min(n_cols);
                        for m in &mut out[start..end] {
                            *m = self.scale;
                        }
                    }
                }
            }
            for m in out.iter_mut().skip(units.unit_count()) {
                *m = 1.0;
            }
            return;
        }
        out.resize(n_cols, 1.0);
    }

    /// Applies the conventional mask (if any) to a full activation matrix in
    /// place. Pattern plans leave the input unchanged because the compacted
    /// GEMM already produced masked output.
    pub fn apply_mask(&self, activations: &mut Matrix) {
        if let Some(mask) = &self.mask {
            let scale = self.scale;
            for i in 0..activations.rows() {
                let row = activations.row_mut(i);
                for (j, v) in row.iter_mut().enumerate() {
                    *v *= mask[j] * scale;
                }
            }
        }
    }

    /// Like [`DropoutPlan::apply_mask`] but returning a new matrix.
    pub fn mask_activations(&self, activations: &Matrix) -> Matrix {
        let mut out = activations.clone();
        self.apply_mask(&mut out);
        out
    }

    /// Fraction of this layer's output neurons that remain fully active and
    /// therefore still have to be processed by the next layer. Only row
    /// plans (which drop whole neurons) shrink this below 1.
    pub fn active_output_fraction(&self) -> f64 {
        if let Some(pattern) = &self.rows {
            return 1.0 - pattern.realized_dropout_fraction();
        }
        if let Some(units) = &self.structured {
            // Both structured families drop whole output neurons, so the
            // next layer's input shrinks just like under a row plan.
            return units.active_fraction();
        }
        1.0
    }

    /// Indices of the output neurons that still carry signal after this
    /// plan (all of them for dense and tile plans).
    pub fn active_output_neurons(&self) -> Vec<usize> {
        if let Some(pattern) = &self.rows {
            return pattern.kept_indices().to_vec();
        }
        if let Some(units) = &self.structured {
            let mut neurons = Vec::new();
            units.extend_kept_neurons(&mut neurons);
            return neurons;
        }
        if let Some(mask) = &self.mask {
            return mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m != 0.0)
                .map(|(i, _)| i)
                .collect();
        }
        (0..self.shape.out_features).collect()
    }

    /// Fraction of droppable units this plan actually zeroes.
    pub fn realized_drop_fraction(&self) -> f64 {
        if let Some(pattern) = &self.rows {
            return pattern.realized_dropout_fraction();
        }
        if let Some((pattern, _)) = &self.tiles {
            return pattern.realized_dropout_fraction();
        }
        if let Some(units) = &self.structured {
            if units.unit_count() == 0 {
                return 0.0;
            }
            return 1.0 - units.active_fraction();
        }
        if let Some(mask) = &self.mask {
            if mask.is_empty() {
                return 0.0;
            }
            return mask.iter().filter(|&&m| m == 0.0).count() as f64 / mask.len() as f64;
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{RowPattern, TilePattern};

    fn row_plan(dp: usize, bias: usize, n: usize) -> DropoutPlan {
        let pattern = SampledPattern::from_row(RowPattern::new(dp, bias).unwrap(), n);
        DropoutPlan::row(LayerShape::vector(n), pattern)
    }

    #[test]
    fn none_plan_is_identity() {
        let plan = DropoutPlan::none(LayerShape::new(4, 6));
        assert!(plan.is_identity());
        assert_eq!(plan.scale(), 1.0);
        assert_eq!(plan.column_multiplier(6), vec![1.0; 6]);
        assert_eq!(plan.active_output_fraction(), 1.0);
        assert_eq!(plan.active_output_neurons(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(plan.realized_drop_fraction(), 0.0);
        assert_eq!(*plan.kernel_schedule(), KernelSchedule::Dense);
    }

    #[test]
    fn bernoulli_plan_masks_and_scales() {
        let plan = DropoutPlan::bernoulli(LayerShape::vector(3), vec![1.0, 0.0, 1.0], 2.0, 0.5);
        assert_eq!(plan.column_multiplier(3), vec![2.0, 0.0, 2.0]);
        assert_eq!(plan.active_output_neurons(), vec![0, 2]);
        assert!((plan.realized_drop_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(plan.kernel_schedule().needs_mask_kernel());
        let x = Matrix::from_rows(&[&[3.0, 5.0, 7.0]]);
        assert_eq!(plan.mask_activations(&x).row(0), &[6.0, 0.0, 14.0]);
    }

    #[test]
    fn column_multiplier_beyond_mask_length_stays_one() {
        // Regression test: the seed implementation multiplied out-of-range
        // columns by the inverted scale (`unwrap_or(1.0) * scale`), silently
        // amplifying activations the mask never covered.
        let plan = DropoutPlan::bernoulli(LayerShape::vector(2), vec![1.0, 0.0], 2.0, 0.5);
        assert_eq!(plan.column_multiplier(4), vec![2.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn row_plan_exposes_compact_rows_and_fraction() {
        let plan = row_plan(2, 0, 10);
        assert_eq!(plan.compact_rows().unwrap(), &[0, 2, 4, 6, 8]);
        assert!(plan.kept_tiles().is_none());
        assert_eq!(plan.scale(), 2.0);
        assert!((plan.active_output_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::RowCompact { kept: 5, total: 10 }
        );
        assert_eq!(
            plan.column_multiplier(10),
            vec![2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0]
        );
    }

    #[test]
    fn row_multiplier_beyond_resolved_units_stays_one() {
        let plan = row_plan(2, 0, 4);
        assert_eq!(
            plan.column_multiplier(6),
            vec![2.0, 0.0, 2.0, 0.0, 1.0, 1.0]
        );
    }

    #[test]
    fn tile_plan_exposes_tiles_and_covers_columns() {
        let grid = TileGrid::new(4, 4, 2).unwrap(); // 2x2 tiles
        let pattern = SampledPattern::from_tile(TilePattern::new(2, 1, 2).unwrap(), &grid);
        let plan = DropoutPlan::tile(LayerShape::new(4, 4), pattern, grid);
        let (kept, g) = plan.kept_tiles().unwrap();
        assert_eq!(kept, &[1, 3]);
        assert_eq!(g.total_tiles(), 4);
        // Tiles 1 and 3 cover columns 2..4.
        assert_eq!(plan.column_multiplier(4), vec![0.0, 0.0, 2.0, 2.0]);
        assert_eq!(plan.active_output_fraction(), 1.0);
        assert!(plan.kernel_schedule().is_compacted());
        assert!((plan.kernel_schedule().kept_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mask_application_is_identity_for_pattern_plans() {
        let plan = row_plan(3, 1, 6);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        assert_eq!(plan.mask_activations(&x), x);
    }

    #[test]
    fn schedule_kept_fraction_handles_degenerate_totals() {
        assert_eq!(KernelSchedule::Dense.kept_fraction(), 1.0);
        assert_eq!(
            KernelSchedule::RowCompact { kept: 0, total: 0 }.kept_fraction(),
            1.0
        );
        assert_eq!(
            KernelSchedule::DenseDivergent { rate: 0.5 }.kept_fraction(),
            1.0
        );
    }

    #[test]
    fn fused_schedule_round_trips_and_delegates() {
        let schedules = [
            KernelSchedule::Dense,
            KernelSchedule::DenseWithMask,
            KernelSchedule::DenseDivergent { rate: 0.5 },
            KernelSchedule::RowCompact { kept: 3, total: 8 },
            KernelSchedule::TileCompact { kept: 2, total: 4 },
            KernelSchedule::NmCompact { n: 2, m: 4 },
            KernelSchedule::BlockCompact {
                kept: 1,
                total: 2,
                block: 16,
            },
            KernelSchedule::CrsCompact {
                kept_k: 4,
                total_k: 16,
            },
            KernelSchedule::RowCrsCompact {
                kept_n: 3,
                total_n: 8,
                kept_k: 4,
                total_k: 16,
            },
        ];
        for schedule in schedules {
            let fused = schedule.fused(Activation::Relu);
            assert_eq!(fused.unfused(), schedule, "{schedule:?}");
            assert_eq!(
                fused.kept_fraction(),
                schedule.kept_fraction(),
                "{schedule:?}"
            );
            assert_eq!(fused.is_compacted(), schedule.is_compacted());
            assert_eq!(fused.needs_mask_kernel(), schedule.needs_mask_kernel());
            // Re-fusing swaps only the activation.
            assert_eq!(
                fused.fused(Activation::Identity),
                schedule.fused(Activation::Identity)
            );
        }
    }

    #[test]
    #[should_panic(expected = "mask length must match")]
    fn bernoulli_plan_rejects_wrong_mask_length() {
        let _ = DropoutPlan::bernoulli(LayerShape::vector(4), vec![1.0], 2.0, 0.5);
    }

    #[test]
    fn crs_plan_samples_the_inner_dimension_only() {
        let mut plan = DropoutPlan::none(LayerShape::new(8, 6));
        plan.reset_crs_with(LayerShape::new(8, 6), 8, |kept| kept.extend([0, 2, 5, 7]));
        assert!(!plan.is_identity());
        // Output-side views are untouched: no neuron is dropped.
        assert_eq!(plan.scale(), 1.0);
        assert_eq!(plan.active_output_fraction(), 1.0);
        assert_eq!(plan.column_multiplier(6), vec![1.0; 6]);
        assert!(plan.compact_rows().is_none());
        // Inner-side views carry the selection and the K/k scale.
        let selection = plan.crs_selection().unwrap();
        assert_eq!(selection.kept_indices(), &[0, 2, 5, 7]);
        assert_eq!(selection.total(), 8);
        assert_eq!(plan.crs_scale(), 2.0);
        assert!((plan.nominal_rate() - 0.5).abs() < 1e-12);
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::CrsCompact {
                kept_k: 4,
                total_k: 8
            }
        );
        assert!((plan.kernel_schedule().kept_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crs_keeping_every_index_has_unit_scale() {
        let mut plan = DropoutPlan::default();
        plan.reset_crs_with(LayerShape::new(4, 3), 4, |kept| kept.extend(0..4));
        assert_eq!(plan.crs_scale(), 1.0);
        assert_eq!(plan.nominal_rate(), 0.0);
    }

    #[test]
    fn attach_crs_composes_with_a_row_plan() {
        let mut plan = row_plan(2, 0, 10);
        plan.attach_crs_with(6, |kept| kept.extend([1, 4, 5]));
        // The row decision is untouched…
        assert_eq!(plan.compact_rows().unwrap(), &[0, 2, 4, 6, 8]);
        assert_eq!(plan.scale(), 2.0);
        // …and the schedule is the composed launch whose executed fraction
        // is the product of both axes.
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::RowCrsCompact {
                kept_n: 5,
                total_n: 10,
                kept_k: 3,
                total_k: 6,
            }
        );
        assert!((plan.kernel_schedule().kept_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(plan.crs_scale(), 2.0);
    }

    #[test]
    fn crs_plan_buffers_are_recycled_through_clone_from_and_reset() {
        let mut plan = DropoutPlan::default();
        plan.reset_crs_with(LayerShape::new(8, 4), 8, |kept| kept.extend([0, 3, 6]));
        let ptr = plan.crs_selection().unwrap().kept_indices().as_ptr();
        plan.reset_crs_with(LayerShape::new(8, 4), 8, |kept| kept.extend([1, 2, 7]));
        assert_eq!(
            ptr,
            plan.crs_selection().unwrap().kept_indices().as_ptr(),
            "reset_crs_with must reuse the kept-index buffer"
        );
        let mut copy = plan.clone();
        plan.reset_crs_with(LayerShape::new(8, 4), 8, |kept| kept.extend([4, 5]));
        let copy_ptr = copy.crs_selection().unwrap().kept_indices().as_ptr();
        copy.clone_from(&plan);
        assert_eq!(
            copy_ptr,
            copy.crs_selection().unwrap().kept_indices().as_ptr(),
            "clone_from must reuse the destination's kept-index buffer"
        );
        assert_eq!(copy, plan);
    }

    #[test]
    #[should_panic(expected = "at least one inner index")]
    fn crs_plan_rejects_an_empty_selection() {
        let mut plan = DropoutPlan::default();
        plan.reset_crs_with(LayerShape::new(4, 4), 4, |_| {});
    }

    #[test]
    #[should_panic(expected = "CRS composes with dense or row-compacted")]
    fn attach_crs_rejects_incompatible_families() {
        let mut plan = DropoutPlan::bernoulli(LayerShape::vector(3), vec![1.0, 0.0, 1.0], 2.0, 0.5);
        plan.attach_crs_with(4, |kept| kept.extend([0, 1]));
    }
}
