//! Error type shared across the crate.

use std::fmt;

/// Errors produced while configuring or running approximate random dropout.
#[derive(Debug, Clone, PartialEq)]
pub enum DropoutError {
    /// A dropout rate outside `[0, 1)` was supplied.
    InvalidRate(f64),
    /// A pattern parameter was invalid (e.g. `dp == 0`, bias ≥ dp, zero tile).
    InvalidPattern(String),
    /// The SGD-based search was mis-configured or failed to converge.
    Search(String),
    /// A distribution over patterns was malformed (empty, negative, NaN…).
    InvalidDistribution(String),
}

impl fmt::Display for DropoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropoutError::InvalidRate(p) => {
                write!(f, "dropout rate {p} is outside the valid range [0, 1)")
            }
            DropoutError::InvalidPattern(msg) => write!(f, "invalid dropout pattern: {msg}"),
            DropoutError::Search(msg) => write!(f, "pattern-distribution search failed: {msg}"),
            DropoutError::InvalidDistribution(msg) => {
                write!(f, "invalid pattern distribution: {msg}")
            }
        }
    }
}

impl std::error::Error for DropoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DropoutError::InvalidRate(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = DropoutError::InvalidPattern("dp must be positive".into());
        assert!(e.to_string().contains("dp must be positive"));
        let e = DropoutError::Search("diverged".into());
        assert!(e.to_string().contains("diverged"));
        let e = DropoutError::InvalidDistribution("empty".into());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DropoutError>();
    }
}
