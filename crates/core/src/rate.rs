//! Validated dropout-rate newtype.

use crate::error::DropoutError;
use std::fmt;

/// A dropout rate `p ∈ [0, 1)`.
///
/// The paper distinguishes the *conventional* dropout rate (probability that
/// a single neuron/synapse is dropped) from the *global* dropout rate (the
/// fraction of neurons/synapses zeroed in one iteration) and shows the two
/// are statistically equivalent under the pattern distribution produced by
/// Algorithm 1. Both are represented by this type.
///
/// # Example
///
/// ```
/// use approx_dropout::DropoutRate;
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let p = DropoutRate::new(0.5)?;
/// assert_eq!(p.keep_probability(), 0.5);
/// assert!(DropoutRate::new(1.0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct DropoutRate(f64);

impl DropoutRate {
    /// Creates a dropout rate, validating `0 <= p < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidRate`] when `p` is NaN or outside
    /// `[0, 1)`. A rate of exactly 1 is rejected because it would drop every
    /// unit and the inverted-dropout rescaling `1/(1-p)` would diverge.
    pub fn new(p: f64) -> Result<Self, DropoutError> {
        if p.is_nan() || !(0.0..1.0).contains(&p) {
            return Err(DropoutError::InvalidRate(p));
        }
        Ok(Self(p))
    }

    /// The probability of dropping a unit.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The probability of keeping a unit, `1 - p`.
    pub fn keep_probability(self) -> f64 {
        1.0 - self.0
    }

    /// Inverted-dropout rescaling factor `1 / (1 - p)` applied to kept units
    /// so that activation expectations match between training and inference.
    pub fn inverted_scale(self) -> f64 {
        1.0 / self.keep_probability()
    }

    /// A rate of zero (no dropout); useful as a baseline configuration.
    pub fn disabled() -> Self {
        Self(0.0)
    }
}

impl Default for DropoutRate {
    fn default() -> Self {
        Self(0.5)
    }
}

impl fmt::Display for DropoutRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl TryFrom<f64> for DropoutRate {
    type Error = DropoutError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_rates() {
        for p in [0.0, 0.3, 0.5, 0.7, 0.99] {
            assert!(DropoutRate::new(p).is_ok(), "rate {p} should be valid");
        }
    }

    #[test]
    fn rejects_invalid_rates() {
        for p in [-0.1, 1.0, 1.5, f64::NAN] {
            assert!(DropoutRate::new(p).is_err(), "rate {p} should be invalid");
        }
    }

    #[test]
    fn keep_probability_and_scale_are_consistent() {
        let p = DropoutRate::new(0.7).unwrap();
        assert!((p.keep_probability() - 0.3).abs() < 1e-12);
        assert!((p.inverted_scale() - 1.0 / 0.3).abs() < 1e-12);
    }

    #[test]
    fn default_matches_common_setting() {
        assert_eq!(DropoutRate::default().value(), 0.5);
    }

    #[test]
    fn try_from_round_trips() {
        let p: DropoutRate = 0.3f64.try_into().unwrap();
        assert_eq!(p.value(), 0.3);
        assert!(DropoutRate::try_from(2.0).is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(DropoutRate::new(0.5).unwrap().to_string(), "0.500");
    }
}
