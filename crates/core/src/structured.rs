//! Structured-sparsity dropout schemes: N:M fine-grained sparsity and
//! block-structured unit dropout.
//!
//! The paper's RDP/TDP patterns are two points in a larger space of
//! GPGPU-friendly structured sparsity. This module adds two more, both from
//! follow-up work, behind the same plan–execute API:
//!
//! * [`NmSparsity`] — N:M fine-grained sparsity (Song et al.,
//!   arXiv:2203.05705): in every group of `m` consecutive output neurons,
//!   exactly `n` survive each iteration, sampled uniformly without
//!   replacement. The kept fraction is the *constant* `n/m`, so the GEMM
//!   shrinks deterministically while the surviving lane set still varies
//!   per group per iteration (many distinct sub-models, like TDP).
//! * [`BlockUnit`] — structured unit dropout (SDropout, arXiv:2411.01238):
//!   output neurons are grouped into contiguous blocks of `block` units and
//!   whole blocks are dropped with an independent Bernoulli draw, so the
//!   surviving columns form contiguous runs a kernel can stream without any
//!   gather.
//!
//! Both schemes drop whole output neurons (like RDP), so they shrink the
//! next layer's input as well, and both resolve to a [`DropoutPlan`] whose
//! [`crate::KernelSchedule`] ([`crate::KernelSchedule::NmCompact`] /
//! [`crate::KernelSchedule::BlockCompact`]) the `gpu_sim` timing model
//! prices from the same sampled decision the CPU passes execute.

use crate::error::DropoutError;
use crate::plan::{DropoutPlan, LayerShape};
use crate::rate::DropoutRate;
use crate::scheme::DropoutScheme;
use rand::{Rng, RngCore};

/// Which structured-sparsity family a [`StructuredUnits`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructuredKind {
    /// N:M fine-grained sparsity: `kept` holds *neuron* indices, exactly
    /// `n` per complete group of `m` consecutive neurons.
    Nm {
        /// Kept lanes per group.
        n: usize,
        /// Group size.
        m: usize,
    },
    /// Block-structured unit dropout: `kept` holds *block* indices over a
    /// grid of `total` contiguous blocks of `block` neurons each.
    Block {
        /// Block width in neurons.
        block: usize,
        /// Total blocks the layer's outputs split into.
        total: usize,
    },
}

/// The resolved structured decision of one iteration: which units (neurons
/// or blocks) survive, against how many output neurons.
///
/// Like [`crate::SampledPattern`], this doubles as a reusable buffer: the
/// `resolve_*` methods recycle the kept-index vector across iterations.
#[derive(Debug, PartialEq)]
pub struct StructuredUnits {
    kind: StructuredKind,
    /// Output neurons the decision was resolved against.
    unit_count: usize,
    /// Kept neuron indices (N:M) or kept block indices (block dropout),
    /// ascending.
    kept: Vec<usize>,
}

impl Clone for StructuredUnits {
    fn clone(&self) -> Self {
        Self {
            kind: self.kind,
            unit_count: self.unit_count,
            kept: self.kept.clone(),
        }
    }

    /// Reuses the existing kept-index buffer whenever capacity suffices.
    fn clone_from(&mut self, source: &Self) {
        self.kind = source.kind;
        self.unit_count = source.unit_count;
        self.kept.clone_from(&source.kept);
    }
}

impl StructuredUnits {
    /// An empty placeholder decision; a recyclable buffer for `resolve_*`.
    pub fn empty() -> Self {
        Self {
            kind: StructuredKind::Nm { n: 1, m: 1 },
            unit_count: 0,
            kept: Vec::new(),
        }
    }

    /// Re-resolves this buffer as an N:M decision over `out_features`
    /// neurons; `fill` receives the cleared kept-index vector and must push
    /// the kept neuron indices in ascending order.
    pub fn resolve_nm(
        &mut self,
        n: usize,
        m: usize,
        out_features: usize,
        fill: impl FnOnce(&mut Vec<usize>),
    ) {
        self.kind = StructuredKind::Nm { n, m };
        self.unit_count = out_features;
        self.kept.clear();
        fill(&mut self.kept);
        debug_assert!(
            self.kept.windows(2).all(|w| w[0] < w[1]),
            "kept lanes must be ascending"
        );
        debug_assert!(
            self.kept.iter().all(|&j| j < out_features),
            "kept lane out of bounds"
        );
    }

    /// Re-resolves this buffer as a block decision over
    /// `out_features.div_ceil(block)` blocks; `fill` receives the cleared
    /// kept-index vector and must push kept *block* indices ascending.
    pub fn resolve_block(
        &mut self,
        block: usize,
        out_features: usize,
        fill: impl FnOnce(&mut Vec<usize>),
    ) {
        let total = out_features.div_ceil(block.max(1));
        self.kind = StructuredKind::Block { block, total };
        self.unit_count = out_features;
        self.kept.clear();
        fill(&mut self.kept);
        debug_assert!(
            self.kept.windows(2).all(|w| w[0] < w[1]),
            "kept blocks must be ascending"
        );
        debug_assert!(
            self.kept.iter().all(|&b| b < total),
            "kept block out of bounds"
        );
    }

    /// The family and its parameters.
    pub fn kind(&self) -> StructuredKind {
        self.kind
    }

    /// Output neurons the decision was resolved against.
    pub fn unit_count(&self) -> usize {
        self.unit_count
    }

    /// Kept unit indices (neurons for N:M, blocks for block dropout),
    /// ascending.
    pub fn kept_indices(&self) -> &[usize] {
        &self.kept
    }

    /// Number of output *neurons* that survive the decision.
    pub fn kept_neuron_count(&self) -> usize {
        match self.kind {
            StructuredKind::Nm { .. } => self.kept.len(),
            StructuredKind::Block { block, .. } => self
                .kept
                .iter()
                .map(|&b| {
                    let start = b * block;
                    (start + block).min(self.unit_count).saturating_sub(start)
                })
                .sum(),
        }
    }

    /// Fraction of output neurons that survive.
    pub fn active_fraction(&self) -> f64 {
        if self.unit_count == 0 {
            return 1.0;
        }
        self.kept_neuron_count() as f64 / self.unit_count as f64
    }

    /// Appends the kept neuron indices to `out` (expanding blocks).
    pub fn extend_kept_neurons(&self, out: &mut Vec<usize>) {
        match self.kind {
            StructuredKind::Nm { .. } => out.extend_from_slice(&self.kept),
            StructuredKind::Block { block, .. } => {
                for &b in &self.kept {
                    let start = b * block;
                    out.extend(start..(start + block).min(self.unit_count));
                }
            }
        }
    }
}

/// N:M fine-grained structured sparsity as a dropout scheme: each iteration
/// keeps exactly `n` uniformly chosen lanes in every group of `m`
/// consecutive output neurons (a ragged tail group keeps
/// `min(n, tail_size)` of its lanes).
///
/// The nominal dropout rate is the constant `1 − n/m` and kept activations
/// are scaled by `m/n` (inverted dropout), so a 2:4 scheme is the
/// structured analogue of rate-0.5 dropout.
#[derive(Debug, Clone)]
pub struct NmSparsity {
    n: usize,
    m: usize,
    /// Fisher–Yates scratch (one group's lane offsets), recycled across
    /// iterations so planning stays allocation-free once warmed.
    scratch: Vec<usize>,
}

impl PartialEq for NmSparsity {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.m == other.m
    }
}

impl NmSparsity {
    /// Creates an `n`-of-`m` scheme.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] if `n == 0`, `m == 0` or
    /// `n > m`.
    pub fn new(n: usize, m: usize) -> Result<Self, DropoutError> {
        if n == 0 || m == 0 {
            return Err(DropoutError::InvalidPattern(
                "N:M sparsity needs n >= 1 and m >= 1".into(),
            ));
        }
        if n > m {
            return Err(DropoutError::InvalidPattern(format!(
                "cannot keep {n} lanes out of a group of {m}"
            )));
        }
        Ok(Self {
            n,
            m,
            scratch: Vec::new(),
        })
    }

    /// Kept lanes per group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Group size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inverted-dropout multiplier for kept lanes, `m/n`.
    pub fn inverted_scale(&self) -> f32 {
        self.m as f32 / self.n as f32
    }

    /// Samples the kept neuron indices for a layer with `out_features`
    /// outputs into `kept` (cleared first, ascending): a partial
    /// Fisher–Yates shuffle per group draws `n` distinct lanes.
    pub fn sample_kept(
        &mut self,
        rng: &mut dyn RngCore,
        out_features: usize,
        kept: &mut Vec<usize>,
    ) {
        kept.clear();
        let mut start = 0;
        while start < out_features {
            let size = self.m.min(out_features - start);
            let take = self.n.min(size);
            self.scratch.clear();
            self.scratch.extend(0..size);
            for i in 0..take {
                let j = rng.gen_range(i..size);
                self.scratch.swap(i, j);
            }
            let chosen = &mut self.scratch[..take];
            chosen.sort_unstable();
            kept.extend(chosen.iter().map(|&o| start + o));
            start += size;
        }
    }
}

impl DropoutScheme for NmSparsity {
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        let mut kept = Vec::new();
        self.sample_kept(rng, shape.out_features, &mut kept);
        DropoutPlan::nm(shape, self.n, self.m, kept)
    }

    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        let (n, m) = (self.n, self.m);
        let out_features = shape.out_features;
        out.reset_nm_with(shape, n, m, |kept| {
            self.sample_kept(rng, out_features, kept);
        });
    }

    fn nominal_rate(&self) -> f64 {
        1.0 - self.n as f64 / self.m as f64
    }

    fn label(&self) -> &'static str {
        "nm"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(self.clone())
    }
}

/// Block-structured unit dropout (SDropout-style): contiguous blocks of
/// `block` output neurons are dropped with an independent Bernoulli draw at
/// the configured rate; if every draw drops, one uniformly chosen block is
/// kept so the layer never goes fully dark.
///
/// Kept activations carry the conventional inverted-dropout scale
/// `1/(1−rate)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockUnit {
    rate: DropoutRate,
    block: usize,
}

impl BlockUnit {
    /// Creates a block-unit scheme dropping `block`-wide neuron blocks at
    /// the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] if `block == 0`.
    pub fn new(rate: DropoutRate, block: usize) -> Result<Self, DropoutError> {
        if block == 0 {
            return Err(DropoutError::InvalidPattern(
                "block width must be at least 1".into(),
            ));
        }
        Ok(Self { rate, block })
    }

    /// Block width in neurons.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Configured drop rate.
    pub fn rate(&self) -> DropoutRate {
        self.rate
    }

    /// Samples the kept block indices over `total_blocks` blocks into
    /// `kept` (cleared first, ascending).
    pub fn sample_kept_blocks(
        &self,
        rng: &mut dyn RngCore,
        total_blocks: usize,
        kept: &mut Vec<usize>,
    ) {
        kept.clear();
        let keep_p = 1.0 - self.rate.value();
        for b in 0..total_blocks {
            if rng.gen_bool(keep_p) {
                kept.push(b);
            }
        }
        if kept.is_empty() && total_blocks > 0 {
            kept.push(rng.gen_range(0..total_blocks));
        }
    }
}

impl DropoutScheme for BlockUnit {
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        let total = shape.out_features.div_ceil(self.block);
        let mut kept = Vec::new();
        self.sample_kept_blocks(rng, total, &mut kept);
        DropoutPlan::block_unit(
            shape,
            self.block,
            kept,
            self.rate.inverted_scale() as f32,
            self.rate.value(),
        )
    }

    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        let total = shape.out_features.div_ceil(self.block);
        out.reset_block_unit_with(
            shape,
            self.block,
            self.rate.inverted_scale() as f32,
            self.rate.value(),
            |kept| self.sample_kept_blocks(rng, total, kept),
        );
    }

    fn nominal_rate(&self) -> f64 {
        self.rate.value()
    }

    fn label(&self) -> &'static str {
        "block"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nm_rejects_bad_parameters() {
        assert!(NmSparsity::new(0, 4).is_err());
        assert!(NmSparsity::new(4, 0).is_err());
        assert!(NmSparsity::new(5, 4).is_err());
        assert!(NmSparsity::new(2, 4).is_ok());
        assert!(NmSparsity::new(4, 4).is_ok());
    }

    #[test]
    fn nm_keeps_exactly_n_per_group() {
        let mut scheme = NmSparsity::new(2, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut kept = Vec::new();
        for _ in 0..50 {
            scheme.sample_kept(&mut rng, 32, &mut kept);
            assert_eq!(kept.len(), 16);
            for g in 0..8 {
                let in_group = kept
                    .iter()
                    .filter(|&&j| j >= g * 4 && j < (g + 1) * 4)
                    .count();
                assert_eq!(in_group, 2, "group {g} kept {in_group} lanes");
            }
            assert!(kept.windows(2).all(|w| w[0] < w[1]), "ascending");
        }
    }

    #[test]
    fn nm_handles_ragged_tail_group() {
        let mut scheme = NmSparsity::new(3, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut kept = Vec::new();
        // 10 = 2 full groups of 4 + a tail of 2: the tail keeps min(3, 2).
        scheme.sample_kept(&mut rng, 10, &mut kept);
        assert_eq!(kept.len(), 3 + 3 + 2);
        assert!(kept.iter().all(|&j| j < 10));
    }

    #[test]
    fn nm_lane_choice_varies_across_iterations() {
        let mut scheme = NmSparsity::new(1, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        for _ in 0..40 {
            scheme.sample_kept(&mut rng, 16, &mut kept);
            seen.insert(kept.clone());
        }
        assert!(seen.len() > 5, "only {} distinct lane sets", seen.len());
    }

    #[test]
    fn nm_plan_carries_schedule_scale_and_fraction() {
        let mut scheme = NmSparsity::new(2, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let plan = scheme.plan(&mut rng, LayerShape::new(16, 32));
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::NmCompact { n: 2, m: 4 }
        );
        assert_eq!(plan.scale(), 2.0);
        assert!((plan.realized_drop_fraction() - 0.5).abs() < 1e-12);
        assert!((plan.active_output_fraction() - 0.5).abs() < 1e-12);
        assert!((scheme.nominal_rate() - 0.5).abs() < 1e-12);
        let (kept, n, m) = plan.nm_lanes().unwrap();
        assert_eq!((n, m), (2, 4));
        assert_eq!(kept.len(), 16);
    }

    #[test]
    fn block_rejects_zero_block() {
        assert!(BlockUnit::new(DropoutRate::new(0.5).unwrap(), 0).is_err());
    }

    #[test]
    fn block_tracks_nominal_rate_on_average() {
        let mut scheme = BlockUnit::new(DropoutRate::new(0.5).unwrap(), 8).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = 0.0;
        let iters = 2_000;
        for _ in 0..iters {
            let plan = scheme.plan(&mut rng, LayerShape::new(64, 256));
            acc += plan.realized_drop_fraction();
        }
        let mean = acc / iters as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean realized {mean}");
    }

    #[test]
    fn block_never_drops_every_block() {
        // Rate close to 1: without the guard the layer would regularly go
        // fully dark.
        let mut scheme = BlockUnit::new(DropoutRate::new(0.99).unwrap(), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let plan = scheme.plan(&mut rng, LayerShape::new(8, 16));
            let (kept, _, _) = plan.kept_unit_blocks().unwrap();
            assert!(!kept.is_empty());
        }
    }

    #[test]
    fn block_plan_covers_ragged_last_block() {
        let mut scheme = BlockUnit::new(DropoutRate::new(0.0).unwrap(), 8).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        // 20 outputs with block 8: blocks cover 8 + 8 + 4 neurons.
        let plan = scheme.plan(&mut rng, LayerShape::new(4, 20));
        let (kept, block, total) = plan.kept_unit_blocks().unwrap();
        assert_eq!(block, 8);
        assert_eq!(total, 3);
        assert_eq!(kept, &[0, 1, 2]);
        assert_eq!(plan.active_output_fraction(), 1.0);
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::BlockCompact {
                kept: 3,
                total: 3,
                block: 8
            }
        );
    }

    #[test]
    fn structured_units_recycle_their_buffer() {
        let mut units = StructuredUnits::empty();
        units.resolve_nm(2, 4, 16, |kept| kept.extend([0, 1, 4, 5, 8, 9, 12, 13]));
        let ptr = units.kept_indices().as_ptr();
        units.resolve_nm(2, 4, 16, |kept| kept.extend([2, 3, 6, 7, 10, 11, 14, 15]));
        assert_eq!(ptr, units.kept_indices().as_ptr());
        assert_eq!(units.kept_neuron_count(), 8);
    }

    #[test]
    fn block_units_count_clipped_neurons() {
        let mut units = StructuredUnits::empty();
        units.resolve_block(8, 20, |kept| kept.extend([0, 2]));
        // Block 0 covers 8 neurons, block 2 only the ragged 4.
        assert_eq!(units.kept_neuron_count(), 12);
        let mut neurons = Vec::new();
        units.extend_kept_neurons(&mut neurons);
        assert_eq!(neurons, (0..8).chain(16..20).collect::<Vec<_>>());
    }
}
