//! Algorithm 1 — the SGD-based Search Algorithm for the dropout-pattern
//! distribution.
//!
//! Given a target global dropout rate `p` and the maximum pattern period `N`,
//! the algorithm optimises a parameter vector `v ∈ ℝᴺ` so that the softmax
//! `d = softmax(v)` is a probability distribution over pattern periods
//! `dp ∈ {1, …, N}` satisfying two goals (paper §III-C):
//!
//! 1. **Rate matching** — the expected global dropout rate
//!    `dᵀ · pu`, with `pu_i = (i − 1)/i`, equals the target `p`
//!    (`E_p = ‖dᵀ·pu − p‖²`).
//! 2. **Sub-model diversity** — the distribution stays dense, enforced by the
//!    negative entropy term `E_n = (1/N) Σ d_i ln d_i`.
//!
//! The loss is `λ₁ E_p + λ₂ E_n` with `λ₁ + λ₂ = 1`, minimised by plain
//! gradient descent on `v` until the loss change falls below a threshold.

use crate::error::DropoutError;
use crate::rate::DropoutRate;
use std::fmt;

/// Hyper-parameters of the SGD-based search (Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Weight of the rate-matching term `E_p`. The paper requires
    /// `lambda1 + lambda2 = 1`.
    pub lambda1: f64,
    /// Weight of the negative-entropy (diversity) term `E_n`.
    pub lambda2: f64,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Stop when `|Δloss|` drops below this threshold.
    pub loss_threshold: f64,
    /// Hard cap on iterations so the search always terminates.
    pub max_iterations: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            lambda1: 0.95,
            lambda2: 0.05,
            learning_rate: 0.5,
            loss_threshold: 1e-9,
            max_iterations: 20_000,
        }
    }
}

impl SearchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::Search`] if the lambdas are negative, do not
    /// sum to 1 (within 1e-6), the learning rate is non-positive, or the
    /// iteration cap is zero.
    pub fn validate(&self) -> Result<(), DropoutError> {
        if self.lambda1 < 0.0 || self.lambda2 < 0.0 {
            return Err(DropoutError::Search(
                "lambda weights must be non-negative".into(),
            ));
        }
        if (self.lambda1 + self.lambda2 - 1.0).abs() > 1e-6 {
            return Err(DropoutError::Search(format!(
                "lambda1 + lambda2 must equal 1 (got {})",
                self.lambda1 + self.lambda2
            )));
        }
        if self.learning_rate <= 0.0 {
            return Err(DropoutError::Search(
                "learning rate must be positive".into(),
            ));
        }
        if self.max_iterations == 0 {
            return Err(DropoutError::Search(
                "max_iterations must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A probability distribution `K = {k_dp}` over pattern periods `dp = 1..=N`.
///
/// Index 0 corresponds to `dp = 1` (no dropout), index `i` to `dp = i + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternDistribution {
    probs: Vec<f64>,
}

impl PatternDistribution {
    /// Creates a distribution from raw probabilities over `dp = 1..=N`.
    ///
    /// The probabilities are normalised to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidDistribution`] if the vector is empty,
    /// contains negative or non-finite entries, or sums to zero.
    pub fn new(probs: Vec<f64>) -> Result<Self, DropoutError> {
        if probs.is_empty() {
            return Err(DropoutError::InvalidDistribution(
                "empty distribution".into(),
            ));
        }
        if probs.iter().any(|&p| !p.is_finite() || p < 0.0) {
            return Err(DropoutError::InvalidDistribution(
                "probabilities must be finite and non-negative".into(),
            ));
        }
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return Err(DropoutError::InvalidDistribution(
                "probabilities must not all be zero".into(),
            ));
        }
        Ok(Self {
            probs: probs.into_iter().map(|p| p / total).collect(),
        })
    }

    /// A point mass on a single period `dp` (useful for ablations and for
    /// the "fixed pattern" baseline).
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidDistribution`] if `dp == 0` or
    /// `dp > max_dp`.
    pub fn point_mass(dp: usize, max_dp: usize) -> Result<Self, DropoutError> {
        if dp == 0 || dp > max_dp {
            return Err(DropoutError::InvalidDistribution(format!(
                "dp {dp} outside 1..={max_dp}"
            )));
        }
        let mut probs = vec![0.0; max_dp];
        probs[dp - 1] = 1.0;
        Self::new(probs)
    }

    /// Number of pattern periods covered (the `N` of Algorithm 1).
    pub fn max_dp(&self) -> usize {
        self.probs.len()
    }

    /// Probability assigned to period `dp`.
    ///
    /// # Panics
    ///
    /// Panics if `dp == 0` or `dp > max_dp()`.
    pub fn probability_of(&self, dp: usize) -> f64 {
        assert!(dp >= 1 && dp <= self.probs.len(), "dp {dp} out of range");
        self.probs[dp - 1]
    }

    /// Borrow the probabilities, index `i` ↦ `dp = i + 1`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Expected global dropout rate `Σ k_dp (dp − 1)/dp` (paper Eq. 3).
    pub fn expected_global_rate(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &k)| k * (i as f64) / (i as f64 + 1.0))
            .sum()
    }

    /// Shannon entropy of the distribution in nats; higher means more
    /// diverse sub-models.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Effective number of distinct periods, `exp(entropy)`.
    pub fn effective_support(&self) -> f64 {
        self.entropy().exp()
    }

    /// Cumulative distribution used by the sampler.
    pub(crate) fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.probs
            .iter()
            .map(|&p| {
                acc += p;
                acc
            })
            .collect()
    }
}

impl fmt::Display for PatternDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PatternDistribution(N={}, E[p]={:.4}, H={:.3})",
            self.max_dp(),
            self.expected_global_rate(),
            self.entropy()
        )
    }
}

/// Diagnostics returned alongside the distribution by [`sgd_search_with_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The optimised distribution.
    pub distribution: PatternDistribution,
    /// Final value of the combined loss.
    pub final_loss: f64,
    /// Final value of the rate-matching term `E_p`.
    pub rate_error: f64,
    /// Final value of the negative-entropy term `E_n`.
    pub negative_entropy: f64,
    /// Number of gradient steps taken.
    pub iterations: usize,
    /// `true` when the loss-change threshold was reached before the
    /// iteration cap.
    pub converged: bool,
}

/// Runs Algorithm 1 and returns just the distribution.
///
/// # Errors
///
/// Returns [`DropoutError::Search`] when the configuration is invalid or
/// `max_dp == 0`.
///
/// # Example
///
/// ```
/// use approx_dropout::{search::sgd_search, DropoutRate, SearchConfig};
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let dist = sgd_search(DropoutRate::new(0.7)?, 16, &SearchConfig::default())?;
/// assert!((dist.expected_global_rate() - 0.7).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
pub fn sgd_search(
    target: DropoutRate,
    max_dp: usize,
    config: &SearchConfig,
) -> Result<PatternDistribution, DropoutError> {
    sgd_search_with_trace(target, max_dp, config).map(|o| o.distribution)
}

/// Runs Algorithm 1 and returns the distribution together with convergence
/// diagnostics.
///
/// # Errors
///
/// Returns [`DropoutError::Search`] when the configuration is invalid or
/// `max_dp == 0`.
pub fn sgd_search_with_trace(
    target: DropoutRate,
    max_dp: usize,
    config: &SearchConfig,
) -> Result<SearchOutcome, DropoutError> {
    config.validate()?;
    if max_dp == 0 {
        return Err(DropoutError::Search("max_dp must be at least 1".into()));
    }
    let n = max_dp;
    let p = target.value();
    // pu_i = (i-1)/i for dp = i, i = 1..=N  (line 2 of Algorithm 1).
    let pu: Vec<f64> = (1..=n).map(|i| (i as f64 - 1.0) / i as f64).collect();

    // Line 1: initialise v. A zero vector (uniform softmax) is a deterministic
    // and reproducible choice of the "arbitrary" initialisation.
    let mut v = vec![0.0f64; n];
    let mut prev_loss = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    let mut d = softmax(&v);
    let mut loss_terms = loss(&d, &pu, p, config);

    while iterations < config.max_iterations {
        iterations += 1;
        d = softmax(&v);
        loss_terms = loss(&d, &pu, p, config);
        let total_loss = loss_terms.0;
        if (prev_loss - total_loss).abs() < config.loss_threshold {
            converged = true;
            break;
        }
        prev_loss = total_loss;

        // dLoss/dd_i
        let expected: f64 = d.iter().zip(&pu).map(|(di, pi)| di * pi).sum();
        let grad_d: Vec<f64> = d
            .iter()
            .enumerate()
            .map(|(i, &di)| {
                let rate_term = config.lambda1 * 2.0 * (expected - p) * pu[i];
                // E_n = (1/N) Σ d_i ln d_i  ⇒  ∂E_n/∂d_i = (ln d_i + 1)/N.
                let entropy_term = config.lambda2 * (di.max(1e-300).ln() + 1.0) / n as f64;
                rate_term + entropy_term
            })
            .collect();

        // Chain rule through the softmax: dLoss/dv_j = d_j (g_j − Σ_i g_i d_i).
        let g_dot_d: f64 = grad_d.iter().zip(&d).map(|(g, di)| g * di).sum();
        for j in 0..n {
            let grad_v = d[j] * (grad_d[j] - g_dot_d);
            v[j] -= config.learning_rate * grad_v;
        }
    }

    let distribution = PatternDistribution::new(d)?;
    Ok(SearchOutcome {
        rate_error: loss_terms.1,
        negative_entropy: loss_terms.2,
        final_loss: loss_terms.0,
        iterations,
        converged,
        distribution,
    })
}

/// Closed-form two-point fallback distribution used as a sanity baseline and
/// in tests: mixes `dp = 1` and `dp = max_dp` so the expected rate hits `p`
/// exactly (when representable).
///
/// # Errors
///
/// Returns [`DropoutError::Search`] if `max_dp < 2` and `p > 0`.
pub fn two_point_distribution(
    target: DropoutRate,
    max_dp: usize,
) -> Result<PatternDistribution, DropoutError> {
    let p = target.value();
    if p == 0.0 {
        return PatternDistribution::point_mass(1, max_dp.max(1));
    }
    if max_dp < 2 {
        return Err(DropoutError::Search(
            "max_dp must be at least 2 to represent a non-zero rate".into(),
        ));
    }
    let high_rate = (max_dp as f64 - 1.0) / max_dp as f64;
    let w_high = (p / high_rate).min(1.0);
    let mut probs = vec![0.0; max_dp];
    probs[0] = 1.0 - w_high;
    probs[max_dp - 1] = w_high;
    PatternDistribution::new(probs)
}

fn softmax(v: &[f64]) -> Vec<f64> {
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = v.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Returns `(total_loss, E_p, E_n)` for the current distribution.
fn loss(d: &[f64], pu: &[f64], p: f64, config: &SearchConfig) -> (f64, f64, f64) {
    let expected: f64 = d.iter().zip(pu).map(|(di, pi)| di * pi).sum();
    let ep = (expected - p) * (expected - p);
    let en = d
        .iter()
        .map(|&di| if di > 0.0 { di * di.ln() } else { 0.0 })
        .sum::<f64>()
        / d.len() as f64;
    (config.lambda1 * ep + config.lambda2 * en, ep, en)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SearchConfig::default().validate().is_ok());
    }

    #[test]
    fn config_rejects_bad_lambdas() {
        let bad = SearchConfig {
            lambda1: 0.5,
            lambda2: 0.6,
            ..SearchConfig::default()
        };
        assert!(bad.validate().is_err());
        let negative = SearchConfig {
            lambda1: -0.1,
            lambda2: 1.1,
            ..SearchConfig::default()
        };
        assert!(negative.validate().is_err());
    }

    #[test]
    fn config_rejects_bad_learning_rate_and_iterations() {
        let bad_lr = SearchConfig {
            learning_rate: 0.0,
            ..SearchConfig::default()
        };
        assert!(bad_lr.validate().is_err());
        let bad_iter = SearchConfig {
            max_iterations: 0,
            ..SearchConfig::default()
        };
        assert!(bad_iter.validate().is_err());
    }

    #[test]
    fn distribution_normalises_and_validates() {
        let d = PatternDistribution::new(vec![2.0, 2.0]).unwrap();
        assert!((d.probability_of(1) - 0.5).abs() < 1e-12);
        assert!(PatternDistribution::new(vec![]).is_err());
        assert!(PatternDistribution::new(vec![-1.0, 2.0]).is_err());
        assert!(PatternDistribution::new(vec![0.0, 0.0]).is_err());
        assert!(PatternDistribution::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn point_mass_expected_rate_is_pattern_rate() {
        let d = PatternDistribution::point_mass(4, 8).unwrap();
        assert!((d.expected_global_rate() - 0.75).abs() < 1e-12);
        assert_eq!(d.entropy(), 0.0);
        assert!(PatternDistribution::point_mass(0, 8).is_err());
        assert!(PatternDistribution::point_mass(9, 8).is_err());
    }

    #[test]
    fn expected_rate_formula_matches_manual_sum() {
        // K = {dp=1: 0.5, dp=2: 0.5} ⇒ E[p] = 0.5*0 + 0.5*0.5 = 0.25.
        let d = PatternDistribution::new(vec![0.5, 0.5]).unwrap();
        assert!((d.expected_global_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn search_matches_target_rate_for_common_settings() {
        for &p in &[0.3, 0.5, 0.7] {
            let dist =
                sgd_search(DropoutRate::new(p).unwrap(), 16, &SearchConfig::default()).unwrap();
            let achieved = dist.expected_global_rate();
            assert!(
                (achieved - p).abs() < 0.02,
                "target {p}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn search_keeps_distribution_dense() {
        let outcome =
            sgd_search_with_trace(DropoutRate::new(0.5).unwrap(), 16, &SearchConfig::default())
                .unwrap();
        // The entropy term should leave probability on several periods, not
        // collapse onto a single dp.
        assert!(outcome.distribution.effective_support() > 2.0);
        assert!(outcome.converged);
        assert!(outcome.final_loss.is_finite());
    }

    #[test]
    fn more_entropy_weight_yields_more_diversity() {
        let target = DropoutRate::new(0.5).unwrap();
        let low_entropy_cfg = SearchConfig {
            lambda1: 0.999,
            lambda2: 0.001,
            ..SearchConfig::default()
        };
        let high_entropy_cfg = SearchConfig {
            lambda1: 0.7,
            lambda2: 0.3,
            ..SearchConfig::default()
        };
        let low = sgd_search(target, 16, &low_entropy_cfg).unwrap();
        let high = sgd_search(target, 16, &high_entropy_cfg).unwrap();
        assert!(high.entropy() >= low.entropy() - 1e-9);
    }

    #[test]
    fn search_rejects_zero_max_dp() {
        assert!(sgd_search(DropoutRate::new(0.5).unwrap(), 0, &SearchConfig::default()).is_err());
    }

    #[test]
    fn search_handles_zero_rate() {
        let dist = sgd_search(DropoutRate::disabled(), 8, &SearchConfig::default()).unwrap();
        assert!(dist.expected_global_rate() < 0.05);
    }

    #[test]
    fn two_point_distribution_hits_rate_exactly() {
        let d = two_point_distribution(DropoutRate::new(0.6).unwrap(), 10).unwrap();
        assert!((d.expected_global_rate() - 0.6).abs() < 1e-9);
        assert!(two_point_distribution(DropoutRate::new(0.5).unwrap(), 1).is_err());
        let zero = two_point_distribution(DropoutRate::disabled(), 4).unwrap();
        assert_eq!(zero.probability_of(1), 1.0);
    }

    #[test]
    fn cumulative_ends_at_one() {
        let d = PatternDistribution::new(vec![1.0, 1.0, 2.0]).unwrap();
        let c = d.cumulative();
        assert_eq!(c.len(), 3);
        assert!((c[2] - 1.0).abs() < 1e-12);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn display_mentions_expected_rate() {
        let d = PatternDistribution::point_mass(2, 4).unwrap();
        assert!(d.to_string().contains("E[p]=0.5"));
    }
}
