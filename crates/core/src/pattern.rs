//! Regular dropout patterns: Row-based (RDP) and Tile-based (TDP).
//!
//! A *dropout pattern* (paper §III) is the combination of units dropped in a
//! single training iteration. Both pattern families are parameterised by a
//! period `dp` and a bias `b ∈ {0, …, dp−1}`: one unit out of every `dp`
//! consecutive units is kept (the one whose index is congruent to `b` modulo
//! `dp`) and the other `dp − 1` are dropped, so the pattern's global dropout
//! rate is `(dp − 1) / dp`.
//!
//! For RDP a "unit" is one output neuron — equivalently one row of the
//! (transposed) weight matrix of the next layer. For TDP a "unit" is one
//! `tile × tile` sub-matrix of the weight matrix.
//!
//! Note on the paper's Eq. (1): the text says rows satisfying
//! `(i − b) mod dp = 0` are *dropped*, but the worked example ("when dp = 3,
//! b = 1 … drop two rows in every successive three rows") and Fig. 3(a) make
//! clear the intent is that those rows are *kept* and the remaining
//! `(dp−1)/dp` are dropped. We implement the keep-one-in-`dp` semantics the
//! figures and all reported dropout rates require.

use crate::error::DropoutError;
use crate::rate::DropoutRate;
use tensor::Matrix;

/// Which family of regular pattern is being used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Row-based Dropout Pattern — drop whole neurons (rows of `Wᵀ`).
    Row,
    /// Tile-based Dropout Pattern — drop `tile × tile` blocks of synapses.
    Tile,
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternKind::Row => write!(f, "ROW"),
            PatternKind::Tile => write!(f, "TILE"),
        }
    }
}

/// Common interface shared by [`RowPattern`] and [`TilePattern`].
pub trait DropoutPattern {
    /// The pattern period `dp` (one unit kept in every `dp`).
    fn dp(&self) -> usize;

    /// The bias `b ∈ {0, …, dp−1}` selecting which residue class is kept.
    fn bias(&self) -> usize;

    /// The fraction of units dropped by this pattern, `(dp − 1) / dp`.
    fn global_dropout_rate(&self) -> f64 {
        (self.dp() - 1) as f64 / self.dp() as f64
    }

    /// Which family this pattern belongs to.
    fn kind(&self) -> PatternKind;
}

/// Row-based Dropout Pattern (RDP).
///
/// Keeps output neurons whose index `i` satisfies `(i − b) mod dp == 0` and
/// drops the rest, so exactly `⌈(n − b)/dp⌉` of `n` neurons survive.
///
/// # Example
///
/// ```
/// use approx_dropout::{DropoutPattern, RowPattern};
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let p = RowPattern::new(3, 1)?;
/// assert_eq!(p.kept_rows(7), vec![1, 4]);
/// assert!((p.global_dropout_rate() - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowPattern {
    dp: usize,
    bias: usize,
}

impl RowPattern {
    /// Creates a row pattern with period `dp` and bias `bias`.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] if `dp == 0` or `bias >= dp`.
    pub fn new(dp: usize, bias: usize) -> Result<Self, DropoutError> {
        if dp == 0 {
            return Err(DropoutError::InvalidPattern("dp must be at least 1".into()));
        }
        if bias >= dp {
            return Err(DropoutError::InvalidPattern(format!(
                "bias {bias} must be smaller than dp {dp}"
            )));
        }
        Ok(Self { dp, bias })
    }

    /// The identity pattern (`dp = 1`): nothing is dropped.
    pub fn identity() -> Self {
        Self { dp: 1, bias: 0 }
    }

    /// Returns `true` when neuron `i` is kept by this pattern.
    pub fn is_kept(&self, i: usize) -> bool {
        i % self.dp == self.bias
    }

    /// Indices of the kept neurons among `n` neurons, in ascending order.
    pub fn kept_rows(&self, n: usize) -> Vec<usize> {
        (self.bias..n).step_by(self.dp).collect()
    }

    /// Indices of the dropped neurons among `n` neurons, in ascending order.
    pub fn dropped_rows(&self, n: usize) -> Vec<usize> {
        (0..n).filter(|&i| !self.is_kept(i)).collect()
    }

    /// 0/1 mask over `n` output neurons (1 = kept).
    pub fn neuron_mask(&self, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| if self.is_kept(i) { 1.0 } else { 0.0 })
            .collect()
    }

    /// Mask matrix of shape `(batch, n)` replicating [`Self::neuron_mask`] on
    /// every row — the shape conventional dropout would use for the
    /// elementwise multiply in Fig. 1(a).
    pub fn mask_matrix(&self, batch: usize, n: usize) -> Matrix {
        let mask = self.neuron_mask(n);
        Matrix::from_fn(batch, n, |_, j| mask[j])
    }

    /// Largest useful period for a layer with `n` output neurons.
    ///
    /// Larger periods would keep at most one neuron, which is what `dp = n`
    /// already achieves.
    pub fn max_dp(n: usize) -> usize {
        n.max(1)
    }

    /// Number of distinct sub-models available with periods up to `max_dp`
    /// (one per `(dp, bias)` combination): `Σ_{dp=1}^{max_dp} dp`.
    ///
    /// The paper prints this as `(M + 1)/2`; the summation it describes is
    /// `M (M + 1) / 2`, which is what we return.
    pub fn sub_model_count(max_dp: usize) -> usize {
        max_dp * (max_dp + 1) / 2
    }
}

impl DropoutPattern for RowPattern {
    fn dp(&self) -> usize {
        self.dp
    }

    fn bias(&self) -> usize {
        self.bias
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Row
    }
}

/// The tile grid induced by a weight matrix shape and a tile size.
///
/// Tiles are numbered row-major: tile `t` covers weight rows
/// `[⌊t / tiles_per_row⌋ · tile, …)` and columns
/// `[(t mod tiles_per_row) · tile, …)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    weight_rows: usize,
    weight_cols: usize,
    tile: usize,
}

impl TileGrid {
    /// Creates a grid for a `weight_rows × weight_cols` weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] if `tile == 0`.
    pub fn new(weight_rows: usize, weight_cols: usize, tile: usize) -> Result<Self, DropoutError> {
        if tile == 0 {
            return Err(DropoutError::InvalidPattern(
                "tile size must be at least 1".into(),
            ));
        }
        Ok(Self {
            weight_rows,
            weight_cols,
            tile,
        })
    }

    /// Tile edge length.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of tiles along the weight-matrix column direction.
    pub fn tiles_per_row(&self) -> usize {
        self.weight_cols.div_ceil(self.tile)
    }

    /// Number of tiles along the weight-matrix row direction.
    pub fn tiles_per_col(&self) -> usize {
        self.weight_rows.div_ceil(self.tile)
    }

    /// Total number of tiles in the grid.
    pub fn total_tiles(&self) -> usize {
        self.tiles_per_row() * self.tiles_per_col()
    }

    /// Shape of the underlying weight matrix.
    pub fn weight_shape(&self) -> (usize, usize) {
        (self.weight_rows, self.weight_cols)
    }

    /// Half-open `(row_range, col_range)` covered by tile `t`, clipped to the
    /// weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if `t >= total_tiles()`.
    pub fn tile_bounds(&self, t: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        assert!(t < self.total_tiles(), "tile index {t} out of bounds");
        let tr = t / self.tiles_per_row();
        let tc = t % self.tiles_per_row();
        let r0 = tr * self.tile;
        let c0 = tc * self.tile;
        (
            r0..(r0 + self.tile).min(self.weight_rows),
            c0..(c0 + self.tile).min(self.weight_cols),
        )
    }
}

/// Tile-based Dropout Pattern (TDP).
///
/// Keeps tiles whose linear index `t` satisfies `(t − b) mod dp == 0` and
/// drops the other `dp − 1` in every `dp` consecutive tiles, which drops the
/// same fraction of synaptic connections.
///
/// # Example
///
/// ```
/// use approx_dropout::{DropoutPattern, TileGrid, TilePattern};
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let grid = TileGrid::new(64, 64, 32)?; // 2x2 tiles
/// let p = TilePattern::new(4, 1, 32)?;
/// assert_eq!(p.kept_tiles(&grid), vec![1]);
/// assert!((p.global_dropout_rate() - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilePattern {
    dp: usize,
    bias: usize,
    tile: usize,
}

impl TilePattern {
    /// Creates a tile pattern with period `dp`, bias `bias` and square tile
    /// edge `tile`.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] if `dp == 0`, `bias >= dp` or
    /// `tile == 0`.
    pub fn new(dp: usize, bias: usize, tile: usize) -> Result<Self, DropoutError> {
        if dp == 0 {
            return Err(DropoutError::InvalidPattern("dp must be at least 1".into()));
        }
        if bias >= dp {
            return Err(DropoutError::InvalidPattern(format!(
                "bias {bias} must be smaller than dp {dp}"
            )));
        }
        if tile == 0 {
            return Err(DropoutError::InvalidPattern(
                "tile size must be at least 1".into(),
            ));
        }
        Ok(Self { dp, bias, tile })
    }

    /// The identity pattern (`dp = 1`): nothing is dropped.
    pub fn identity(tile: usize) -> Self {
        Self {
            dp: 1,
            bias: 0,
            tile,
        }
    }

    /// Tile edge length.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Returns `true` when tile `t` is kept by this pattern.
    pub fn is_kept(&self, t: usize) -> bool {
        t % self.dp == self.bias
    }

    /// Indices of kept tiles within `grid`, in ascending order.
    pub fn kept_tiles(&self, grid: &TileGrid) -> Vec<usize> {
        (self.bias..grid.total_tiles()).step_by(self.dp).collect()
    }

    /// Indices of dropped tiles within `grid`, in ascending order.
    pub fn dropped_tiles(&self, grid: &TileGrid) -> Vec<usize> {
        (0..grid.total_tiles())
            .filter(|&t| !self.is_kept(t))
            .collect()
    }

    /// 0/1 mask of the full weight matrix (1 = synapse kept).
    pub fn weight_mask(&self, grid: &TileGrid) -> Matrix {
        let (rows, cols) = grid.weight_shape();
        let mut mask = Matrix::zeros(rows, cols);
        for t in self.kept_tiles(grid) {
            let (rr, cc) = grid.tile_bounds(t);
            for r in rr.clone() {
                for c in cc.clone() {
                    mask[(r, c)] = 1.0;
                }
            }
        }
        mask
    }

    /// Largest useful period for a given grid: the total number of tiles.
    pub fn max_dp(grid: &TileGrid) -> usize {
        grid.total_tiles().max(1)
    }

    /// Number of distinct sub-models with periods up to `max_dp`
    /// (`Σ_{dp=1}^{max_dp} dp`); see the note on [`RowPattern::sub_model_count`].
    pub fn sub_model_count(max_dp: usize) -> usize {
        max_dp * (max_dp + 1) / 2
    }
}

impl DropoutPattern for TilePattern {
    fn dp(&self) -> usize {
        self.dp
    }

    fn bias(&self) -> usize {
        self.bias
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Tile
    }
}

/// A concrete pattern drawn for one training iteration, resolved against the
/// layer it will be applied to.
///
/// Produced by [`crate::PatternSampler::sample`]. `unit_count` is the number
/// of output neurons for a row pattern, or the total number of tiles for a
/// tile pattern.
#[derive(Debug, PartialEq, Eq)]
pub struct SampledPattern {
    kind: PatternKind,
    dp: usize,
    bias: usize,
    tile: usize,
    unit_count: usize,
    kept: Vec<usize>,
}

impl Clone for SampledPattern {
    fn clone(&self) -> Self {
        Self {
            kind: self.kind,
            dp: self.dp,
            bias: self.bias,
            tile: self.tile,
            unit_count: self.unit_count,
            kept: self.kept.clone(),
        }
    }

    /// Reuses the existing kept-index buffer whenever its capacity suffices,
    /// so caching a plan across iterations does not reallocate.
    fn clone_from(&mut self, source: &Self) {
        self.kind = source.kind;
        self.dp = source.dp;
        self.bias = source.bias;
        self.tile = source.tile;
        self.unit_count = source.unit_count;
        self.kept.clone_from(&source.kept);
    }
}

impl SampledPattern {
    /// An empty placeholder pattern (nothing resolved, nothing kept); a
    /// recyclable buffer for the `resolve_*` methods.
    pub fn empty() -> Self {
        Self {
            kind: PatternKind::Row,
            dp: 1,
            bias: 0,
            tile: 1,
            unit_count: 0,
            kept: Vec::new(),
        }
    }

    /// Builds a sampled row pattern resolved against `n` output neurons.
    pub fn from_row(pattern: RowPattern, n: usize) -> Self {
        let mut sampled = Self::empty();
        sampled.resolve_row(pattern, n);
        sampled
    }

    /// Builds a sampled tile pattern resolved against a tile grid.
    pub fn from_tile(pattern: TilePattern, grid: &TileGrid) -> Self {
        Self::from_tile_units(pattern, grid.total_tiles())
    }

    /// Builds a sampled tile pattern resolved against a known number of tiles
    /// (useful when the caller tracks the tile grid separately).
    pub fn from_tile_units(pattern: TilePattern, total_tiles: usize) -> Self {
        let mut sampled = Self::empty();
        sampled.resolve_tile_units(pattern, total_tiles);
        sampled
    }

    /// Re-resolves this buffer as a row pattern against `n` output neurons,
    /// recycling the kept-index vector instead of allocating a fresh one.
    pub fn resolve_row(&mut self, pattern: RowPattern, n: usize) {
        self.kind = PatternKind::Row;
        self.dp = pattern.dp;
        self.bias = pattern.bias;
        self.tile = 1;
        self.unit_count = n;
        self.kept.clear();
        self.kept.extend((pattern.bias..n).step_by(pattern.dp));
    }

    /// Re-resolves this buffer as a tile pattern against `total_tiles` tiles,
    /// recycling the kept-index vector instead of allocating a fresh one.
    pub fn resolve_tile_units(&mut self, pattern: TilePattern, total_tiles: usize) {
        self.kind = PatternKind::Tile;
        self.dp = pattern.dp;
        self.bias = pattern.bias;
        self.tile = pattern.tile;
        self.unit_count = total_tiles;
        self.kept.clear();
        self.kept
            .extend((pattern.bias..total_tiles).step_by(pattern.dp));
    }

    /// The family of the sampled pattern.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// The pattern period.
    pub fn dp(&self) -> usize {
        self.dp
    }

    /// The pattern bias.
    pub fn bias(&self) -> usize {
        self.bias
    }

    /// Tile edge (1 for row patterns).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of droppable units the pattern was resolved against.
    pub fn unit_count(&self) -> usize {
        self.unit_count
    }

    /// Indices of the kept units (neurons or tiles), ascending.
    pub fn kept_indices(&self) -> &[usize] {
        &self.kept
    }

    /// Fraction of units actually dropped once resolved against the layer.
    pub fn realized_dropout_fraction(&self) -> f64 {
        if self.unit_count == 0 {
            return 0.0;
        }
        1.0 - self.kept.len() as f64 / self.unit_count as f64
    }

    /// Inverted-dropout rescaling factor for the kept units.
    ///
    /// The keep probability under a period-`dp` pattern is `1/dp`, so kept
    /// activations are scaled by `dp` during training (the analogue of
    /// `1/(1−p)` for conventional dropout).
    pub fn inverted_scale(&self) -> f32 {
        self.dp as f32
    }

    /// The nominal global dropout rate of the underlying pattern, `(dp−1)/dp`.
    pub fn nominal_rate(&self) -> DropoutRate {
        DropoutRate::new((self.dp - 1) as f64 / self.dp as f64)
            .expect("(dp-1)/dp is always inside [0,1)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_pattern_rejects_bad_parameters() {
        assert!(RowPattern::new(0, 0).is_err());
        assert!(RowPattern::new(3, 3).is_err());
        assert!(RowPattern::new(3, 4).is_err());
        assert!(RowPattern::new(3, 2).is_ok());
    }

    #[test]
    fn row_pattern_keeps_one_in_dp() {
        let p = RowPattern::new(4, 2).unwrap();
        let kept = p.kept_rows(10);
        assert_eq!(kept, vec![2, 6]);
        let dropped = p.dropped_rows(10);
        assert_eq!(dropped.len(), 8);
        for i in 0..10 {
            assert_eq!(p.is_kept(i), kept.contains(&i));
        }
    }

    #[test]
    fn row_identity_keeps_everything() {
        let p = RowPattern::identity();
        assert_eq!(p.kept_rows(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(p.global_dropout_rate(), 0.0);
    }

    #[test]
    fn row_pattern_matches_paper_example() {
        // Paper Fig. 3(a): dp = 3 — "drop 2 rows every 3 rows", keeping rows
        // 0, 3, 6, … when the bias selects residue 0.
        let p = RowPattern::new(3, 0).unwrap();
        assert_eq!(p.kept_rows(9), vec![0, 3, 6]);
        assert!((p.global_dropout_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_mask_matrix_replicates_rows() {
        let p = RowPattern::new(2, 1).unwrap();
        let m = p.mask_matrix(3, 4);
        assert_eq!(m.shape(), (3, 4));
        for i in 0..3 {
            assert_eq!(m.row(i), &[0.0, 1.0, 0.0, 1.0]);
        }
    }

    #[test]
    fn row_sub_model_count_is_triangular() {
        assert_eq!(RowPattern::sub_model_count(1), 1);
        assert_eq!(RowPattern::sub_model_count(4), 10);
        assert_eq!(RowPattern::max_dp(2048), 2048);
    }

    #[test]
    fn tile_grid_counts_tiles_with_ragged_edges() {
        let grid = TileGrid::new(100, 70, 32).unwrap();
        assert_eq!(grid.tiles_per_col(), 4);
        assert_eq!(grid.tiles_per_row(), 3);
        assert_eq!(grid.total_tiles(), 12);
        let (rr, cc) = grid.tile_bounds(11);
        assert_eq!(rr, 96..100);
        assert_eq!(cc, 64..70);
    }

    #[test]
    fn tile_grid_rejects_zero_tile() {
        assert!(TileGrid::new(10, 10, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tile_bounds_panics_out_of_range() {
        let grid = TileGrid::new(32, 32, 32).unwrap();
        let _ = grid.tile_bounds(1);
    }

    #[test]
    fn tile_pattern_matches_paper_example() {
        // Paper Fig. 3(b): dp = 4, "drop 3 tiles every 4 tiles".
        let grid = TileGrid::new(96, 96, 32).unwrap(); // 3x3 = 9 tiles
        let p = TilePattern::new(4, 0, 32).unwrap();
        assert_eq!(p.kept_tiles(&grid), vec![0, 4, 8]);
        assert_eq!(p.dropped_tiles(&grid).len(), 6);
        assert!((p.global_dropout_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tile_pattern_rejects_bad_parameters() {
        assert!(TilePattern::new(0, 0, 32).is_err());
        assert!(TilePattern::new(2, 2, 32).is_err());
        assert!(TilePattern::new(2, 0, 0).is_err());
    }

    #[test]
    fn tile_weight_mask_covers_only_kept_tiles() {
        let grid = TileGrid::new(4, 4, 2).unwrap(); // 2x2 tiles
        let p = TilePattern::new(2, 1, 2).unwrap(); // keeps tiles 1 and 3
        let mask = p.weight_mask(&grid);
        // Tile 1 covers rows 0..2, cols 2..4; tile 3 covers rows 2..4, cols 2..4.
        assert_eq!(mask[(0, 0)], 0.0);
        assert_eq!(mask[(0, 3)], 1.0);
        assert_eq!(mask[(3, 3)], 1.0);
        assert_eq!(mask[(3, 0)], 0.0);
        assert!((mask.zero_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tile_max_dp_is_total_tiles() {
        let grid = TileGrid::new(2048, 2048, 32).unwrap();
        assert_eq!(TilePattern::max_dp(&grid), 64 * 64);
        // TDP offers far more sub-models than RDP for the same layer, which
        // is the paper's argument for its better accuracy.
        assert!(
            TilePattern::sub_model_count(TilePattern::max_dp(&grid))
                > RowPattern::sub_model_count(RowPattern::max_dp(2048))
        );
    }

    #[test]
    fn sampled_row_pattern_reports_realized_fraction() {
        let p = RowPattern::new(2, 0).unwrap();
        let s = SampledPattern::from_row(p, 10);
        assert_eq!(s.kept_indices(), &[0, 2, 4, 6, 8]);
        assert!((s.realized_dropout_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.inverted_scale(), 2.0);
        assert_eq!(s.kind(), PatternKind::Row);
        assert!((s.nominal_rate().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampled_tile_pattern_resolves_against_grid() {
        let grid = TileGrid::new(64, 64, 32).unwrap();
        let p = TilePattern::new(2, 0, 32).unwrap();
        let s = SampledPattern::from_tile(p, &grid);
        assert_eq!(s.unit_count(), 4);
        assert_eq!(s.kept_indices(), &[0, 2]);
        assert_eq!(s.tile(), 32);
        assert_eq!(s.kind(), PatternKind::Tile);
    }

    #[test]
    fn pattern_kind_display() {
        assert_eq!(PatternKind::Row.to_string(), "ROW");
        assert_eq!(PatternKind::Tile.to_string(), "TILE");
    }

    #[test]
    fn empty_layer_has_zero_realized_fraction() {
        let p = RowPattern::new(3, 0).unwrap();
        let s = SampledPattern::from_row(p, 0);
        assert_eq!(s.realized_dropout_fraction(), 0.0);
    }
}
