//! Memoized [`DropoutPlan`] cache — the serving-layer analogue of taking
//! mask generation off the hot path.
//!
//! The paper amortizes dropout overhead by making the pattern decision
//! *before* the GEMM launches; the hardware-oriented follow-up work goes
//! further and generates masks with LFSR-grade generators so the decision
//! costs nothing at all on the training path. [`PlanCache`] is the software
//! form of that idea for a multi-tenant serving layer: a plan is a pure
//! function of a [`PlanKey`] — which scheme configuration, which
//! [`LayerShape`], which *seed epoch* — so once one worker has sampled the
//! plan for a key, every other request in the same epoch reuses it.
//!
//! Two properties make the cache fit the hot path:
//!
//! * **Sharded mutexes.** Keys spread over independently locked shards, so
//!   concurrent worker shards rarely contend on the same lock.
//! * **Allocation-free hits.** A hit copies the cached plan into the
//!   caller's plan buffer with [`Clone::clone_from`], which recycles the
//!   buffer's kept-index / mask vectors (see `DropoutPlan::clone_from`).
//!   Once a worker's per-layer plan slot has been warmed by one fetch of
//!   each plan family, further hits allocate nothing and the slot's buffer
//!   pointers never move.
//!
//! Determinism is the contract that lets a serving layer switch the cache
//! on and off without changing results: the sampling closure passed to
//! [`PlanCache::fetch`] must derive its RNG from [`PlanKey::seed`], so a
//! cache miss (sample now) and a cache hit (reuse the earlier sample of the
//! same key) produce bitwise-identical plans.

use crate::plan::{DropoutPlan, LayerShape};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identity of one cached plan: which scheme configuration sampled it, for
/// which layer shape, in which seed epoch.
///
/// The *seed epoch* is the amortization knob: all requests dispatched in
/// the same epoch share one sampled plan per `(scheme, shape)`, and bumping
/// the epoch re-randomizes every plan (dropout keeps regularizing across
/// epochs, it just stops paying per-request sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Stable identifier of the scheme configuration (the caller assigns
    /// one per distinct scheme instance, e.g. per model layer).
    pub scheme_id: u64,
    /// Layer shape the plan is resolved against.
    pub shape: LayerShape,
    /// Seed epoch; advancing it invalidates the key and re-randomizes.
    pub epoch: u64,
}

impl PlanKey {
    /// Creates a key.
    pub fn new(scheme_id: u64, shape: LayerShape, epoch: u64) -> Self {
        Self {
            scheme_id,
            shape,
            epoch,
        }
    }

    /// The deterministic RNG seed for this key (a splitmix64-style mix of
    /// all fields). Samplers driven from `StdRng::seed_from_u64(key.seed())`
    /// produce the same plan whether or not the cache is enabled — the
    /// bitwise cache-on/cache-off equivalence the serving tests pin.
    pub fn seed(&self) -> u64 {
        let shape = ((self.shape.in_features as u64) << 32) ^ self.shape.out_features as u64;
        let mut z = self
            .scheme_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.epoch)
            .wrapping_add(shape.rotate_left(17));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hit/miss counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Fetches answered from the cache.
    pub hits: u64,
    /// Fetches that had to sample a fresh plan.
    pub misses: u64,
}

impl PlanCacheStats {
    /// Fraction of fetches answered from the cache (0 when never fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.fetches();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total fetches observed (hits + misses).
    pub fn fetches(&self) -> u64 {
        self.hits + self.misses
    }

    /// Whether the cache is *warm*: enough traffic has been observed and
    /// most of it hit. A warm cache means a freshly spawned replica resolves
    /// its plans from memoized entries instead of re-running pattern
    /// sampling, which is what makes scaling *up* cheap — the serve-layer
    /// autoscaler consults this before lowering its scale-up threshold.
    pub fn is_warm(&self) -> bool {
        self.fetches() >= 16 && self.hit_rate() >= 0.5
    }
}

/// A sharded-mutex memoization table from [`PlanKey`] to [`DropoutPlan`].
#[derive(Debug)]
pub struct PlanCache {
    shards: Box<[Mutex<HashMap<PlanKey, DropoutPlan>>]>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates a cache with `shards` independently locked shards (clamped
    /// to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<HashMap<PlanKey, DropoutPlan>> {
        let idx = self.hasher.hash_one(key) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Resolves `key` into `dest`, reusing `dest`'s buffers either way.
    ///
    /// On a hit the cached plan is copied into `dest` with `clone_from`
    /// (allocation-free once `dest` has held the same plan family). On a
    /// miss `sample` is invoked to resolve the plan into `dest` (callers
    /// use `DropoutScheme::plan_into` seeded from [`PlanKey::seed`]) and
    /// the result is memoized for later fetches of the same key. Returns
    /// `true` on a hit.
    ///
    /// The shard lock is held across `sample`, so one worker samples each
    /// key at most once even under concurrent fetches of the same key.
    pub fn fetch(
        &self,
        key: PlanKey,
        dest: &mut DropoutPlan,
        sample: impl FnOnce(&mut DropoutPlan),
    ) -> bool {
        let mut map = self.shard(&key).lock().expect("plan-cache shard poisoned");
        if let Some(cached) = map.get(&key) {
            dest.clone_from(cached);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        sample(dest);
        map.insert(key, dest.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Number of memoized plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan-cache shard poisoned").len())
            .sum()
    }

    /// `true` when no plan is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry whose epoch is older than `epoch`, returning how
    /// many were evicted. Serving layers call this as the seed epoch
    /// advances so the table stays bounded by the number of live
    /// `(scheme, shape)` pairs instead of growing with training time.
    pub fn evict_before(&self, epoch: u64) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.lock().expect("plan-cache shard poisoned");
            let before = map.len();
            map.retain(|key, _| key.epoch >= epoch);
            evicted += before - map.len();
        }
        evicted
    }

    /// Removes every entry and resets nothing else (stats keep counting).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("plan-cache shard poisoned").clear();
        }
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{self, DropoutScheme};
    use crate::DropoutRate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_with(scheme: &mut dyn DropoutScheme, key: PlanKey, dest: &mut DropoutPlan) {
        let mut rng = StdRng::seed_from_u64(key.seed());
        scheme.plan_into(&mut rng, key.shape, dest);
    }

    #[test]
    fn fetch_memoizes_and_counts() {
        let cache = PlanCache::new(4);
        let mut scheme = scheme::bernoulli(DropoutRate::new(0.5).unwrap());
        let key = PlanKey::new(7, LayerShape::new(16, 64), 0);
        let mut a = DropoutPlan::default();
        let mut b = DropoutPlan::default();
        assert!(!cache.fetch(key, &mut a, |d| sample_with(&mut *scheme, key, d)));
        assert!(cache.fetch(key, &mut b, |d| sample_with(&mut *scheme, key, d)));
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cached_plan_is_bitwise_equal_to_fresh_sample() {
        // The determinism contract: a hit returns exactly what sampling
        // fresh from the key's seed would have produced.
        let cache = PlanCache::new(2);
        let mut scheme = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
        let key = PlanKey::new(3, LayerShape::new(32, 128), 5);
        let mut warm = DropoutPlan::default();
        cache.fetch(key, &mut warm, |d| sample_with(&mut *scheme, key, d));
        let mut via_cache = DropoutPlan::default();
        assert!(cache.fetch(key, &mut via_cache, |_| panic!("must hit")));
        let mut fresh = DropoutPlan::default();
        sample_with(&mut *scheme.clone(), key, &mut fresh);
        assert_eq!(via_cache, fresh);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = PlanCache::new(1);
        let shape = LayerShape::new(8, 32);
        let mut scheme = scheme::bernoulli(DropoutRate::new(0.5).unwrap());
        let k0 = PlanKey::new(1, shape, 0);
        let k1 = PlanKey::new(1, shape, 1);
        let k2 = PlanKey::new(2, shape, 0);
        let mut dest = DropoutPlan::default();
        for key in [k0, k1, k2] {
            cache.fetch(key, &mut dest, |d| sample_with(&mut *scheme, key, d));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
        assert_ne!(k0.seed(), k1.seed());
        assert_ne!(k0.seed(), k2.seed());
    }

    #[test]
    fn evict_before_drops_only_old_epochs() {
        let cache = PlanCache::new(3);
        let shape = LayerShape::new(4, 16);
        let mut scheme = scheme::bernoulli(DropoutRate::new(0.3).unwrap());
        let mut dest = DropoutPlan::default();
        for epoch in 0..6 {
            let key = PlanKey::new(0, shape, epoch);
            cache.fetch(key, &mut dest, |d| sample_with(&mut *scheme, key, d));
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.evict_before(4), 4);
        assert_eq!(cache.len(), 2);
        // Epochs 4 and 5 still hit.
        let key = PlanKey::new(0, shape, 4);
        assert!(cache.fetch(key, &mut dest, |_| panic!("must hit")));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn hit_path_recycles_the_destination_buffers() {
        // The zero-allocation claim: once the destination slot has held a
        // plan of the same family, a hit must reuse its vectors in place.
        let cache = PlanCache::new(2);
        let mut scheme = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
        let key = PlanKey::new(9, LayerShape::new(16, 96), 2);
        let mut dest = DropoutPlan::default();
        cache.fetch(key, &mut dest, |d| sample_with(&mut *scheme, key, d));
        let ptr = dest.compact_rows().unwrap().as_ptr();
        for _ in 0..8 {
            assert!(cache.fetch(key, &mut dest, |_| panic!("must hit")));
            assert_eq!(
                dest.compact_rows().unwrap().as_ptr(),
                ptr,
                "hit must reuse the kept-index buffer, not reallocate"
            );
        }
    }
}
