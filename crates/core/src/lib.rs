//! Approximate Random Dropout — the core contribution of the DATE 2019 paper
//! *"Approximate Random Dropout for DNN training acceleration in GPGPU"*.
//!
//! Conventional dropout draws an independent Bernoulli variable per neuron
//! (or synapse), which makes the set of dropped units irregular and therefore
//! impossible for a SIMT GPU to skip. This crate replaces the Bernoulli draw
//! with **regular dropout patterns** whose dropped positions are known before
//! the GEMM is launched, so the kernel can build compact operand matrices and
//! do `1/dp` of the work:
//!
//! * [`RowPattern`] — Row-based Dropout Pattern (RDP): keep one row of the
//!   weight matrix in every `dp`, i.e. drop whole neurons.
//! * [`TilePattern`] — Tile-based Dropout Pattern (TDP): keep one 32×32 tile
//!   in every `dp`, i.e. drop structured groups of synapses (the regular
//!   analogue of DropConnect).
//! * [`search::sgd_search`] — Algorithm 1, the SGD-based Search Algorithm
//!   that produces a distribution `K` over pattern periods such that the
//!   expected global dropout rate equals the target rate `p` while the
//!   distribution stays dense (many distinct sub-models).
//! * [`PatternSampler`] — per-iteration sampling of `(dp, bias)` from `K`, as
//!   described in §III-D of the paper.
//! * [`scheme`] / [`plan`] — the plan–execute API: a [`DropoutScheme`] samples
//!   a [`DropoutPlan`] per iteration *before* any GEMM runs, and the same plan
//!   drives both the training passes (`nn`) and the GPU timing model
//!   (`gpu_sim`) — mirroring the paper's pre-launch pattern selection.
//! * [`equivalence`] — empirical checks of the statistical-equivalence claim
//!   `p_n ≈ p_g ≈ p` (Eq. 2 and Eq. 3).
//!
//! # Quickstart
//!
//! ```
//! use approx_dropout::{DropoutRate, PatternKind, PatternSampler, SearchConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), approx_dropout::DropoutError> {
//! // Target dropout rate 0.5, patterns with periods up to dp = 8.
//! let rate = DropoutRate::new(0.5)?;
//! let dist = approx_dropout::search::sgd_search(rate, 8, &SearchConfig::default())?;
//! assert!((dist.expected_global_rate() - 0.5).abs() < 0.02);
//!
//! // Sample a concrete pattern for one training iteration.
//! let mut rng = StdRng::seed_from_u64(0);
//! let sampler = PatternSampler::new(dist, PatternKind::Row);
//! let pattern = sampler.sample(&mut rng, 2048);
//! assert!(pattern.kept_indices().len() <= 2048);
//! # Ok(())
//! # }
//! ```

pub mod bernoulli;
pub mod crs;
pub mod equivalence;
pub mod error;
pub mod pattern;
pub mod plan;
pub mod plan_cache;
pub mod rate;
pub mod sampler;
pub mod scheme;
pub mod search;
pub mod spec;
pub mod structured;

pub use bernoulli::BernoulliDropout;
pub use crs::CrsSampling;
pub use error::DropoutError;
pub use pattern::{DropoutPattern, PatternKind, RowPattern, SampledPattern, TileGrid, TilePattern};
pub use plan::{CrsSelection, DropoutPlan, FusedBody, KernelSchedule, LayerShape};
pub use plan_cache::{PlanCache, PlanCacheStats, PlanKey};
pub use rate::DropoutRate;
pub use sampler::{ApproxDropoutBuilder, ApproxDropoutLayer, PatternSampler};
pub use scheme::{Bernoulli, DivergentBernoulli, DropoutScheme, NoDropout};
pub use search::{PatternDistribution, SearchConfig, SearchOutcome};
pub use spec::{SchemeSpec, SchemeSpecError};
pub use structured::{BlockUnit, NmSparsity, StructuredKind, StructuredUnits};
pub use tensor::Activation;

/// Default tile edge length used by the Tile-based Dropout Pattern.
///
/// The paper fixes 32×32 to match the 32 shared-memory banks of an NVIDIA
/// GPU and to balance sub-model diversity against control granularity.
pub const DEFAULT_TILE_SIZE: usize = 32;

#[cfg(test)]
mod tests {
    #[test]
    fn default_tile_size_matches_paper() {
        assert_eq!(super::DEFAULT_TILE_SIZE, 32);
    }
}
