//! The *scheme* half of the plan–execute dropout API.
//!
//! A [`DropoutScheme`] is a per-layer dropout policy: at the start of every
//! training iteration it samples a concrete [`DropoutPlan`] for the layer's
//! [`LayerShape`]. The scheme owns whatever per-layer state the policy needs
//! (a target rate, a searched pattern distribution, running statistics) and
//! the plan is the immutable, fully resolved decision both the training
//! passes and the GPU timing model execute against.
//!
//! Implementations provided here:
//!
//! * [`NoDropout`] — the identity scheme.
//! * [`Bernoulli`] — the conventional baseline: an independent per-neuron
//!   mask after a dense GEMM (paper Fig. 1(a)).
//! * [`DivergentBernoulli`] — the same numerics but scheduled as the naive
//!   in-kernel `if (kept)` skip (paper Fig. 1(b)); exists so the timing
//!   model can price the paper's motivating anti-pattern.
//! * [`RowPattern`] / [`TilePattern`] — a *fixed* regular pattern as a
//!   degenerate scheme (the "fixed pattern" ablation baseline).
//! * [`ApproxDropoutLayer`] — the paper's contribution: per-iteration
//!   `(dp, bias)` sampling from the distribution found by Algorithm 1.
//! * [`crate::NmSparsity`] / [`crate::BlockUnit`] — the structured-sparsity
//!   family from follow-up work (N:M fine-grained sparsity, arXiv:2203.05705,
//!   and SDropout's structured unit dropout, arXiv:2411.01238), implemented
//!   in [`crate::structured`] and boxed here by [`nm`] / [`block_unit`].
//!
//! Adding a new pattern family is a single trait implementation plus, when
//! the family implies a new kernel shape, one [`crate::KernelSchedule`]
//! variant: the scheme samples the plan, the plan carries the schedule, and
//! every consumer (`nn` execution, `gpu_sim` pricing) dispatches on the plan
//! alone — no consumer ever branches on the scheme type.

use crate::bernoulli::BernoulliDropout;
use crate::error::DropoutError;
use crate::pattern::{PatternKind, RowPattern, SampledPattern, TileGrid, TilePattern};
use crate::plan::{DropoutPlan, LayerShape};
use crate::rate::DropoutRate;
use crate::sampler::{ApproxDropoutBuilder, ApproxDropoutLayer};
use rand::RngCore;

/// A per-layer dropout policy that plans each iteration's execution before
/// any kernel runs.
pub trait DropoutScheme: std::fmt::Debug + Send {
    /// Samples the concrete plan for one training iteration of a layer.
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan;

    /// Samples the next iteration's plan *into* an existing plan buffer,
    /// recycling its kept-index / mask allocations.
    ///
    /// For the same RNG state this produces a plan equal to
    /// [`DropoutScheme::plan`] (the schemes shipped here guarantee
    /// draw-for-draw identical sampling); the default implementation simply
    /// delegates, so custom schemes are correct without an override and can
    /// add one when the per-iteration allocation matters.
    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        *out = self.plan(rng, shape);
    }

    /// Nominal (target) dropout rate of the scheme.
    fn nominal_rate(&self) -> f64;

    /// Short human-readable label used in reports.
    fn label(&self) -> &'static str;

    /// Clones the scheme behind a box (schemes are held as trait objects by
    /// the network types, which must stay `Clone`).
    fn clone_box(&self) -> Box<dyn DropoutScheme>;
}

impl Clone for Box<dyn DropoutScheme> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The identity scheme: every plan is a plain dense GEMM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoDropout;

impl DropoutScheme for NoDropout {
    fn plan(&mut self, _rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        DropoutPlan::none(shape)
    }

    fn plan_into(&mut self, _rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        out.reset_none(shape);
    }

    fn nominal_rate(&self) -> f64 {
        0.0
    }

    fn label(&self) -> &'static str {
        "none"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(*self)
    }
}

/// Conventional Bernoulli dropout (the paper's baseline): one independent
/// draw per output neuron, applied as a mask after a dense GEMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    rate: DropoutRate,
}

impl Bernoulli {
    /// Creates the baseline scheme at the given drop rate.
    pub fn new(rate: DropoutRate) -> Self {
        Self { rate }
    }

    /// The configured rate.
    pub fn rate(&self) -> DropoutRate {
        self.rate
    }
}

impl DropoutScheme for Bernoulli {
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        let mask = BernoulliDropout::new(self.rate).neuron_mask(rng, shape.out_features);
        DropoutPlan::bernoulli(
            shape,
            mask,
            self.rate.inverted_scale() as f32,
            self.rate.value(),
        )
    }

    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        let rate = self.rate;
        out.reset_bernoulli_with(shape, rate.inverted_scale() as f32, rate.value(), |mask| {
            BernoulliDropout::new(rate).fill_neuron_mask(rng, shape.out_features, mask)
        });
    }

    fn nominal_rate(&self) -> f64 {
        self.rate.value()
    }

    fn label(&self) -> &'static str {
        "bernoulli"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(*self)
    }
}

/// Bernoulli dropout executed as the naive in-kernel `if (kept)` skip of
/// Fig. 1(b). Numerically identical to [`Bernoulli`]; only the
/// [`crate::KernelSchedule`] differs — which is exactly the point of the
/// plan–execute split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergentBernoulli {
    rate: DropoutRate,
}

impl DivergentBernoulli {
    /// Creates the divergent-execution baseline at the given drop rate.
    pub fn new(rate: DropoutRate) -> Self {
        Self { rate }
    }
}

impl DropoutScheme for DivergentBernoulli {
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        let mask = BernoulliDropout::new(self.rate).neuron_mask(rng, shape.out_features);
        DropoutPlan::divergent(
            shape,
            mask,
            self.rate.inverted_scale() as f32,
            self.rate.value(),
        )
    }

    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        let rate = self.rate;
        out.reset_divergent_with(shape, rate.inverted_scale() as f32, rate.value(), |mask| {
            BernoulliDropout::new(rate).fill_neuron_mask(rng, shape.out_features, mask)
        });
    }

    fn nominal_rate(&self) -> f64 {
        self.rate.value()
    }

    fn label(&self) -> &'static str {
        "divergent"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(*self)
    }
}

impl DropoutScheme for RowPattern {
    /// A fixed row pattern used as a scheme: the same `(dp, bias)` every
    /// iteration (the "fixed pattern" ablation baseline).
    fn plan(&mut self, _rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        DropoutPlan::row(shape, SampledPattern::from_row(*self, shape.out_features))
    }

    fn plan_into(&mut self, _rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        out.reset_row(shape, *self);
    }

    fn nominal_rate(&self) -> f64 {
        use crate::pattern::DropoutPattern;
        self.global_dropout_rate()
    }

    fn label(&self) -> &'static str {
        "row-fixed"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(*self)
    }
}

impl DropoutScheme for TilePattern {
    /// A fixed tile pattern used as a scheme: the same `(dp, bias)` every
    /// iteration, resolved against the layer's weight grid.
    fn plan(&mut self, _rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        let grid = TileGrid::new(shape.in_features, shape.out_features, self.tile())
            .expect("tile size validated at pattern construction");
        DropoutPlan::tile(shape, SampledPattern::from_tile(*self, &grid), grid)
    }

    fn plan_into(&mut self, _rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        let grid = TileGrid::new(shape.in_features, shape.out_features, self.tile())
            .expect("tile size validated at pattern construction");
        out.reset_tile(shape, *self, grid);
    }

    fn nominal_rate(&self) -> f64 {
        use crate::pattern::DropoutPattern;
        self.global_dropout_rate()
    }

    fn label(&self) -> &'static str {
        "tile-fixed"
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(*self)
    }
}

impl DropoutScheme for ApproxDropoutLayer {
    /// The paper's approximate random dropout: sample `(dp, bias)` from the
    /// distribution found by Algorithm 1, resolved against the layer.
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        match self.sampler().kind() {
            PatternKind::Row => {
                let pattern = self.next_pattern(rng, shape.out_features);
                DropoutPlan::row(shape, pattern)
            }
            PatternKind::Tile => {
                let tile = self.sampler().tile_size();
                let grid = TileGrid::new(shape.in_features, shape.out_features, tile)
                    .expect("tile size validated at construction");
                let pattern = self.next_pattern(rng, grid.total_tiles());
                DropoutPlan::tile(shape, pattern, grid)
            }
        }
    }

    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        match self.sampler().kind() {
            PatternKind::Row => {
                let pattern = self.next_row_pattern(rng, shape.out_features);
                out.reset_row(shape, pattern);
            }
            PatternKind::Tile => {
                let tile = self.sampler().tile_size();
                let grid = TileGrid::new(shape.in_features, shape.out_features, tile)
                    .expect("tile size validated at construction");
                let pattern = self.next_tile_pattern(rng, grid.total_tiles());
                out.reset_tile(shape, pattern, grid);
            }
        }
    }

    fn nominal_rate(&self) -> f64 {
        self.target_rate().value()
    }

    fn label(&self) -> &'static str {
        match self.sampler().kind() {
            PatternKind::Row => "row",
            PatternKind::Tile => "tile",
        }
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(self.clone())
    }
}

/// Boxed identity scheme.
pub fn none() -> Box<dyn DropoutScheme> {
    Box::new(NoDropout)
}

/// Boxed conventional-dropout scheme.
pub fn bernoulli(rate: DropoutRate) -> Box<dyn DropoutScheme> {
    Box::new(Bernoulli::new(rate))
}

/// Boxed divergent-execution Bernoulli scheme (Fig. 1(b) baseline).
pub fn divergent_bernoulli(rate: DropoutRate) -> Box<dyn DropoutScheme> {
    Box::new(DivergentBernoulli::new(rate))
}

/// Default maximum pattern period explored by Algorithm 1 when none is
/// given.
pub const DEFAULT_MAX_DP: usize = 16;

/// Boxed row-pattern scheme: runs Algorithm 1 for `rate` with periods up to
/// `max_dp` and samples a fresh `(dp, bias)` each iteration.
///
/// # Errors
///
/// Propagates [`DropoutError`] from the search.
pub fn row(rate: DropoutRate, max_dp: usize) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(
        ApproxDropoutBuilder::new(rate, PatternKind::Row)
            .max_dp(max_dp)
            .build()?,
    ))
}

/// Boxed tile-pattern scheme with an explicit tile edge length.
///
/// # Errors
///
/// Propagates [`DropoutError`] from the search or tile validation.
pub fn tile(
    rate: DropoutRate,
    max_dp: usize,
    tile_size: usize,
) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(
        ApproxDropoutBuilder::new(rate, PatternKind::Tile)
            .max_dp(max_dp)
            .tile_size(tile_size)
            .build()?,
    ))
}

/// Boxed N:M structured-sparsity scheme: every iteration keeps exactly `n`
/// uniformly sampled lanes in each group of `m` consecutive output neurons.
///
/// # Errors
///
/// Propagates [`DropoutError`] from parameter validation.
pub fn nm(n: usize, m: usize) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(crate::structured::NmSparsity::new(n, m)?))
}

/// Boxed block-structured unit-dropout scheme: contiguous `block`-wide
/// neuron blocks are dropped with independent Bernoulli draws at `rate`.
///
/// # Errors
///
/// Propagates [`DropoutError`] from parameter validation.
pub fn block_unit(rate: DropoutRate, block: usize) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(crate::structured::BlockUnit::new(rate, block)?))
}

/// Boxed pure CRS-sampling scheme: every iteration keeps `round(keep · K)`
/// uniformly chosen inner-dimension indices of the layer's GEMM and the
/// kernel scales the product by `K/k` for unbiasedness. No neuron is
/// dropped — this approximates the GEMM itself.
///
/// # Errors
///
/// Propagates [`DropoutError`] from parameter validation.
pub fn crs(keep: f64) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(crate::crs::CrsSampling::new(keep)?))
}

/// Boxed composed row-dropout × CRS scheme: the row scheme (Algorithm 1 at
/// `rate` with periods up to `max_dp`) compacts the output dimension while
/// CRS samples `round(keep · K)` inner indices of the *same* kernel call, so
/// the two speedups multiply.
///
/// # Errors
///
/// Propagates [`DropoutError`] from the search or parameter validation.
pub fn row_crs(
    rate: DropoutRate,
    max_dp: usize,
    keep: f64,
) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(crate::crs::CrsSampling::composed(
        keep,
        row(rate, max_dp)?,
    )?))
}

/// Boxed pattern scheme of either family with the paper's defaults
/// (`max_dp = 16`, 32×32 tiles).
///
/// # Errors
///
/// Propagates [`DropoutError`] from the search.
pub fn pattern(
    rate: DropoutRate,
    kind: PatternKind,
) -> Result<Box<dyn DropoutScheme>, DropoutError> {
    Ok(Box::new(
        ApproxDropoutBuilder::new(rate, kind)
            .max_dp(DEFAULT_MAX_DP)
            .build()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_dropout_plans_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut scheme = NoDropout;
        let plan = scheme.plan(&mut rng, LayerShape::new(8, 8));
        assert!(plan.is_identity());
        assert_eq!(scheme.nominal_rate(), 0.0);
    }

    #[test]
    fn bernoulli_scheme_masks_at_the_target_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut scheme = Bernoulli::new(DropoutRate::new(0.5).unwrap());
        let plan = scheme.plan(&mut rng, LayerShape::new(64, 1024));
        let dropped = plan.realized_drop_fraction();
        assert!((dropped - 0.5).abs() < 0.08, "dropped {dropped}");
        assert!((plan.scale() - 2.0).abs() < 1e-6);
        assert!(plan.kernel_schedule().needs_mask_kernel());
    }

    #[test]
    fn divergent_scheme_matches_bernoulli_numerics() {
        let mut a = Bernoulli::new(DropoutRate::new(0.3).unwrap());
        let mut b = DivergentBernoulli::new(DropoutRate::new(0.3).unwrap());
        let shape = LayerShape::new(16, 128);
        let plan_a = a.plan(&mut StdRng::seed_from_u64(9), shape);
        let plan_b = b.plan(&mut StdRng::seed_from_u64(9), shape);
        // Same RNG seed, same draws, same mask — only the schedule differs.
        assert_eq!(plan_a.bernoulli_mask(), plan_b.bernoulli_mask());
        assert_ne!(plan_a.kernel_schedule(), plan_b.kernel_schedule());
        assert!(!plan_b.kernel_schedule().needs_mask_kernel());
    }

    #[test]
    fn fixed_row_pattern_is_a_scheme() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut scheme = RowPattern::new(3, 1).unwrap();
        let plan = scheme.plan(&mut rng, LayerShape::vector(9));
        assert_eq!(plan.compact_rows().unwrap(), &[1, 4, 7]);
        assert!((scheme.nominal_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Fixed pattern: identical plan every iteration.
        let again = scheme.plan(&mut rng, LayerShape::vector(9));
        assert_eq!(plan, again);
    }

    #[test]
    fn fixed_tile_pattern_resolves_against_layer_grid() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut scheme = TilePattern::new(2, 0, 4).unwrap();
        let plan = scheme.plan(&mut rng, LayerShape::new(8, 8));
        let (kept, grid) = plan.kept_tiles().unwrap();
        assert_eq!(grid.total_tiles(), 4);
        assert_eq!(kept, &[0, 2]);
    }

    #[test]
    fn searched_row_scheme_tracks_target_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut scheme = row(DropoutRate::new(0.5).unwrap(), 16).unwrap();
        assert_eq!(scheme.label(), "row");
        let mut acc = 0.0;
        let iters = 2_000;
        for _ in 0..iters {
            let plan = scheme.plan(&mut rng, LayerShape::vector(256));
            acc += plan.realized_drop_fraction();
        }
        let mean = acc / iters as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean realized rate {mean}");
    }

    #[test]
    fn searched_tile_scheme_produces_tile_plans() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut scheme = tile(DropoutRate::new(0.5).unwrap(), 8, 16).unwrap();
        assert_eq!(scheme.label(), "tile");
        let plan = scheme.plan(&mut rng, LayerShape::new(64, 64));
        let (_, grid) = plan.kept_tiles().unwrap();
        assert_eq!(grid.total_tiles(), 16);
    }

    #[test]
    fn boxed_schemes_clone_independently() {
        let mut original = row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
        let mut copy = original.clone();
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let plan_a = original.plan(&mut rng_a, LayerShape::vector(64));
        let plan_b = copy.plan(&mut rng_b, LayerShape::vector(64));
        assert_eq!(plan_a, plan_b);
    }

    #[test]
    fn pattern_helper_uses_paper_defaults() {
        let scheme = pattern(DropoutRate::new(0.3).unwrap(), PatternKind::Row).unwrap();
        assert!((scheme.nominal_rate() - 0.3).abs() < 1e-12);
    }
}
