//! Column-row sampling (CRS) of the GEMM inner dimension — the second
//! approximation axis, orthogonal to every dropout family.
//!
//! Adelman & Silberstein (arXiv:1805.08079) observe that the *GEMM itself*
//! can be approximated: writing `A·W = Σ_p A[:,p]·W[p,:]` as a sum of `K`
//! outer products, keeping only `k` of the terms and scaling the result by
//! `K/k` yields an unbiased estimator of the dense product at `k/K` of the
//! multiply-accumulate work. Unlike the paper's dropout patterns this
//! compacts the **inner** dimension, so it composes with any output-neuron
//! dropout plan: a row-compacted GEMM can additionally sample its inner
//! dimension and the speedups multiply (the composed
//! [`crate::KernelSchedule::RowCrsCompact`] launch).
//!
//! [`CrsSampling`] draws the kept inner indices **uniformly** without
//! replacement. The CRS paper's norm-proportional criterion needs the
//! operand norms of the very iteration being planned, which the
//! plan-before-execute API deliberately never sees — uniform sampling keeps
//! the scheme weight-agnostic, keeps `K/k` the exact unbiasedness factor,
//! and keeps planning as cheap as the dropout schemes it rides along with.

use crate::error::DropoutError;
use crate::plan::{DropoutPlan, LayerShape};
use crate::scheme::DropoutScheme;
use rand::{Rng, RngCore};

/// CRS sampling of the GEMM inner dimension as a [`DropoutScheme`]: each
/// iteration keeps `round(keep · K)` (clamped to `1..=K`) uniformly chosen
/// inner indices of the layer's `K = in_features` dimension and records the
/// `K/k` unbiasedness scale in the plan.
///
/// Optionally wraps an inner dropout scheme ([`CrsSampling::composed`]);
/// the inner scheme plans first and the CRS selection is attached on top,
/// upgrading a dense plan to [`crate::KernelSchedule::CrsCompact`] and a
/// row-compacted plan to the composed
/// [`crate::KernelSchedule::RowCrsCompact`] launch.
#[derive(Debug, Clone)]
pub struct CrsSampling {
    /// Fraction of the inner dimension kept, in `(0, 1]`.
    keep: f64,
    /// Optional composed dropout scheme (identity or row family) that plans
    /// the output dimension before the CRS selection is attached.
    inner: Option<Box<dyn DropoutScheme>>,
    /// Fisher–Yates scratch (inner-index permutation), recycled across
    /// iterations so planning stays allocation-free once warmed.
    scratch: Vec<usize>,
}

impl CrsSampling {
    /// Creates a pure CRS scheme keeping the given fraction of the inner
    /// dimension.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] unless `0 < keep <= 1`.
    pub fn new(keep: f64) -> Result<Self, DropoutError> {
        if !(keep > 0.0 && keep <= 1.0) {
            return Err(DropoutError::InvalidPattern(format!(
                "CRS keep fraction must be in (0, 1], got {keep}"
            )));
        }
        Ok(Self {
            keep,
            inner: None,
            scratch: Vec::new(),
        })
    }

    /// Creates a composed scheme: `inner` plans the output dimension (its
    /// dropout decision is untouched), then the CRS selection samples the
    /// inner dimension of the same kernel call.
    ///
    /// The inner scheme must resolve to a dense or row-compacted plan —
    /// CRS does not compose with the mask, tile, N:M or block families
    /// (attaching to one of those panics at plan time).
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] unless `0 < keep <= 1`.
    pub fn composed(keep: f64, inner: Box<dyn DropoutScheme>) -> Result<Self, DropoutError> {
        let mut scheme = Self::new(keep)?;
        scheme.inner = Some(inner);
        Ok(scheme)
    }

    /// Fraction of the inner dimension kept.
    pub fn keep_fraction(&self) -> f64 {
        self.keep
    }

    /// How many inner indices the scheme keeps for an inner dimension of
    /// `total_k`: `round(keep · K)` clamped to `1..=K` (0 only when the
    /// dimension itself is empty).
    pub fn kept_count(&self, total_k: usize) -> usize {
        if total_k == 0 {
            return 0;
        }
        ((total_k as f64 * self.keep).round() as usize).clamp(1, total_k)
    }

    /// Samples the kept inner indices for an inner dimension of `total_k`
    /// into `kept` (cleared by the caller, ascending): a partial
    /// Fisher–Yates shuffle draws `kept_count(total_k)` distinct indices.
    fn sample_kept(&mut self, rng: &mut dyn RngCore, total_k: usize, kept: &mut Vec<usize>) {
        let take = self.kept_count(total_k);
        self.scratch.clear();
        self.scratch.extend(0..total_k);
        for i in 0..take {
            let j = rng.gen_range(i..total_k);
            self.scratch.swap(i, j);
        }
        let chosen = &mut self.scratch[..take];
        chosen.sort_unstable();
        kept.extend_from_slice(chosen);
    }
}

impl DropoutScheme for CrsSampling {
    fn plan(&mut self, rng: &mut dyn RngCore, shape: LayerShape) -> DropoutPlan {
        // Delegating to `plan_into` makes the draw-for-draw equality of the
        // two entry points true by construction.
        let mut out = DropoutPlan::default();
        self.plan_into(rng, shape, &mut out);
        out
    }

    fn plan_into(&mut self, rng: &mut dyn RngCore, shape: LayerShape, out: &mut DropoutPlan) {
        let total_k = shape.in_features;
        let composed = self.inner.is_some();
        if let Some(inner) = self.inner.as_mut() {
            inner.plan_into(rng, shape, out);
        }
        if composed {
            out.attach_crs_with(total_k, |kept| self.sample_kept(rng, total_k, kept));
        } else {
            out.reset_crs_with(shape, total_k, |kept| self.sample_kept(rng, total_k, kept));
        }
    }

    fn nominal_rate(&self) -> f64 {
        // CRS itself drops no neurons; the composed scheme reports the
        // inner dropout rate, the pure scheme the fraction of inner
        // products skipped.
        match &self.inner {
            Some(inner) => inner.nominal_rate(),
            None => 1.0 - self.keep,
        }
    }

    fn label(&self) -> &'static str {
        match &self.inner {
            Some(_) => "row-crs",
            None => "crs",
        }
    }

    fn clone_box(&self) -> Box<dyn DropoutScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_cache::{PlanCache, PlanKey};
    use crate::{scheme, DropoutRate, KernelSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crs_rejects_bad_keep_fractions() {
        assert!(CrsSampling::new(0.0).is_err());
        assert!(CrsSampling::new(-0.5).is_err());
        assert!(CrsSampling::new(1.5).is_err());
        assert!(CrsSampling::new(f64::NAN).is_err());
        assert!(CrsSampling::new(0.5).is_ok());
        assert!(CrsSampling::new(1.0).is_ok());
    }

    #[test]
    fn kept_count_rounds_and_clamps() {
        let scheme = CrsSampling::new(0.5).unwrap();
        assert_eq!(scheme.kept_count(8), 4);
        assert_eq!(scheme.kept_count(1), 1);
        assert_eq!(scheme.kept_count(0), 0);
        let tiny = CrsSampling::new(0.01).unwrap();
        // Never keeps zero indices of a non-empty dimension.
        assert_eq!(tiny.kept_count(8), 1);
        let full = CrsSampling::new(1.0).unwrap();
        assert_eq!(full.kept_count(7), 7);
    }

    #[test]
    fn crs_plan_keeps_k_ascending_distinct_indices() {
        let mut scheme = CrsSampling::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let plan = scheme.plan(&mut rng, LayerShape::new(24, 16));
            let selection = plan.crs_selection().unwrap();
            assert_eq!(selection.kept_indices().len(), 12);
            assert_eq!(selection.total(), 24);
            assert!(selection.kept_indices().windows(2).all(|w| w[0] < w[1]));
            assert!(selection.kept_indices().iter().all(|&p| p < 24));
            assert_eq!(plan.crs_scale(), 2.0);
            assert_eq!(
                *plan.kernel_schedule(),
                KernelSchedule::CrsCompact {
                    kept_k: 12,
                    total_k: 24
                }
            );
        }
    }

    #[test]
    fn crs_selection_varies_across_iterations() {
        let mut scheme = CrsSampling::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            let plan = scheme.plan(&mut rng, LayerShape::new(32, 8));
            seen.insert(plan.crs_selection().unwrap().kept_indices().to_vec());
        }
        assert!(seen.len() > 5, "only {} distinct selections", seen.len());
    }

    #[test]
    fn plan_into_equals_plan_draw_for_draw() {
        let mut a = CrsSampling::new(0.5).unwrap();
        let mut b = a.clone();
        let shape = LayerShape::new(40, 24);
        let mut recycled = DropoutPlan::default();
        for step in 0..10 {
            let fresh = a.plan(&mut StdRng::seed_from_u64(step), shape);
            b.plan_into(&mut StdRng::seed_from_u64(step), shape, &mut recycled);
            assert_eq!(fresh, recycled, "step {step}");
        }
    }

    #[test]
    fn plan_into_recycles_the_kept_index_buffer() {
        let mut scheme = CrsSampling::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let shape = LayerShape::new(32, 16);
        let mut plan = DropoutPlan::default();
        scheme.plan_into(&mut rng, shape, &mut plan);
        let ptr = plan.crs_selection().unwrap().kept_indices().as_ptr();
        for _ in 0..8 {
            scheme.plan_into(&mut rng, shape, &mut plan);
            assert_eq!(
                ptr,
                plan.crs_selection().unwrap().kept_indices().as_ptr(),
                "plan_into must reuse the kept-index buffer"
            );
        }
    }

    #[test]
    fn composed_scheme_attaches_crs_to_the_row_plan() {
        let row = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
        let mut composed = CrsSampling::composed(0.5, row).unwrap();
        assert_eq!(composed.label(), "row-crs");
        assert!((composed.nominal_rate() - 0.5).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = composed.plan(&mut rng, LayerShape::new(20, 32));
        // Both axes are present in one plan…
        let rows = plan.compact_rows().expect("row decision survives");
        let selection = plan.crs_selection().expect("CRS attached");
        assert_eq!(selection.total(), 20);
        assert_eq!(selection.kept_indices().len(), 10);
        // …and the schedule is the composed launch.
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::RowCrsCompact {
                kept_n: rows.len(),
                total_n: 32,
                kept_k: 10,
                total_k: 20,
            }
        );
    }

    #[test]
    fn composed_with_identity_inner_degenerates_to_pure_crs_schedule() {
        let mut composed = CrsSampling::composed(0.5, scheme::none()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let plan = composed.plan(&mut rng, LayerShape::new(16, 8));
        assert_eq!(
            *plan.kernel_schedule(),
            KernelSchedule::CrsCompact {
                kept_k: 8,
                total_k: 16
            }
        );
        assert_eq!(composed.nominal_rate(), 0.0);
    }

    #[test]
    fn same_seed_same_shape_yields_the_same_kept_set_through_the_cache() {
        // The PlanCache determinism contract extended to CRS: a miss
        // (sample now) and a hit (reuse) of the same key produce bitwise
        // identical plans, and re-sampling fresh from the key's seed
        // reproduces the same kept set.
        let cache = PlanCache::new(2);
        let mut scheme = CrsSampling::new(0.5).unwrap();
        let key = PlanKey::new(11, LayerShape::new(48, 24), 3);
        let mut warm = DropoutPlan::default();
        cache.fetch(key, &mut warm, |d| {
            let mut rng = StdRng::seed_from_u64(key.seed());
            scheme.plan_into(&mut rng, key.shape, d);
        });
        let mut via_cache = DropoutPlan::default();
        assert!(cache.fetch(key, &mut via_cache, |_| panic!("must hit")));
        let mut fresh = DropoutPlan::default();
        let mut rng = StdRng::seed_from_u64(key.seed());
        scheme.clone().plan_into(&mut rng, key.shape, &mut fresh);
        assert_eq!(via_cache, fresh);
        assert_eq!(
            via_cache.crs_selection().unwrap().kept_indices(),
            fresh.crs_selection().unwrap().kept_indices()
        );
    }
}
