//! Per-iteration dropout-pattern generation (paper §III-D).
//!
//! In every training iteration one pattern period `dp` is sampled from the
//! distribution `K` produced by Algorithm 1, a bias `b` is drawn uniformly
//! from `{0, …, dp − 1}`, and the resulting regular pattern is applied to the
//! whole batch. Over the course of training each neuron/synapse is therefore
//! dropped with probability `Σ k_dp (dp − 1)/dp ≈ p`, while every single
//! iteration still uses a GPU-friendly regular pattern.

use crate::error::DropoutError;
use crate::pattern::{PatternKind, RowPattern, SampledPattern, TileGrid, TilePattern};
use crate::rate::DropoutRate;
use crate::search::{sgd_search, PatternDistribution, SearchConfig};
use crate::DEFAULT_TILE_SIZE;
use rand::Rng;

/// Samples `(dp, bias)` pairs from a [`PatternDistribution`].
///
/// # Example
///
/// ```
/// use approx_dropout::{PatternDistribution, PatternKind, PatternSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let dist = PatternDistribution::new(vec![0.5, 0.5])?; // dp ∈ {1, 2}
/// let sampler = PatternSampler::new(dist, PatternKind::Row);
/// let mut rng = StdRng::seed_from_u64(0);
/// let pattern = sampler.sample(&mut rng, 100);
/// assert!(pattern.dp() == 1 || pattern.dp() == 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSampler {
    distribution: PatternDistribution,
    kind: PatternKind,
    tile: usize,
}

impl PatternSampler {
    /// Creates a sampler for the given distribution and pattern family,
    /// using the paper's default 32×32 tile for tile patterns.
    pub fn new(distribution: PatternDistribution, kind: PatternKind) -> Self {
        Self {
            distribution,
            kind,
            tile: DEFAULT_TILE_SIZE,
        }
    }

    /// Overrides the tile edge length (only meaningful for tile patterns).
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn with_tile_size(mut self, tile: usize) -> Self {
        assert!(tile > 0, "tile size must be positive");
        self.tile = tile;
        self
    }

    /// The distribution the sampler draws from.
    pub fn distribution(&self) -> &PatternDistribution {
        &self.distribution
    }

    /// The pattern family this sampler produces.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// Tile edge length used for tile patterns.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Draws a pattern period `dp` from the distribution.
    pub fn sample_dp<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let cumulative = self.distribution.cumulative();
        for (i, &c) in cumulative.iter().enumerate() {
            if u <= c {
                return i + 1;
            }
        }
        self.distribution.max_dp()
    }

    /// Draws a uniform bias for a period `dp`.
    pub fn sample_bias<R: Rng + ?Sized>(&self, rng: &mut R, dp: usize) -> usize {
        if dp <= 1 {
            0
        } else {
            rng.gen_range(0..dp)
        }
    }

    /// Draws the `(dp, bias)` pair for one iteration, with the period clamped
    /// to `unit_count` so that at least one unit always survives. Exactly the
    /// two RNG draws [`PatternSampler::sample`] makes, exposed separately so
    /// allocation-free planning ([`crate::DropoutScheme::plan_into`]) stays
    /// draw-for-draw identical to the allocating path.
    pub fn sample_params<R: Rng + ?Sized>(&self, rng: &mut R, unit_count: usize) -> (usize, usize) {
        let dp = self.sample_dp(rng).min(unit_count.max(1));
        let bias = self.sample_bias(rng, dp);
        (dp, bias)
    }

    /// Samples a concrete pattern for one iteration, resolved against
    /// `unit_count` droppable units (output neurons for row patterns, total
    /// tiles for tile patterns).
    ///
    /// The sampled period is clamped to `unit_count` so that at least one
    /// unit always survives.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, unit_count: usize) -> SampledPattern {
        let (dp, bias) = self.sample_params(rng, unit_count);
        match self.kind {
            PatternKind::Row => {
                let pattern =
                    RowPattern::new(dp, bias).expect("dp >= 1 and bias < dp by construction");
                SampledPattern::from_row(pattern, unit_count)
            }
            PatternKind::Tile => {
                let pattern = TilePattern::new(dp, bias, self.tile)
                    .expect("dp >= 1, bias < dp and tile > 0 by construction");
                SampledPattern::from_tile_units(pattern, unit_count)
            }
        }
    }

    /// Samples a concrete tile pattern resolved against a full tile grid.
    ///
    /// # Errors
    ///
    /// Returns [`DropoutError::InvalidPattern`] if the sampler was built for
    /// row patterns.
    pub fn sample_for_grid<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        grid: &TileGrid,
    ) -> Result<SampledPattern, DropoutError> {
        if self.kind != PatternKind::Tile {
            return Err(DropoutError::InvalidPattern(
                "sample_for_grid requires a tile-pattern sampler".into(),
            ));
        }
        let dp = self.sample_dp(rng).min(grid.total_tiles().max(1));
        let bias = self.sample_bias(rng, dp);
        let pattern = TilePattern::new(dp, bias, grid.tile())?;
        Ok(SampledPattern::from_tile(pattern, grid))
    }
}

/// Builder for [`ApproxDropoutLayer`]: runs Algorithm 1 for a target rate and
/// layer size and packages the result with a sampler.
///
/// # Example
///
/// ```
/// use approx_dropout::{ApproxDropoutBuilder, DropoutRate, PatternKind};
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let layer = ApproxDropoutBuilder::new(DropoutRate::new(0.5)?, PatternKind::Row)
///     .max_dp(16)
///     .build()?;
/// assert!((layer.target_rate().value() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApproxDropoutBuilder {
    rate: DropoutRate,
    kind: PatternKind,
    max_dp: usize,
    tile: usize,
    search: SearchConfig,
}

impl ApproxDropoutBuilder {
    /// Starts a builder for the given target rate and pattern family.
    pub fn new(rate: DropoutRate, kind: PatternKind) -> Self {
        Self {
            rate,
            kind,
            max_dp: 16,
            tile: DEFAULT_TILE_SIZE,
            search: SearchConfig::default(),
        }
    }

    /// Sets the maximum pattern period `N` explored by Algorithm 1.
    pub fn max_dp(mut self, max_dp: usize) -> Self {
        self.max_dp = max_dp;
        self
    }

    /// Sets the tile edge length for tile patterns.
    pub fn tile_size(mut self, tile: usize) -> Self {
        self.tile = tile;
        self
    }

    /// Overrides the search hyper-parameters.
    pub fn search_config(mut self, config: SearchConfig) -> Self {
        self.search = config;
        self
    }

    /// Runs Algorithm 1 and builds the layer.
    ///
    /// # Errors
    ///
    /// Propagates [`DropoutError`] from the search (invalid configuration or
    /// `max_dp == 0`) or from tile validation.
    pub fn build(self) -> Result<ApproxDropoutLayer, DropoutError> {
        if self.tile == 0 {
            return Err(DropoutError::InvalidPattern(
                "tile size must be positive".into(),
            ));
        }
        let distribution = sgd_search(self.rate, self.max_dp, &self.search)?;
        let sampler = PatternSampler::new(distribution, self.kind).with_tile_size(self.tile);
        Ok(ApproxDropoutLayer {
            rate: self.rate,
            sampler,
            iterations: 0,
            dropped_unit_sum: 0.0,
        })
    }
}

/// Per-layer approximate-dropout state: the searched distribution, a sampler,
/// and running statistics about the patterns that were actually applied.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxDropoutLayer {
    rate: DropoutRate,
    sampler: PatternSampler,
    iterations: u64,
    dropped_unit_sum: f64,
}

impl ApproxDropoutLayer {
    /// The target dropout rate the distribution was searched for.
    pub fn target_rate(&self) -> DropoutRate {
        self.rate
    }

    /// The sampler (and through it the distribution) used by the layer.
    pub fn sampler(&self) -> &PatternSampler {
        &self.sampler
    }

    /// Number of iterations sampled so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Mean realised global dropout rate over the sampled iterations.
    pub fn mean_realized_rate(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.dropped_unit_sum / self.iterations as f64
        }
    }

    /// Samples the pattern for the next training iteration and updates the
    /// running statistics.
    pub fn next_pattern<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        unit_count: usize,
    ) -> SampledPattern {
        let pattern = self.sampler.sample(rng, unit_count);
        self.record_resolved(pattern.realized_dropout_fraction());
        pattern
    }

    /// Draws the next iteration's row pattern without materialising its
    /// kept-index vector; statistics are updated exactly like
    /// [`ApproxDropoutLayer::next_pattern`] and the RNG draws are identical.
    pub fn next_row_pattern<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        unit_count: usize,
    ) -> RowPattern {
        let (dp, bias) = self.sampler.sample_params(rng, unit_count);
        let pattern = RowPattern::new(dp, bias).expect("dp >= 1 and bias < dp by construction");
        self.record_resolved(realized_fraction(dp, bias, unit_count));
        pattern
    }

    /// Draws the next iteration's tile pattern without materialising its
    /// kept-index vector; statistics are updated exactly like
    /// [`ApproxDropoutLayer::next_pattern`] and the RNG draws are identical.
    pub fn next_tile_pattern<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        total_tiles: usize,
    ) -> TilePattern {
        let (dp, bias) = self.sampler.sample_params(rng, total_tiles);
        let pattern = TilePattern::new(dp, bias, self.sampler.tile_size())
            .expect("dp >= 1, bias < dp and tile > 0 by construction");
        self.record_resolved(realized_fraction(dp, bias, total_tiles));
        pattern
    }

    fn record_resolved(&mut self, realized_dropout_fraction: f64) {
        self.iterations += 1;
        self.dropped_unit_sum += realized_dropout_fraction;
    }
}

/// Realised dropout fraction of a `(dp, bias)` pattern over `unit_count`
/// units, computed without materialising the kept-index list (mirrors
/// [`SampledPattern::realized_dropout_fraction`]).
fn realized_fraction(dp: usize, bias: usize, unit_count: usize) -> f64 {
    if unit_count == 0 {
        return 0.0;
    }
    let kept = if unit_count > bias {
        (unit_count - bias).div_ceil(dp)
    } else {
        0
    };
    1.0 - kept as f64 / unit_count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler_for(probs: Vec<f64>, kind: PatternKind) -> PatternSampler {
        PatternSampler::new(PatternDistribution::new(probs).unwrap(), kind)
    }

    #[test]
    fn sample_dp_respects_point_mass() {
        let s = sampler_for(vec![0.0, 0.0, 1.0], PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(s.sample_dp(&mut rng), 3);
        }
    }

    #[test]
    fn sample_dp_frequencies_match_distribution() {
        let s = sampler_for(vec![0.25, 0.75], PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 40_000;
        let mut count_dp2 = 0;
        for _ in 0..trials {
            if s.sample_dp(&mut rng) == 2 {
                count_dp2 += 1;
            }
        }
        let freq = count_dp2 as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.02, "frequency {freq}");
    }

    #[test]
    fn sample_bias_is_uniform_over_dp() {
        let s = sampler_for(vec![1.0], PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(2);
        let dp = 4;
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[s.sample_bias(&mut rng, dp)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / 20_000.0;
            assert!((freq - 0.25).abs() < 0.02, "bias frequency {freq}");
        }
        assert_eq!(s.sample_bias(&mut rng, 1), 0);
    }

    #[test]
    fn sample_clamps_dp_to_unit_count() {
        let s = sampler_for(
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            PatternKind::Row,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let p = s.sample(&mut rng, 3);
        assert!(p.dp() <= 3);
        assert!(!p.kept_indices().is_empty());
    }

    #[test]
    fn row_sample_has_row_kind_and_tile_sample_has_tile_kind() {
        let mut rng = StdRng::seed_from_u64(4);
        let row = sampler_for(vec![0.5, 0.5], PatternKind::Row).sample(&mut rng, 64);
        assert_eq!(row.kind(), PatternKind::Row);
        let tile = sampler_for(vec![0.5, 0.5], PatternKind::Tile)
            .with_tile_size(16)
            .sample(&mut rng, 64);
        assert_eq!(tile.kind(), PatternKind::Tile);
        assert_eq!(tile.tile(), 16);
    }

    #[test]
    fn sample_for_grid_requires_tile_kind() {
        let mut rng = StdRng::seed_from_u64(5);
        let grid = TileGrid::new(64, 64, 32).unwrap();
        let row_sampler = sampler_for(vec![1.0], PatternKind::Row);
        assert!(row_sampler.sample_for_grid(&mut rng, &grid).is_err());
        let tile_sampler = sampler_for(vec![0.0, 1.0], PatternKind::Tile);
        let p = tile_sampler.sample_for_grid(&mut rng, &grid).unwrap();
        assert_eq!(p.unit_count(), 4);
        assert_eq!(p.dp(), 2);
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn with_tile_size_rejects_zero() {
        let _ = sampler_for(vec![1.0], PatternKind::Tile).with_tile_size(0);
    }

    #[test]
    fn builder_produces_layer_matching_rate() {
        let mut layer = ApproxDropoutBuilder::new(DropoutRate::new(0.5).unwrap(), PatternKind::Row)
            .max_dp(16)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..2_000 {
            let _ = layer.next_pattern(&mut rng, 256);
        }
        let realized = layer.mean_realized_rate();
        assert!(
            (realized - 0.5).abs() < 0.05,
            "mean realised rate {realized}"
        );
        assert_eq!(layer.iterations(), 2_000);
        assert_eq!(layer.sampler().kind(), PatternKind::Row);
    }

    #[test]
    fn builder_rejects_zero_tile() {
        let res = ApproxDropoutBuilder::new(DropoutRate::new(0.5).unwrap(), PatternKind::Tile)
            .tile_size(0)
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn fresh_layer_reports_zero_statistics() {
        let layer = ApproxDropoutBuilder::new(DropoutRate::new(0.3).unwrap(), PatternKind::Row)
            .build()
            .unwrap();
        assert_eq!(layer.iterations(), 0);
        assert_eq!(layer.mean_realized_rate(), 0.0);
        assert!((layer.target_rate().value() - 0.3).abs() < 1e-12);
    }
}
