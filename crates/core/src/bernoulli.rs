//! Conventional (baseline) random dropout.
//!
//! This is the method of Srivastava et al. that the paper accelerates: every
//! neuron (or synapse) is dropped independently with probability `p`, the
//! resulting 0/1 mask is multiplied elementwise into the layer output, and —
//! crucially — none of the dropped computation is skipped, because the GEMM
//! has already run by the time the mask is applied.

use crate::rate::DropoutRate;
use rand::Rng;
use tensor::Matrix;

/// Conventional Bernoulli dropout mask generator.
///
/// # Example
///
/// ```
/// use approx_dropout::{BernoulliDropout, DropoutRate};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), approx_dropout::DropoutError> {
/// let dropout = BernoulliDropout::new(DropoutRate::new(0.5)?);
/// let mut rng = StdRng::seed_from_u64(1);
/// let mask = dropout.mask(&mut rng, 4, 8);
/// assert_eq!(mask.shape(), (4, 8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliDropout {
    rate: DropoutRate,
}

impl BernoulliDropout {
    /// Creates a conventional dropout generator with the given drop rate.
    pub fn new(rate: DropoutRate) -> Self {
        Self { rate }
    }

    /// The configured dropout rate.
    pub fn rate(&self) -> DropoutRate {
        self.rate
    }

    /// Draws a fresh `(rows, cols)` 0/1 mask, 1 meaning "kept".
    pub fn mask<R: Rng + ?Sized>(&self, rng: &mut R, rows: usize, cols: usize) -> Matrix {
        let p = self.rate.value();
        Matrix::from_fn(
            rows,
            cols,
            |_, _| if rng.gen::<f64>() < p { 0.0 } else { 1.0 },
        )
    }

    /// Draws a per-neuron 0/1 mask of length `n` (every sample in a batch
    /// shares it), matching how neuron-level dropout is applied to a fully
    /// connected layer.
    pub fn neuron_mask<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f32> {
        let mut mask = Vec::new();
        self.fill_neuron_mask(rng, n, &mut mask);
        mask
    }

    /// Like [`BernoulliDropout::neuron_mask`] but pushing into a caller-owned
    /// vector (appended to whatever it already holds), so per-iteration masks
    /// can be recycled instead of reallocated. Draws are identical to
    /// [`BernoulliDropout::neuron_mask`] for the same RNG state.
    pub fn fill_neuron_mask<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, out: &mut Vec<f32>) {
        let p = self.rate.value();
        out.reserve(n);
        for _ in 0..n {
            out.push(if rng.gen::<f64>() < p { 0.0 } else { 1.0 });
        }
    }

    /// Applies conventional dropout to `activations` with inverted-dropout
    /// rescaling: kept entries are multiplied by `1/(1−p)`, dropped entries
    /// become zero. Returns the new activations and the mask used.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, activations: &Matrix) -> (Matrix, Matrix) {
        let mask = self.mask(rng, activations.rows(), activations.cols());
        let scale = self.rate.inverted_scale() as f32;
        let dropped = activations
            .hadamard(&mask)
            .expect("mask is constructed with the activations' shape")
            .scale(scale);
        (dropped, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_is_binary() {
        let d = BernoulliDropout::new(DropoutRate::new(0.5).unwrap());
        let mut rng = StdRng::seed_from_u64(0);
        let m = d.mask(&mut rng, 10, 10);
        assert!(m.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn empirical_rate_tracks_target() {
        let d = BernoulliDropout::new(DropoutRate::new(0.7).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let m = d.mask(&mut rng, 200, 200);
        let dropped = m.zero_fraction() as f64;
        assert!((dropped - 0.7).abs() < 0.02, "dropped fraction {dropped}");
    }

    #[test]
    fn zero_rate_keeps_everything() {
        let d = BernoulliDropout::new(DropoutRate::disabled());
        let mut rng = StdRng::seed_from_u64(2);
        let m = d.mask(&mut rng, 16, 16);
        assert_eq!(m.zero_fraction(), 0.0);
    }

    #[test]
    fn apply_rescales_kept_entries() {
        let d = BernoulliDropout::new(DropoutRate::new(0.5).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::ones(8, 8);
        let (y, mask) = d.apply(&mut rng, &x);
        for i in 0..8 {
            for j in 0..8 {
                if mask[(i, j)] == 1.0 {
                    assert!((y[(i, j)] - 2.0).abs() < 1e-6);
                } else {
                    assert_eq!(y[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn neuron_mask_has_requested_length() {
        let d = BernoulliDropout::new(DropoutRate::new(0.3).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(d.neuron_mask(&mut rng, 128).len(), 128);
    }

    #[test]
    fn expectation_is_preserved_by_inverted_scaling() {
        // E[dropout(x)] ≈ x thanks to the 1/(1-p) rescale.
        let d = BernoulliDropout::new(DropoutRate::new(0.5).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::filled(1, 1, 3.0);
        let mut acc = 0.0;
        let trials = 20_000;
        for _ in 0..trials {
            let (y, _) = d.apply(&mut rng, &x);
            acc += y[(0, 0)] as f64;
        }
        let mean = acc / trials as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean was {mean}");
    }
}
