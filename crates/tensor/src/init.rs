//! Weight-initialisation helpers.
//!
//! Only `rand`'s uniform sampling is assumed; Gaussian samples are produced
//! with the Box–Muller transform so the crate does not need `rand_distr`.

use crate::matrix::Matrix;
use rand::Rng;

/// Matrix with entries drawn uniformly from `[low, high)`.
///
/// # Panics
///
/// Panics if `low > high`.
pub fn uniform<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    low: f32,
    high: f32,
) -> Matrix {
    assert!(low <= high, "uniform range must satisfy low <= high");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(low..=high))
}

/// Matrix with entries drawn from a Gaussian `N(mean, std^2)` via Box–Muller.
///
/// # Panics
///
/// Panics if `std < 0`.
pub fn gaussian<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    mean: f32,
    std: f32,
) -> Matrix {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// Xavier/Glorot uniform initialisation for a `(fan_in, fan_out)` weight matrix.
///
/// Entries are drawn from `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`, which keeps activation variance
/// stable across layers — important because the accuracy experiments compare
/// convergence of baseline vs pattern dropout.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(rng, fan_in, fan_out, -limit, limit)
}

/// Draws a single standard-normal sample using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 in (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 20, 20, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn uniform_rejects_inverted_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform(&mut rng, 2, 2, 1.0, -1.0);
    }

    #[test]
    fn gaussian_has_roughly_requested_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = gaussian(&mut rng, 100, 100, 1.0, 2.0);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = xavier_uniform(&mut rng, 10, 10);
        let large = xavier_uniform(&mut rng, 1000, 1000);
        let max_small = small.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let max_large = large.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
