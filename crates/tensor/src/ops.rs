//! Elementwise nonlinearities and row-wise softmax.
//!
//! These are the activation functions the MLP and LSTM substrates need. Each
//! forward function has a matching derivative helper expressed in terms of
//! the forward output, which is how the backward passes use them.
//!
//! [`relu`], [`sigmoid`] and [`tanh`] route through the same
//! [`crate::simd`] primitives as the fused GEMM epilogues, so fused and
//! unfused layer paths stay bitwise identical at every SIMD level (ReLU is
//! scalar-exact everywhere; the transcendentals switch to the documented
//! polynomial forms when a vector level is active).

use crate::matrix::Matrix;
use crate::simd;

/// Rectified linear unit, `max(0, x)`, applied elementwise.
pub fn relu(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    simd::relu_slice(out.as_mut_slice());
    out
}

/// Like [`relu`] but writing into a caller-owned matrix (resized in place),
/// so per-iteration activations can recycle their buffers.
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    out.clone_from(x);
    simd::relu_slice(out.as_mut_slice());
}

/// Derivative of ReLU expressed in terms of the pre-activation input.
pub fn relu_grad(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// In-place ReLU gradient gate: zeroes `grad` wherever the pre-activation
/// `pre` is non-positive — `grad ⊙ relu'(pre)` without materialising the
/// derivative matrix or the Hadamard product.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relu_grad_mask_inplace(grad: &mut Matrix, pre: &Matrix) {
    assert_eq!(
        grad.shape(),
        pre.shape(),
        "gradient and pre-activation shapes must match"
    );
    for (g, &p) in grad.as_mut_slice().iter_mut().zip(pre.as_slice()) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Logistic sigmoid applied elementwise.
pub fn sigmoid(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    simd::sigmoid_slice(out.as_mut_slice());
    out
}

/// Derivative of the sigmoid expressed in terms of the sigmoid *output* `y`:
/// `y * (1 - y)`.
pub fn sigmoid_grad_from_output(y: &Matrix) -> Matrix {
    y.map(|v| v * (1.0 - v))
}

/// Hyperbolic tangent applied elementwise.
pub fn tanh(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    simd::tanh_slice(out.as_mut_slice());
    out
}

/// Derivative of tanh expressed in terms of the tanh *output* `y`: `1 - y^2`.
pub fn tanh_grad_from_output(y: &Matrix) -> Matrix {
    y.map(|v| 1.0 - v * v)
}

/// Numerically stable row-wise softmax.
///
/// Each row is treated as one sample's logits; the maximum logit is
/// subtracted before exponentiation so large logits do not overflow.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    softmax_rows_into(x, &mut out);
    out
}

/// Like [`softmax_rows`] but writing into a caller-owned matrix (resized in
/// place), so per-iteration probability buffers can be recycled.
pub fn softmax_rows_into(x: &Matrix, out: &mut Matrix) {
    out.resize_for_overwrite(x.rows(), x.cols());
    for i in 0..x.rows() {
        let row = x.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for &v in row {
            denom += (v - max).exp();
        }
        let out_row = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            out_row[j] = (v - max).exp() / denom;
        }
    }
}

/// Row-wise log-softmax (used by the cross-entropy / perplexity metrics).
pub fn log_softmax_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.rows() {
        let row = x.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_denom = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        let out_row = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            out_row[j] = v - max - log_denom;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&x).row(0), &[0.0, 0.0, 2.0]);
        assert_eq!(relu_grad(&x).row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_centered_at_half() {
        let x = Matrix::from_rows(&[&[0.0]]);
        let y = sigmoid(&x);
        assert!((y[(0, 0)] - 0.5).abs() < 1e-6);
        let g = sigmoid_grad_from_output(&y);
        assert!((g[(0, 0)] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_saturates_towards_zero_and_one() {
        let x = Matrix::from_rows(&[&[-20.0, 20.0]]);
        let y = sigmoid(&x);
        assert!(y[(0, 0)] < 1e-6);
        assert!(y[(0, 1)] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let x = Matrix::from_rows(&[&[-3.0, 0.0, 3.0]]);
        let y = tanh(&x);
        assert!((y[(0, 0)] + y[(0, 2)]).abs() < 1e-6);
        assert_eq!(y[(0, 1)], 0.0);
        assert!(y.as_slice().iter().all(|v| v.abs() <= 1.0));
        let g = tanh_grad_from_output(&y);
        assert!((g[(0, 1)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
        // Uniform logits yield uniform probabilities even when huge.
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_prefers_largest_logit() {
        let x = Matrix::from_rows(&[&[0.0, 5.0, 1.0]]);
        let s = softmax_rows(&x);
        assert_eq!(s.argmax_row(0), 1);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Matrix::from_rows(&[&[0.3, -1.2, 2.5]]);
        let s = softmax_rows(&x);
        let ls = log_softmax_rows(&x);
        for j in 0..3 {
            assert!((ls[(0, j)] - s[(0, j)].ln()).abs() < 1e-5);
        }
    }
}
