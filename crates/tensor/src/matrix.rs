//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is deliberately small: it stores its data in a `Vec<f32>` and
//! exposes the handful of operations that the neural-network substrate and the
//! dropout kernels need. Heavier numerical routines (GEMM variants) live in
//! [`crate::gemm`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error returned when two matrices have incompatible shapes for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    message: String,
}

impl ShapeError {
    /// Creates a new shape error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// A row-major dense matrix of `f32` values.
///
/// # Example
///
/// ```
/// use tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Debug, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    /// Copies `source` into `self`, reusing the existing allocation whenever
    /// its capacity suffices. This is what lets the training hot path cache
    /// inputs across iterations without a fresh heap allocation per step.
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix contains no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reshapes the matrix to `(rows, cols)` and zeroes every element,
    /// reusing the existing allocation whenever its capacity suffices.
    ///
    /// This is the buffer-recycling primitive behind the `*_into` GEMM
    /// variants: a warmed-up output matrix is resized in place instead of
    /// being reallocated each training iteration.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Like [`Matrix::resize`] but leaving the contents unspecified: stale
    /// values from the previous use may remain anywhere in the buffer. For
    /// scratch buffers whose every element is immediately overwritten by a
    /// gather/pack loop — skipping the zero-fill halves the write traffic
    /// over the buffer. Use [`Matrix::resize`] whenever the consumer
    /// accumulates into (or only partially writes) the matrix.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(
            i < self.rows,
            "row index {} out of bounds ({})",
            i,
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(
            i < self.rows,
            "row index {} out of bounds ({})",
            i,
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(
            j < self.cols,
            "col index {} out of bounds ({})",
            j,
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the element at `(i, j)`, or `None` if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f32> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Dense matrix multiplication `self * rhs` using the blocked kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        crate::gemm::blocked_gemm(self, rhs).expect("inner dimensions must agree")
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary combination into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(format!(
                "zip_map of {:?} with {:?}",
                self.shape(),
                rhs.shape()
            )));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product — this is exactly how conventional
    /// dropout applies its 0/1 mask to the output matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn axpy_inplace(&mut self, alpha: f32, rhs: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(format!(
                "axpy of {:?} with {:?}",
                self.shape(),
                rhs.shape()
            )));
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Adds `bias` (a `1 x cols` row vector) to every row of the matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `bias` is not a row vector with `cols`
    /// entries.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Result<Matrix, ShapeError> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(ShapeError::new(format!(
                "broadcast of {:?} onto {:?}",
                bias.shape(),
                self.shape()
            )));
        }
        let mut out = self.clone();
        out.add_row_broadcast_inplace(bias)?;
        Ok(out)
    }

    /// Adds `bias` (a `1 x cols` row vector) to every row of the matrix in
    /// place — the allocation-free variant used by the training hot path.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `bias` is not a row vector with `cols`
    /// entries.
    pub fn add_row_broadcast_inplace(&mut self, bias: &Matrix) -> Result<(), ShapeError> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(ShapeError::new(format!(
                "broadcast of {:?} onto {:?}",
                bias.shape(),
                self.shape()
            )));
        }
        let cols = self.cols;
        for i in 0..self.rows {
            let row = self.row_mut(i);
            for (v, &b) in row.iter_mut().zip(&bias.data[..cols]) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Sums every element of the matrix.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of every element of the matrix. Returns 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.sum_rows_into(&mut out);
        out
    }

    /// Sums each column into `out`, resized to a `1 x cols` row vector — the
    /// buffer-recycling variant of [`Matrix::sum_rows`].
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.resize(1, self.cols);
        let acc = out.row_mut(0);
        for i in 0..self.rows {
            for (a, &v) in acc.iter_mut().zip(self.row(i)) {
                *a += v;
            }
        }
    }

    /// Index of the maximum element in row `i` (ties resolved to the first).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or the matrix has zero columns.
    pub fn argmax_row(&self, i: usize) -> usize {
        let row = self.row(i);
        assert!(!row.is_empty(), "argmax of an empty row");
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Fraction of elements that are exactly zero.
    ///
    /// Used by the dropout tests to measure realised global dropout rates.
    pub fn zero_fraction(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Extracts the sub-matrix consisting of the listed rows, in order.
    ///
    /// This is the CPU analogue of the GPU kernel fetching only the kept rows
    /// of the weight matrix into shared memory (Row-based Dropout Pattern).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Extracts the sub-matrix consisting of the listed columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (dst, &src) in indices.iter().enumerate() {
                out[(i, dst)] = self[(i, src)];
            }
        }
        out
    }

    /// Scatters the rows of `compact` back into a zero matrix of this
    /// matrix's shape at the listed row positions.
    ///
    /// This mirrors step 3 of the paper's Fig. 3(a): the compact GEMM output
    /// fills `1/dp` of the rows of the output matrix and the rest stays zero.
    ///
    /// # Panics
    ///
    /// Panics if `compact.rows() != indices.len()`, the column counts differ,
    /// or an index is out of bounds.
    pub fn scatter_rows_of(&self, compact: &Matrix, indices: &[usize]) -> Matrix {
        assert_eq!(compact.rows(), indices.len(), "row count mismatch");
        assert_eq!(compact.cols(), self.cols, "column count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (src, &dst) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(compact.row(src));
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:8.4}", self[(i, j)])?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_values() {
        let z = Matrix::zeros(2, 3);
        let o = Matrix::ones(2, 3);
        assert_eq!(z.sum(), 0.0);
        assert_eq!(o.sum(), 6.0);
        assert_eq!(z.shape(), (2, 3));
    }

    #[test]
    fn identity_is_diagonal() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_builds_row_major_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_and_sub_are_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::ones(2, 2);
        assert_eq!(a.add(&b).unwrap()[(1, 1)], 5.0);
        assert_eq!(a.sub(&b).unwrap()[(0, 0)], 0.0);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn hadamard_matches_mask_semantics() {
        let out = Matrix::from_rows(&[&[12.0, 23.0], &[6.0, 71.0]]);
        let mask = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let masked = out.hadamard(&mask).unwrap();
        assert_eq!(masked[(0, 0)], 12.0);
        assert_eq!(masked[(0, 1)], 0.0);
        assert_eq!(masked[(1, 0)], 0.0);
        assert_eq!(masked[(1, 1)], 71.0);
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let x = Matrix::zeros(3, 2);
        let b = Matrix::from_rows(&[&[1.0, -1.0]]);
        let y = x.add_row_broadcast(&b).unwrap();
        assert_eq!(y[(0, 0)], 1.0);
        assert_eq!(y[(2, 1)], -1.0);
    }

    #[test]
    fn broadcast_rejects_wrong_width() {
        let x = Matrix::zeros(3, 2);
        let b = Matrix::from_rows(&[&[1.0, -1.0, 0.0]]);
        assert!(x.add_row_broadcast(&b).is_err());
    }

    #[test]
    fn sum_rows_collapses_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let s = m.sum_rows();
        assert_eq!(s.shape(), (1, 2));
        assert_eq!(s[(0, 0)], 4.0);
        assert_eq!(s[(0, 1)], 6.0);
    }

    #[test]
    fn argmax_row_returns_first_max() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.9], &[2.0, 1.0, 0.0]]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
    }

    #[test]
    fn zero_fraction_counts_zeros() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!((m.zero_fraction() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn select_rows_extracts_in_order() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[2.0, 2.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn select_cols_extracts_in_order() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[3.0, 4.0, 5.0]]);
        let s = m.select_cols(&[2, 1]);
        assert_eq!(s.row(0), &[2.0, 1.0]);
        assert_eq!(s.row(1), &[5.0, 4.0]);
    }

    #[test]
    fn scatter_rows_restores_positions_and_zero_fills() {
        let full = Matrix::zeros(4, 2);
        let compact = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let out = full.scatter_rows_of(&compact, &[1, 3]);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[1.0, 1.0]);
        assert_eq!(out.row(2), &[0.0, 0.0]);
        assert_eq!(out.row(3), &[2.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy_inplace(0.5, &b).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
    }

    #[test]
    fn frobenius_norm_of_unit_vector() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert!(s.contains("Matrix 2x2"));
    }

    #[test]
    fn get_returns_none_out_of_bounds() {
        let m = Matrix::zeros(1, 1);
        assert_eq!(m.get(0, 0), Some(0.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(0, 1), None);
    }
}
