//! Dense matrix substrate for the Approximate Random Dropout reproduction.
//!
//! The paper accelerates DNN training by shrinking the matrices that the GEMM
//! kernels operate on. This crate provides the CPU-side equivalent of that
//! substrate:
//!
//! * [`Matrix`] — a row-major, `f32` dense matrix with the elementwise and
//!   reduction operations a small training framework needs.
//! * [`gemm`] — naive and cache-blocked matrix multiplication, plus the
//!   *compacted* GEMM variants that actually skip dropped rows / tiles, which
//!   is what Row-based and Tile-based Dropout Patterns do on the GPU.
//! * [`init`] — weight initialisation helpers (uniform, Xavier/Glorot,
//!   Gaussian via Box–Muller) so the crate has no dependency beyond `rand`.
//! * [`pool`] — a hand-rolled thread pool that splits the batch (row)
//!   dimension of every GEMM entry point across workers; `TENSOR_THREADS=1`
//!   pins execution fully serial, and results are bitwise identical for any
//!   thread count.
//! * [`simd`] — runtime-dispatched vector micro-kernels (AVX2 / AVX-512 /
//!   NEON with a mandatory scalar fallback) every GEMM inner loop and fused
//!   epilogue routes through; `TENSOR_SIMD=0` forces the scalar path.
//! * [`tune`] — a blocking autotuner that searches MC/KC/NC block sizes per
//!   shape class and persists winners to `TUNE_GEMM.json`
//!   (`TENSOR_TUNE_FILE` points loads elsewhere).
//!
//! # Example
//!
//! ```
//! use tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod gemm;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod simd;
pub mod tune;

pub use gemm::{
    block_compact_gemm, block_compact_gemm_a_bt_into, block_compact_gemm_at_b_into,
    block_compact_gemm_bias_act_into, block_compact_gemm_into, blocked_gemm, blocked_gemm_into,
    gather_cols_backward_into, gather_cols_gemm_a_bt_into, gather_cols_gemm_at_b_into,
    gather_cols_gemm_bias_act_into, gather_cols_gemm_into, gather_k_backward_into, gather_k_gemm,
    gather_k_gemm_a_bt_into, gather_k_gemm_at_b_into, gather_k_gemm_bias_act_into,
    gather_k_gemm_into, gather_nk_backward_into, gather_nk_gemm_bias_act_into, gather_nk_gemm_into,
    gemm_a_bt, gemm_a_bt_into, gemm_at_b, gemm_at_b_into, gemm_bias_act, gemm_bias_act_into,
    gemm_bias_act_masked_into, naive_gemm, nm_compact_gemm, nm_compact_gemm_bias_act_into,
    nm_compact_gemm_into, row_compact_gemm, row_compact_gemm_into, tile_compact_gemm,
    tile_compact_gemm_bias_act_into, tile_compact_gemm_into, Activation, GatherColsScratch,
    GatherKScratch, GemmError, RowCompactScratch,
};
pub use init::{gaussian, uniform, xavier_uniform};
pub use matrix::{Matrix, ShapeError};
pub use simd::SimdLevel;
pub use tune::{Blocking, ShapeClass, TuneConfig};

/// Absolute tolerance used by the crate's approximate float comparisons.
pub const DEFAULT_TOLERANCE: f32 = 1e-4;

/// Returns `true` when two slices agree elementwise within `tol`.
///
/// This is a test/diagnostic helper used throughout the workspace to compare
/// compacted kernels against their dense references.
///
/// # Example
///
/// ```
/// assert!(tensor::approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0 + 1e-6], 1e-4));
/// assert!(!tensor::approx_eq_slice(&[1.0], &[1.5], 1e-4));
/// ```
pub fn approx_eq_slice(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_slice_accepts_small_differences() {
        assert!(approx_eq_slice(&[0.0, 1.0], &[0.0, 1.0 + 1e-5], 1e-4));
    }

    #[test]
    fn approx_eq_slice_rejects_length_mismatch() {
        assert!(!approx_eq_slice(&[0.0], &[0.0, 1.0], 1e-4));
    }

    #[test]
    fn approx_eq_slice_rejects_large_differences() {
        assert!(!approx_eq_slice(&[0.0, 1.0], &[0.0, 1.2], 1e-4));
    }
}
