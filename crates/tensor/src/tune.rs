//! Blocking autotuner: searches MC/KC/NC cache-block sizes per shape class
//! (and the pool's serial-fallback row threshold) and persists the winners
//! to a `TUNE_GEMM.json` the bench binaries load at startup.
//!
//! The dense kernels historically hard-coded `KC = 128` and the pool
//! hard-coded a `< 32 rows` serial fallback; both constants remain the
//! defaults, but the *active* values now live here ([`blocking`],
//! [`crate::pool::par_min_rows`]) and can be replaced by an [`autotune`]
//! search keyed on (shape class, thread count, detected ISA).
//!
//! # Numerics
//!
//! Tuning never changes results. The dense kernel accumulates each output
//! element in `k`-panel order with four-row quads grouped as
//! `((a0·x0 + a1·x1) + a2·x2) + a3·x3`, so the only blocking parameter that
//! could move a rounding boundary is `KC` — and only if a block edge fell
//! inside a quad. [`Blocking::validate`] therefore requires `kc % 4 == 0`
//! (or 0 = unblocked): quad boundaries stay at the same absolute `k`
//! positions for every legal config. `MC` only reorders independent output
//! rows and `NC` only splits the elementwise column direction; neither
//! affects any accumulation order. The same reasoning makes the pool
//! threshold free: chunking is already bitwise thread-invariant.

use crate::gemm;
use crate::matrix::Matrix;
use crate::pool;
use crate::simd;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Environment variable naming an explicit tune-file path. Bench binaries
/// treat a file named here as authoritative: a thread-count or ISA mismatch
/// is a hard error rather than a silent mis-tune.
pub const TUNE_FILE_ENV: &str = "TENSOR_TUNE_FILE";

/// Default file name for a persisted config (committed at the workspace
/// root; bench binaries look there when [`TUNE_FILE_ENV`] is unset).
pub const TUNE_FILE_NAME: &str = "TUNE_GEMM.json";

/// Upper bound accepted for any blocking dimension or the pool threshold
/// when loading a config — far beyond useful, it only rejects corrupt files.
const MAX_TUNED_VALUE: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Blocking parameters
// ---------------------------------------------------------------------------

/// Cache-blocking parameters of the dense GEMM kernel. `0` means
/// "unblocked" in that dimension (use the full extent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Output-row block (rows of `A`/`C` processed per `B`-panel pass).
    pub mc: usize,
    /// Inner-dimension panel depth; must be a multiple of 4 (see module
    /// docs) or 0.
    pub kc: usize,
    /// Output-column panel width.
    pub nc: usize,
}

impl Blocking {
    /// The pre-tuner constants: `KC = 128`, rows and columns unblocked.
    pub const DEFAULT: Blocking = Blocking {
        mc: 0,
        kc: 128,
        nc: 0,
    };

    /// Checks the numerics-preserving constraint (`kc % 4 == 0`) and sane
    /// bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(self) -> Result<(), String> {
        if self.kc % 4 != 0 {
            return Err(format!(
                "kc = {} is not a multiple of 4; a block edge inside a quad would change \
                 the accumulation grouping",
                self.kc
            ));
        }
        for (name, v) in [("mc", self.mc), ("kc", self.kc), ("nc", self.nc)] {
            if v > MAX_TUNED_VALUE {
                return Err(format!(
                    "{name} = {v} exceeds the sanity bound {MAX_TUNED_VALUE}"
                ));
            }
        }
        Ok(())
    }

    /// Normalises against a concrete shape: a block covering the whole
    /// extent is the same kernel as "unblocked", so it maps to 0. Used to
    /// dedupe search candidates.
    fn effective(self, m: usize, k: usize, n: usize) -> Blocking {
        let clamp = |v: usize, extent: usize| if v == 0 || v >= extent { 0 } else { v };
        Blocking {
            mc: clamp(self.mc, m),
            kc: clamp(self.kc, k),
            nc: clamp(self.nc, n),
        }
    }
}

// ---------------------------------------------------------------------------
// Shape classes
// ---------------------------------------------------------------------------

/// Coarse GEMM-size classes the tuner distinguishes (keyed on the
/// multiply-accumulate count `m·k·n`). Tuning per exact shape would
/// overfit the bench shapes; three classes capture the L1/L2/L3 regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// `m·k·n < 2²¹` — operands fit in L1/L2; blocking mostly overhead.
    Small = 0,
    /// `2²¹ ≤ m·k·n < 2²⁶` — the panel-reuse sweet spot.
    Medium = 1,
    /// `m·k·n ≥ 2²⁶` — streaming regime, blocking decides everything.
    Large = 2,
}

impl ShapeClass {
    /// All classes, in storage order.
    pub const ALL: [ShapeClass; 3] = [ShapeClass::Small, ShapeClass::Medium, ShapeClass::Large];

    /// Classifies a `(m × k) · (k × n)` product.
    pub fn of(m: usize, k: usize, n: usize) -> ShapeClass {
        let work = m.saturating_mul(k).saturating_mul(n);
        if work < 1 << 21 {
            ShapeClass::Small
        } else if work < 1 << 26 {
            ShapeClass::Medium
        } else {
            ShapeClass::Large
        }
    }

    /// Stable lowercase name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Small => "small",
            ShapeClass::Medium => "medium",
            ShapeClass::Large => "large",
        }
    }

    /// Representative shape the tuner times for this class.
    fn probe_shape(self) -> (usize, usize, usize) {
        match self {
            ShapeClass::Small => (48, 64, 64),     // 196_608 MACs
            ShapeClass::Medium => (128, 256, 256), // 2²³ MACs
            ShapeClass::Large => (256, 512, 512),  // 2²⁶ MACs
        }
    }
}

// ---------------------------------------------------------------------------
// Active (process-global) blocking state
// ---------------------------------------------------------------------------

struct AtomicBlocking {
    mc: AtomicUsize,
    kc: AtomicUsize,
    nc: AtomicUsize,
}

impl AtomicBlocking {
    const fn new(bl: Blocking) -> AtomicBlocking {
        AtomicBlocking {
            mc: AtomicUsize::new(bl.mc),
            kc: AtomicUsize::new(bl.kc),
            nc: AtomicUsize::new(bl.nc),
        }
    }

    fn load(&self) -> Blocking {
        Blocking {
            mc: self.mc.load(Ordering::Relaxed),
            kc: self.kc.load(Ordering::Relaxed),
            nc: self.nc.load(Ordering::Relaxed),
        }
    }

    fn store(&self, bl: Blocking) {
        self.mc.store(bl.mc, Ordering::Relaxed);
        self.kc.store(bl.kc, Ordering::Relaxed);
        self.nc.store(bl.nc, Ordering::Relaxed);
    }
}

static ACTIVE: [AtomicBlocking; 3] = [
    AtomicBlocking::new(Blocking::DEFAULT),
    AtomicBlocking::new(Blocking::DEFAULT),
    AtomicBlocking::new(Blocking::DEFAULT),
];

/// The blocking the dense kernel should use for a `(m × k) · (k × n)`
/// product under the currently applied config.
#[inline]
pub fn blocking(m: usize, k: usize, n: usize) -> Blocking {
    class_blocking(ShapeClass::of(m, k, n))
}

/// The active blocking of one shape class.
pub fn class_blocking(class: ShapeClass) -> Blocking {
    ACTIVE[class as usize].load()
}

/// Overrides the active blocking of one shape class (validated).
///
/// # Errors
///
/// Returns the [`Blocking::validate`] failure unchanged.
pub fn set_class_blocking(class: ShapeClass, bl: Blocking) -> Result<(), String> {
    bl.validate()?;
    ACTIVE[class as usize].store(bl);
    Ok(())
}

/// Restores the pre-tuner defaults: `KC = 128` everywhere and the pool's
/// `< 32 rows` serial fallback.
pub fn reset() {
    for slot in &ACTIVE {
        slot.store(Blocking::DEFAULT);
    }
    pool::set_par_min_rows(pool::PAR_MIN_ROWS);
}

// ---------------------------------------------------------------------------
// Persisted config
// ---------------------------------------------------------------------------

/// A complete tuning result: the environment it was measured in (ISA,
/// thread count) plus the winning parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneConfig {
    /// [`simd::SimdLevel::name`] of the level active during the search.
    pub isa: String,
    /// Pool thread count the search ran at. Applying a config tuned for a
    /// different thread count silently mis-tunes, which is why the bench
    /// loaders check this field loudly.
    pub threads: usize,
    /// Tuned serial-fallback threshold for [`pool::run_row_chunks`].
    pub par_min_rows: usize,
    /// Winning blocking per shape class, indexed by `ShapeClass as usize`.
    pub classes: [Blocking; 3],
}

impl TuneConfig {
    /// Snapshot of the currently active parameters (useful for tests and
    /// for writing a default file).
    pub fn current() -> TuneConfig {
        TuneConfig {
            isa: simd::level().name().to_string(),
            threads: pool::threads(),
            par_min_rows: pool::par_min_rows(),
            classes: [
                class_blocking(ShapeClass::Small),
                class_blocking(ShapeClass::Medium),
                class_blocking(ShapeClass::Large),
            ],
        }
    }

    /// Validates every field (see [`Blocking::validate`] for the numerics
    /// constraint).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match simd::SimdLevel::parse(&self.isa) {
            Some(Some(_)) => {}
            _ => return Err(format!("unknown isa name {:?}", self.isa)),
        }
        if self.threads == 0 || self.threads > pool::MAX_THREADS {
            return Err(format!(
                "threads = {} outside 1..={}",
                self.threads,
                pool::MAX_THREADS
            ));
        }
        if self.par_min_rows == 0 || self.par_min_rows > MAX_TUNED_VALUE {
            return Err(format!(
                "par_min_rows = {} outside 1..={MAX_TUNED_VALUE}",
                self.par_min_rows
            ));
        }
        for (class, bl) in ShapeClass::ALL.iter().zip(self.classes) {
            bl.validate()
                .map_err(|e| format!("class {:?}: {e}", class.name()))?;
        }
        Ok(())
    }

    /// Installs this config as the process-global active parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`TuneConfig::validate`] failure unchanged; on error
    /// nothing is applied.
    pub fn apply(&self) -> Result<(), String> {
        self.validate()?;
        for (class, bl) in ShapeClass::ALL.iter().zip(self.classes) {
            ACTIVE[*class as usize].store(bl);
        }
        pool::set_par_min_rows(self.par_min_rows);
        Ok(())
    }

    /// Serialises to the `TUNE_GEMM.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"isa\": \"{}\",\n", self.isa));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"par_min_rows\": {},\n", self.par_min_rows));
        s.push_str("  \"classes\": {\n");
        for (idx, class) in ShapeClass::ALL.iter().enumerate() {
            let bl = self.classes[idx];
            let comma = if idx + 1 < ShapeClass::ALL.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "    \"{}\": {{ \"mc\": {}, \"kc\": {}, \"nc\": {} }}{comma}\n",
                class.name(),
                bl.mc,
                bl.kc,
                bl.nc
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parses (and validates) the `TUNE_GEMM.json` format. The parser is a
    /// keyword scanner over the fixed schema written by [`Self::to_json`] —
    /// the workspace has no JSON dependency, and validation rejects
    /// anything structurally off.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing key or violated constraint.
    pub fn parse(json: &str) -> Result<TuneConfig, String> {
        let isa = string_field(json, "isa").ok_or("missing or malformed \"isa\"")?;
        let threads = usize_field(json, "threads").ok_or("missing or malformed \"threads\"")?;
        let par_min_rows =
            usize_field(json, "par_min_rows").ok_or("missing or malformed \"par_min_rows\"")?;
        let mut classes = [Blocking::DEFAULT; 3];
        for class in ShapeClass::ALL {
            let obj = object_field(json, class.name())
                .ok_or_else(|| format!("missing or malformed class {:?}", class.name()))?;
            let get = |key: &str| {
                usize_field(obj, key)
                    .ok_or_else(|| format!("class {:?}: missing {key}", class.name()))
            };
            classes[class as usize] = Blocking {
                mc: get("mc")?,
                kc: get("kc")?,
                nc: get("nc")?,
            };
        }
        let config = TuneConfig {
            isa,
            threads,
            par_min_rows,
            classes,
        };
        config.validate()?;
        Ok(config)
    }

    /// Writes the config to `path` in the `TUNE_GEMM.json` format.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a config from `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure as a string.
    pub fn load(path: &Path) -> Result<TuneConfig, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        TuneConfig::parse(&json).map_err(|e| format!("parsing {}: {e}", path.display()))
    }
}

/// Positions just past `"key"` + optional whitespace + `:` + whitespace.
fn after_key<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    Some(rest.strip_prefix(':')?.trim_start())
}

fn usize_field(json: &str, key: &str) -> Option<usize> {
    let rest = after_key(json, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn string_field(json: &str, key: &str) -> Option<String> {
    let rest = after_key(json, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The body of the flat `{ ... }` object following `"key"` (the per-class
/// objects never nest).
fn object_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(json, key)?.strip_prefix('{')?;
    Some(&rest[..rest.find('}')?])
}

// ---------------------------------------------------------------------------
// The search
// ---------------------------------------------------------------------------

/// Deterministic non-trivial fill for timing workloads (xorshift-free LCG;
/// values in roughly `[-1, 1]`).
fn fill_workload(m: &mut Matrix, seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for v in m.as_mut_slice() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 33) as u32 % 2001) as f32 / 1000.0 - 1.0;
    }
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times each candidate blocking on a `(m × k) · (k × n)` probe GEMM
/// (through the real pool-parallel kernel path) and returns the fastest.
/// Duplicate candidates (after normalising against the shape) are timed
/// once. Does not touch the global blocking state.
fn search_shape(m: usize, k: usize, n: usize, candidates: &[Blocking], reps: usize) -> Blocking {
    let mut a = Matrix::zeros(m, k);
    let mut b = Matrix::zeros(k, n);
    fill_workload(&mut a, 0x5EED_0001);
    fill_workload(&mut b, 0x5EED_0002);
    let mut out = Matrix::zeros(m, n);

    let mut seen: Vec<Blocking> = Vec::new();
    let mut best = (f64::INFINITY, Blocking::DEFAULT);
    for &candidate in candidates {
        if candidate.validate().is_err() {
            continue;
        }
        let effective = candidate.effective(m, k, n);
        if seen.contains(&effective) {
            continue;
        }
        seen.push(effective);
        // Warm caches and the pool once per candidate before timing.
        gemm::blocked_gemm_tuned_into(&a, &b, &mut out, effective)
            .expect("probe shapes are always conformable");
        let t = best_time(reps, || {
            gemm::blocked_gemm_tuned_into(&a, &b, &mut out, effective)
                .expect("probe shapes are always conformable");
        });
        if t < best.0 {
            best = (t, effective);
        }
    }
    best.1
}

/// The KC/NC/MC grid searched per shape class. Kept deliberately coarse —
/// the win is picking the right regime, not the last 2%.
fn candidate_grid() -> Vec<Blocking> {
    let mut grid = Vec::new();
    for &kc in &[64usize, 128, 256, 0] {
        for &nc in &[0usize, 128, 256] {
            for &mc in &[0usize, 32, 128] {
                grid.push(Blocking { mc, kc, nc });
            }
        }
    }
    grid
}

/// Sweeps the pool's serial-fallback threshold over small-batch GEMMs.
/// Only meaningful with a multi-worker pool; at one thread the threshold
/// is never consulted and the default is returned unchanged.
fn search_par_min_rows(reps: usize) -> usize {
    if pool::threads() <= 1 {
        return pool::par_min_rows();
    }
    let (k, n) = (256, 256);
    let mut b = Matrix::zeros(k, n);
    fill_workload(&mut b, 0x5EED_0003);
    let batches: Vec<Matrix> = [8usize, 16, 32, 64]
        .iter()
        .map(|&m| {
            let mut a = Matrix::zeros(m, k);
            fill_workload(&mut a, 0x5EED_0004 + m as u64);
            a
        })
        .collect();
    let mut out = Matrix::zeros(0, 0);

    let previous = pool::par_min_rows();
    let mut best = (f64::INFINITY, previous);
    for &threshold in &[8usize, 16, 32, 64, 128] {
        pool::set_par_min_rows(threshold);
        let t = best_time(reps, || {
            for a in &batches {
                gemm::blocked_gemm_into(a, &b, &mut out)
                    .expect("probe shapes are always conformable");
            }
        });
        if t < best.0 {
            best = (t, threshold);
        }
    }
    pool::set_par_min_rows(previous);
    best.1
}

/// Runs the full search at the **current** pool thread count and active
/// SIMD level and returns the winning config (not yet applied — call
/// [`TuneConfig::apply`] to install it, [`TuneConfig::save`] to persist).
///
/// The search times the real kernel path, so it takes a few seconds; bench
/// binaries expose it behind `--tune`.
pub fn autotune() -> TuneConfig {
    let grid = candidate_grid();
    let mut classes = [Blocking::DEFAULT; 3];
    for class in ShapeClass::ALL {
        let (m, k, n) = class.probe_shape();
        // Smaller probes are noisier: give them more repetitions.
        let reps = match class {
            ShapeClass::Small => 9,
            ShapeClass::Medium => 5,
            ShapeClass::Large => 3,
        };
        classes[class as usize] = search_shape(m, k, n, &grid, reps);
    }
    TuneConfig {
        isa: simd::level().name().to_string(),
        threads: pool::threads(),
        par_min_rows: search_par_min_rows(5),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classes_split_at_the_documented_boundaries() {
        assert_eq!(ShapeClass::of(48, 64, 64), ShapeClass::Small);
        assert_eq!(ShapeClass::of(128, 128, 128), ShapeClass::Medium); // 2²¹
        assert_eq!(ShapeClass::of(128, 256, 256), ShapeClass::Medium);
        assert_eq!(ShapeClass::of(256, 512, 512), ShapeClass::Large); // 2²⁶
        assert_eq!(ShapeClass::of(usize::MAX, 2, 2), ShapeClass::Large);
    }

    #[test]
    fn validate_rejects_quad_splitting_kc() {
        assert!(Blocking {
            mc: 0,
            kc: 126,
            nc: 0
        }
        .validate()
        .is_err());
        assert!(Blocking {
            mc: 0,
            kc: 128,
            nc: 0
        }
        .validate()
        .is_ok());
        assert!(Blocking {
            mc: 0,
            kc: 0,
            nc: 0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let config = TuneConfig {
            isa: "avx2".to_string(),
            threads: 4,
            par_min_rows: 16,
            classes: [
                Blocking {
                    mc: 0,
                    kc: 64,
                    nc: 0,
                },
                Blocking {
                    mc: 32,
                    kc: 128,
                    nc: 256,
                },
                Blocking {
                    mc: 128,
                    kc: 256,
                    nc: 128,
                },
            ],
        };
        let parsed = TuneConfig::parse(&config.to_json()).expect("roundtrip parse");
        assert_eq!(parsed, config);
    }

    #[test]
    fn parse_rejects_corrupt_configs() {
        let good = TuneConfig::current().to_json();
        assert!(TuneConfig::parse(&good).is_ok());
        assert!(TuneConfig::parse("").is_err());
        assert!(TuneConfig::parse(&good.replace("\"threads\"", "\"t\"")).is_err());
        assert!(TuneConfig::parse(&good.replace("\"kc\": 128", "\"kc\": 126")).is_err());
        assert!(TuneConfig::parse(&good.replace(
            &format!("\"isa\": \"{}\"", simd::level().name()),
            "\"isa\": \"mmx\""
        ))
        .is_err());
    }

    #[test]
    fn apply_installs_and_reset_restores() {
        let mut config = TuneConfig::current();
        config.classes[ShapeClass::Medium as usize] = Blocking {
            mc: 32,
            kc: 64,
            nc: 128,
        };
        config.par_min_rows = 48;
        config.apply().expect("valid config applies");
        assert_eq!(
            class_blocking(ShapeClass::Medium),
            Blocking {
                mc: 32,
                kc: 64,
                nc: 128
            }
        );
        assert_eq!(pool::par_min_rows(), 48);
        reset();
        assert_eq!(class_blocking(ShapeClass::Medium), Blocking::DEFAULT);
        assert_eq!(pool::par_min_rows(), pool::PAR_MIN_ROWS);
    }

    #[test]
    fn search_returns_a_candidate_and_leaves_globals_alone() {
        let before = TuneConfig::current();
        let candidates = [
            Blocking::DEFAULT,
            Blocking {
                mc: 0,
                kc: 64,
                nc: 0,
            },
        ];
        let winner = search_shape(8, 16, 16, &candidates, 1);
        assert!(winner.validate().is_ok());
        assert_eq!(
            TuneConfig::current(),
            before,
            "search must not mutate globals"
        );
    }

    #[test]
    fn tuned_blockings_produce_bitwise_identical_products() {
        // The numerics argument in the module docs, checked empirically:
        // every legal blocking yields the same bits.
        let mut a = Matrix::zeros(13, 37);
        let mut b = Matrix::zeros(37, 29);
        fill_workload(&mut a, 1);
        fill_workload(&mut b, 2);
        let mut reference = Matrix::zeros(0, 0);
        gemm::blocked_gemm_tuned_into(&a, &b, &mut reference, Blocking::DEFAULT)
            .expect("conformable");
        for bl in candidate_grid() {
            let mut out = Matrix::zeros(0, 0);
            gemm::blocked_gemm_tuned_into(&a, &b, &mut out, bl).expect("conformable");
            assert_eq!(out.as_slice(), reference.as_slice(), "blocking {bl:?}");
        }
    }
}
