//! Runtime-dispatched SIMD micro-kernels: the single point every GEMM inner
//! loop and fused epilogue routes through.
//!
//! # Dispatch
//!
//! The instruction set is picked once per process ([`detected_level`]) with
//! `is_x86_feature_detected!` (AVX-512 only on toolchains ≥ 1.89, see the
//! crate's `build.rs`); NEON is unconditional on aarch64 and the scalar
//! loops remain the mandatory fallback everywhere else. The *active* level
//! ([`level`]) starts from the `TENSOR_SIMD` environment variable —
//! `0`/`off`/`scalar` forces the scalar path, `avx2`/`avx512`/`neon`
//! requests a specific ISA (clamped to what the host supports),
//! `1`/`auto`/empty/unset selects the detected maximum, and any other value
//! falls back to scalar (misconfiguration should be slow and correct, the
//! same policy `TENSOR_THREADS` follows) — and can be overridden at runtime
//! with [`set_level`] (used by the bench binaries' `--no-simd` flag).
//!
//! # Bitwise contract
//!
//! The vector kernels for [`axpy`], [`axpy4`], [`dot`], ReLU and every
//! bias/mask/scale epilogue helper reproduce the scalar loops **bitwise**:
//!
//! * multiplies and adds are issued as separate instructions in the scalar
//!   evaluation order — never fused into FMA, which rounds once instead of
//!   twice and would change the low bits;
//! * [`dot`] keeps the historical 8-independent-lane accumulation and the
//!   sequential lane reduction, so the AVX2 kernel is lane-for-lane the
//!   scalar loop; under AVX-512 `dot` deliberately stays on the 8-lane
//!   kernel rather than widening to 16 lanes (a 16-lane reduction would
//!   reassociate the sum);
//! * ReLU is `max(v, 0.0)` in both worlds (`-0.0` inputs may normalise to
//!   `+0.0` differently across ISAs; accumulated GEMM outputs never produce
//!   `-0.0`).
//!
//! The transcendental activations ([`sigmoid_slice`], [`tanh_slice`]) cannot
//! be bitwise against `libm`: when a vector level is active they switch to
//! polynomial forms — a Cephes-style `exp` for the sigmoid and the Eigen
//! rational approximation for tanh — whose scalar tail replays the exact
//! vector op sequence, so results are still *elementwise deterministic*
//! (independent of slicing, threading and fusion) within one active level.
//! Accuracy versus `libm` is a few ULP (documented bound: ≤ 16 ULP or
//! 1e-6 absolute for sigmoid, ≤ 32 ULP or 1e-6 absolute for tanh, the
//! latter dominated by the saturation clamp at |x| ≈ 7.9). With
//! `TENSOR_SIMD=0` the precise `libm` formulas are used, reproducing the
//! pre-SIMD numerics exactly.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Level detection and selection
// ---------------------------------------------------------------------------

/// Instruction-set tiers the kernels dispatch over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// Plain slice loops; the mandatory fallback and the `TENSOR_SIMD=0`
    /// determinism anchor.
    Scalar = 0,
    /// 128-bit NEON (aarch64, where it is architecturally guaranteed).
    Neon = 1,
    /// 256-bit AVX2 (x86-64, runtime-detected).
    Avx2 = 2,
    /// 512-bit AVX-512F (x86-64, runtime-detected, toolchain ≥ 1.89).
    Avx512 = 3,
}

impl SimdLevel {
    /// Stable lowercase name (used in `TENSOR_SIMD`, `TUNE_GEMM.json` and
    /// the bench JSON's `simd.isa` key).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Neon => "neon",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Parses a level name as accepted by `TENSOR_SIMD` (see module docs).
    /// `None` means "auto": use the detected maximum.
    pub fn parse(value: &str) -> Option<Option<SimdLevel>> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "1" | "auto" | "native" => Some(None),
            "0" | "off" | "scalar" => Some(Some(SimdLevel::Scalar)),
            "neon" => Some(Some(SimdLevel::Neon)),
            "avx2" => Some(Some(SimdLevel::Avx2)),
            "avx512" => Some(Some(SimdLevel::Avx512)),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Neon,
            2 => SimdLevel::Avx2,
            3 => SimdLevel::Avx512,
            _ => SimdLevel::Scalar,
        }
    }
}

fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        #[cfg(tensor_avx512)]
        if is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Scalar
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// The widest level this host (and toolchain) supports.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// Clamps a requested level to what the host supports: an unsupported
/// request degrades down its own ISA family (AVX-512 → AVX2 → scalar,
/// NEON → scalar) rather than erroring, so `TENSOR_SIMD=avx512` on an
/// AVX2-only machine still vectorises.
pub fn clamp_to_detected(requested: SimdLevel) -> SimdLevel {
    let detected = detected_level();
    match requested {
        SimdLevel::Scalar => SimdLevel::Scalar,
        SimdLevel::Neon if detected == SimdLevel::Neon => SimdLevel::Neon,
        SimdLevel::Neon => SimdLevel::Scalar,
        SimdLevel::Avx2 | SimdLevel::Avx512 if detected < SimdLevel::Avx2 => SimdLevel::Scalar,
        SimdLevel::Avx2 => SimdLevel::Avx2,
        SimdLevel::Avx512 => detected.min(SimdLevel::Avx512),
    }
}

const ACTIVE_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(ACTIVE_UNSET);

fn env_level() -> SimdLevel {
    let requested = match std::env::var("TENSOR_SIMD") {
        Ok(value) => match SimdLevel::parse(&value) {
            Some(Some(level)) => Some(level),
            Some(None) => None,
            // Unknown value: slow and correct, like a bad TENSOR_THREADS.
            None => Some(SimdLevel::Scalar),
        },
        Err(_) => None,
    };
    match requested {
        Some(level) => clamp_to_detected(level),
        None => detected_level(),
    }
}

/// The level the kernels currently dispatch to. Initialised from
/// `TENSOR_SIMD` on first use (racing initialisers compute the same value).
#[inline]
pub fn level() -> SimdLevel {
    match ACTIVE.load(Ordering::Relaxed) {
        ACTIVE_UNSET => {
            let level = env_level();
            ACTIVE.store(level as u8, Ordering::Relaxed);
            level
        }
        v => SimdLevel::from_u8(v),
    }
}

/// Overrides the active level (clamped to the host's support) and returns
/// the level that actually took effect. Process-global, like the thread
/// pool: callers that need a pinned mode (tests, `--no-simd`) set it before
/// running kernels.
pub fn set_level(requested: SimdLevel) -> SimdLevel {
    let level = clamp_to_detected(requested);
    ACTIVE.store(level as u8, Ordering::Relaxed);
    level
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the dispatch fallback and the bitwise spec)
// ---------------------------------------------------------------------------

mod scalar {
    #[inline]
    pub fn axpy(c: &mut [f32], alpha: f32, b: &[f32]) {
        for (cj, &bj) in c.iter_mut().zip(b) {
            *cj += alpha * bj;
        }
    }

    #[inline]
    pub fn axpy4(c: &mut [f32], alpha: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
        for ((((cj, &x0), &x1), &x2), &x3) in c.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *cj += alpha[0] * x0 + alpha[1] * x1 + alpha[2] * x2 + alpha[3] * x3;
        }
    }

    #[inline]
    pub fn dot(x: &[f32], y: &[f32]) -> f32 {
        const LANES: usize = 8;
        let mut acc = [0.0f32; LANES];
        let mut xs = x.chunks_exact(LANES);
        let mut ys = y.chunks_exact(LANES);
        for (xc, yc) in (&mut xs).zip(&mut ys) {
            for l in 0..LANES {
                acc[l] += xc[l] * yc[l];
            }
        }
        let mut sum = 0.0;
        for &lane in &acc {
            sum += lane;
        }
        for (a, b) in xs.remainder().iter().zip(ys.remainder()) {
            sum += a * b;
        }
        sum
    }

    #[inline]
    pub fn add_bias(row: &mut [f32], bias: &[f32]) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }

    #[inline]
    pub fn add_bias_mask_scale(row: &mut [f32], bias: &[f32], mask: &[f32], scale: f32) {
        for ((v, &b), &m) in row.iter_mut().zip(bias).zip(mask) {
            *v = (*v + b) * (m * scale);
        }
    }

    #[inline]
    pub fn add_bias_scale(row: &mut [f32], bias: &[f32], scale: f32) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v = (*v + b) * scale;
        }
    }

    #[inline]
    pub fn scale_add_bias(row: &mut [f32], scale: f32, bias: &[f32]) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v = *v * scale + b;
        }
    }

    #[inline]
    pub fn relu(row: &mut [f32]) {
        for v in row.iter_mut() {
            *v = v.max(0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Polynomial transcendentals (shared by the vector bodies and their scalar
// tails — every operation below has a lane-for-lane vector twin)
// ---------------------------------------------------------------------------

/// Cephes f32 `exp` constants (the classic `exp_ps` kernel). Valid for the
/// non-positive arguments the sigmoid feeds it; the positive clamp sits just
/// below the overflow threshold.
mod exp_consts {
    pub const HI: f32 = 88.376_26;
    pub const LO: f32 = -88.376_26;
    pub const LOG2EF: f32 = std::f32::consts::LOG2_E;
    pub const C1: f32 = 0.693_359_4;
    pub const C2: f32 = -2.121_944_4e-4;
    pub const P0: f32 = 1.987_569_1e-4;
    pub const P1: f32 = 1.398_199_9e-3;
    pub const P2: f32 = 8.333_452e-3;
    pub const P3: f32 = 4.166_579_6e-2;
    pub const P4: f32 = 1.666_666_6e-1;
    pub const P5: f32 = 5.000_000_3e-1;
}

/// Eigen's `ptanh` rational approximation: `tanh(x) ≈ x·P(x²) / Q(x²)`,
/// clamped to the f32 saturation boundary.
mod tanh_consts {
    pub const CLAMP: f32 = 7.905_311;
    pub const A1: f32 = 4.893_525e-3;
    pub const A3: f32 = 6.372_619e-4;
    pub const A5: f32 = 1.485_722_4e-5;
    pub const A7: f32 = 5.122_297e-8;
    pub const A9: f32 = -8.604_672e-11;
    pub const A11: f32 = 2.000_188e-13;
    pub const A13: f32 = -2.760_768_4e-16;
    pub const B0: f32 = 4.893_525_4e-3;
    pub const B2: f32 = 2.268_434_6e-3;
    pub const B4: f32 = 1.185_347e-4;
    pub const B6: f32 = 1.198_258_4e-6;
}

/// Scalar replay of the vector `exp` kernel: identical op sequence
/// (separate mul/add, floor-based range reduction, exponent-bit 2^n), so a
/// scalar-tail element rounds exactly like a vector-lane element.
#[inline]
fn exp_approx(x: f32) -> f32 {
    use exp_consts::*;
    // min-then-max (not `clamp`) to replicate the vector kernel's
    // `_mm256_min_ps`/`_mm256_max_ps` NaN behaviour lane-for-lane.
    #[allow(clippy::manual_clamp)]
    let x = x.min(HI).max(LO);
    let fx = (x * LOG2EF + 0.5).floor();
    let x = x - fx * C1 - fx * C2;
    let z = x * x;
    let mut y = P0;
    y = y * x + P1;
    y = y * x + P2;
    y = y * x + P3;
    y = y * x + P4;
    y = y * x + P5;
    y = y * z + x + 1.0;
    let n = fx as i32;
    y * f32::from_bits(((n + 127) as u32) << 23)
}

/// Polynomial sigmoid: `t = exp(-|x|)`, `r = 1/(1+t)`, selecting `r` for
/// `x ≥ 0` and `t·r` otherwise (avoids cancellation on the negative side).
#[inline]
pub fn sigmoid_approx(x: f32) -> f32 {
    let t = exp_approx(-x.abs());
    let r = 1.0 / (1.0 + t);
    if x >= 0.0 {
        r
    } else {
        t * r
    }
}

/// Polynomial tanh (Eigen rational form), clamped at the f32 saturation
/// boundary.
#[inline]
pub fn tanh_approx(x: f32) -> f32 {
    use tanh_consts::*;
    // max-then-min (not `clamp`) to replicate the vector kernel's
    // `_mm256_max_ps`/`_mm256_min_ps` NaN behaviour lane-for-lane.
    #[allow(clippy::manual_clamp)]
    let x = x.max(-CLAMP).min(CLAMP);
    let z = x * x;
    let mut p = A13;
    p = z * p + A11;
    p = z * p + A9;
    p = z * p + A7;
    p = z * p + A5;
    p = z * p + A3;
    p = z * p + A1;
    let p = x * p;
    let mut q = B6;
    q = z * q + B4;
    q = z * q + B2;
    q = z * q + B0;
    p / q
}

/// Precise scalar sigmoid (`libm` exp) — the `TENSOR_SIMD=0` numerics.
#[inline]
fn sigmoid_precise(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Sigmoid of one scalar under the *active* level: precise `libm` form when
/// scalar, the polynomial form (bitwise equal to a vector lane) otherwise.
/// This is what keeps `Activation::apply` consistent with the vectorised
/// epilogues, so fused-vs-unfused comparisons stay bitwise in every mode.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if level() == SimdLevel::Scalar {
        sigmoid_precise(x)
    } else {
        sigmoid_approx(x)
    }
}

/// Tanh of one scalar under the active level (see [`sigmoid_scalar`]).
#[inline]
pub fn tanh_scalar(x: f32) -> f32 {
    if level() == SimdLevel::Scalar {
        x.tanh()
    } else {
        tanh_approx(x)
    }
}

// ---------------------------------------------------------------------------
// AVX2 / AVX-512 kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{exp_consts, sigmoid_approx, tanh_approx, tanh_consts};
    use std::arch::x86_64::*;

    /// `c += alpha * b`, 8 lanes at a time; mul then add, never FMA.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(c: &mut [f32], alpha: f32, b: &[f32]) {
        let n = c.len().min(b.len());
        let va = _mm256_set1_ps(alpha);
        let mut j = 0;
        while j + 8 <= n {
            let vb = _mm256_loadu_ps(b.as_ptr().add(j));
            let vc = _mm256_loadu_ps(c.as_ptr().add(j));
            let r = _mm256_add_ps(vc, _mm256_mul_ps(va, vb));
            _mm256_storeu_ps(c.as_mut_ptr().add(j), r);
            j += 8;
        }
        while j < n {
            c[j] += alpha * b[j];
            j += 1;
        }
    }

    /// Four-panel update in the scalar grouping order:
    /// `c += ((a0·x0 + a1·x1) + a2·x2) + a3·x3`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy4_avx2(
        c: &mut [f32],
        alpha: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = c
            .len()
            .min(b0.len())
            .min(b1.len())
            .min(b2.len())
            .min(b3.len());
        let va0 = _mm256_set1_ps(alpha[0]);
        let va1 = _mm256_set1_ps(alpha[1]);
        let va2 = _mm256_set1_ps(alpha[2]);
        let va3 = _mm256_set1_ps(alpha[3]);
        let mut j = 0;
        while j + 8 <= n {
            let x0 = _mm256_loadu_ps(b0.as_ptr().add(j));
            let x1 = _mm256_loadu_ps(b1.as_ptr().add(j));
            let x2 = _mm256_loadu_ps(b2.as_ptr().add(j));
            let x3 = _mm256_loadu_ps(b3.as_ptr().add(j));
            let vc = _mm256_loadu_ps(c.as_ptr().add(j));
            let mut t = _mm256_add_ps(_mm256_mul_ps(va0, x0), _mm256_mul_ps(va1, x1));
            t = _mm256_add_ps(t, _mm256_mul_ps(va2, x2));
            t = _mm256_add_ps(t, _mm256_mul_ps(va3, x3));
            _mm256_storeu_ps(c.as_mut_ptr().add(j), _mm256_add_ps(vc, t));
            j += 8;
        }
        while j < n {
            c[j] += alpha[0] * b0[j] + alpha[1] * b1[j] + alpha[2] * b2[j] + alpha[3] * b3[j];
            j += 1;
        }
    }

    /// 8-lane dot product: the vector accumulator *is* the scalar kernel's
    /// `[f32; 8]` lane array, reduced in the same sequential lane order.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_avx2(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len().min(y.len());
        let mut acc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(j));
            let vy = _mm256_loadu_ps(y.as_ptr().add(j));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(vx, vy));
            j += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut sum = 0.0;
        for &lane in &lanes {
            sum += lane;
        }
        while j < n {
            sum += x[j] * y[j];
            j += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_bias_avx2(row: &mut [f32], bias: &[f32]) {
        let n = row.len().min(bias.len());
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_loadu_ps(row.as_ptr().add(j));
            let b = _mm256_loadu_ps(bias.as_ptr().add(j));
            _mm256_storeu_ps(row.as_mut_ptr().add(j), _mm256_add_ps(v, b));
            j += 8;
        }
        while j < n {
            row[j] += bias[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_bias_mask_scale_avx2(
        row: &mut [f32],
        bias: &[f32],
        mask: &[f32],
        scale: f32,
    ) {
        let n = row.len().min(bias.len()).min(mask.len());
        let vs = _mm256_set1_ps(scale);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_loadu_ps(row.as_ptr().add(j));
            let b = _mm256_loadu_ps(bias.as_ptr().add(j));
            let m = _mm256_loadu_ps(mask.as_ptr().add(j));
            let r = _mm256_mul_ps(_mm256_add_ps(v, b), _mm256_mul_ps(m, vs));
            _mm256_storeu_ps(row.as_mut_ptr().add(j), r);
            j += 8;
        }
        while j < n {
            row[j] = (row[j] + bias[j]) * (mask[j] * scale);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_bias_scale_avx2(row: &mut [f32], bias: &[f32], scale: f32) {
        let n = row.len().min(bias.len());
        let vs = _mm256_set1_ps(scale);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_loadu_ps(row.as_ptr().add(j));
            let b = _mm256_loadu_ps(bias.as_ptr().add(j));
            let r = _mm256_mul_ps(_mm256_add_ps(v, b), vs);
            _mm256_storeu_ps(row.as_mut_ptr().add(j), r);
            j += 8;
        }
        while j < n {
            row[j] = (row[j] + bias[j]) * scale;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_add_bias_avx2(row: &mut [f32], scale: f32, bias: &[f32]) {
        let n = row.len().min(bias.len());
        let vs = _mm256_set1_ps(scale);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_loadu_ps(row.as_ptr().add(j));
            let b = _mm256_loadu_ps(bias.as_ptr().add(j));
            let r = _mm256_add_ps(_mm256_mul_ps(v, vs), b);
            _mm256_storeu_ps(row.as_mut_ptr().add(j), r);
            j += 8;
        }
        while j < n {
            row[j] = row[j] * scale + bias[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn relu_avx2(row: &mut [f32]) {
        let n = row.len();
        let zero = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_loadu_ps(row.as_ptr().add(j));
            _mm256_storeu_ps(row.as_mut_ptr().add(j), _mm256_max_ps(v, zero));
            j += 8;
        }
        while j < n {
            row[j] = row[j].max(0.0);
            j += 1;
        }
    }

    /// Vector twin of [`super::exp_approx`]: same clamp, range reduction,
    /// Horner polynomial and exponent-bit 2^n, lane for lane.
    #[target_feature(enable = "avx2")]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        use exp_consts::*;
        let x = _mm256_max_ps(_mm256_min_ps(x, _mm256_set1_ps(HI)), _mm256_set1_ps(LO));
        let fx = _mm256_floor_ps(_mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
            _mm256_set1_ps(0.5),
        ));
        let x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(C1)));
        let x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(C2)));
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(P1));
        y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(P2));
        y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(P3));
        y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(P4));
        y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(P5));
        y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, z), x), _mm256_set1_ps(1.0));
        let n = _mm256_cvttps_epi32(fx);
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sigmoid_avx2(row: &mut [f32]) {
        let n = row.len();
        let sign = _mm256_set1_ps(-0.0);
        let one = _mm256_set1_ps(1.0);
        let zero = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let x = _mm256_loadu_ps(row.as_ptr().add(j));
            // t = exp(-|x|) via OR-ing the sign bit in.
            let t = exp_ps(_mm256_or_ps(x, sign));
            let r = _mm256_div_ps(one, _mm256_add_ps(one, t));
            let neg = _mm256_mul_ps(t, r);
            let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
            _mm256_storeu_ps(row.as_mut_ptr().add(j), _mm256_blendv_ps(neg, r, ge));
            j += 8;
        }
        while j < n {
            row[j] = sigmoid_approx(row[j]);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn tanh_avx2(row: &mut [f32]) {
        use tanh_consts::*;
        let n = row.len();
        let clamp = _mm256_set1_ps(CLAMP);
        let neg_clamp = _mm256_set1_ps(-CLAMP);
        let mut j = 0;
        while j + 8 <= n {
            let x = _mm256_loadu_ps(row.as_ptr().add(j));
            let x = _mm256_min_ps(_mm256_max_ps(x, neg_clamp), clamp);
            let z = _mm256_mul_ps(x, x);
            let mut p = _mm256_set1_ps(A13);
            p = _mm256_add_ps(_mm256_mul_ps(z, p), _mm256_set1_ps(A11));
            p = _mm256_add_ps(_mm256_mul_ps(z, p), _mm256_set1_ps(A9));
            p = _mm256_add_ps(_mm256_mul_ps(z, p), _mm256_set1_ps(A7));
            p = _mm256_add_ps(_mm256_mul_ps(z, p), _mm256_set1_ps(A5));
            p = _mm256_add_ps(_mm256_mul_ps(z, p), _mm256_set1_ps(A3));
            p = _mm256_add_ps(_mm256_mul_ps(z, p), _mm256_set1_ps(A1));
            let p = _mm256_mul_ps(x, p);
            let mut q = _mm256_set1_ps(B6);
            q = _mm256_add_ps(_mm256_mul_ps(z, q), _mm256_set1_ps(B4));
            q = _mm256_add_ps(_mm256_mul_ps(z, q), _mm256_set1_ps(B2));
            q = _mm256_add_ps(_mm256_mul_ps(z, q), _mm256_set1_ps(B0));
            _mm256_storeu_ps(row.as_mut_ptr().add(j), _mm256_div_ps(p, q));
            j += 8;
        }
        while j < n {
            row[j] = tanh_approx(row[j]);
            j += 1;
        }
    }

    /// 16-lane axpy. Lane-wise mul+add has no cross-lane reduction, so any
    /// width is bitwise identical to the scalar loop.
    // The AVX-512 intrinsics stabilised in 1.89; `tensor_avx512` is only
    // emitted by build.rs on rustc >= 1.89, so the MSRV lint cannot apply.
    #[allow(clippy::incompatible_msrv)]
    #[cfg(tensor_avx512)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy_avx512(c: &mut [f32], alpha: f32, b: &[f32]) {
        let n = c.len().min(b.len());
        let va = _mm512_set1_ps(alpha);
        let mut j = 0;
        while j + 16 <= n {
            let vb = _mm512_loadu_ps(b.as_ptr().add(j));
            let vc = _mm512_loadu_ps(c.as_ptr().add(j));
            let r = _mm512_add_ps(vc, _mm512_mul_ps(va, vb));
            _mm512_storeu_ps(c.as_mut_ptr().add(j), r);
            j += 16;
        }
        while j < n {
            c[j] += alpha * b[j];
            j += 1;
        }
    }

    /// 16-lane four-panel update in the scalar grouping order.
    // See axpy_avx512: the build.rs cfg gate already guarantees rustc >= 1.89.
    #[allow(clippy::incompatible_msrv)]
    #[cfg(tensor_avx512)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy4_avx512(
        c: &mut [f32],
        alpha: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = c
            .len()
            .min(b0.len())
            .min(b1.len())
            .min(b2.len())
            .min(b3.len());
        let va0 = _mm512_set1_ps(alpha[0]);
        let va1 = _mm512_set1_ps(alpha[1]);
        let va2 = _mm512_set1_ps(alpha[2]);
        let va3 = _mm512_set1_ps(alpha[3]);
        let mut j = 0;
        while j + 16 <= n {
            let x0 = _mm512_loadu_ps(b0.as_ptr().add(j));
            let x1 = _mm512_loadu_ps(b1.as_ptr().add(j));
            let x2 = _mm512_loadu_ps(b2.as_ptr().add(j));
            let x3 = _mm512_loadu_ps(b3.as_ptr().add(j));
            let vc = _mm512_loadu_ps(c.as_ptr().add(j));
            let mut t = _mm512_add_ps(_mm512_mul_ps(va0, x0), _mm512_mul_ps(va1, x1));
            t = _mm512_add_ps(t, _mm512_mul_ps(va2, x2));
            t = _mm512_add_ps(t, _mm512_mul_ps(va3, x3));
            _mm512_storeu_ps(c.as_mut_ptr().add(j), _mm512_add_ps(vc, t));
            j += 16;
        }
        while j < n {
            c[j] += alpha[0] * b0[j] + alpha[1] * b1[j] + alpha[2] * b2[j] + alpha[3] * b3[j];
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy_neon(c: &mut [f32], alpha: f32, b: &[f32]) {
        let n = c.len().min(b.len());
        let va = vdupq_n_f32(alpha);
        let mut j = 0;
        while j + 4 <= n {
            let vb = vld1q_f32(b.as_ptr().add(j));
            let vc = vld1q_f32(c.as_ptr().add(j));
            vst1q_f32(c.as_mut_ptr().add(j), vaddq_f32(vc, vmulq_f32(va, vb)));
            j += 4;
        }
        while j < n {
            c[j] += alpha * b[j];
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy4_neon(
        c: &mut [f32],
        alpha: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = c
            .len()
            .min(b0.len())
            .min(b1.len())
            .min(b2.len())
            .min(b3.len());
        let va0 = vdupq_n_f32(alpha[0]);
        let va1 = vdupq_n_f32(alpha[1]);
        let va2 = vdupq_n_f32(alpha[2]);
        let va3 = vdupq_n_f32(alpha[3]);
        let mut j = 0;
        while j + 4 <= n {
            let x0 = vld1q_f32(b0.as_ptr().add(j));
            let x1 = vld1q_f32(b1.as_ptr().add(j));
            let x2 = vld1q_f32(b2.as_ptr().add(j));
            let x3 = vld1q_f32(b3.as_ptr().add(j));
            let vc = vld1q_f32(c.as_ptr().add(j));
            let mut t = vaddq_f32(vmulq_f32(va0, x0), vmulq_f32(va1, x1));
            t = vaddq_f32(t, vmulq_f32(va2, x2));
            t = vaddq_f32(t, vmulq_f32(va3, x3));
            vst1q_f32(c.as_mut_ptr().add(j), vaddq_f32(vc, t));
            j += 4;
        }
        while j < n {
            c[j] += alpha[0] * b0[j] + alpha[1] * b1[j] + alpha[2] * b2[j] + alpha[3] * b3[j];
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn relu_neon(row: &mut [f32]) {
        let n = row.len();
        let zero = vdupq_n_f32(0.0);
        let mut j = 0;
        while j + 4 <= n {
            let v = vld1q_f32(row.as_ptr().add(j));
            vst1q_f32(row.as_mut_ptr().add(j), vmaxq_f32(v, zero));
            j += 4;
        }
        while j < n {
            row[j] = row[j].max(0.0);
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn add_bias_neon(row: &mut [f32], bias: &[f32]) {
        let n = row.len().min(bias.len());
        let mut j = 0;
        while j + 4 <= n {
            let v = vld1q_f32(row.as_ptr().add(j));
            let b = vld1q_f32(bias.as_ptr().add(j));
            vst1q_f32(row.as_mut_ptr().add(j), vaddq_f32(v, b));
            j += 4;
        }
        while j < n {
            row[j] += bias[j];
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn add_bias_mask_scale_neon(
        row: &mut [f32],
        bias: &[f32],
        mask: &[f32],
        scale: f32,
    ) {
        let n = row.len().min(bias.len()).min(mask.len());
        let vs = vdupq_n_f32(scale);
        let mut j = 0;
        while j + 4 <= n {
            let v = vld1q_f32(row.as_ptr().add(j));
            let b = vld1q_f32(bias.as_ptr().add(j));
            let m = vld1q_f32(mask.as_ptr().add(j));
            vst1q_f32(
                row.as_mut_ptr().add(j),
                vmulq_f32(vaddq_f32(v, b), vmulq_f32(m, vs)),
            );
            j += 4;
        }
        while j < n {
            row[j] = (row[j] + bias[j]) * (mask[j] * scale);
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn add_bias_scale_neon(row: &mut [f32], bias: &[f32], scale: f32) {
        let n = row.len().min(bias.len());
        let vs = vdupq_n_f32(scale);
        let mut j = 0;
        while j + 4 <= n {
            let v = vld1q_f32(row.as_ptr().add(j));
            let b = vld1q_f32(bias.as_ptr().add(j));
            vst1q_f32(row.as_mut_ptr().add(j), vmulq_f32(vaddq_f32(v, b), vs));
            j += 4;
        }
        while j < n {
            row[j] = (row[j] + bias[j]) * scale;
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn scale_add_bias_neon(row: &mut [f32], scale: f32, bias: &[f32]) {
        let n = row.len().min(bias.len());
        let vs = vdupq_n_f32(scale);
        let mut j = 0;
        while j + 4 <= n {
            let v = vld1q_f32(row.as_ptr().add(j));
            let b = vld1q_f32(bias.as_ptr().add(j));
            vst1q_f32(row.as_mut_ptr().add(j), vaddq_f32(vmulq_f32(v, vs), b));
            j += 4;
        }
        while j < n {
            row[j] = row[j] * scale + bias[j];
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch points
// ---------------------------------------------------------------------------

/// `c += alpha * b` over equal-length slices (the shorter length wins, like
/// the historical `zip` loop).
#[inline]
pub fn axpy(c: &mut [f32], alpha: f32, b: &[f32]) {
    match level() {
        #[cfg(all(target_arch = "x86_64", tensor_avx512))]
        SimdLevel::Avx512 => unsafe { x86::axpy_avx512(c, alpha, b) },
        #[cfg(all(target_arch = "x86_64", not(tensor_avx512)))]
        SimdLevel::Avx512 => unsafe { x86::axpy_avx2(c, alpha, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::axpy_avx2(c, alpha, b) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::axpy_neon(c, alpha, b) },
        _ => scalar::axpy(c, alpha, b),
    }
}

/// `c += a0·b0 + a1·b1 + a2·b2 + a3·b3` in the scalar grouping order.
#[inline]
pub fn axpy4(c: &mut [f32], alpha: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    match level() {
        #[cfg(all(target_arch = "x86_64", tensor_avx512))]
        SimdLevel::Avx512 => unsafe { x86::axpy4_avx512(c, alpha, b0, b1, b2, b3) },
        #[cfg(all(target_arch = "x86_64", not(tensor_avx512)))]
        SimdLevel::Avx512 => unsafe { x86::axpy4_avx2(c, alpha, b0, b1, b2, b3) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::axpy4_avx2(c, alpha, b0, b1, b2, b3) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::axpy4_neon(c, alpha, b0, b1, b2, b3) },
        _ => scalar::axpy4(c, alpha, b0, b1, b2, b3),
    }
}

/// Dot product in the historical 8-lane accumulation order (see module
/// docs); NEON keeps the scalar loop for the same reason AVX-512 delegates
/// to the 8-lane AVX2 kernel — a 4-lane reduction would reassociate.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::dot_avx2(x, y) },
        _ => scalar::dot(x, y),
    }
}

/// `row[j] += bias[j]`.
#[inline]
pub fn add_bias(row: &mut [f32], bias: &[f32]) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::add_bias_avx2(row, bias) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::add_bias_neon(row, bias) },
        _ => scalar::add_bias(row, bias),
    }
}

/// `row[j] = (row[j] + bias[j]) * (mask[j] * scale)`.
#[inline]
pub fn add_bias_mask_scale(row: &mut [f32], bias: &[f32], mask: &[f32], scale: f32) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe {
            x86::add_bias_mask_scale_avx2(row, bias, mask, scale)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::add_bias_mask_scale_neon(row, bias, mask, scale) },
        _ => scalar::add_bias_mask_scale(row, bias, mask, scale),
    }
}

/// `row[j] = (row[j] + bias[j]) * scale`.
#[inline]
pub fn add_bias_scale(row: &mut [f32], bias: &[f32], scale: f32) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe {
            x86::add_bias_scale_avx2(row, bias, scale)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::add_bias_scale_neon(row, bias, scale) },
        _ => scalar::add_bias_scale(row, bias, scale),
    }
}

/// `row[j] = row[j] * scale + bias[j]` (the tile epilogue's order).
#[inline]
pub fn scale_add_bias(row: &mut [f32], scale: f32, bias: &[f32]) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe {
            x86::scale_add_bias_avx2(row, scale, bias)
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::scale_add_bias_neon(row, scale, bias) },
        _ => scalar::scale_add_bias(row, scale, bias),
    }
}

/// Elementwise `max(v, 0.0)` — scalar-exact at every level.
#[inline]
pub fn relu_slice(row: &mut [f32]) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::relu_avx2(row) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::relu_neon(row) },
        _ => scalar::relu(row),
    }
}

/// Elementwise sigmoid at the active level: `libm` when scalar, the
/// polynomial kernel otherwise (vectorised on x86; NEON replays the same
/// polynomial in scalar form, keeping results elementwise-deterministic).
#[inline]
pub fn sigmoid_slice(row: &mut [f32]) {
    match level() {
        SimdLevel::Scalar => {
            for v in row.iter_mut() {
                *v = sigmoid_precise(*v);
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::sigmoid_avx2(row) },
        _ => {
            for v in row.iter_mut() {
                *v = sigmoid_approx(*v);
            }
        }
    }
}

/// Elementwise tanh at the active level (see [`sigmoid_slice`]).
#[inline]
pub fn tanh_slice(row: &mut [f32]) {
    match level() {
        SimdLevel::Scalar => {
            for v in row.iter_mut() {
                *v = v.tanh();
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 => unsafe { x86::tanh_avx2(row) },
        _ => {
            for v in row.iter_mut() {
                *v = tanh_approx(*v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` with the active level pinned to `level`, restoring after.
    /// Tests touching the global level must go through the serializing lock
    /// below — unit tests in one binary run concurrently.
    fn with_level(requested: SimdLevel, f: impl FnOnce(SimdLevel)) {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        let previous = level();
        let actual = set_level(requested);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(actual)));
        set_level(previous);
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    fn test_data(len: usize) -> Vec<f32> {
        // Deterministic, sign-mixed, non-trivial mantissas.
        (0..len)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 / 81.0 - 6.0)
            .collect()
    }

    #[test]
    fn parse_accepts_the_documented_names() {
        assert_eq!(SimdLevel::parse("0"), Some(Some(SimdLevel::Scalar)));
        assert_eq!(SimdLevel::parse("off"), Some(Some(SimdLevel::Scalar)));
        assert_eq!(SimdLevel::parse("AVX2"), Some(Some(SimdLevel::Avx2)));
        assert_eq!(SimdLevel::parse("avx512"), Some(Some(SimdLevel::Avx512)));
        assert_eq!(SimdLevel::parse("neon"), Some(Some(SimdLevel::Neon)));
        assert_eq!(SimdLevel::parse(""), Some(None));
        assert_eq!(SimdLevel::parse("auto"), Some(None));
        assert_eq!(SimdLevel::parse("bogus"), None);
    }

    #[test]
    fn clamp_never_exceeds_detected() {
        for requested in [
            SimdLevel::Scalar,
            SimdLevel::Neon,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ] {
            let clamped = clamp_to_detected(requested);
            assert!(clamped <= detected_level(), "{requested:?} → {clamped:?}");
            assert_eq!(clamp_to_detected(clamped), clamped, "clamp is idempotent");
        }
    }

    #[test]
    fn detected_level_is_selectable() {
        // The dispatch test of the satellite list: whatever the host
        // detects must actually become the active level when requested.
        let detected = detected_level();
        with_level(detected, |actual| {
            assert_eq!(actual, detected);
            assert_eq!(level(), detected);
        });
    }

    #[test]
    fn vector_kernels_match_scalar_bitwise() {
        // Odd lengths exercise every remainder tail.
        for len in [1usize, 7, 8, 9, 16, 31, 64, 100] {
            let b0 = test_data(len);
            let b1: Vec<f32> = b0.iter().map(|v| v * 0.5 + 1.0).collect();
            let b2: Vec<f32> = b0.iter().map(|v| v * -0.25 + 2.0).collect();
            let b3: Vec<f32> = b0.iter().map(|v| v * 2.0 - 3.0).collect();
            let c0 = test_data(len);

            let mut expected_axpy = c0.clone();
            scalar::axpy(&mut expected_axpy, 1.25, &b0);
            let mut expected_axpy4 = c0.clone();
            scalar::axpy4(
                &mut expected_axpy4,
                [1.25, -0.5, 0.75, 2.0],
                &b0,
                &b1,
                &b2,
                &b3,
            );
            let expected_dot = scalar::dot(&c0, &b0);

            with_level(detected_level(), |_| {
                let mut c = c0.clone();
                axpy(&mut c, 1.25, &b0);
                assert_eq!(c, expected_axpy, "axpy len {len}");
                let mut c = c0.clone();
                axpy4(&mut c, [1.25, -0.5, 0.75, 2.0], &b0, &b1, &b2, &b3);
                assert_eq!(c, expected_axpy4, "axpy4 len {len}");
                assert_eq!(dot(&c0, &b0), expected_dot, "dot len {len}");
            });
        }
    }

    #[test]
    fn epilogue_helpers_match_scalar_bitwise() {
        for len in [1usize, 5, 8, 13, 40] {
            let base = test_data(len);
            let bias = test_data(len + 3)[3..].to_vec();
            let mask: Vec<f32> = (0..len)
                .map(|j| if j % 3 == 0 { 0.0 } else { 1.0 })
                .collect();
            let scale = 1.75f32;

            let mut e1 = base.clone();
            scalar::add_bias(&mut e1, &bias);
            let mut e2 = base.clone();
            scalar::add_bias_mask_scale(&mut e2, &bias, &mask, scale);
            let mut e3 = base.clone();
            scalar::add_bias_scale(&mut e3, &bias, scale);
            let mut e4 = base.clone();
            scalar::scale_add_bias(&mut e4, scale, &bias);
            let mut e5 = base.clone();
            scalar::relu(&mut e5);

            with_level(detected_level(), |_| {
                let mut r = base.clone();
                add_bias(&mut r, &bias);
                assert_eq!(r, e1, "add_bias len {len}");
                let mut r = base.clone();
                add_bias_mask_scale(&mut r, &bias, &mask, scale);
                assert_eq!(r, e2, "add_bias_mask_scale len {len}");
                let mut r = base.clone();
                add_bias_scale(&mut r, &bias, scale);
                assert_eq!(r, e3, "add_bias_scale len {len}");
                let mut r = base.clone();
                scale_add_bias(&mut r, scale, &bias);
                assert_eq!(r, e4, "scale_add_bias len {len}");
                let mut r = base.clone();
                relu_slice(&mut r);
                assert_eq!(r, e5, "relu len {len}");
            });
        }
    }

    fn ulp_distance(a: f32, b: f32) -> u32 {
        let ia = a.to_bits() as i32;
        let ib = b.to_bits() as i32;
        // Map to a monotonic integer line (sign-magnitude → offset binary).
        let ma = if ia < 0 { i32::MIN - ia } else { ia };
        let mb = if ib < 0 { i32::MIN - ib } else { ib };
        ma.abs_diff(mb)
    }

    #[test]
    fn vector_transcendentals_match_their_scalar_tails_bitwise() {
        // The vector body and the scalar tail must agree bitwise per
        // element, or slicing/threading would change results.
        let inputs: Vec<f32> = (-400..=400).map(|i| i as f32 * 0.025).collect();
        with_level(detected_level(), |actual| {
            if actual == SimdLevel::Scalar {
                return; // nothing vectorised to compare
            }
            for len in [3usize, 8, 11, 801] {
                let mut sig = inputs[..len].to_vec();
                sigmoid_slice(&mut sig);
                let mut tan = inputs[..len].to_vec();
                tanh_slice(&mut tan);
                for (j, &x) in inputs[..len].iter().enumerate() {
                    assert_eq!(sig[j], sigmoid_approx(x), "sigmoid lane/tail at {x}");
                    assert_eq!(tan[j], tanh_approx(x), "tanh lane/tail at {x}");
                }
            }
        });
    }

    #[test]
    fn polynomial_transcendentals_are_ulp_close_to_libm() {
        for i in -2000..=2000 {
            let x = i as f32 * 0.005; // [-10, 10]
            let sig = sigmoid_approx(x);
            let sig_ref = sigmoid_precise(x);
            assert!(
                ulp_distance(sig, sig_ref) <= 16 || (sig - sig_ref).abs() <= 1e-6,
                "sigmoid({x}): {sig} vs {sig_ref}"
            );
            let tan = tanh_approx(x);
            let tan_ref = x.tanh();
            assert!(
                ulp_distance(tan, tan_ref) <= 32 || (tan - tan_ref).abs() <= 1e-6,
                "tanh({x}): {tan} vs {tan_ref}"
            );
        }
        // Exact anchors.
        assert_eq!(sigmoid_approx(0.0), 0.5);
        assert_eq!(tanh_approx(0.0), 0.0);
        assert!(sigmoid_approx(-30.0).abs() < 1e-9);
        assert!((sigmoid_approx(30.0) - 1.0).abs() < 1e-6);
        assert!(tanh_approx(30.0) <= 1.0 && tanh_approx(30.0) > 0.999999);
    }

    #[test]
    fn scalar_level_uses_precise_transcendentals() {
        with_level(SimdLevel::Scalar, |actual| {
            assert_eq!(actual, SimdLevel::Scalar);
            let mut row = [0.3f32, -1.2, 4.0];
            sigmoid_slice(&mut row);
            for (v, x) in row.iter().zip([0.3f32, -1.2, 4.0]) {
                assert_eq!(*v, sigmoid_precise(x));
            }
            let mut row = [0.3f32, -1.2, 4.0];
            tanh_slice(&mut row);
            for (v, x) in row.iter().zip([0.3f32, -1.2, 4.0]) {
                assert_eq!(*v, x.tanh());
            }
        });
    }
}
