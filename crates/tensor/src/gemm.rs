//! GEMM kernels: dense references and the compacted variants that actually
//! skip dropped rows / tiles.
//!
//! The paper's central observation is that conventional dropout cannot shrink
//! the GEMM because the dropped positions are irregular; the Row-based and
//! Tile-based patterns make the dropped positions *predictable*, so the kernel
//! can build compact operand matrices and multiply those instead. The CPU
//! equivalents here are [`row_compact_gemm`] and [`tile_compact_gemm`]; they
//! are validated against the dense kernels by unit and property tests.

use crate::matrix::Matrix;
use std::fmt;

/// Error returned when GEMM operands have incompatible shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmError {
    message: String,
}

impl GemmError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gemm error: {}", self.message)
    }
}

impl std::error::Error for GemmError {}

fn check_inner(a: &Matrix, b: &Matrix) -> Result<(), GemmError> {
    if a.cols() != b.rows() {
        return Err(GemmError::new(format!(
            "inner dimensions disagree: {:?} * {:?}",
            a.shape(),
            b.shape()
        )));
    }
    Ok(())
}

/// Textbook triple-loop GEMM, `C = A * B`.
///
/// Used as the ground-truth reference for the blocked and compacted kernels.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn naive_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    check_inner(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    Ok(c)
}

/// Cache-blocked GEMM, `C = A * B`, with a fixed block size of 32.
///
/// The block size mirrors the 32×32 tiles the paper uses on the GPU (one tile
/// per warp, 32 shared-memory banks). The result is numerically identical to
/// [`naive_gemm`] up to floating-point associativity.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn blocked_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    check_inner(a, b)?;
    const BLOCK: usize = 32;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for ii in (0..m).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(m);
        for pp in (0..k).step_by(BLOCK) {
            let p_end = (pp + BLOCK).min(k);
            for jj in (0..n).step_by(BLOCK) {
                let j_end = (jj + BLOCK).min(n);
                for i in ii..i_end {
                    for p in pp..p_end {
                        let aip = a[(i, p)];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = b.row(p);
                        let crow = c.row_mut(i);
                        for j in jj..j_end {
                            crow[j] += aip * brow[j];
                        }
                    }
                }
            }
        }
    }
    Ok(c)
}

/// Row-compacted GEMM used by the Row-based Dropout Pattern.
///
/// Computes `C = A * W` where only the rows of the *output* listed in
/// `kept_output_rows` are needed — equivalently only the corresponding
/// columns of `W` (the synapses feeding the kept neurons) participate.
///
/// Layout convention used across the workspace: activations are
/// `(batch, in_features)` and weights are `(in_features, out_features)`, so
/// dropping output *neurons* means dropping *columns* of `W` and columns of
/// the output. The paper describes the transposed layout (dropping rows of
/// `Wᵀ`); both are the same compaction. The returned matrix has the full
/// `(batch, out_features)` shape with dropped columns left at zero, exactly
/// like step 3 of the paper's Fig. 3(a).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept index
/// is out of bounds.
pub fn row_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_output_rows: &[usize],
) -> Result<Matrix, GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    if let Some(&bad) = kept_output_rows.iter().find(|&&j| j >= n) {
        return Err(GemmError::new(format!(
            "kept output index {bad} out of bounds for {n} output features"
        )));
    }
    // Build the compact weight matrix containing only the kept columns, run a
    // small GEMM, then scatter back into the full-size zero output.
    let w_compact = w.select_cols(kept_output_rows);
    let c_compact = blocked_gemm(a, &w_compact)?;
    let mut c = Matrix::zeros(a.rows(), n);
    for i in 0..a.rows() {
        for (dst_pos, &j) in kept_output_rows.iter().enumerate() {
            c[(i, j)] = c_compact[(i, dst_pos)];
        }
    }
    Ok(c)
}

/// Tile-compacted GEMM used by the Tile-based Dropout Pattern.
///
/// `kept_tiles` lists the linear indices (row-major over the tile grid of the
/// weight matrix `W`, tile size `tile × tile`) that are *kept*; every other
/// tile of `W` is treated as zero. Only the kept tiles contribute to the
/// product, which is what the GPU kernel achieves by fetching only those
/// tiles into shared memory.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `tile == 0`, or a
/// tile index is outside the tile grid.
pub fn tile_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Matrix, GemmError> {
    check_inner(a, w)?;
    if tile == 0 {
        return Err(GemmError::new("tile size must be positive"));
    }
    let tiles_per_row = w.cols().div_ceil(tile);
    let tiles_per_col = w.rows().div_ceil(tile);
    let total_tiles = tiles_per_row * tiles_per_col;
    if let Some(&bad) = kept_tiles.iter().find(|&&t| t >= total_tiles) {
        return Err(GemmError::new(format!(
            "tile index {bad} out of bounds for a {tiles_per_col}x{tiles_per_row} tile grid"
        )));
    }
    let m = a.rows();
    let n = w.cols();
    let mut c = Matrix::zeros(m, n);
    for &t in kept_tiles {
        let tile_row = t / tiles_per_row; // which block of W rows (input features)
        let tile_col = t % tiles_per_row; // which block of W cols (output features)
        let k_start = tile_row * tile;
        let k_end = (k_start + tile).min(w.rows());
        let j_start = tile_col * tile;
        let j_end = (j_start + tile).min(w.cols());
        for i in 0..m {
            for p in k_start..k_end {
                let aip = a[(i, p)];
                if aip == 0.0 {
                    continue;
                }
                for j in j_start..j_end {
                    c[(i, j)] += aip * w[(p, j)];
                }
            }
        }
    }
    Ok(c)
}

/// Reference implementation of tile dropout through explicit masking.
///
/// Builds the full masked weight matrix (kept tiles preserved, dropped tiles
/// zeroed) and multiplies densely — the slow path that conventional dropout
/// is stuck with. Used to validate [`tile_compact_gemm`].
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or `tile == 0`.
pub fn tile_masked_gemm_reference(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Matrix, GemmError> {
    if tile == 0 {
        return Err(GemmError::new("tile size must be positive"));
    }
    let tiles_per_row = w.cols().div_ceil(tile);
    let mut masked = Matrix::zeros(w.rows(), w.cols());
    for &t in kept_tiles {
        let tile_row = t / tiles_per_row;
        let tile_col = t % tiles_per_row;
        for p in (tile_row * tile)..((tile_row + 1) * tile).min(w.rows()) {
            for j in (tile_col * tile)..((tile_col + 1) * tile).min(w.cols()) {
                masked[(p, j)] = w[(p, j)];
            }
        }
    }
    naive_gemm(a, &masked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        init::uniform(rng, r, c, -1.0, 1.0)
    }

    #[test]
    fn naive_gemm_small_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = naive_gemm(&a, &b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(naive_gemm(&a, &b).is_err());
        assert!(blocked_gemm(&a, &b).is_err());
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 37, 53);
        let b = random_matrix(&mut rng, 53, 41);
        let c1 = naive_gemm(&a, &b).unwrap();
        let c2 = blocked_gemm(&a, &b).unwrap();
        assert!(crate::approx_eq_slice(c1.as_slice(), c2.as_slice(), 1e-3));
    }

    #[test]
    fn identity_is_neutral_for_all_kernels() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 16, 16);
        let i = Matrix::identity(16);
        assert!(crate::approx_eq_slice(
            naive_gemm(&a, &i).unwrap().as_slice(),
            a.as_slice(),
            1e-5
        ));
        assert!(crate::approx_eq_slice(
            blocked_gemm(&a, &i).unwrap().as_slice(),
            a.as_slice(),
            1e-5
        ));
    }

    #[test]
    fn row_compact_matches_column_masked_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 8, 12);
        let w = random_matrix(&mut rng, 12, 10);
        let kept = vec![0, 3, 6, 9];
        let compact = row_compact_gemm(&a, &w, &kept).unwrap();

        // Dense reference: zero the dropped columns of W, then multiply.
        let mut masked = w.clone();
        for j in 0..w.cols() {
            if !kept.contains(&j) {
                for p in 0..w.rows() {
                    masked[(p, j)] = 0.0;
                }
            }
        }
        let reference = naive_gemm(&a, &masked).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn row_compact_rejects_out_of_bounds_index() {
        let a = Matrix::zeros(2, 3);
        let w = Matrix::zeros(3, 4);
        assert!(row_compact_gemm(&a, &w, &[4]).is_err());
    }

    #[test]
    fn row_compact_with_all_rows_equals_dense() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 6, 7);
        let w = random_matrix(&mut rng, 7, 5);
        let all: Vec<usize> = (0..5).collect();
        let compact = row_compact_gemm(&a, &w, &all).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn row_compact_with_no_rows_is_zero() {
        let a = Matrix::ones(3, 4);
        let w = Matrix::ones(4, 5);
        let c = row_compact_gemm(&a, &w, &[]).unwrap();
        assert_eq!(c.sum(), 0.0);
        assert_eq!(c.shape(), (3, 5));
    }

    #[test]
    fn tile_compact_matches_masked_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_matrix(&mut rng, 9, 12);
        let w = random_matrix(&mut rng, 12, 10);
        let tile = 4;
        let kept = vec![0, 2, 5, 7];
        let compact = tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn tile_compact_with_all_tiles_equals_dense() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = random_matrix(&mut rng, 8, 8);
        let w = random_matrix(&mut rng, 8, 8);
        let tile = 4;
        let all: Vec<usize> = (0..4).collect();
        let compact = tile_compact_gemm(&a, &w, &all, tile).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn tile_compact_rejects_zero_tile_size() {
        let a = Matrix::zeros(4, 4);
        let w = Matrix::zeros(4, 4);
        assert!(tile_compact_gemm(&a, &w, &[0], 0).is_err());
    }

    #[test]
    fn tile_compact_rejects_out_of_range_tile() {
        let a = Matrix::zeros(4, 4);
        let w = Matrix::zeros(4, 4);
        // 4x4 weight with tile 4 has exactly one tile (index 0).
        assert!(tile_compact_gemm(&a, &w, &[1], 4).is_err());
    }

    #[test]
    fn tile_compact_handles_non_divisible_edges() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 5, 7);
        let w = random_matrix(&mut rng, 7, 9);
        let tile = 4; // 2x3 tile grid with ragged edges
        let kept = vec![0, 3, 5];
        let compact = tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }
}
