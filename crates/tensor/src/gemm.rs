//! GEMM kernels: dense references and the compacted variants that actually
//! skip dropped rows / tiles.
//!
//! The paper's central observation is that conventional dropout cannot shrink
//! the GEMM because the dropped positions are irregular; the Row-based and
//! Tile-based patterns make the dropped positions *predictable*, so the kernel
//! can build compact operand matrices and multiply those instead. The CPU
//! equivalents here are [`row_compact_gemm`] and [`tile_compact_gemm`]; they
//! are validated against the dense kernels by unit and property tests.
//!
//! # Kernel architecture
//!
//! Every production kernel is built from slice-based packed micro-kernels
//! ([`axpy`], [`axpy4`], [`dot`]) that dispatch through [`crate::simd`] to
//! runtime-detected vector kernels (AVX2/AVX-512/NEON, scalar fallback —
//! bitwise identical at every level, see the `simd` module docs): the
//! inner loops never touch the bounds-checked `(i, j)` `Index` operator and
//! the dense path carries no per-element `aip == 0.0` branch (skipping zeros
//! is the compacted kernels' job — a data-dependent branch in the dense loop
//! defeats SIMD exactly like warp divergence defeats the GPU kernel in the
//! paper's Fig. 1(b)). Cache-blocking parameters come from [`crate::tune`]
//! (autotuned per shape class; `KC = 128` remains the default). Each kernel
//! has
//!
//! * an allocating entry point (`blocked_gemm`, `gemm_at_b`, …) and a
//!   `*_into` variant that writes into a caller-owned output buffer so the
//!   training hot path can recycle allocations across iterations,
//! * transposed-operand variants [`gemm_at_b`] (`C = Aᵀ·B`) and
//!   [`gemm_a_bt`] (`C = A·Bᵀ`) so backward passes never materialise a
//!   `transpose()`,
//! * batch-dimension parallelism: output rows are split across the
//!   [`crate::pool`] worker threads. Every output row is produced by exactly
//!   one worker running the same per-row instruction sequence as the serial
//!   kernel, so results are bitwise identical for any thread count.

use crate::matrix::Matrix;
use crate::pool;
use crate::simd;
use crate::tune::{self, Blocking};
use std::fmt;
use std::ops::Range;

/// Error returned when GEMM operands have incompatible shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmError {
    message: String,
}

impl GemmError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gemm error: {}", self.message)
    }
}

impl std::error::Error for GemmError {}

fn check_inner(a: &Matrix, b: &Matrix) -> Result<(), GemmError> {
    if a.cols() != b.rows() {
        return Err(GemmError::new(format!(
            "inner dimensions disagree: {:?} * {:?}",
            a.shape(),
            b.shape()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// `c += alpha * b`, elementwise over equal-length slices. Dispatches to the
/// active [`crate::simd`] kernel (bitwise identical at every level).
#[inline]
fn axpy(c: &mut [f32], alpha: f32, b: &[f32]) {
    simd::axpy(c, alpha, b);
}

/// `c += a0*b0 + a1*b1 + a2*b2 + a3*b3`: a four-row panel update, the unit of
/// work the dense kernels are unrolled around (enough independent chains to
/// keep the SIMD units busy without spilling accumulators). Dispatches to the
/// active [`crate::simd`] kernel.
#[inline]
fn axpy4(c: &mut [f32], alpha: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    simd::axpy4(c, alpha, b0, b1, b2, b3);
}

/// Dot product with eight independent accumulator lanes so the reduction
/// vectorises; the building block of [`gemm_a_bt`], public because the
/// tile-compacted backward pass accumulates per-tile slices with it.
/// Dispatches to the active [`crate::simd`] kernel, which preserves the
/// 8-lane accumulation order bitwise.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    simd::dot(x, y)
}

// ---------------------------------------------------------------------------
// Dense kernels
// ---------------------------------------------------------------------------

/// Textbook triple-loop GEMM, `C = A * B`.
///
/// Used as the ground-truth reference for the packed and compacted kernels;
/// deliberately kept naive (including the zero-skip branch the paper's
/// Fig. 1(b) motivates against) so the production kernels have an
/// independent implementation to be validated against.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn naive_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    check_inner(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    Ok(c)
}

/// Per-row-chunk dense kernel: accumulates `chunk += A[rows] * B` with the
/// panel-blocked, 4-way-unrolled micro-kernel. `chunk` must be zeroed by the
/// caller and hold exactly `rows.len() * b.cols()` values.
///
/// Blocking (`bl`) comes from [`tune::blocking`]: a `kc × nc` panel of `B`
/// is reused across an `mc`-row block of the chunk before the kernel moves
/// on, keeping the panel resident in L2 (the CPU analogue of staging a tile
/// in shared memory). `bl.kc` is a multiple of 4, so the quad grouping
/// boundaries sit at the same absolute `k` positions for every config and
/// results are bitwise blocking-invariant (checked by a `tune` test).
fn dense_rows_kernel(a: &Matrix, b: &Matrix, rows: Range<usize>, chunk: &mut [f32], bl: Blocking) {
    let k = a.cols();
    let n = b.cols();
    let kc = if bl.kc == 0 { k } else { bl.kc }.max(1);
    let nc = if bl.nc == 0 { n } else { bl.nc }.max(1);
    let mc = if bl.mc == 0 { rows.len() } else { bl.mc }.max(1);
    for ii in (rows.start..rows.end).step_by(mc) {
        let i_end = (ii + mc).min(rows.end);
        for pp in (0..k).step_by(kc) {
            let p_end = (pp + kc).min(k);
            for jj in (0..n).step_by(nc) {
                let j_end = (jj + nc).min(n);
                for i in ii..i_end {
                    let local = i - rows.start;
                    let apanel = &a.row(i)[pp..p_end];
                    let crow = &mut chunk[local * n + jj..local * n + j_end];
                    let mut quads = apanel.chunks_exact(4);
                    let mut p = pp;
                    for quad in &mut quads {
                        axpy4(
                            crow,
                            [quad[0], quad[1], quad[2], quad[3]],
                            &b.row(p)[jj..j_end],
                            &b.row(p + 1)[jj..j_end],
                            &b.row(p + 2)[jj..j_end],
                            &b.row(p + 3)[jj..j_end],
                        );
                        p += 4;
                    }
                    for &alpha in quads.remainder() {
                        axpy(crow, alpha, &b.row(p)[jj..j_end]);
                        p += 1;
                    }
                }
            }
        }
    }
}

/// [`blocked_gemm_into`] with an explicit [`Blocking`] instead of the
/// globally active one — the timing probe of [`tune`]'s search, which must
/// evaluate candidates without mutating process state.
pub(crate) fn blocked_gemm_tuned_into(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    bl: Blocking,
) -> Result<(), GemmError> {
    check_inner(a, b)?;
    let m = a.rows();
    let n = b.cols();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        dense_rows_kernel(a, b, rows, chunk, bl);
    });
    Ok(())
}

/// Packed, batch-parallel GEMM, `C = A * B`, writing into `out`.
///
/// `out` is resized (reusing its buffer when capacity allows) and zeroed.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn blocked_gemm_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), GemmError> {
    check_inner(a, b)?;
    let m = a.rows();
    let n = b.cols();
    out.resize(m, n);
    let bl = tune::blocking(m, a.cols(), n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        dense_rows_kernel(a, b, rows, chunk, bl);
    });
    Ok(())
}

/// Packed, batch-parallel GEMM, `C = A * B`.
///
/// Kept under its historical name (the seed's cache-blocked kernel) because
/// it remains the workspace-wide dense entry point; the implementation is now
/// the packed micro-kernel pipeline described in the module docs.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn blocked_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    blocked_gemm_into(a, b, &mut out)?;
    Ok(out)
}

/// Per-row-chunk kernel for `C = Aᵀ · B`: the chunk covers rows of `C`
/// (columns `p` of `A`); batch rows `i` are walked in panels of four.
fn at_b_rows_kernel(a: &Matrix, b: &Matrix, prows: Range<usize>, chunk: &mut [f32]) {
    let m = a.rows();
    let n = b.cols();
    let mut i = 0;
    while i + 4 <= m {
        let (a0, a1, a2, a3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        let (b0, b1, b2, b3) = (b.row(i), b.row(i + 1), b.row(i + 2), b.row(i + 3));
        for (local, p) in prows.clone().enumerate() {
            let crow = &mut chunk[local * n..(local + 1) * n];
            axpy4(crow, [a0[p], a1[p], a2[p], a3[p]], b0, b1, b2, b3);
        }
        i += 4;
    }
    while i < m {
        let arow = a.row(i);
        let brow = b.row(i);
        for (local, p) in prows.clone().enumerate() {
            let crow = &mut chunk[local * n..(local + 1) * n];
            axpy(crow, arow[p], brow);
        }
        i += 1;
    }
}

/// Transposed-operand GEMM `C = Aᵀ · B` without materialising `Aᵀ`, writing
/// into `out`.
///
/// With activations `A` of shape `(batch, in)` and output gradients `B` of
/// shape `(batch, out)` this is exactly the weight-gradient product
/// `dW = Xᵀ·G` of the backward pass.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.rows() != b.rows()` (the shared batch
/// dimension).
pub fn gemm_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), GemmError> {
    if a.rows() != b.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            a.shape(),
            b.shape()
        )));
    }
    let k = a.cols();
    let n = b.cols();
    out.resize(k, n);
    pool::run_row_chunks(k, n, out.as_mut_slice(), |prows, chunk| {
        at_b_rows_kernel(a, b, prows, chunk);
    });
    Ok(())
}

/// Transposed-operand GEMM `C = Aᵀ · B` without materialising `Aᵀ`.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.rows() != b.rows()`.
pub fn gemm_at_b(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    gemm_at_b_into(a, b, &mut out)?;
    Ok(out)
}

/// Per-row-chunk kernel for `C = A · Bᵀ`: row `i` of `C` is the vector of
/// dot products of `A.row(i)` with every row of `B`.
fn a_bt_rows_kernel(a: &Matrix, b: &Matrix, rows: Range<usize>, chunk: &mut [f32]) {
    let n = b.rows();
    for (local, i) in rows.enumerate() {
        let arow = a.row(i);
        let crow = &mut chunk[local * n..(local + 1) * n];
        for (j, cj) in crow.iter_mut().enumerate() {
            *cj = dot(arow, b.row(j));
        }
    }
}

/// Transposed-operand GEMM `C = A · Bᵀ` without materialising `Bᵀ`, writing
/// into `out`.
///
/// With output gradients `A` of shape `(batch, out)` and weights `B` of
/// shape `(in, out)` this is exactly the input-gradient product `dX = G·Wᵀ`
/// of the backward pass.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.cols()` (the shared inner
/// dimension).
pub fn gemm_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), GemmError> {
    if a.cols() != b.cols() {
        return Err(GemmError::new(format!(
            "inner dimensions disagree: {:?} * {:?}ᵀ",
            a.shape(),
            b.shape()
        )));
    }
    let m = a.rows();
    let n = b.rows();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        a_bt_rows_kernel(a, b, rows, chunk);
    });
    Ok(())
}

/// Transposed-operand GEMM `C = A · Bᵀ` without materialising `Bᵀ`.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.cols()`.
pub fn gemm_a_bt(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    gemm_a_bt_into(a, b, &mut out)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Compacted kernels
// ---------------------------------------------------------------------------

/// Reusable packing buffers for the column-gather compacted GEMMs
/// ([`gather_cols_gemm_into`] and its [`row_compact_gemm_into`] /
/// [`nm_compact_gemm_into`] wrappers): the compact weight panel and the
/// compact product, recycled across training iterations so the hot path
/// performs no per-call allocations once warmed up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowCompactScratch {
    pack: Matrix,
    product: Matrix,
}

fn check_kept_cols(kept: &[usize], n: usize) -> Result<(), GemmError> {
    if let Some(&bad) = kept.iter().find(|&&j| j >= n) {
        return Err(GemmError::new(format!(
            "kept output index {bad} out of bounds for {n} output features"
        )));
    }
    Ok(())
}

/// Validates that every kept inner-dimension (K) index of a sampled GEMM is
/// in bounds.
fn check_kept_k(kept_k: &[usize], k: usize) -> Result<(), GemmError> {
    if let Some(&bad) = kept_k.iter().find(|&&p| p >= k) {
        return Err(GemmError::new(format!(
            "kept inner index {bad} out of bounds for inner dimension {k}"
        )));
    }
    Ok(())
}

/// Packs the `kept` columns of `src` into the dense panel `dst`
/// (`src.rows() × kept.len()`) — the shared scalar gather step of both
/// compacted families (output-column gather and K-dimension gather alike).
fn pack_cols(src: &Matrix, kept: &[usize], dst: &mut Matrix) {
    let rows = src.rows();
    dst.resize_for_overwrite(rows, kept.len());
    for r in 0..rows {
        let srow = src.row(r);
        let drow = dst.row_mut(r);
        for (c, &j) in kept.iter().enumerate() {
            drow[c] = srow[j];
        }
    }
}

/// Packs the `kept` rows of `src` into the dense panel
/// `dst` (`kept.len() × src.cols()`) — the K-dimension gather of the sampled
/// weight operand, contiguous row copies with no strided access.
fn pack_rows(src: &Matrix, kept: &[usize], dst: &mut Matrix) {
    dst.resize_for_overwrite(kept.len(), src.cols());
    for (r, &p) in kept.iter().enumerate() {
        dst.row_mut(r).copy_from_slice(src.row(p));
    }
}

/// Packs the `kept_k × kept_cols` sub-grid of `w` into a dense panel — the
/// double-gathered weight operand of the composed gather-N × gather-K
/// kernels.
fn pack_rows_cols(w: &Matrix, kept_k: &[usize], kept_cols: &[usize], dst: &mut Matrix) {
    dst.resize_for_overwrite(kept_k.len(), kept_cols.len());
    for (r, &p) in kept_k.iter().enumerate() {
        let srow = w.row(p);
        let drow = dst.row_mut(r);
        for (c, &j) in kept_cols.iter().enumerate() {
            drow[c] = srow[j];
        }
    }
}

/// Column-gather compacted GEMM: the shared execution core of every scheme
/// that drops whole output neurons at scattered positions (the Row-based
/// Dropout Pattern and N:M structured sparsity).
///
/// Computes `C = A * W` where only the output columns listed in `kept_cols`
/// participate: the surviving columns of `W` are packed into a dense panel,
/// a small `M × K × |kept|` GEMM runs, and the compact product is scattered
/// back into the full-size zero output — steps 1–3 of the paper's
/// Fig. 3(a), generalised to an arbitrary kept set.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept
/// index is out of bounds.
pub fn gather_cols_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    scratch: &mut RowCompactScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_kept_cols(kept_cols, n)?;
    // Pack only the kept columns of W into a dense panel (step 1: fetch
    // only surviving synapses), …
    pack_cols(w, kept_cols, &mut scratch.pack);
    // … run the small GEMM (step 2), …
    blocked_gemm_into(a, &scratch.pack, &mut scratch.product)?;
    // … and scatter back into the full-size zero output (step 3).
    let m = a.rows();
    out.resize(m, n);
    for i in 0..m {
        let src = scratch.product.row(i);
        let dst = out.row_mut(i);
        for (c, &j) in kept_cols.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    Ok(())
}

/// Row-compacted GEMM used by the Row-based Dropout Pattern, writing into
/// `out` and packing through caller-owned `scratch`.
///
/// See [`row_compact_gemm`] for the semantics.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept index
/// is out of bounds.
pub fn row_compact_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_output_rows: &[usize],
    scratch: &mut RowCompactScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    gather_cols_gemm_into(a, w, kept_output_rows, scratch, out)
}

/// Validates that `kept_cols` has the N:M group structure: exactly
/// `min(n, group_size)` ascending kept lanes inside every `m`-wide group of
/// the `out_features` output columns.
fn check_nm_structure(
    kept_cols: &[usize],
    n: usize,
    m: usize,
    out_features: usize,
) -> Result<(), GemmError> {
    if n == 0 || m == 0 || n > m {
        return Err(GemmError::new(format!("invalid N:M parameters {n}:{m}")));
    }
    let mut it = kept_cols.iter().peekable();
    let mut start = 0;
    while start < out_features {
        let size = m.min(out_features - start);
        let expected = n.min(size);
        let mut in_group = 0;
        let mut prev = None;
        while let Some(&&j) = it.peek() {
            if j >= start + size {
                break;
            }
            if j < start || prev.is_some_and(|p| j <= p) {
                return Err(GemmError::new(format!(
                    "kept lane {j} breaks the ascending N:M group order"
                )));
            }
            prev = Some(j);
            in_group += 1;
            it.next();
        }
        if in_group != expected {
            return Err(GemmError::new(format!(
                "group starting at {start} keeps {in_group} lanes, expected {expected} for {n}:{m}"
            )));
        }
        start += size;
    }
    if it.next().is_some() {
        return Err(GemmError::new("kept lane beyond the output width"));
    }
    Ok(())
}

/// Group-compacted GEMM for N:M structured sparsity, writing into `out`.
///
/// Validates that `kept_cols` keeps exactly `n` lanes of every `m`-wide
/// output group (the structure a sparse-tensor-core kernel relies on) and
/// executes through the shared column-gather core
/// ([`gather_cols_gemm_into`]).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or `kept_cols`
/// does not have the `n`-of-`m` group structure.
pub fn nm_compact_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    n: usize,
    m: usize,
    scratch: &mut RowCompactScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_nm_structure(kept_cols, n, m, w.cols())?;
    gather_cols_gemm_into(a, w, kept_cols, scratch, out)
}

/// Allocating variant of [`nm_compact_gemm_into`].
///
/// # Errors
///
/// Returns a [`GemmError`] under the same conditions.
pub fn nm_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    n: usize,
    m: usize,
) -> Result<Matrix, GemmError> {
    let mut scratch = RowCompactScratch::default();
    let mut out = Matrix::zeros(0, 0);
    nm_compact_gemm_into(a, w, kept_cols, n, m, &mut scratch, &mut out)?;
    Ok(out)
}

/// Reusable gather buffers for the backward passes of the column-gather
/// compacted schemes: the gathered (and gradient-scaled) output-gradient
/// panel, the gathered weight panel and the compact weight-gradient product.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatherColsScratch {
    g_kept: Matrix,
    w_kept: Matrix,
    compact: Matrix,
}

/// Gathers the kept columns of `g`, scaled by `scale`, into `dst`.
fn gather_scaled_cols(g: &Matrix, kept_cols: &[usize], scale: f32, dst: &mut Matrix) {
    let batch = g.rows();
    dst.resize_for_overwrite(batch, kept_cols.len());
    for i in 0..batch {
        let src = g.row(i);
        let out = dst.row_mut(i);
        for (c, &j) in kept_cols.iter().enumerate() {
            out[c] = src[j] * scale;
        }
    }
}

/// Weight-gradient form of the column-gather compacted backward pass:
/// `dW = Xᵀ · (scale · G[:, kept])`, scattered into the kept columns of
/// `out` (shape `x.cols() × g.cols()`); dropped columns stay exactly zero.
///
/// With activations `X` of shape `(batch, in)` and the full-width output
/// gradient `G` of shape `(batch, out)` this is the weight gradient of a
/// row- or N:M-compacted layer without ever materialising the dense
/// zero-masked gradient.
///
/// # Errors
///
/// Returns a [`GemmError`] if the batch dimensions disagree or any kept
/// index is out of bounds.
pub fn gather_cols_gemm_at_b_into(
    x: &Matrix,
    g: &Matrix,
    kept_cols: &[usize],
    scale: f32,
    scratch: &mut GatherColsScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    if x.rows() != g.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            x.shape(),
            g.shape()
        )));
    }
    check_kept_cols(kept_cols, g.cols())?;
    gather_scaled_cols(g, kept_cols, scale, &mut scratch.g_kept);
    at_b_from_gathered(x, g.cols(), kept_cols, scratch, out)
}

/// `dW` tail of the gather backward given an already-gathered (and scaled)
/// gradient panel in `scratch.g_kept`: compact product + scatter into the
/// kept columns of `out`.
fn at_b_from_gathered(
    x: &Matrix,
    n: usize,
    kept_cols: &[usize],
    scratch: &mut GatherColsScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    let GatherColsScratch {
        g_kept, compact, ..
    } = scratch;
    gemm_at_b_into(x, g_kept, compact)?;
    let k = x.cols();
    out.resize(k, n);
    for r in 0..k {
        let src = compact.row(r);
        let dst = out.row_mut(r);
        for (c, &j) in kept_cols.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    Ok(())
}

/// `dX` tail of the gather backward given an already-gathered (and scaled)
/// gradient panel in `scratch.g_kept`: gather the kept weight columns and
/// multiply.
fn a_bt_from_gathered(
    w: &Matrix,
    kept_cols: &[usize],
    scratch: &mut GatherColsScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    let GatherColsScratch { g_kept, w_kept, .. } = scratch;
    pack_cols(w, kept_cols, w_kept);
    gemm_a_bt_into(g_kept, w_kept, out)
}

/// Input-gradient form of the column-gather compacted backward pass:
/// `dX = (scale · G[:, kept]) · W[:, kept]ᵀ` — only the synapses feeding
/// kept output neurons contribute, and neither transpose is materialised.
///
/// # Errors
///
/// Returns a [`GemmError`] if `g.cols() != w.cols()` or any kept index is
/// out of bounds.
pub fn gather_cols_gemm_a_bt_into(
    g: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    scale: f32,
    scratch: &mut GatherColsScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    if g.cols() != w.cols() {
        return Err(GemmError::new(format!(
            "output widths disagree: {:?} * {:?}ᵀ",
            g.shape(),
            w.shape()
        )));
    }
    check_kept_cols(kept_cols, g.cols())?;
    gather_scaled_cols(g, kept_cols, scale, &mut scratch.g_kept);
    a_bt_from_gathered(w, kept_cols, scratch, out)
}

/// Fused backward pair of the column-gather compacted schemes: gathers the
/// scaled kept gradient columns **once** and reuses the panel for both
/// transposed-operand products,
/// `dW = Xᵀ·(scale·G[:, kept])` (scattered into `dw_out`, dropped columns
/// zero) and `dX = (scale·G[:, kept]) · W[:, kept]ᵀ` (into `dx_out`).
///
/// Equivalent to calling [`gather_cols_gemm_at_b_into`] then
/// [`gather_cols_gemm_a_bt_into`], minus the second gather pass — this is
/// the entry point the training hot path uses.
///
/// # Errors
///
/// Returns a [`GemmError`] if the batch dimensions of `x` and `g` disagree,
/// `g.cols() != w.cols()`, or any kept index is out of bounds.
#[allow(clippy::too_many_arguments)] // a GEMM pair: 4 operands, 1 scale, scratch, 2 outputs
pub fn gather_cols_backward_into(
    x: &Matrix,
    g: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    scale: f32,
    scratch: &mut GatherColsScratch,
    dw_out: &mut Matrix,
    dx_out: &mut Matrix,
) -> Result<(), GemmError> {
    if x.rows() != g.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            x.shape(),
            g.shape()
        )));
    }
    if g.cols() != w.cols() {
        return Err(GemmError::new(format!(
            "output widths disagree: {:?} * {:?}ᵀ",
            g.shape(),
            w.shape()
        )));
    }
    check_kept_cols(kept_cols, g.cols())?;
    gather_scaled_cols(g, kept_cols, scale, &mut scratch.g_kept);
    at_b_from_gathered(x, g.cols(), kept_cols, scratch, dw_out)?;
    a_bt_from_gathered(w, kept_cols, scratch, dx_out)
}

// ---------------------------------------------------------------------------
// K-dimension gather (sampled-GEMM / CRS) kernels
// ---------------------------------------------------------------------------

/// Reusable gather buffers for the K-dimension sampled (CRS) kernels: the
/// gathered activation-column panel, the gathered weight-row panel, the
/// gathered (and gradient-scaled) output-gradient panel of the composed
/// backward, and the compact product — recycled across iterations so the hot
/// path performs no per-call allocations once warmed up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatherKScratch {
    a_kept: Matrix,
    w_kept: Matrix,
    g_kept: Matrix,
    compact: Matrix,
}

/// K-dimension sampled GEMM (column-row sampling, CRS): computes the **raw**
/// sampled product `C = A[:, kept_k] · W[kept_k, :]` — only the inner
/// products listed in `kept_k` participate. The kept columns of `A` and rows
/// of `W` are packed into dense panels that route through the same blocked
/// SIMD core as the dense kernel, so `kept_k == 0..K` (in order) is bitwise
/// identical to [`blocked_gemm_into`].
///
/// The `K/k` unbiasedness scale is **not** applied here: the output is the
/// raw sampled product and callers fold the scale into their epilogue (see
/// [`gather_k_gemm_bias_act_into`]), which keeps the degeneracy bitwise and
/// the scale placement identical between fused and unfused paths.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept
/// inner index is out of bounds.
pub fn gather_k_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    scratch: &mut GatherKScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    check_kept_k(kept_k, a.cols())?;
    pack_cols(a, kept_k, &mut scratch.a_kept);
    pack_rows(w, kept_k, &mut scratch.w_kept);
    blocked_gemm_into(&scratch.a_kept, &scratch.w_kept, out)
}

/// Allocating variant of [`gather_k_gemm_into`].
///
/// # Errors
///
/// Returns a [`GemmError`] under the same conditions.
pub fn gather_k_gemm(a: &Matrix, w: &Matrix, kept_k: &[usize]) -> Result<Matrix, GemmError> {
    let mut scratch = GatherKScratch::default();
    let mut out = Matrix::zeros(0, 0);
    gather_k_gemm_into(a, w, kept_k, &mut scratch, &mut out)?;
    Ok(out)
}

/// Composed gather-N × gather-K GEMM: the raw sampled product restricted to
/// the kept output columns,
/// `C[:, kept_cols] = A[:, kept_k] · W[kept_k, kept_cols]`, with dropped
/// output columns exactly zero. One kernel call compacts **both** GEMM
/// dimensions — the dropout pattern shrinks N while CRS shrinks K, so the
/// two speedups multiply.
///
/// Like [`gather_k_gemm_into`] the output is unscaled; the composed epilogue
/// applies both the `K/k` estimator scale and the inverted-dropout scale.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept
/// index (inner or output) is out of bounds.
pub fn gather_nk_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    kept_cols: &[usize],
    scratch: &mut GatherKScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_kept_k(kept_k, a.cols())?;
    check_kept_cols(kept_cols, n)?;
    pack_cols(a, kept_k, &mut scratch.a_kept);
    pack_rows_cols(w, kept_k, kept_cols, &mut scratch.w_kept);
    blocked_gemm_into(&scratch.a_kept, &scratch.w_kept, &mut scratch.compact)?;
    let m = a.rows();
    out.resize(m, n);
    for i in 0..m {
        let src = scratch.compact.row(i);
        let dst = out.row_mut(i);
        for (c, &j) in kept_cols.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    Ok(())
}

/// Weight-gradient form of the K-sampled backward pass:
/// `dW[kept_k, :] = scale · X[:, kept_k]ᵀ · G`, scattered into the kept rows
/// of `out` (shape `x.cols() × g.cols()`); dropped weight rows stay exactly
/// zero — the synapses whose inner products were skipped receive no update,
/// and `scale` carries the `K/k` estimator correction.
///
/// # Errors
///
/// Returns a [`GemmError`] if the batch dimensions disagree or any kept
/// inner index is out of bounds.
pub fn gather_k_gemm_at_b_into(
    x: &Matrix,
    g: &Matrix,
    kept_k: &[usize],
    scale: f32,
    scratch: &mut GatherKScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    if x.rows() != g.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            x.shape(),
            g.shape()
        )));
    }
    check_kept_k(kept_k, x.cols())?;
    pack_cols(x, kept_k, &mut scratch.a_kept);
    gemm_at_b_into(&scratch.a_kept, g, &mut scratch.compact)?;
    let (k, n) = (x.cols(), g.cols());
    out.resize(k, n);
    for (r, &p) in kept_k.iter().enumerate() {
        let src = scratch.compact.row(r);
        let dst = out.row_mut(p);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = s * scale;
        }
    }
    Ok(())
}

/// Input-gradient form of the K-sampled backward pass:
/// `dX[:, kept_k] = scale · G · W[kept_k, :]ᵀ`, scattered into the kept
/// columns of `out` (shape `g.rows() × w.rows()`); dropped input features
/// receive exactly zero gradient.
///
/// # Errors
///
/// Returns a [`GemmError`] if `g.cols() != w.cols()` or any kept inner index
/// is out of bounds.
pub fn gather_k_gemm_a_bt_into(
    g: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    scale: f32,
    scratch: &mut GatherKScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    if g.cols() != w.cols() {
        return Err(GemmError::new(format!(
            "output widths disagree: {:?} * {:?}ᵀ",
            g.shape(),
            w.shape()
        )));
    }
    check_kept_k(kept_k, w.rows())?;
    pack_rows(w, kept_k, &mut scratch.w_kept);
    gemm_a_bt_into(g, &scratch.w_kept, &mut scratch.compact)?;
    let (m, k) = (g.rows(), w.rows());
    out.resize(m, k);
    for i in 0..m {
        let src = scratch.compact.row(i);
        let dst = out.row_mut(i);
        for (c, &p) in kept_k.iter().enumerate() {
            dst[p] = src[c] * scale;
        }
    }
    Ok(())
}

/// Backward pair of the K-sampled scheme: both transposed-operand products
/// through one scratch —
/// `dW[kept_k, :] = scale·X[:, kept_k]ᵀ·G` and
/// `dX[:, kept_k] = scale·G·W[kept_k, :]ᵀ`. This is the entry point the
/// training hot path uses.
///
/// # Errors
///
/// Returns a [`GemmError`] under the conditions of
/// [`gather_k_gemm_at_b_into`] and [`gather_k_gemm_a_bt_into`].
#[allow(clippy::too_many_arguments)] // a GEMM pair: 4 operands, 1 scale, scratch, 2 outputs
pub fn gather_k_backward_into(
    x: &Matrix,
    g: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    scale: f32,
    scratch: &mut GatherKScratch,
    dw_out: &mut Matrix,
    dx_out: &mut Matrix,
) -> Result<(), GemmError> {
    gather_k_gemm_at_b_into(x, g, kept_k, scale, scratch, dw_out)?;
    gather_k_gemm_a_bt_into(g, w, kept_k, scale, scratch, dx_out)
}

/// Backward pair of the composed gather-N × gather-K scheme: gathers the
/// scaled kept gradient columns **once** and reuses the panel for both
/// double-compacted products —
/// `dW[kept_k, kept_cols] = X[:, kept_k]ᵀ · (scale·G[:, kept_cols])`
/// (all other entries of `dw_out` exactly zero) and
/// `dX[:, kept_k] = (scale·G[:, kept_cols]) · W[kept_k, kept_cols]ᵀ`.
/// `scale` carries the product of the `K/k` estimator scale and the
/// inverted-dropout scale.
///
/// # Errors
///
/// Returns a [`GemmError`] if the batch dimensions of `x` and `g` disagree,
/// `g.cols() != w.cols()`, or any kept index is out of bounds.
#[allow(clippy::too_many_arguments)] // a GEMM pair: 4 operands, 2 kept sets, 1 scale, scratch, 2 outputs
pub fn gather_nk_backward_into(
    x: &Matrix,
    g: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    kept_cols: &[usize],
    scale: f32,
    scratch: &mut GatherKScratch,
    dw_out: &mut Matrix,
    dx_out: &mut Matrix,
) -> Result<(), GemmError> {
    if x.rows() != g.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            x.shape(),
            g.shape()
        )));
    }
    if g.cols() != w.cols() {
        return Err(GemmError::new(format!(
            "output widths disagree: {:?} * {:?}ᵀ",
            g.shape(),
            w.shape()
        )));
    }
    check_kept_k(kept_k, x.cols())?;
    check_kept_cols(kept_cols, g.cols())?;
    gather_scaled_cols(g, kept_cols, scale, &mut scratch.g_kept);
    // dW: compact product over both kept sets, scattered into the kept
    // (row, column) grid of the full-size zero weight gradient.
    pack_cols(x, kept_k, &mut scratch.a_kept);
    gemm_at_b_into(&scratch.a_kept, &scratch.g_kept, &mut scratch.compact)?;
    let (k, n) = (x.cols(), g.cols());
    dw_out.resize(k, n);
    for (r, &p) in kept_k.iter().enumerate() {
        let src = scratch.compact.row(r);
        let dst = dw_out.row_mut(p);
        for (c, &j) in kept_cols.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    // dX: the same gathered gradient panel against the double-gathered
    // weight panel, scattered into the kept inner columns.
    pack_rows_cols(w, kept_k, kept_cols, &mut scratch.w_kept);
    gemm_a_bt_into(&scratch.g_kept, &scratch.w_kept, &mut scratch.compact)?;
    let m = g.rows();
    dx_out.resize(m, k);
    for i in 0..m {
        let src = scratch.compact.row(i);
        let dst = dx_out.row_mut(i);
        for (c, &p) in kept_k.iter().enumerate() {
            dst[p] = src[c];
        }
    }
    Ok(())
}

/// Row-compacted GEMM used by the Row-based Dropout Pattern.
///
/// Computes `C = A * W` where only the rows of the *output* listed in
/// `kept_output_rows` are needed — equivalently only the corresponding
/// columns of `W` (the synapses feeding the kept neurons) participate.
///
/// Layout convention used across the workspace: activations are
/// `(batch, in_features)` and weights are `(in_features, out_features)`, so
/// dropping output *neurons* means dropping *columns* of `W` and columns of
/// the output. The paper describes the transposed layout (dropping rows of
/// `Wᵀ`); both are the same compaction. The returned matrix has the full
/// `(batch, out_features)` shape with dropped columns left at zero, exactly
/// like step 3 of the paper's Fig. 3(a).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept index
/// is out of bounds.
pub fn row_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_output_rows: &[usize],
) -> Result<Matrix, GemmError> {
    let mut scratch = RowCompactScratch::default();
    let mut out = Matrix::zeros(0, 0);
    row_compact_gemm_into(a, w, kept_output_rows, &mut scratch, &mut out)?;
    Ok(out)
}

/// Half-open `(weight_rows, weight_cols)` region covered by one kept tile.
type TileBounds = (Range<usize>, Range<usize>);

/// Resolves the kept tiles of a grid into `(row_range, col_range)` bounds.
fn tile_bounds_list(
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Vec<TileBounds>, GemmError> {
    if tile == 0 {
        return Err(GemmError::new("tile size must be positive"));
    }
    let tiles_per_row = w.cols().div_ceil(tile);
    let tiles_per_col = w.rows().div_ceil(tile);
    let total_tiles = tiles_per_row * tiles_per_col;
    if let Some(&bad) = kept_tiles.iter().find(|&&t| t >= total_tiles) {
        return Err(GemmError::new(format!(
            "tile index {bad} out of bounds for a {tiles_per_col}x{tiles_per_row} tile grid"
        )));
    }
    Ok(kept_tiles
        .iter()
        .map(|&t| {
            let tile_row = t / tiles_per_row; // which block of W rows (input features)
            let tile_col = t % tiles_per_row; // which block of W cols (output features)
            let k_start = tile_row * tile;
            let k_end = (k_start + tile).min(w.rows());
            let j_start = tile_col * tile;
            let j_end = (j_start + tile).min(w.cols());
            (k_start..k_end, j_start..j_end)
        })
        .collect())
}

/// Per-row-chunk kernel for the tile-compacted GEMM: each output row visits
/// only the kept tiles, accumulating `tile`-wide slice panels.
fn tile_rows_kernel(
    a: &Matrix,
    w: &Matrix,
    bounds: &[(Range<usize>, Range<usize>)],
    rows: Range<usize>,
    chunk: &mut [f32],
) {
    let n = w.cols();
    for (local, i) in rows.enumerate() {
        let arow = a.row(i);
        let crow = &mut chunk[local * n..(local + 1) * n];
        for (kr, jr) in bounds {
            let cslice = &mut crow[jr.clone()];
            let apanel = &arow[kr.clone()];
            let mut quads = apanel.chunks_exact(4);
            let mut p = kr.start;
            for quad in &mut quads {
                axpy4(
                    cslice,
                    [quad[0], quad[1], quad[2], quad[3]],
                    &w.row(p)[jr.clone()],
                    &w.row(p + 1)[jr.clone()],
                    &w.row(p + 2)[jr.clone()],
                    &w.row(p + 3)[jr.clone()],
                );
                p += 4;
            }
            for &alpha in quads.remainder() {
                axpy(cslice, alpha, &w.row(p)[jr.clone()]);
                p += 1;
            }
        }
    }
}

/// Tile-compacted GEMM used by the Tile-based Dropout Pattern, writing into
/// `out`.
///
/// See [`tile_compact_gemm`] for the semantics.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `tile == 0`, or
/// a tile index is outside the tile grid.
pub fn tile_compact_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let bounds = tile_bounds_list(w, kept_tiles, tile)?;
    let m = a.rows();
    let n = w.cols();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        tile_rows_kernel(a, w, &bounds, rows, chunk);
    });
    Ok(())
}

/// Tile-compacted GEMM used by the Tile-based Dropout Pattern.
///
/// `kept_tiles` lists the linear indices (row-major over the tile grid of the
/// weight matrix `W`, tile size `tile × tile`) that are *kept*; every other
/// tile of `W` is treated as zero. Only the kept tiles contribute to the
/// product, which is what the GPU kernel achieves by fetching only those
/// tiles into shared memory.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `tile == 0`, or a
/// tile index is outside the tile grid.
pub fn tile_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    tile_compact_gemm_into(a, w, kept_tiles, tile, &mut out)?;
    Ok(out)
}

/// Resolves kept block indices into clipped half-open output-column ranges
/// of a `block`-wide grid over `n` output columns.
fn block_col_ranges(
    n: usize,
    kept_blocks: &[usize],
    block: usize,
) -> Result<Vec<Range<usize>>, GemmError> {
    if block == 0 {
        return Err(GemmError::new("block width must be positive"));
    }
    let total = n.div_ceil(block);
    if let Some(&bad) = kept_blocks.iter().find(|&&b| b >= total) {
        return Err(GemmError::new(format!(
            "block index {bad} out of bounds for {total} blocks of width {block}"
        )));
    }
    Ok(kept_blocks
        .iter()
        .map(|&b| (b * block)..((b + 1) * block).min(n))
        .collect())
}

/// Per-row-chunk kernel for the block-compacted GEMM: each output row
/// streams the full K panel of `A` once per kept block, accumulating into
/// the block's contiguous output slice — no gather, no pack, pure slice
/// panels (the CPU analogue of perfectly coalesced column-strip fetches).
fn block_rows_kernel(
    a: &Matrix,
    w: &Matrix,
    ranges: &[Range<usize>],
    rows: Range<usize>,
    chunk: &mut [f32],
) {
    let n = w.cols();
    for (local, i) in rows.enumerate() {
        let arow = a.row(i);
        let crow = &mut chunk[local * n..(local + 1) * n];
        for jr in ranges {
            let cslice = &mut crow[jr.clone()];
            let mut quads = arow.chunks_exact(4);
            let mut p = 0;
            for quad in &mut quads {
                axpy4(
                    cslice,
                    [quad[0], quad[1], quad[2], quad[3]],
                    &w.row(p)[jr.clone()],
                    &w.row(p + 1)[jr.clone()],
                    &w.row(p + 2)[jr.clone()],
                    &w.row(p + 3)[jr.clone()],
                );
                p += 4;
            }
            for &alpha in quads.remainder() {
                axpy(cslice, alpha, &w.row(p)[jr.clone()]);
                p += 1;
            }
        }
    }
}

/// Block-compacted GEMM for structured unit dropout, writing into `out`.
///
/// `kept_blocks` lists the surviving contiguous `block`-wide groups of
/// output columns; only those column strips of `W` participate and the rest
/// of the `(batch, out_features)` output stays zero. Because the strips are
/// contiguous, the kernel streams slice panels directly — no gather or
/// packing step at all, which is what makes block dropout the
/// hardware-cheapest member of the structured family.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `block == 0`,
/// or a block index is out of bounds.
pub fn block_compact_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_blocks: &[usize],
    block: usize,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let ranges = block_col_ranges(w.cols(), kept_blocks, block)?;
    let m = a.rows();
    let n = w.cols();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        block_rows_kernel(a, w, &ranges, rows, chunk);
    });
    Ok(())
}

/// Allocating variant of [`block_compact_gemm_into`].
///
/// # Errors
///
/// Returns a [`GemmError`] under the same conditions.
pub fn block_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_blocks: &[usize],
    block: usize,
) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    block_compact_gemm_into(a, w, kept_blocks, block, &mut out)?;
    Ok(out)
}

/// Per-row-chunk kernel for the block-compacted `C = Xᵀ · (scale·G)`: the
/// chunk covers rows `p` of `C` and only the kept column strips are
/// accumulated.
fn block_at_b_rows_kernel(
    x: &Matrix,
    g: &Matrix,
    ranges: &[Range<usize>],
    scale: f32,
    prows: Range<usize>,
    chunk: &mut [f32],
) {
    let batch = x.rows();
    let n = g.cols();
    let mut i = 0;
    while i + 4 <= batch {
        let (x0, x1, x2, x3) = (x.row(i), x.row(i + 1), x.row(i + 2), x.row(i + 3));
        let (g0, g1, g2, g3) = (g.row(i), g.row(i + 1), g.row(i + 2), g.row(i + 3));
        for (local, p) in prows.clone().enumerate() {
            let crow = &mut chunk[local * n..(local + 1) * n];
            let alpha = [x0[p] * scale, x1[p] * scale, x2[p] * scale, x3[p] * scale];
            for jr in ranges {
                axpy4(
                    &mut crow[jr.clone()],
                    alpha,
                    &g0[jr.clone()],
                    &g1[jr.clone()],
                    &g2[jr.clone()],
                    &g3[jr.clone()],
                );
            }
        }
        i += 4;
    }
    while i < batch {
        let xrow = x.row(i);
        let grow = g.row(i);
        for (local, p) in prows.clone().enumerate() {
            let crow = &mut chunk[local * n..(local + 1) * n];
            let alpha = xrow[p] * scale;
            for jr in ranges {
                axpy(&mut crow[jr.clone()], alpha, &grow[jr.clone()]);
            }
        }
        i += 1;
    }
}

/// Weight-gradient form of the block-compacted backward pass:
/// `dW = Xᵀ · (scale · G)` restricted to the kept `block`-wide column
/// strips of `out` (shape `x.cols() × g.cols()`); dropped strips stay
/// exactly zero and no transpose or mask matrix is materialised.
///
/// # Errors
///
/// Returns a [`GemmError`] if the batch dimensions disagree, `block == 0`,
/// or a block index is out of bounds.
pub fn block_compact_gemm_at_b_into(
    x: &Matrix,
    g: &Matrix,
    kept_blocks: &[usize],
    block: usize,
    scale: f32,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    if x.rows() != g.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            x.shape(),
            g.shape()
        )));
    }
    let ranges = block_col_ranges(g.cols(), kept_blocks, block)?;
    let (k, n) = (x.cols(), g.cols());
    out.resize(k, n);
    pool::run_row_chunks(k, n, out.as_mut_slice(), |prows, chunk| {
        block_at_b_rows_kernel(x, g, &ranges, scale, prows, chunk);
    });
    Ok(())
}

/// Per-row-chunk kernel for the block-compacted `C = (scale·G) · Wᵀ`: row
/// `i` of `C` accumulates per-block dot products against the kept column
/// strips of `W`.
fn block_a_bt_rows_kernel(
    g: &Matrix,
    w: &Matrix,
    ranges: &[Range<usize>],
    scale: f32,
    rows: Range<usize>,
    chunk: &mut [f32],
) {
    let n = w.rows();
    for (local, i) in rows.enumerate() {
        let grow = g.row(i);
        let crow = &mut chunk[local * n..(local + 1) * n];
        for (p, cj) in crow.iter_mut().enumerate() {
            let wrow = w.row(p);
            let mut acc = 0.0;
            for jr in ranges {
                acc += dot(&grow[jr.clone()], &wrow[jr.clone()]);
            }
            *cj = acc * scale;
        }
    }
}

/// Input-gradient form of the block-compacted backward pass:
/// `dX = (scale · G) · Wᵀ` where only the kept `block`-wide column strips
/// of `W` contribute — the synapses of dropped blocks are skipped entirely.
///
/// # Errors
///
/// Returns a [`GemmError`] if `g.cols() != w.cols()`, `block == 0`, or a
/// block index is out of bounds.
pub fn block_compact_gemm_a_bt_into(
    g: &Matrix,
    w: &Matrix,
    kept_blocks: &[usize],
    block: usize,
    scale: f32,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    if g.cols() != w.cols() {
        return Err(GemmError::new(format!(
            "output widths disagree: {:?} * {:?}ᵀ",
            g.shape(),
            w.shape()
        )));
    }
    let ranges = block_col_ranges(g.cols(), kept_blocks, block)?;
    let (m, n) = (g.rows(), w.rows());
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        block_a_bt_rows_kernel(g, w, &ranges, scale, rows, chunk);
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Fused whole-layer kernels (GEMM + bias + activation)
// ---------------------------------------------------------------------------

/// Activation function fused into a kernel's write-back epilogue.
///
/// The formulas match the stand-alone maps in [`crate::ops`] exactly, so a
/// fused kernel is bitwise identical to the unfused
/// GEMM → bias → activation chain it replaces. Both route through
/// [`crate::simd`]: under an active vector level the transcendentals use
/// the polynomial kernels (elementwise-deterministic, a few ULP from
/// `libm`; see the `simd` module docs), and with `TENSOR_SIMD=0` the
/// precise `libm` formulas — [`Activation::apply`] on one scalar always
/// agrees bitwise with [`Activation::apply_slice`] on a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Pass-through (`f(v) = v`): bias add only.
    Identity,
    /// Rectified linear unit, `max(0, v)` — scalar-exact at every SIMD
    /// level.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^{-v})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one scalar (under the active SIMD level,
    /// see the type docs).
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Activation::Identity => v,
            Activation::Relu => v.max(0.0),
            Activation::Sigmoid => simd::sigmoid_scalar(v),
            Activation::Tanh => simd::tanh_scalar(v),
        }
    }

    /// Applies the activation elementwise to a row, vectorised when a SIMD
    /// level is active; bitwise identical to mapping [`Activation::apply`]
    /// over the row.
    #[inline]
    pub fn apply_slice(self, row: &mut [f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => simd::relu_slice(row),
            Activation::Sigmoid => simd::sigmoid_slice(row),
            Activation::Tanh => simd::tanh_slice(row),
        }
    }
}

/// Validates that `bias` is a `1 × n` row vector.
fn check_bias(bias: &Matrix, n: usize) -> Result<(), GemmError> {
    if bias.rows() != 1 || bias.cols() != n {
        return Err(GemmError::new(format!(
            "bias must be a 1x{n} row vector, got {:?}",
            bias.shape()
        )));
    }
    Ok(())
}

/// Shared dense epilogue: `chunk[r][j] = act((chunk[r][j] + bias[j]) * mult)`
/// where `mult` is `mask[j] * scale` when a column mask is given and 1
/// (skipped entirely) otherwise. Runs inside the pool chunk closure while the
/// freshly written rows are still cache-hot.
fn bias_act_epilogue(
    chunk: &mut [f32],
    n: usize,
    bias: &[f32],
    mask_scale: Option<(&[f32], f32)>,
    act: Activation,
) {
    for row in chunk.chunks_exact_mut(n) {
        match mask_scale {
            Some((mask, scale)) => simd::add_bias_mask_scale(row, bias, mask, scale),
            None => simd::add_bias(row, bias),
        }
        act.apply_slice(row);
    }
}

/// Fused dense whole-layer kernel, `C = act(A·W + bias)`, writing into `out`.
///
/// The bias add and activation run in the write-back loop of the packed GEMM
/// — one pass over the output while it is cache-hot, instead of the
/// GEMM → bias broadcast → activation map chain of separate kernels. Results
/// are bitwise identical to that chain and thread-invariant like every other
/// kernel here.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != w.rows()` or `bias` is not a
/// `1 × w.cols()` row vector.
pub fn gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    bias: &Matrix,
    act: Activation,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    let m = a.rows();
    out.resize(m, n);
    let bl = tune::blocking(m, a.cols(), n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        dense_rows_kernel(a, w, rows, chunk, bl);
        bias_act_epilogue(chunk, n, bias.row(0), None, act);
    });
    Ok(())
}

/// Allocating variant of [`gemm_bias_act_into`].
///
/// # Errors
///
/// Returns a [`GemmError`] under the same conditions.
pub fn gemm_bias_act(
    a: &Matrix,
    w: &Matrix,
    bias: &Matrix,
    act: Activation,
) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    gemm_bias_act_into(a, w, bias, act, &mut out)?;
    Ok(out)
}

/// Fused dense whole-layer kernel with a per-output-column multiplier folded
/// into the epilogue: `C = act((A·W + bias) ⊙ (mask · scale))` — the
/// conventional Bernoulli-masked layer of the paper's Fig. 1(a) as a single
/// launch (the mask multiply rides in the write-back instead of a separate
/// elementwise kernel).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is not a
/// `1 × w.cols()` row vector, or `mask.len() != w.cols()`.
pub fn gemm_bias_act_masked_into(
    a: &Matrix,
    w: &Matrix,
    bias: &Matrix,
    mask: &[f32],
    scale: f32,
    act: Activation,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    if mask.len() != n {
        return Err(GemmError::new(format!(
            "column mask length {} must match {n} output features",
            mask.len()
        )));
    }
    let m = a.rows();
    out.resize(m, n);
    let bl = tune::blocking(m, a.cols(), n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        dense_rows_kernel(a, w, rows, chunk, bl);
        bias_act_epilogue(chunk, n, bias.row(0), Some((mask, scale)), act);
    });
    Ok(())
}

/// Fused column-gather whole-layer kernel: the compacted GEMM of
/// [`gather_cols_gemm_into`] with the bias add, inverted-dropout scale and
/// activation folded into the scatter step —
/// `C[:, j] = act((A·W[:, kept] + bias[j]) · scale)` for kept columns `j`
/// and `act(0)` for dropped columns (exactly what the unfused
/// compact → bias/scale → activation chain produces, since the dropped
/// pre-activations are zero).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is not a
/// `1 × w.cols()` row vector, or any kept index is out of bounds.
#[allow(clippy::too_many_arguments)] // a whole layer: 3 operands + plan params + scratch + out
pub fn gather_cols_gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    bias: &Matrix,
    scale: f32,
    act: Activation,
    scratch: &mut RowCompactScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    check_kept_cols(kept_cols, n)?;
    // Pack the kept columns and run the small GEMM exactly like the unfused
    // kernel …
    pack_cols(w, kept_cols, &mut scratch.pack);
    blocked_gemm_into(a, &scratch.pack, &mut scratch.product)?;
    // … then scatter with the whole epilogue fused into the write-back: the
    // scaled-bias pre-activations land in the kept columns of a zeroed row
    // (dropped pre-activations are exactly zero) and the activation runs
    // vectorised over the full row — `act(0)` in the dropped columns, same
    // as the unfused chain.
    let m = a.rows();
    let brow = bias.row(0);
    out.resize_for_overwrite(m, n);
    for i in 0..m {
        let src = scratch.product.row(i);
        let dst = out.row_mut(i);
        dst.fill(0.0);
        for (c, &j) in kept_cols.iter().enumerate() {
            dst[j] = (src[c] + brow[j]) * scale;
        }
        act.apply_slice(dst);
    }
    Ok(())
}

/// Fused N:M whole-layer kernel: validates the `n`-of-`m` group structure and
/// executes through [`gather_cols_gemm_bias_act_into`].
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is
/// malformed, or `kept_cols` does not have the `n`-of-`m` group structure.
#[allow(clippy::too_many_arguments)]
pub fn nm_compact_gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    kept_cols: &[usize],
    n: usize,
    m: usize,
    bias: &Matrix,
    scale: f32,
    act: Activation,
    scratch: &mut RowCompactScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_nm_structure(kept_cols, n, m, w.cols())?;
    gather_cols_gemm_bias_act_into(a, w, kept_cols, bias, scale, act, scratch, out)
}

/// Fused K-sampled whole-layer kernel: the sampled GEMM of
/// [`gather_k_gemm_into`] with the `K/k` estimator scale, bias add and
/// activation folded into the write-back —
/// `C = act(crs_scale · A[:, kept_k]·W[kept_k, :] + bias)`. The scale
/// corrects the **raw product before the bias**, so the bias itself is never
/// inflated by the estimator; `kept_k == 0..K` with `crs_scale == 1` is
/// bitwise identical to [`gemm_bias_act_into`].
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is not a
/// `1 × w.cols()` row vector, or any kept inner index is out of bounds.
#[allow(clippy::too_many_arguments)] // a whole layer: 3 operands + plan params + scratch + out
pub fn gather_k_gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    bias: &Matrix,
    crs_scale: f32,
    act: Activation,
    scratch: &mut GatherKScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    check_kept_k(kept_k, a.cols())?;
    pack_cols(a, kept_k, &mut scratch.a_kept);
    pack_rows(w, kept_k, &mut scratch.w_kept);
    let m = a.rows();
    out.resize(m, n);
    let bl = tune::blocking(m, kept_k.len(), n);
    let (a_kept, w_kept) = (&scratch.a_kept, &scratch.w_kept);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        dense_rows_kernel(a_kept, w_kept, rows, chunk, bl);
        let brow = bias.row(0);
        for row in chunk.chunks_exact_mut(n) {
            simd::scale_add_bias(row, crs_scale, brow);
            act.apply_slice(row);
        }
    });
    Ok(())
}

/// Fused composed gather-N × gather-K whole-layer kernel: the
/// double-compacted GEMM of [`gather_nk_gemm_into`] with both scales, the
/// bias add and the activation fused into the scatter —
/// `C[:, j] = act((crs_scale · p + bias[j]) · row_scale)` for kept output
/// columns `j` (with `p` the compact sampled product) and `act(0)` for
/// dropped columns, exactly what the unfused compact → epilogue chain
/// produces.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is
/// malformed, or any kept index (inner or output) is out of bounds.
#[allow(clippy::too_many_arguments)] // a whole layer: 3 operands + plan params + scratch + out
pub fn gather_nk_gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    kept_k: &[usize],
    kept_cols: &[usize],
    bias: &Matrix,
    crs_scale: f32,
    row_scale: f32,
    act: Activation,
    scratch: &mut GatherKScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    check_kept_k(kept_k, a.cols())?;
    check_kept_cols(kept_cols, n)?;
    pack_cols(a, kept_k, &mut scratch.a_kept);
    pack_rows_cols(w, kept_k, kept_cols, &mut scratch.w_kept);
    blocked_gemm_into(&scratch.a_kept, &scratch.w_kept, &mut scratch.compact)?;
    let m = a.rows();
    let brow = bias.row(0);
    out.resize_for_overwrite(m, n);
    for i in 0..m {
        let src = scratch.compact.row(i);
        let dst = out.row_mut(i);
        dst.fill(0.0);
        for (c, &j) in kept_cols.iter().enumerate() {
            dst[j] = (src[c] * crs_scale + brow[j]) * row_scale;
        }
        act.apply_slice(dst);
    }
    Ok(())
}

/// Fused block-compacted whole-layer kernel: the contiguous column strips of
/// [`block_compact_gemm_into`] with `act((v + bias[j]) · scale)` applied in
/// the write-back for kept strips and `act(0)` filled elsewhere.
///
/// `kept_blocks` must be ascending (which is how every `DropoutPlan`
/// resolves its kept-block list); unsorted lists are rejected.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is
/// malformed, `block == 0`, a block index is out of bounds, or
/// `kept_blocks` is not strictly ascending.
#[allow(clippy::too_many_arguments)]
pub fn block_compact_gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    kept_blocks: &[usize],
    block: usize,
    bias: &Matrix,
    scale: f32,
    act: Activation,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    if kept_blocks.windows(2).any(|w| w[0] >= w[1]) {
        return Err(GemmError::new(
            "kept blocks must be strictly ascending for the fused kernel",
        ));
    }
    let ranges = block_col_ranges(n, kept_blocks, block)?;
    let m = a.rows();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        block_rows_kernel(a, w, &ranges, rows, chunk);
        let brow = bias.row(0);
        for row in chunk.chunks_exact_mut(n) {
            // Scaled-bias pre-activations over the kept strips, exact zero
            // over the complement (the ranges are ascending so one forward
            // walk covers both), then one vectorised activation pass over
            // the whole row — `act(0)` in dropped strips, same as the
            // unfused chain.
            let mut cursor = 0;
            for jr in &ranges {
                row[cursor..jr.start].fill(0.0);
                simd::add_bias_scale(&mut row[jr.clone()], &brow[jr.clone()], scale);
                cursor = jr.end;
            }
            row[cursor..].fill(0.0);
            act.apply_slice(row);
        }
    });
    Ok(())
}

/// Fused tile-compacted whole-layer kernel: the kept-tile GEMM of
/// [`tile_compact_gemm_into`] with the tile path's epilogue
/// (`act(v · scale + bias[j])` over **every** output column — the tile
/// pattern adds bias to dropped columns too, matching the unfused
/// scale → bias broadcast → activation chain bitwise).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `bias` is
/// malformed, `tile == 0`, or a tile index is outside the tile grid.
#[allow(clippy::too_many_arguments)]
pub fn tile_compact_gemm_bias_act_into(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
    bias: &Matrix,
    scale: f32,
    act: Activation,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    check_bias(bias, n)?;
    let bounds = tile_bounds_list(w, kept_tiles, tile)?;
    let m = a.rows();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        tile_rows_kernel(a, w, &bounds, rows, chunk);
        let brow = bias.row(0);
        for row in chunk.chunks_exact_mut(n) {
            simd::scale_add_bias(row, scale, brow);
            act.apply_slice(row);
        }
    });
    Ok(())
}

/// Reference implementation of tile dropout through explicit masking.
///
/// Builds the full masked weight matrix (kept tiles preserved, dropped tiles
/// zeroed) and multiplies densely — the slow path that conventional dropout
/// is stuck with. Used to validate [`tile_compact_gemm`].
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or `tile == 0`.
pub fn tile_masked_gemm_reference(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Matrix, GemmError> {
    if tile == 0 {
        return Err(GemmError::new("tile size must be positive"));
    }
    let tiles_per_row = w.cols().div_ceil(tile);
    let mut masked = Matrix::zeros(w.rows(), w.cols());
    for &t in kept_tiles {
        let tile_row = t / tiles_per_row;
        let tile_col = t % tiles_per_row;
        for p in (tile_row * tile)..((tile_row + 1) * tile).min(w.rows()) {
            for j in (tile_col * tile)..((tile_col + 1) * tile).min(w.cols()) {
                masked[(p, j)] = w[(p, j)];
            }
        }
    }
    naive_gemm(a, &masked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        init::uniform(rng, r, c, -1.0, 1.0)
    }

    #[test]
    fn naive_gemm_small_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = naive_gemm(&a, &b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(naive_gemm(&a, &b).is_err());
        assert!(blocked_gemm(&a, &b).is_err());
        assert!(gemm_at_b(&a, &b).is_err());
        assert!(gemm_a_bt(&a, &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 37, 53);
        let b = random_matrix(&mut rng, 53, 41);
        let c1 = naive_gemm(&a, &b).unwrap();
        let c2 = blocked_gemm(&a, &b).unwrap();
        assert!(crate::approx_eq_slice(c1.as_slice(), c2.as_slice(), 1e-3));
    }

    #[test]
    fn identity_is_neutral_for_all_kernels() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 16, 16);
        let i = Matrix::identity(16);
        assert!(crate::approx_eq_slice(
            naive_gemm(&a, &i).unwrap().as_slice(),
            a.as_slice(),
            1e-5
        ));
        assert!(crate::approx_eq_slice(
            blocked_gemm(&a, &i).unwrap().as_slice(),
            a.as_slice(),
            1e-5
        ));
    }

    #[test]
    fn blocked_into_reuses_the_output_buffer() {
        let mut rng = StdRng::seed_from_u64(29);
        let a = random_matrix(&mut rng, 12, 20);
        let b = random_matrix(&mut rng, 20, 16);
        let mut out = Matrix::zeros(12, 16);
        blocked_gemm_into(&a, &b, &mut out).unwrap();
        let ptr_before = out.as_slice().as_ptr();
        blocked_gemm_into(&a, &b, &mut out).unwrap();
        assert_eq!(
            ptr_before,
            out.as_slice().as_ptr(),
            "same-shape recomputation must not reallocate"
        );
        let reference = naive_gemm(&a, &b).unwrap();
        assert!(crate::approx_eq_slice(
            out.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_matrix(&mut rng, 33, 21); // (batch, in)
        let b = random_matrix(&mut rng, 33, 17); // (batch, out)
        let fused = gemm_at_b(&a, &b).unwrap();
        let reference = naive_gemm(&a.transpose(), &b).unwrap();
        assert_eq!(fused.shape(), (21, 17));
        assert!(crate::approx_eq_slice(
            fused.as_slice(),
            reference.as_slice(),
            1e-3
        ));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(37);
        let a = random_matrix(&mut rng, 19, 27); // (batch, out)
        let b = random_matrix(&mut rng, 23, 27); // (in, out)
        let fused = gemm_a_bt(&a, &b).unwrap();
        let reference = naive_gemm(&a, &b.transpose()).unwrap();
        assert_eq!(fused.shape(), (19, 23));
        assert!(crate::approx_eq_slice(
            fused.as_slice(),
            reference.as_slice(),
            1e-3
        ));
    }

    #[test]
    fn transposed_variants_handle_ragged_batch_remainders() {
        // Batch sizes that are not multiples of the 4-row panel exercise the
        // scalar tail of the unrolled loops.
        let mut rng = StdRng::seed_from_u64(41);
        for batch in [1, 2, 3, 5, 6, 7] {
            let a = random_matrix(&mut rng, batch, 9);
            let b = random_matrix(&mut rng, batch, 11);
            let fused = gemm_at_b(&a, &b).unwrap();
            let reference = naive_gemm(&a.transpose(), &b).unwrap();
            assert!(
                crate::approx_eq_slice(fused.as_slice(), reference.as_slice(), 1e-4),
                "batch {batch}"
            );
        }
    }

    #[test]
    fn row_compact_matches_column_masked_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 8, 12);
        let w = random_matrix(&mut rng, 12, 10);
        let kept = vec![0, 3, 6, 9];
        let compact = row_compact_gemm(&a, &w, &kept).unwrap();

        // Dense reference: zero the dropped columns of W, then multiply.
        let mut masked = w.clone();
        for j in 0..w.cols() {
            if !kept.contains(&j) {
                for p in 0..w.rows() {
                    masked[(p, j)] = 0.0;
                }
            }
        }
        let reference = naive_gemm(&a, &masked).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn row_compact_rejects_out_of_bounds_index() {
        let a = Matrix::zeros(2, 3);
        let w = Matrix::zeros(3, 4);
        assert!(row_compact_gemm(&a, &w, &[4]).is_err());
    }

    #[test]
    fn row_compact_with_all_rows_equals_dense() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 6, 7);
        let w = random_matrix(&mut rng, 7, 5);
        let all: Vec<usize> = (0..5).collect();
        let compact = row_compact_gemm(&a, &w, &all).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn row_compact_with_no_rows_is_zero() {
        let a = Matrix::ones(3, 4);
        let w = Matrix::ones(4, 5);
        let c = row_compact_gemm(&a, &w, &[]).unwrap();
        assert_eq!(c.sum(), 0.0);
        assert_eq!(c.shape(), (3, 5));
    }

    #[test]
    fn row_compact_scratch_is_recycled() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = random_matrix(&mut rng, 6, 10);
        let w = random_matrix(&mut rng, 10, 8);
        let mut scratch = RowCompactScratch::default();
        let mut out = Matrix::zeros(0, 0);
        row_compact_gemm_into(&a, &w, &[0, 2, 4, 6], &mut scratch, &mut out).unwrap();
        let pack_ptr = scratch.pack.as_slice().as_ptr();
        let out_ptr = out.as_slice().as_ptr();
        // Second call with the same kept-count: every buffer is reused.
        row_compact_gemm_into(&a, &w, &[1, 3, 5, 7], &mut scratch, &mut out).unwrap();
        assert_eq!(pack_ptr, scratch.pack.as_slice().as_ptr());
        assert_eq!(out_ptr, out.as_slice().as_ptr());
    }

    #[test]
    fn tile_compact_matches_masked_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_matrix(&mut rng, 9, 12);
        let w = random_matrix(&mut rng, 12, 10);
        let tile = 4;
        let kept = vec![0, 2, 5, 7];
        let compact = tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn tile_compact_with_all_tiles_equals_dense() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = random_matrix(&mut rng, 8, 8);
        let w = random_matrix(&mut rng, 8, 8);
        let tile = 4;
        let all: Vec<usize> = (0..4).collect();
        let compact = tile_compact_gemm(&a, &w, &all, tile).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn tile_compact_rejects_zero_tile_size() {
        let a = Matrix::zeros(4, 4);
        let w = Matrix::zeros(4, 4);
        assert!(tile_compact_gemm(&a, &w, &[0], 0).is_err());
    }

    #[test]
    fn tile_compact_rejects_out_of_range_tile() {
        let a = Matrix::zeros(4, 4);
        let w = Matrix::zeros(4, 4);
        // 4x4 weight with tile 4 has exactly one tile (index 0).
        assert!(tile_compact_gemm(&a, &w, &[1], 4).is_err());
    }

    #[test]
    fn tile_compact_handles_non_divisible_edges() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 5, 7);
        let w = random_matrix(&mut rng, 7, 9);
        let tile = 4; // 2x3 tile grid with ragged edges
        let kept = vec![0, 3, 5];
        let compact = tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    /// Dense column-multiplier reference for the gather/block kernels: zero
    /// the dropped columns of `w`, multiply naively.
    fn col_masked_reference(a: &Matrix, w: &Matrix, kept: &[usize]) -> Matrix {
        let mut masked = w.clone();
        for j in 0..w.cols() {
            if !kept.contains(&j) {
                for p in 0..w.rows() {
                    masked[(p, j)] = 0.0;
                }
            }
        }
        naive_gemm(a, &masked).unwrap()
    }

    #[test]
    fn nm_compact_matches_column_masked_dense() {
        let mut rng = StdRng::seed_from_u64(51);
        let a = random_matrix(&mut rng, 6, 9);
        let w = random_matrix(&mut rng, 9, 8);
        // 2:4 over 8 columns: lanes {1,3} and {4,6}.
        let kept = vec![1, 3, 4, 6];
        let compact = nm_compact_gemm(&a, &w, &kept, 2, 4).unwrap();
        let reference = col_masked_reference(&a, &w, &kept);
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn nm_compact_rejects_malformed_group_structure() {
        let a = Matrix::zeros(2, 4);
        let w = Matrix::zeros(4, 8);
        // Three lanes in the first group of four.
        assert!(nm_compact_gemm(&a, &w, &[0, 1, 2, 4, 6], 2, 4).is_err());
        // Unsorted lanes inside a group.
        assert!(nm_compact_gemm(&a, &w, &[3, 1, 4, 6], 2, 4).is_err());
        // Lane past the output width.
        assert!(nm_compact_gemm(&a, &w, &[1, 3, 4, 8], 2, 4).is_err());
        // Correct structure passes.
        assert!(nm_compact_gemm(&a, &w, &[0, 1, 4, 5], 2, 4).is_ok());
    }

    #[test]
    fn nm_compact_handles_ragged_tail_group() {
        let mut rng = StdRng::seed_from_u64(53);
        let a = random_matrix(&mut rng, 3, 5);
        let w = random_matrix(&mut rng, 5, 10);
        // 3:4 over 10 columns: tail group {8, 9} keeps min(3, 2) = 2 lanes.
        let kept = vec![0, 2, 3, 5, 6, 7, 8, 9];
        let compact = nm_compact_gemm(&a, &w, &kept, 3, 4).unwrap();
        let reference = col_masked_reference(&a, &w, &kept);
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn gather_backward_forms_match_dense_references() {
        let mut rng = StdRng::seed_from_u64(57);
        let x = random_matrix(&mut rng, 7, 5); // (batch, in)
        let g = random_matrix(&mut rng, 7, 9); // (batch, out)
        let w = random_matrix(&mut rng, 5, 9); // (in, out)
        let kept = vec![0, 3, 4, 8];
        let scale = 2.25f32;
        let mut scratch = GatherColsScratch::default();

        // dW reference: Xᵀ · (scale · G ⊙ column mask).
        let mut g_masked = Matrix::zeros(7, 9);
        for i in 0..7 {
            for &j in &kept {
                g_masked[(i, j)] = g[(i, j)] * scale;
            }
        }
        let dw_ref = naive_gemm(&x.transpose(), &g_masked).unwrap();
        let mut dw = Matrix::zeros(0, 0);
        gather_cols_gemm_at_b_into(&x, &g, &kept, scale, &mut scratch, &mut dw).unwrap();
        assert_eq!(dw.shape(), (5, 9));
        assert!(crate::approx_eq_slice(
            dw.as_slice(),
            dw_ref.as_slice(),
            1e-4
        ));

        // dX reference: (scale · G ⊙ mask) · Wᵀ with dropped columns of W
        // contributing nothing.
        let dx_ref = naive_gemm(&g_masked, &w.transpose()).unwrap();
        let mut dx = Matrix::zeros(0, 0);
        gather_cols_gemm_a_bt_into(&g, &w, &kept, scale, &mut scratch, &mut dx).unwrap();
        assert_eq!(dx.shape(), (7, 5));
        assert!(crate::approx_eq_slice(
            dx.as_slice(),
            dx_ref.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn fused_gather_backward_matches_the_standalone_pair() {
        let mut rng = StdRng::seed_from_u64(59);
        let x = random_matrix(&mut rng, 6, 4);
        let g = random_matrix(&mut rng, 6, 10);
        let w = random_matrix(&mut rng, 4, 10);
        let kept = vec![1, 2, 6, 9];
        let scale = 3.0f32;

        let mut s1 = GatherColsScratch::default();
        let mut dw_ref = Matrix::zeros(0, 0);
        let mut dx_ref = Matrix::zeros(0, 0);
        gather_cols_gemm_at_b_into(&x, &g, &kept, scale, &mut s1, &mut dw_ref).unwrap();
        gather_cols_gemm_a_bt_into(&g, &w, &kept, scale, &mut s1, &mut dx_ref).unwrap();

        let mut s2 = GatherColsScratch::default();
        let mut dw = Matrix::zeros(0, 0);
        let mut dx = Matrix::zeros(0, 0);
        gather_cols_backward_into(&x, &g, &w, &kept, scale, &mut s2, &mut dw, &mut dx).unwrap();
        assert_eq!(dw, dw_ref);
        assert_eq!(dx, dx_ref);

        // Shape mismatches are rejected up front.
        assert!(gather_cols_backward_into(
            &Matrix::zeros(5, 4),
            &g,
            &w,
            &kept,
            scale,
            &mut s2,
            &mut dw,
            &mut dx
        )
        .is_err());
        assert!(gather_cols_backward_into(
            &x,
            &g,
            &Matrix::zeros(4, 9),
            &kept,
            scale,
            &mut s2,
            &mut dw,
            &mut dx
        )
        .is_err());
    }

    #[test]
    fn gather_backward_rejects_bad_shapes() {
        let mut scratch = GatherColsScratch::default();
        let mut out = Matrix::zeros(0, 0);
        assert!(gather_cols_gemm_at_b_into(
            &Matrix::zeros(3, 4),
            &Matrix::zeros(2, 5),
            &[0],
            1.0,
            &mut scratch,
            &mut out
        )
        .is_err());
        assert!(gather_cols_gemm_a_bt_into(
            &Matrix::zeros(3, 5),
            &Matrix::zeros(4, 6),
            &[0],
            1.0,
            &mut scratch,
            &mut out
        )
        .is_err());
        assert!(gather_cols_gemm_a_bt_into(
            &Matrix::zeros(3, 5),
            &Matrix::zeros(4, 5),
            &[5],
            1.0,
            &mut scratch,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn block_compact_matches_column_masked_dense() {
        let mut rng = StdRng::seed_from_u64(61);
        let a = random_matrix(&mut rng, 5, 7);
        let w = random_matrix(&mut rng, 7, 10); // 3 blocks of 4 (last ragged)
        let kept_blocks = vec![0, 2];
        let kept_cols: Vec<usize> = (0..4).chain(8..10).collect();
        let compact = block_compact_gemm(&a, &w, &kept_blocks, 4).unwrap();
        let reference = col_masked_reference(&a, &w, &kept_cols);
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn block_compact_with_all_blocks_equals_dense() {
        let mut rng = StdRng::seed_from_u64(63);
        let a = random_matrix(&mut rng, 6, 8);
        let w = random_matrix(&mut rng, 8, 12);
        let compact = block_compact_gemm(&a, &w, &[0, 1, 2], 4).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn block_compact_rejects_bad_parameters() {
        let a = Matrix::zeros(2, 4);
        let w = Matrix::zeros(4, 8);
        assert!(block_compact_gemm(&a, &w, &[0], 0).is_err());
        assert!(block_compact_gemm(&a, &w, &[2], 4).is_err()); // 2 blocks only
    }

    #[test]
    fn block_backward_forms_match_dense_references() {
        let mut rng = StdRng::seed_from_u64(67);
        let x = random_matrix(&mut rng, 6, 5); // (batch, in)
        let g = random_matrix(&mut rng, 6, 11); // (batch, out): 3 blocks of 4
        let w = random_matrix(&mut rng, 5, 11); // (in, out)
        let kept_blocks = vec![1, 2];
        let kept_cols: Vec<usize> = (4..11).collect();
        let scale = 1.75f32;

        let mut g_masked = Matrix::zeros(6, 11);
        for i in 0..6 {
            for &j in &kept_cols {
                g_masked[(i, j)] = g[(i, j)] * scale;
            }
        }

        let dw_ref = naive_gemm(&x.transpose(), &g_masked).unwrap();
        let mut dw = Matrix::zeros(0, 0);
        block_compact_gemm_at_b_into(&x, &g, &kept_blocks, 4, scale, &mut dw).unwrap();
        assert_eq!(dw.shape(), (5, 11));
        assert!(crate::approx_eq_slice(
            dw.as_slice(),
            dw_ref.as_slice(),
            1e-3
        ));

        let dx_ref = naive_gemm(&g_masked, &w.transpose()).unwrap();
        let mut dx = Matrix::zeros(0, 0);
        block_compact_gemm_a_bt_into(&g, &w, &kept_blocks, 4, scale, &mut dx).unwrap();
        assert_eq!(dx.shape(), (6, 5));
        assert!(crate::approx_eq_slice(
            dx.as_slice(),
            dx_ref.as_slice(),
            1e-3
        ));
    }

    #[test]
    fn block_backward_with_ragged_batch_exercises_scalar_tail() {
        // Batch sizes off the 4-row panel exercise the scalar tail of the
        // unrolled at_b kernel.
        let mut rng = StdRng::seed_from_u64(71);
        for batch in [1usize, 2, 3, 5] {
            let x = random_matrix(&mut rng, batch, 4);
            let g = random_matrix(&mut rng, batch, 8);
            let mut g_masked = Matrix::zeros(batch, 8);
            for i in 0..batch {
                for j in 0..4 {
                    g_masked[(i, j)] = g[(i, j)];
                }
            }
            let dw_ref = naive_gemm(&x.transpose(), &g_masked).unwrap();
            let mut dw = Matrix::zeros(0, 0);
            block_compact_gemm_at_b_into(&x, &g, &[0], 4, 1.0, &mut dw).unwrap();
            assert!(
                crate::approx_eq_slice(dw.as_slice(), dw_ref.as_slice(), 1e-4),
                "batch {batch}"
            );
        }
    }

    /// All four activations, for sweeping the fused-kernel tests.
    const ACTIVATIONS: [Activation; 4] = [
        Activation::Identity,
        Activation::Relu,
        Activation::Sigmoid,
        Activation::Tanh,
    ];

    #[test]
    fn fused_dense_matches_unfused_chain_bitwise() {
        let mut rng = StdRng::seed_from_u64(81);
        let a = random_matrix(&mut rng, 9, 13);
        let w = random_matrix(&mut rng, 13, 11);
        let bias = random_matrix(&mut rng, 1, 11);
        for act in ACTIVATIONS {
            let mut reference = blocked_gemm(&a, &w).unwrap();
            reference.add_row_broadcast_inplace(&bias).unwrap();
            reference.map_inplace(|v| act.apply(v));
            let fused = gemm_bias_act(&a, &w, &bias, act).unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
    }

    #[test]
    fn fused_dense_masked_matches_unfused_chain_bitwise() {
        let mut rng = StdRng::seed_from_u64(83);
        let a = random_matrix(&mut rng, 7, 10);
        let w = random_matrix(&mut rng, 10, 8);
        let bias = random_matrix(&mut rng, 1, 8);
        let mask: Vec<f32> = (0..8).map(|j| if j % 3 == 0 { 0.0 } else { 1.0 }).collect();
        let scale = 1.5f32;
        for act in ACTIVATIONS {
            let mut reference = blocked_gemm(&a, &w).unwrap();
            reference.add_row_broadcast_inplace(&bias).unwrap();
            for i in 0..reference.rows() {
                for (v, &m) in reference.row_mut(i).iter_mut().zip(&mask) {
                    *v *= m * scale;
                }
            }
            reference.map_inplace(|v| act.apply(v));
            let mut fused = Matrix::zeros(0, 0);
            gemm_bias_act_masked_into(&a, &w, &bias, &mask, scale, act, &mut fused).unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
    }

    #[test]
    fn fused_gather_matches_unfused_chain_bitwise() {
        let mut rng = StdRng::seed_from_u64(85);
        let a = random_matrix(&mut rng, 6, 9);
        let w = random_matrix(&mut rng, 9, 12);
        let bias = random_matrix(&mut rng, 1, 12);
        let kept = vec![0usize, 3, 5, 6, 10];
        let scale = 2.0f32;
        for act in ACTIVATIONS {
            // Unfused chain: compacted GEMM, then the gather path's epilogue
            // ((v + bias) * scale on kept columns only), then the activation.
            let mut reference = row_compact_gemm(&a, &w, &kept).unwrap();
            for i in 0..reference.rows() {
                let row = reference.row_mut(i);
                for &j in &kept {
                    row[j] = (row[j] + bias[(0, j)]) * scale;
                }
            }
            reference.map_inplace(|v| act.apply(v));
            let mut scratch = RowCompactScratch::default();
            let mut fused = Matrix::zeros(0, 0);
            gather_cols_gemm_bias_act_into(
                &a,
                &w,
                &kept,
                &bias,
                scale,
                act,
                &mut scratch,
                &mut fused,
            )
            .unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
    }

    #[test]
    fn fused_nm_validates_structure_and_matches_gather() {
        let mut rng = StdRng::seed_from_u64(87);
        let a = random_matrix(&mut rng, 5, 6);
        let w = random_matrix(&mut rng, 6, 8);
        let bias = random_matrix(&mut rng, 1, 8);
        let kept = vec![1usize, 3, 4, 6]; // 2:4 over 8 columns
        let mut scratch = RowCompactScratch::default();
        let mut fused = Matrix::zeros(0, 0);
        nm_compact_gemm_bias_act_into(
            &a,
            &w,
            &kept,
            2,
            4,
            &bias,
            2.0,
            Activation::Relu,
            &mut scratch,
            &mut fused,
        )
        .unwrap();
        let mut reference = Matrix::zeros(0, 0);
        gather_cols_gemm_bias_act_into(
            &a,
            &w,
            &kept,
            &bias,
            2.0,
            Activation::Relu,
            &mut scratch,
            &mut reference,
        )
        .unwrap();
        assert_eq!(fused, reference);
        // Malformed group structure is rejected.
        assert!(nm_compact_gemm_bias_act_into(
            &a,
            &w,
            &[0, 1, 2, 4],
            2,
            4,
            &bias,
            2.0,
            Activation::Relu,
            &mut scratch,
            &mut fused,
        )
        .is_err());
    }

    #[test]
    fn fused_block_matches_unfused_chain_bitwise() {
        let mut rng = StdRng::seed_from_u64(89);
        let a = random_matrix(&mut rng, 6, 7);
        let w = random_matrix(&mut rng, 7, 11); // 3 blocks of 4, last ragged
        let bias = random_matrix(&mut rng, 1, 11);
        let kept_blocks = vec![0usize, 2];
        let scale = 2.0f32;
        for act in ACTIVATIONS {
            let mut reference = block_compact_gemm(&a, &w, &kept_blocks, 4).unwrap();
            for i in 0..reference.rows() {
                let row = reference.row_mut(i);
                for &b in &kept_blocks {
                    for j in (b * 4)..((b + 1) * 4).min(11) {
                        row[j] = (row[j] + bias[(0, j)]) * scale;
                    }
                }
            }
            reference.map_inplace(|v| act.apply(v));
            let mut fused = Matrix::zeros(0, 0);
            block_compact_gemm_bias_act_into(
                &a,
                &w,
                &kept_blocks,
                4,
                &bias,
                scale,
                act,
                &mut fused,
            )
            .unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
        // Unsorted kept lists are rejected (the complement walk needs order).
        let mut out = Matrix::zeros(0, 0);
        assert!(block_compact_gemm_bias_act_into(
            &a,
            &w,
            &[2, 0],
            4,
            &bias,
            scale,
            Activation::Relu,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn fused_tile_matches_unfused_chain_bitwise() {
        let mut rng = StdRng::seed_from_u64(91);
        let a = random_matrix(&mut rng, 5, 8);
        let w = random_matrix(&mut rng, 8, 9); // ragged 2x3 tile grid at tile 4
        let bias = random_matrix(&mut rng, 1, 9);
        let kept = vec![0usize, 2, 5];
        let scale = 2.0f32;
        for act in ACTIVATIONS {
            // Unfused tile chain: compacted GEMM, scale, bias broadcast over
            // every column, then the activation.
            let mut reference = tile_compact_gemm(&a, &w, &kept, 4).unwrap();
            reference.map_inplace(|v| v * scale);
            reference.add_row_broadcast_inplace(&bias).unwrap();
            reference.map_inplace(|v| act.apply(v));
            let mut fused = Matrix::zeros(0, 0);
            tile_compact_gemm_bias_act_into(&a, &w, &kept, 4, &bias, scale, act, &mut fused)
                .unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
    }

    #[test]
    fn fused_kernels_reject_malformed_bias() {
        let a = Matrix::zeros(2, 3);
        let w = Matrix::zeros(3, 4);
        let bad_bias = Matrix::zeros(1, 5);
        let mut out = Matrix::zeros(0, 0);
        assert!(gemm_bias_act_into(&a, &w, &bad_bias, Activation::Relu, &mut out).is_err());
        assert!(gemm_bias_act_masked_into(
            &a,
            &w,
            &Matrix::zeros(1, 4),
            &[1.0; 3],
            1.0,
            Activation::Relu,
            &mut out
        )
        .is_err());
        let mut scratch = RowCompactScratch::default();
        assert!(gather_cols_gemm_bias_act_into(
            &a,
            &w,
            &[0],
            &bad_bias,
            1.0,
            Activation::Relu,
            &mut scratch,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn fused_dropped_columns_carry_the_activation_of_zero() {
        // A dropped neuron's pre-activation is exactly zero; the fused kernel
        // must report act(0) there (0 for ReLU, 0.5 for sigmoid) just like
        // the unfused chain's elementwise activation pass does.
        let a = Matrix::ones(2, 3);
        let w = Matrix::ones(3, 4);
        let bias = Matrix::zeros(1, 4);
        let mut scratch = RowCompactScratch::default();
        let mut out = Matrix::zeros(0, 0);
        gather_cols_gemm_bias_act_into(
            &a,
            &w,
            &[1],
            &bias,
            1.0,
            Activation::Sigmoid,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out[(0, 0)], 0.5);
        assert!((out[(0, 1)] - Activation::Sigmoid.apply(3.0)).abs() < 1e-6);
    }

    #[test]
    fn dense_path_keeps_exact_zeros_in_operands() {
        // The packed kernel has no zero-skip branch; a zero in A must simply
        // contribute nothing (and not disturb vectorised lanes).
        let a = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[10.0, 20.0], &[100.0, 200.0]]);
        let c = blocked_gemm(&a, &b).unwrap();
        let reference = naive_gemm(&a, &b).unwrap();
        assert_eq!(c, reference);
    }

    /// Dense reference of the K-sampled product: zero the dropped columns of
    /// `A` (equivalently the dropped rows of `W`) and multiply densely.
    fn k_masked_reference(a: &Matrix, w: &Matrix, kept_k: &[usize]) -> Matrix {
        let mut masked = a.clone();
        for i in 0..a.rows() {
            for (p, v) in masked.row_mut(i).iter_mut().enumerate() {
                if !kept_k.contains(&p) {
                    *v = 0.0;
                }
            }
        }
        naive_gemm(&masked, w).unwrap()
    }

    #[test]
    fn gather_k_matches_masked_dense_reference() {
        let mut rng = StdRng::seed_from_u64(91);
        let a = random_matrix(&mut rng, 9, 14);
        let w = random_matrix(&mut rng, 14, 11);
        let kept_k = vec![0, 2, 3, 7, 8, 12, 13];
        let sampled = gather_k_gemm(&a, &w, &kept_k).unwrap();
        let reference = k_masked_reference(&a, &w, &kept_k);
        assert_eq!(sampled.shape(), (9, 11));
        assert!(crate::approx_eq_slice(
            sampled.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn gather_k_with_all_indices_is_bitwise_dense() {
        // The k == K degeneracy: packing every inner index in order feeds the
        // blocked core bitwise-identical operands, so the sampled product must
        // equal the dense kernel exactly, not approximately.
        let mut rng = StdRng::seed_from_u64(93);
        let a = random_matrix(&mut rng, 13, 22);
        let w = random_matrix(&mut rng, 22, 17);
        let all: Vec<usize> = (0..22).collect();
        let sampled = gather_k_gemm(&a, &w, &all).unwrap();
        let dense = blocked_gemm(&a, &w).unwrap();
        assert_eq!(sampled, dense);
    }

    #[test]
    fn gather_k_fused_with_all_indices_matches_dense_fused_bitwise() {
        let mut rng = StdRng::seed_from_u64(95);
        let a = random_matrix(&mut rng, 8, 18);
        let w = random_matrix(&mut rng, 18, 12);
        let bias = random_matrix(&mut rng, 1, 12);
        let all: Vec<usize> = (0..18).collect();
        let mut scratch = GatherKScratch::default();
        for act in ACTIVATIONS {
            let mut sampled = Matrix::zeros(0, 0);
            gather_k_gemm_bias_act_into(&a, &w, &all, &bias, 1.0, act, &mut scratch, &mut sampled)
                .unwrap();
            let dense = gemm_bias_act(&a, &w, &bias, act).unwrap();
            assert_eq!(sampled, dense, "{act:?}");
        }
    }

    #[test]
    fn gather_k_fused_matches_unfused_chain_bitwise_for_all_activations() {
        let mut rng = StdRng::seed_from_u64(97);
        let a = random_matrix(&mut rng, 7, 15);
        let w = random_matrix(&mut rng, 15, 10);
        let bias = random_matrix(&mut rng, 1, 10);
        let kept_k = vec![1, 2, 5, 6, 9, 11, 14];
        let crs_scale = 15.0f32 / 7.0;
        let mut scratch = GatherKScratch::default();
        for act in ACTIVATIONS {
            let mut reference = Matrix::zeros(0, 0);
            gather_k_gemm_into(&a, &w, &kept_k, &mut scratch, &mut reference).unwrap();
            for i in 0..reference.rows() {
                let row = reference.row_mut(i);
                crate::simd::scale_add_bias(row, crs_scale, bias.row(0));
                act.apply_slice(row);
            }
            let mut fused = Matrix::zeros(0, 0);
            gather_k_gemm_bias_act_into(
                &a,
                &w,
                &kept_k,
                &bias,
                crs_scale,
                act,
                &mut scratch,
                &mut fused,
            )
            .unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
    }

    #[test]
    fn gather_nk_fused_matches_unfused_chain_bitwise_for_all_activations() {
        let mut rng = StdRng::seed_from_u64(99);
        let a = random_matrix(&mut rng, 6, 12);
        let w = random_matrix(&mut rng, 12, 9);
        let bias = random_matrix(&mut rng, 1, 9);
        let kept_k = vec![0, 3, 4, 7, 10, 11];
        let kept_cols = vec![1, 2, 5, 8];
        let crs_scale = 2.0f32;
        let row_scale = 1.8f32;
        let mut scratch = GatherKScratch::default();
        for act in ACTIVATIONS {
            let mut reference = Matrix::zeros(0, 0);
            gather_nk_gemm_into(&a, &w, &kept_k, &kept_cols, &mut scratch, &mut reference).unwrap();
            let brow = bias.row(0);
            for i in 0..reference.rows() {
                let row = reference.row_mut(i);
                for &j in &kept_cols {
                    row[j] = (row[j] * crs_scale + brow[j]) * row_scale;
                }
                act.apply_slice(row);
            }
            let mut fused = Matrix::zeros(0, 0);
            gather_nk_gemm_bias_act_into(
                &a,
                &w,
                &kept_k,
                &kept_cols,
                &bias,
                crs_scale,
                row_scale,
                act,
                &mut scratch,
                &mut fused,
            )
            .unwrap();
            assert_eq!(fused, reference, "{act:?}");
        }
    }

    #[test]
    fn gather_nk_dropped_columns_carry_the_activation_of_zero() {
        let a = Matrix::ones(2, 4);
        let w = Matrix::ones(4, 3);
        let bias = Matrix::zeros(1, 3);
        let mut scratch = GatherKScratch::default();
        let mut out = Matrix::zeros(0, 0);
        gather_nk_gemm_bias_act_into(
            &a,
            &w,
            &[0, 2],
            &[1],
            &bias,
            2.0,
            1.0,
            Activation::Sigmoid,
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(out[(0, 0)], 0.5);
        assert!((out[(0, 1)] - Activation::Sigmoid.apply(4.0)).abs() < 1e-6);
    }

    #[test]
    fn gather_k_backward_matches_masked_dense_references() {
        let mut rng = StdRng::seed_from_u64(101);
        let x = random_matrix(&mut rng, 8, 13); // (batch, in)
        let g = random_matrix(&mut rng, 8, 10); // (batch, out)
        let w = random_matrix(&mut rng, 13, 10); // (in, out)
        let kept_k = vec![0, 1, 4, 6, 9, 12];
        let scale = 13.0f32 / 6.0;
        let mut x_masked = x.clone();
        for i in 0..x.rows() {
            for (p, v) in x_masked.row_mut(i).iter_mut().enumerate() {
                if !kept_k.contains(&p) {
                    *v = 0.0;
                }
            }
        }
        let mut w_masked = w.clone();
        for p in 0..w.rows() {
            if !kept_k.contains(&p) {
                w_masked.row_mut(p).fill(0.0);
            }
        }
        let mut dw_ref = naive_gemm(&x_masked.transpose(), &g).unwrap();
        dw_ref.map_inplace(|v| v * scale);
        let mut dx_ref = naive_gemm(&g, &w_masked.transpose()).unwrap();
        dx_ref.map_inplace(|v| v * scale);

        let mut scratch = GatherKScratch::default();
        let (mut dw, mut dx) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        gather_k_backward_into(&x, &g, &w, &kept_k, scale, &mut scratch, &mut dw, &mut dx).unwrap();
        assert_eq!(dw.shape(), (13, 10));
        assert_eq!(dx.shape(), (8, 13));
        assert!(crate::approx_eq_slice(
            dw.as_slice(),
            dw_ref.as_slice(),
            1e-3
        ));
        assert!(crate::approx_eq_slice(
            dx.as_slice(),
            dx_ref.as_slice(),
            1e-3
        ));
        // Dropped weight rows and input-gradient columns are exactly zero.
        assert_eq!(dw.row(2).iter().map(|v| v.abs()).sum::<f32>(), 0.0);
        assert_eq!((0..8).map(|i| dx[(i, 2)].abs()).sum::<f32>(), 0.0);
    }

    #[test]
    fn gather_nk_backward_matches_masked_dense_references() {
        let mut rng = StdRng::seed_from_u64(103);
        let x = random_matrix(&mut rng, 7, 12); // (batch, in)
        let g = random_matrix(&mut rng, 7, 9); // (batch, out)
        let w = random_matrix(&mut rng, 12, 9); // (in, out)
        let kept_k = vec![1, 3, 6, 8, 11];
        let kept_cols = vec![0, 2, 5, 7];
        let scale = 2.4f32;
        // Reference: zero dropped inner columns of X, dropped output columns
        // of G and both dropped grids of W, then run the dense backward.
        let mut x_masked = x.clone();
        for i in 0..x.rows() {
            for (p, v) in x_masked.row_mut(i).iter_mut().enumerate() {
                if !kept_k.contains(&p) {
                    *v = 0.0;
                }
            }
        }
        let mut g_masked = g.clone();
        for i in 0..g.rows() {
            for (j, v) in g_masked.row_mut(i).iter_mut().enumerate() {
                if !kept_cols.contains(&j) {
                    *v = 0.0;
                }
            }
        }
        let mut w_masked = w.clone();
        for p in 0..w.rows() {
            for (j, v) in w_masked.row_mut(p).iter_mut().enumerate() {
                if !kept_k.contains(&p) || !kept_cols.contains(&j) {
                    *v = 0.0;
                }
            }
        }
        let mut dw_ref = naive_gemm(&x_masked.transpose(), &g_masked).unwrap();
        dw_ref.map_inplace(|v| v * scale);
        let mut dx_ref = naive_gemm(&g_masked, &w_masked.transpose()).unwrap();
        dx_ref.map_inplace(|v| v * scale);

        let mut scratch = GatherKScratch::default();
        let (mut dw, mut dx) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        gather_nk_backward_into(
            &x,
            &g,
            &w,
            &kept_k,
            &kept_cols,
            scale,
            &mut scratch,
            &mut dw,
            &mut dx,
        )
        .unwrap();
        assert!(crate::approx_eq_slice(
            dw.as_slice(),
            dw_ref.as_slice(),
            1e-3
        ));
        assert!(crate::approx_eq_slice(
            dx.as_slice(),
            dx_ref.as_slice(),
            1e-3
        ));
        // A dropped (row, col) grid entry of dW stays exactly zero.
        assert_eq!(dw[(0, 0)], 0.0); // row 0 not kept
        assert_eq!(dw[(1, 1)], 0.0); // col 1 not kept
    }

    #[test]
    fn gather_k_scratch_is_recycled() {
        let mut rng = StdRng::seed_from_u64(105);
        let a = random_matrix(&mut rng, 6, 16);
        let w = random_matrix(&mut rng, 16, 8);
        let mut scratch = GatherKScratch::default();
        let mut out = Matrix::zeros(0, 0);
        gather_k_gemm_into(&a, &w, &[0, 2, 4, 6, 8, 10], &mut scratch, &mut out).unwrap();
        let a_ptr = scratch.a_kept.as_slice().as_ptr();
        let w_ptr = scratch.w_kept.as_slice().as_ptr();
        let out_ptr = out.as_slice().as_ptr();
        // Second call with the same kept-count: every buffer is reused.
        gather_k_gemm_into(&a, &w, &[1, 3, 5, 7, 9, 11], &mut scratch, &mut out).unwrap();
        assert_eq!(a_ptr, scratch.a_kept.as_slice().as_ptr());
        assert_eq!(w_ptr, scratch.w_kept.as_slice().as_ptr());
        assert_eq!(out_ptr, out.as_slice().as_ptr());
    }

    #[test]
    fn gather_k_with_no_indices_is_zero() {
        let a = Matrix::ones(3, 5);
        let w = Matrix::ones(5, 4);
        let c = gather_k_gemm(&a, &w, &[]).unwrap();
        assert_eq!(c.shape(), (3, 4));
        assert_eq!(c.sum(), 0.0);
    }

    #[test]
    fn gather_k_rejects_out_of_bounds_inner_index() {
        let a = Matrix::zeros(2, 3);
        let w = Matrix::zeros(3, 4);
        let g = Matrix::zeros(2, 4);
        let mut scratch = GatherKScratch::default();
        let mut out = Matrix::zeros(0, 0);
        assert!(gather_k_gemm(&a, &w, &[3]).is_err());
        assert!(gather_k_gemm_at_b_into(&a, &g, &[3], 1.0, &mut scratch, &mut out).is_err());
        assert!(gather_k_gemm_a_bt_into(&g, &w, &[3], 1.0, &mut scratch, &mut out).is_err());
        assert!(gather_nk_gemm_into(&a, &w, &[3], &[0], &mut scratch, &mut out).is_err());
        assert!(gather_nk_gemm_into(&a, &w, &[0], &[4], &mut scratch, &mut out).is_err());
    }
}
