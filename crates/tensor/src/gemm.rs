//! GEMM kernels: dense references and the compacted variants that actually
//! skip dropped rows / tiles.
//!
//! The paper's central observation is that conventional dropout cannot shrink
//! the GEMM because the dropped positions are irregular; the Row-based and
//! Tile-based patterns make the dropped positions *predictable*, so the kernel
//! can build compact operand matrices and multiply those instead. The CPU
//! equivalents here are [`row_compact_gemm`] and [`tile_compact_gemm`]; they
//! are validated against the dense kernels by unit and property tests.
//!
//! # Kernel architecture
//!
//! Every production kernel is built from slice-based packed micro-kernels
//! ([`axpy`], [`axpy4`], [`dot`]) that the compiler auto-vectorises: the
//! inner loops never touch the bounds-checked `(i, j)` `Index` operator and
//! the dense path carries no per-element `aip == 0.0` branch (skipping zeros
//! is the compacted kernels' job — a data-dependent branch in the dense loop
//! defeats SIMD exactly like warp divergence defeats the GPU kernel in the
//! paper's Fig. 1(b)). Each kernel has
//!
//! * an allocating entry point (`blocked_gemm`, `gemm_at_b`, …) and a
//!   `*_into` variant that writes into a caller-owned output buffer so the
//!   training hot path can recycle allocations across iterations,
//! * transposed-operand variants [`gemm_at_b`] (`C = Aᵀ·B`) and
//!   [`gemm_a_bt`] (`C = A·Bᵀ`) so backward passes never materialise a
//!   `transpose()`,
//! * batch-dimension parallelism: output rows are split across the
//!   [`crate::pool`] worker threads. Every output row is produced by exactly
//!   one worker running the same per-row instruction sequence as the serial
//!   kernel, so results are bitwise identical for any thread count.

use crate::matrix::Matrix;
use crate::pool;
use std::fmt;
use std::ops::Range;

/// Error returned when GEMM operands have incompatible shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmError {
    message: String,
}

impl GemmError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gemm error: {}", self.message)
    }
}

impl std::error::Error for GemmError {}

fn check_inner(a: &Matrix, b: &Matrix) -> Result<(), GemmError> {
    if a.cols() != b.rows() {
        return Err(GemmError::new(format!(
            "inner dimensions disagree: {:?} * {:?}",
            a.shape(),
            b.shape()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// `c += alpha * b`, elementwise over equal-length slices.
#[inline]
fn axpy(c: &mut [f32], alpha: f32, b: &[f32]) {
    for (cj, &bj) in c.iter_mut().zip(b) {
        *cj += alpha * bj;
    }
}

/// `c += a0*b0 + a1*b1 + a2*b2 + a3*b3`: a four-row panel update, the unit of
/// work the dense kernels are unrolled around (enough independent FMA chains
/// to keep the SIMD units busy without spilling accumulators).
#[inline]
fn axpy4(c: &mut [f32], alpha: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    for ((((cj, &x0), &x1), &x2), &x3) in c.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
        *cj += alpha[0] * x0 + alpha[1] * x1 + alpha[2] * x2 + alpha[3] * x3;
    }
}

/// Dot product with eight independent accumulator lanes so the reduction
/// vectorises; the building block of [`gemm_a_bt`], public because the
/// tile-compacted backward pass accumulates per-tile slices with it.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let mut xs = x.chunks_exact(LANES);
    let mut ys = y.chunks_exact(LANES);
    for (xc, yc) in (&mut xs).zip(&mut ys) {
        for l in 0..LANES {
            acc[l] += xc[l] * yc[l];
        }
    }
    let mut sum = 0.0;
    for &lane in &acc {
        sum += lane;
    }
    for (a, b) in xs.remainder().iter().zip(ys.remainder()) {
        sum += a * b;
    }
    sum
}

/// Inner-dimension block: a `KC × n` panel of `B` is reused across every row
/// of the chunk before the kernel moves to the next panel, keeping the panel
/// resident in L2 (the CPU analogue of staging a tile in shared memory).
const KC: usize = 128;

// ---------------------------------------------------------------------------
// Dense kernels
// ---------------------------------------------------------------------------

/// Textbook triple-loop GEMM, `C = A * B`.
///
/// Used as the ground-truth reference for the packed and compacted kernels;
/// deliberately kept naive (including the zero-skip branch the paper's
/// Fig. 1(b) motivates against) so the production kernels have an
/// independent implementation to be validated against.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn naive_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    check_inner(a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    Ok(c)
}

/// Per-row-chunk dense kernel: accumulates `chunk += A[rows] * B` with the
/// panel-blocked, 4-way-unrolled micro-kernel. `chunk` must be zeroed by the
/// caller and hold exactly `rows.len() * b.cols()` values.
fn dense_rows_kernel(a: &Matrix, b: &Matrix, rows: Range<usize>, chunk: &mut [f32]) {
    let k = a.cols();
    let n = b.cols();
    for pp in (0..k).step_by(KC) {
        let p_end = (pp + KC).min(k);
        for (local, i) in rows.clone().enumerate() {
            let apanel = &a.row(i)[pp..p_end];
            let crow = &mut chunk[local * n..(local + 1) * n];
            let mut quads = apanel.chunks_exact(4);
            let mut p = pp;
            for quad in &mut quads {
                axpy4(
                    crow,
                    [quad[0], quad[1], quad[2], quad[3]],
                    b.row(p),
                    b.row(p + 1),
                    b.row(p + 2),
                    b.row(p + 3),
                );
                p += 4;
            }
            for &alpha in quads.remainder() {
                axpy(crow, alpha, b.row(p));
                p += 1;
            }
        }
    }
}

/// Packed, batch-parallel GEMM, `C = A * B`, writing into `out`.
///
/// `out` is resized (reusing its buffer when capacity allows) and zeroed.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn blocked_gemm_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), GemmError> {
    check_inner(a, b)?;
    let m = a.rows();
    let n = b.cols();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        dense_rows_kernel(a, b, rows, chunk);
    });
    Ok(())
}

/// Packed, batch-parallel GEMM, `C = A * B`.
///
/// Kept under its historical name (the seed's cache-blocked kernel) because
/// it remains the workspace-wide dense entry point; the implementation is now
/// the packed micro-kernel pipeline described in the module docs.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.rows()`.
pub fn blocked_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    blocked_gemm_into(a, b, &mut out)?;
    Ok(out)
}

/// Per-row-chunk kernel for `C = Aᵀ · B`: the chunk covers rows of `C`
/// (columns `p` of `A`); batch rows `i` are walked in panels of four.
fn at_b_rows_kernel(a: &Matrix, b: &Matrix, prows: Range<usize>, chunk: &mut [f32]) {
    let m = a.rows();
    let n = b.cols();
    let mut i = 0;
    while i + 4 <= m {
        let (a0, a1, a2, a3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        let (b0, b1, b2, b3) = (b.row(i), b.row(i + 1), b.row(i + 2), b.row(i + 3));
        for (local, p) in prows.clone().enumerate() {
            let crow = &mut chunk[local * n..(local + 1) * n];
            axpy4(crow, [a0[p], a1[p], a2[p], a3[p]], b0, b1, b2, b3);
        }
        i += 4;
    }
    while i < m {
        let arow = a.row(i);
        let brow = b.row(i);
        for (local, p) in prows.clone().enumerate() {
            let crow = &mut chunk[local * n..(local + 1) * n];
            axpy(crow, arow[p], brow);
        }
        i += 1;
    }
}

/// Transposed-operand GEMM `C = Aᵀ · B` without materialising `Aᵀ`, writing
/// into `out`.
///
/// With activations `A` of shape `(batch, in)` and output gradients `B` of
/// shape `(batch, out)` this is exactly the weight-gradient product
/// `dW = Xᵀ·G` of the backward pass.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.rows() != b.rows()` (the shared batch
/// dimension).
pub fn gemm_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), GemmError> {
    if a.rows() != b.rows() {
        return Err(GemmError::new(format!(
            "batch dimensions disagree: {:?}ᵀ * {:?}",
            a.shape(),
            b.shape()
        )));
    }
    let k = a.cols();
    let n = b.cols();
    out.resize(k, n);
    pool::run_row_chunks(k, n, out.as_mut_slice(), |prows, chunk| {
        at_b_rows_kernel(a, b, prows, chunk);
    });
    Ok(())
}

/// Transposed-operand GEMM `C = Aᵀ · B` without materialising `Aᵀ`.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.rows() != b.rows()`.
pub fn gemm_at_b(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    gemm_at_b_into(a, b, &mut out)?;
    Ok(out)
}

/// Per-row-chunk kernel for `C = A · Bᵀ`: row `i` of `C` is the vector of
/// dot products of `A.row(i)` with every row of `B`.
fn a_bt_rows_kernel(a: &Matrix, b: &Matrix, rows: Range<usize>, chunk: &mut [f32]) {
    let n = b.rows();
    for (local, i) in rows.enumerate() {
        let arow = a.row(i);
        let crow = &mut chunk[local * n..(local + 1) * n];
        for (j, cj) in crow.iter_mut().enumerate() {
            *cj = dot(arow, b.row(j));
        }
    }
}

/// Transposed-operand GEMM `C = A · Bᵀ` without materialising `Bᵀ`, writing
/// into `out`.
///
/// With output gradients `A` of shape `(batch, out)` and weights `B` of
/// shape `(in, out)` this is exactly the input-gradient product `dX = G·Wᵀ`
/// of the backward pass.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.cols()` (the shared inner
/// dimension).
pub fn gemm_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<(), GemmError> {
    if a.cols() != b.cols() {
        return Err(GemmError::new(format!(
            "inner dimensions disagree: {:?} * {:?}ᵀ",
            a.shape(),
            b.shape()
        )));
    }
    let m = a.rows();
    let n = b.rows();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        a_bt_rows_kernel(a, b, rows, chunk);
    });
    Ok(())
}

/// Transposed-operand GEMM `C = A · Bᵀ` without materialising `Bᵀ`.
///
/// # Errors
///
/// Returns a [`GemmError`] if `a.cols() != b.cols()`.
pub fn gemm_a_bt(a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    gemm_a_bt_into(a, b, &mut out)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Compacted kernels
// ---------------------------------------------------------------------------

/// Reusable packing buffers for [`row_compact_gemm_into`]: the compact
/// weight panel and the compact product, recycled across training iterations
/// so the hot path performs no per-call allocations once warmed up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowCompactScratch {
    pack: Matrix,
    product: Matrix,
}

/// Row-compacted GEMM used by the Row-based Dropout Pattern, writing into
/// `out` and packing through caller-owned `scratch`.
///
/// See [`row_compact_gemm`] for the semantics.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept index
/// is out of bounds.
pub fn row_compact_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_output_rows: &[usize],
    scratch: &mut RowCompactScratch,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let n = w.cols();
    if let Some(&bad) = kept_output_rows.iter().find(|&&j| j >= n) {
        return Err(GemmError::new(format!(
            "kept output index {bad} out of bounds for {n} output features"
        )));
    }
    // Pack only the kept columns of W into a dense panel (step 1 of the
    // paper's Fig. 3(a): fetch only surviving synapses), …
    let k = w.rows();
    let nk = kept_output_rows.len();
    scratch.pack.resize_for_overwrite(k, nk);
    for p in 0..k {
        let wrow = w.row(p);
        let dst = scratch.pack.row_mut(p);
        for (c, &j) in kept_output_rows.iter().enumerate() {
            dst[c] = wrow[j];
        }
    }
    // … run the small GEMM (step 2), …
    blocked_gemm_into(a, &scratch.pack, &mut scratch.product)?;
    // … and scatter back into the full-size zero output (step 3).
    let m = a.rows();
    out.resize(m, n);
    for i in 0..m {
        let src = scratch.product.row(i);
        let dst = out.row_mut(i);
        for (c, &j) in kept_output_rows.iter().enumerate() {
            dst[j] = src[c];
        }
    }
    Ok(())
}

/// Row-compacted GEMM used by the Row-based Dropout Pattern.
///
/// Computes `C = A * W` where only the rows of the *output* listed in
/// `kept_output_rows` are needed — equivalently only the corresponding
/// columns of `W` (the synapses feeding the kept neurons) participate.
///
/// Layout convention used across the workspace: activations are
/// `(batch, in_features)` and weights are `(in_features, out_features)`, so
/// dropping output *neurons* means dropping *columns* of `W` and columns of
/// the output. The paper describes the transposed layout (dropping rows of
/// `Wᵀ`); both are the same compaction. The returned matrix has the full
/// `(batch, out_features)` shape with dropped columns left at zero, exactly
/// like step 3 of the paper's Fig. 3(a).
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or any kept index
/// is out of bounds.
pub fn row_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_output_rows: &[usize],
) -> Result<Matrix, GemmError> {
    let mut scratch = RowCompactScratch::default();
    let mut out = Matrix::zeros(0, 0);
    row_compact_gemm_into(a, w, kept_output_rows, &mut scratch, &mut out)?;
    Ok(out)
}

/// Half-open `(weight_rows, weight_cols)` region covered by one kept tile.
type TileBounds = (Range<usize>, Range<usize>);

/// Resolves the kept tiles of a grid into `(row_range, col_range)` bounds.
fn tile_bounds_list(
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Vec<TileBounds>, GemmError> {
    if tile == 0 {
        return Err(GemmError::new("tile size must be positive"));
    }
    let tiles_per_row = w.cols().div_ceil(tile);
    let tiles_per_col = w.rows().div_ceil(tile);
    let total_tiles = tiles_per_row * tiles_per_col;
    if let Some(&bad) = kept_tiles.iter().find(|&&t| t >= total_tiles) {
        return Err(GemmError::new(format!(
            "tile index {bad} out of bounds for a {tiles_per_col}x{tiles_per_row} tile grid"
        )));
    }
    Ok(kept_tiles
        .iter()
        .map(|&t| {
            let tile_row = t / tiles_per_row; // which block of W rows (input features)
            let tile_col = t % tiles_per_row; // which block of W cols (output features)
            let k_start = tile_row * tile;
            let k_end = (k_start + tile).min(w.rows());
            let j_start = tile_col * tile;
            let j_end = (j_start + tile).min(w.cols());
            (k_start..k_end, j_start..j_end)
        })
        .collect())
}

/// Per-row-chunk kernel for the tile-compacted GEMM: each output row visits
/// only the kept tiles, accumulating `tile`-wide slice panels.
fn tile_rows_kernel(
    a: &Matrix,
    w: &Matrix,
    bounds: &[(Range<usize>, Range<usize>)],
    rows: Range<usize>,
    chunk: &mut [f32],
) {
    let n = w.cols();
    for (local, i) in rows.enumerate() {
        let arow = a.row(i);
        let crow = &mut chunk[local * n..(local + 1) * n];
        for (kr, jr) in bounds {
            let cslice = &mut crow[jr.clone()];
            let apanel = &arow[kr.clone()];
            let mut quads = apanel.chunks_exact(4);
            let mut p = kr.start;
            for quad in &mut quads {
                axpy4(
                    cslice,
                    [quad[0], quad[1], quad[2], quad[3]],
                    &w.row(p)[jr.clone()],
                    &w.row(p + 1)[jr.clone()],
                    &w.row(p + 2)[jr.clone()],
                    &w.row(p + 3)[jr.clone()],
                );
                p += 4;
            }
            for &alpha in quads.remainder() {
                axpy(cslice, alpha, &w.row(p)[jr.clone()]);
                p += 1;
            }
        }
    }
}

/// Tile-compacted GEMM used by the Tile-based Dropout Pattern, writing into
/// `out`.
///
/// See [`tile_compact_gemm`] for the semantics.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `tile == 0`, or
/// a tile index is outside the tile grid.
pub fn tile_compact_gemm_into(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
    out: &mut Matrix,
) -> Result<(), GemmError> {
    check_inner(a, w)?;
    let bounds = tile_bounds_list(w, kept_tiles, tile)?;
    let m = a.rows();
    let n = w.cols();
    out.resize(m, n);
    pool::run_row_chunks(m, n, out.as_mut_slice(), |rows, chunk| {
        tile_rows_kernel(a, w, &bounds, rows, chunk);
    });
    Ok(())
}

/// Tile-compacted GEMM used by the Tile-based Dropout Pattern.
///
/// `kept_tiles` lists the linear indices (row-major over the tile grid of the
/// weight matrix `W`, tile size `tile × tile`) that are *kept*; every other
/// tile of `W` is treated as zero. Only the kept tiles contribute to the
/// product, which is what the GPU kernel achieves by fetching only those
/// tiles into shared memory.
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree, `tile == 0`, or a
/// tile index is outside the tile grid.
pub fn tile_compact_gemm(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Matrix, GemmError> {
    let mut out = Matrix::zeros(0, 0);
    tile_compact_gemm_into(a, w, kept_tiles, tile, &mut out)?;
    Ok(out)
}

/// Reference implementation of tile dropout through explicit masking.
///
/// Builds the full masked weight matrix (kept tiles preserved, dropped tiles
/// zeroed) and multiplies densely — the slow path that conventional dropout
/// is stuck with. Used to validate [`tile_compact_gemm`].
///
/// # Errors
///
/// Returns a [`GemmError`] if the inner dimensions disagree or `tile == 0`.
pub fn tile_masked_gemm_reference(
    a: &Matrix,
    w: &Matrix,
    kept_tiles: &[usize],
    tile: usize,
) -> Result<Matrix, GemmError> {
    if tile == 0 {
        return Err(GemmError::new("tile size must be positive"));
    }
    let tiles_per_row = w.cols().div_ceil(tile);
    let mut masked = Matrix::zeros(w.rows(), w.cols());
    for &t in kept_tiles {
        let tile_row = t / tiles_per_row;
        let tile_col = t % tiles_per_row;
        for p in (tile_row * tile)..((tile_row + 1) * tile).min(w.rows()) {
            for j in (tile_col * tile)..((tile_col + 1) * tile).min(w.cols()) {
                masked[(p, j)] = w[(p, j)];
            }
        }
    }
    naive_gemm(a, &masked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        init::uniform(rng, r, c, -1.0, 1.0)
    }

    #[test]
    fn naive_gemm_small_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = naive_gemm(&a, &b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(naive_gemm(&a, &b).is_err());
        assert!(blocked_gemm(&a, &b).is_err());
        assert!(gemm_at_b(&a, &b).is_err());
        assert!(gemm_a_bt(&a, &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 37, 53);
        let b = random_matrix(&mut rng, 53, 41);
        let c1 = naive_gemm(&a, &b).unwrap();
        let c2 = blocked_gemm(&a, &b).unwrap();
        assert!(crate::approx_eq_slice(c1.as_slice(), c2.as_slice(), 1e-3));
    }

    #[test]
    fn identity_is_neutral_for_all_kernels() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 16, 16);
        let i = Matrix::identity(16);
        assert!(crate::approx_eq_slice(
            naive_gemm(&a, &i).unwrap().as_slice(),
            a.as_slice(),
            1e-5
        ));
        assert!(crate::approx_eq_slice(
            blocked_gemm(&a, &i).unwrap().as_slice(),
            a.as_slice(),
            1e-5
        ));
    }

    #[test]
    fn blocked_into_reuses_the_output_buffer() {
        let mut rng = StdRng::seed_from_u64(29);
        let a = random_matrix(&mut rng, 12, 20);
        let b = random_matrix(&mut rng, 20, 16);
        let mut out = Matrix::zeros(12, 16);
        blocked_gemm_into(&a, &b, &mut out).unwrap();
        let ptr_before = out.as_slice().as_ptr();
        blocked_gemm_into(&a, &b, &mut out).unwrap();
        assert_eq!(
            ptr_before,
            out.as_slice().as_ptr(),
            "same-shape recomputation must not reallocate"
        );
        let reference = naive_gemm(&a, &b).unwrap();
        assert!(crate::approx_eq_slice(
            out.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_matrix(&mut rng, 33, 21); // (batch, in)
        let b = random_matrix(&mut rng, 33, 17); // (batch, out)
        let fused = gemm_at_b(&a, &b).unwrap();
        let reference = naive_gemm(&a.transpose(), &b).unwrap();
        assert_eq!(fused.shape(), (21, 17));
        assert!(crate::approx_eq_slice(
            fused.as_slice(),
            reference.as_slice(),
            1e-3
        ));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(37);
        let a = random_matrix(&mut rng, 19, 27); // (batch, out)
        let b = random_matrix(&mut rng, 23, 27); // (in, out)
        let fused = gemm_a_bt(&a, &b).unwrap();
        let reference = naive_gemm(&a, &b.transpose()).unwrap();
        assert_eq!(fused.shape(), (19, 23));
        assert!(crate::approx_eq_slice(
            fused.as_slice(),
            reference.as_slice(),
            1e-3
        ));
    }

    #[test]
    fn transposed_variants_handle_ragged_batch_remainders() {
        // Batch sizes that are not multiples of the 4-row panel exercise the
        // scalar tail of the unrolled loops.
        let mut rng = StdRng::seed_from_u64(41);
        for batch in [1, 2, 3, 5, 6, 7] {
            let a = random_matrix(&mut rng, batch, 9);
            let b = random_matrix(&mut rng, batch, 11);
            let fused = gemm_at_b(&a, &b).unwrap();
            let reference = naive_gemm(&a.transpose(), &b).unwrap();
            assert!(
                crate::approx_eq_slice(fused.as_slice(), reference.as_slice(), 1e-4),
                "batch {batch}"
            );
        }
    }

    #[test]
    fn row_compact_matches_column_masked_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 8, 12);
        let w = random_matrix(&mut rng, 12, 10);
        let kept = vec![0, 3, 6, 9];
        let compact = row_compact_gemm(&a, &w, &kept).unwrap();

        // Dense reference: zero the dropped columns of W, then multiply.
        let mut masked = w.clone();
        for j in 0..w.cols() {
            if !kept.contains(&j) {
                for p in 0..w.rows() {
                    masked[(p, j)] = 0.0;
                }
            }
        }
        let reference = naive_gemm(&a, &masked).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn row_compact_rejects_out_of_bounds_index() {
        let a = Matrix::zeros(2, 3);
        let w = Matrix::zeros(3, 4);
        assert!(row_compact_gemm(&a, &w, &[4]).is_err());
    }

    #[test]
    fn row_compact_with_all_rows_equals_dense() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 6, 7);
        let w = random_matrix(&mut rng, 7, 5);
        let all: Vec<usize> = (0..5).collect();
        let compact = row_compact_gemm(&a, &w, &all).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn row_compact_with_no_rows_is_zero() {
        let a = Matrix::ones(3, 4);
        let w = Matrix::ones(4, 5);
        let c = row_compact_gemm(&a, &w, &[]).unwrap();
        assert_eq!(c.sum(), 0.0);
        assert_eq!(c.shape(), (3, 5));
    }

    #[test]
    fn row_compact_scratch_is_recycled() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = random_matrix(&mut rng, 6, 10);
        let w = random_matrix(&mut rng, 10, 8);
        let mut scratch = RowCompactScratch::default();
        let mut out = Matrix::zeros(0, 0);
        row_compact_gemm_into(&a, &w, &[0, 2, 4, 6], &mut scratch, &mut out).unwrap();
        let pack_ptr = scratch.pack.as_slice().as_ptr();
        let out_ptr = out.as_slice().as_ptr();
        // Second call with the same kept-count: every buffer is reused.
        row_compact_gemm_into(&a, &w, &[1, 3, 5, 7], &mut scratch, &mut out).unwrap();
        assert_eq!(pack_ptr, scratch.pack.as_slice().as_ptr());
        assert_eq!(out_ptr, out.as_slice().as_ptr());
    }

    #[test]
    fn tile_compact_matches_masked_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_matrix(&mut rng, 9, 12);
        let w = random_matrix(&mut rng, 12, 10);
        let tile = 4;
        let kept = vec![0, 2, 5, 7];
        let compact = tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn tile_compact_with_all_tiles_equals_dense() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = random_matrix(&mut rng, 8, 8);
        let w = random_matrix(&mut rng, 8, 8);
        let tile = 4;
        let all: Vec<usize> = (0..4).collect();
        let compact = tile_compact_gemm(&a, &w, &all, tile).unwrap();
        let dense = naive_gemm(&a, &w).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            dense.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn tile_compact_rejects_zero_tile_size() {
        let a = Matrix::zeros(4, 4);
        let w = Matrix::zeros(4, 4);
        assert!(tile_compact_gemm(&a, &w, &[0], 0).is_err());
    }

    #[test]
    fn tile_compact_rejects_out_of_range_tile() {
        let a = Matrix::zeros(4, 4);
        let w = Matrix::zeros(4, 4);
        // 4x4 weight with tile 4 has exactly one tile (index 0).
        assert!(tile_compact_gemm(&a, &w, &[1], 4).is_err());
    }

    #[test]
    fn tile_compact_handles_non_divisible_edges() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 5, 7);
        let w = random_matrix(&mut rng, 7, 9);
        let tile = 4; // 2x3 tile grid with ragged edges
        let kept = vec![0, 3, 5];
        let compact = tile_compact_gemm(&a, &w, &kept, tile).unwrap();
        let reference = tile_masked_gemm_reference(&a, &w, &kept, tile).unwrap();
        assert!(crate::approx_eq_slice(
            compact.as_slice(),
            reference.as_slice(),
            1e-4
        ));
    }

    #[test]
    fn dense_path_keeps_exact_zeros_in_operands() {
        // The packed kernel has no zero-skip branch; a zero in A must simply
        // contribute nothing (and not disturb vectorised lanes).
        let a = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[10.0, 20.0], &[100.0, 200.0]]);
        let c = blocked_gemm(&a, &b).unwrap();
        let reference = naive_gemm(&a, &b).unwrap();
        assert_eq!(c, reference);
    }
}
