//! Hand-rolled thread pool that splits the batch (row) dimension of the
//! GEMM entry points across worker threads.
//!
//! The build environment has no crates.io access, so this is a minimal
//! `std::thread` + `std::sync::mpsc` pool rather than rayon: a fixed set of
//! detached workers pulls boxed jobs off one shared channel, and
//! [`ThreadPool::run`] blocks the submitting thread until every job of the
//! batch has finished (a latch), which is what makes lending stack-borrowing
//! closures to the workers sound.
//!
//! Row-partitioned GEMM is deterministic by construction: every output row is
//! computed by exactly one worker with the same per-row instruction sequence
//! the serial kernel uses, so results are bitwise identical for any thread
//! count. The `TENSOR_THREADS` environment variable pins the pool size (set
//! `TENSOR_THREADS=1` for fully serial execution in tests); it is read once
//! when the global pool is first used, after which [`set_threads`] can resize
//! it programmatically (used by the hot-path bench to sweep thread counts).

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread;

/// Upper bound on the pool size; protects against absurd `TENSOR_THREADS`
/// values and machines reporting very wide parallelism.
pub const MAX_THREADS: usize = 64;

/// Default row count below which the GEMM entry points stay serial:
/// splitting a tiny batch across threads costs more in latch traffic than
/// the kernel saves. The *active* threshold is [`par_min_rows`], which the
/// [`crate::tune`] autotuner can replace.
pub const PAR_MIN_ROWS: usize = 32;

/// Active serial-fallback threshold (see [`PAR_MIN_ROWS`] for the default).
static PAR_MIN_ROWS_ACTIVE: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(PAR_MIN_ROWS);

/// The row count below which [`run_row_chunks`] stays serial.
#[inline]
pub fn par_min_rows() -> usize {
    PAR_MIN_ROWS_ACTIVE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Overrides the serial-fallback threshold (clamped to at least 1; the
/// threshold only affects scheduling, never results — row chunking is
/// bitwise thread-invariant). Used by [`crate::tune`] when applying a
/// persisted config.
pub fn set_par_min_rows(threshold: usize) {
    PAR_MIN_ROWS_ACTIVE.store(threshold.max(1), std::sync::atomic::Ordering::Relaxed);
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch shared by one [`ThreadPool::run`] batch.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    /// First panic payload observed among the batch's jobs, if any.
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn job_finished(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().expect("latch mutex poisoned");
        if state.panic.is_none() {
            state.panic = panic;
        } else {
            drop(panic);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job has finished, then re-raises the first panic.
    fn wait(&self) {
        let mut state = self.state.lock().expect("latch mutex poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch mutex poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

thread_local! {
    /// `true` on pool worker threads; [`ThreadPool::run`] from inside a job
    /// executes inline instead of re-queueing (which could deadlock a fully
    /// busy pool).
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-size pool of detached worker threads fed from one shared channel.
///
/// A pool of size 1 spawns no threads at all: [`ThreadPool::run`] executes
/// jobs inline, which is the deterministic serial fallback selected by
/// `TENSOR_THREADS=1`.
#[derive(Debug)]
pub struct ThreadPool {
    /// `None` for the serial (single-thread) pool.
    sender: Option<Sender<Job>>,
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool with `workers` threads (clamped to `1..=MAX_THREADS`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, MAX_THREADS);
        if workers == 1 {
            return Self {
                sender: None,
                workers,
            };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for idx in 0..workers {
            let receiver = Arc::clone(&receiver);
            thread::Builder::new()
                .name(format!("tensor-pool-{idx}"))
                .spawn(move || worker_loop(&receiver))
                .expect("spawning a pool worker thread failed");
        }
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads (1 means fully serial execution).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of jobs and blocks until all of them have completed.
    ///
    /// Jobs may borrow from the caller's stack (`'env`): the latch guarantees
    /// no job outlives this call, even when a job panics — every remaining
    /// job still runs to completion before the panic is re-raised here.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any job of the batch, and panics
    /// if the worker threads have exited (after draining the batch safely).
    pub fn run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let Some(sender) = &self.sender else {
            for job in jobs {
                job();
            }
            return;
        };
        if IS_POOL_WORKER.with(std::cell::Cell::get) {
            // Nested parallelism: the caller *is* a pool worker, so queueing
            // and blocking could starve the pool. Degrade to inline.
            for job in jobs {
                job();
            }
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        // Wrap every job *before* sending anything. Each wrapper owns a
        // [`JobGuard`] that decrements the latch when the wrapper is dropped
        // — whether it ran to completion, panicked, or was dropped
        // unexecuted by a dying channel — so `latch.wait()` below can never
        // miss a slot and the `'env` transmute stays sound on every path.
        let wrapped: Vec<Job> = jobs
            .into_iter()
            .map(|job| {
                // SAFETY: `run` does not return until the latch has counted
                // every wrapper as finished (executed or dropped), so the
                // `'env` borrows captured by the job are live for as long as
                // any worker can touch it. The lifetime is only widened for
                // transport through the channel.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                let mut guard = JobGuard {
                    latch: Arc::clone(&latch),
                    panic: None,
                };
                Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                        guard.panic = Some(payload);
                    }
                    drop(guard);
                }) as Job
            })
            .collect();
        // Dispatch. A send failure means the workers are gone (unreachable
        // while the pool holds its sender, but guarded against regardless):
        // run the failed and remaining wrappers inline, let the guards of
        // any already-queued-but-dropped wrappers drain the latch, then
        // report the broken pool.
        let mut send_failed = false;
        let mut queue = wrapped.into_iter();
        for wrapper in &mut queue {
            if let Err(std::sync::mpsc::SendError(returned)) = sender.send(wrapper) {
                returned();
                send_failed = true;
                break;
            }
        }
        if send_failed {
            for wrapper in queue {
                wrapper();
            }
        }
        latch.wait();
        assert!(!send_failed, "pool workers exited while the pool was alive");
    }
}

/// Accounts one job slot to the latch on drop, so a wrapper that is dropped
/// without ever executing (e.g. by a torn-down channel) still releases its
/// slot instead of deadlocking [`ThreadPool::run`].
struct JobGuard {
    latch: Arc<Latch>,
    panic: Option<Box<dyn Any + Send>>,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        self.latch.job_finished(self.panic.take());
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let guard = receiver.lock().expect("pool receiver mutex poisoned");
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            // All senders dropped: the pool was replaced or torn down.
            Err(_) => return,
        }
    }
}

/// The process-wide pool used by the GEMM entry points.
///
/// Initialised lazily from `TENSOR_THREADS` (or the machine's available
/// parallelism) and replaceable at runtime with [`set_threads`].
static GLOBAL: RwLock<Option<Arc<ThreadPool>>> = RwLock::new(None);

/// Cache of the initial environment-derived size so repeated pool lookups do
/// not re-read the environment.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        if let Ok(value) = std::env::var("TENSOR_THREADS") {
            if let Ok(parsed) = value.trim().parse::<usize>() {
                if parsed >= 1 {
                    return parsed.min(MAX_THREADS);
                }
            }
            // An unparsable override falls back to serial: a misconfigured
            // run should be slow and correct, not silently wide.
            return 1;
        }
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

/// The pool size the environment implies — `TENSOR_THREADS` when set
/// (unparsable values fall back to 1, the documented slow-and-correct
/// misconfiguration behaviour), else the machine's available parallelism,
/// clamped to [`MAX_THREADS`]. This is what the global pool starts at
/// before any [`set_threads`] override; benches use it to restore the
/// default width after sweeping explicit thread counts.
pub fn env_default_threads() -> usize {
    env_threads()
}

/// Handle to the global pool, creating it from the environment on first use.
pub fn global() -> Arc<ThreadPool> {
    if let Some(pool) = GLOBAL
        .read()
        .expect("pool registry poisoned")
        .as_ref()
        .map(Arc::clone)
    {
        return pool;
    }
    let mut slot = GLOBAL.write().expect("pool registry poisoned");
    if let Some(pool) = slot.as_ref() {
        return Arc::clone(pool);
    }
    let pool = Arc::new(ThreadPool::new(env_threads()));
    *slot = Some(Arc::clone(&pool));
    pool
}

/// Replaces the global pool with one of `threads` workers.
///
/// Existing in-flight batches keep their handle on the old pool and finish
/// normally; the old workers exit once the last handle is dropped. Used by
/// the hot-path bench to sweep 1/2/4 threads inside one process and by tests
/// that need a specific pool size.
pub fn set_threads(threads: usize) {
    let pool = Arc::new(ThreadPool::new(threads));
    *GLOBAL.write().expect("pool registry poisoned") = Some(pool);
}

/// Current size of the global pool.
pub fn threads() -> usize {
    global().workers()
}

/// Splits the `rows`-row output (row-major, `cols` columns) into one
/// contiguous row chunk per worker and runs `kernel` on each chunk in
/// parallel; falls back to a single serial call when the batch is shorter
/// than the active [`par_min_rows`] threshold or the pool is serial.
///
/// The kernel receives the global row range and the mutable slice holding
/// exactly those rows, so writes are disjoint by construction and the result
/// is bitwise identical for every thread count.
///
/// # Panics
///
/// Propagates panics from `kernel` and panics if `data` is not
/// `rows * cols` long.
pub fn run_row_chunks(
    rows: usize,
    cols: usize,
    data: &mut [f32],
    kernel: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    assert_eq!(data.len(), rows * cols, "row-chunk buffer length mismatch");
    let pool = global();
    let workers = pool.workers();
    if workers <= 1 || rows < par_min_rows() {
        kernel(0..rows, data);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    let kernel = &kernel;
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
    let mut rest = data;
    let mut start = 0;
    while start < rows {
        let end = (start + chunk_rows).min(rows);
        let (chunk, tail) = rest.split_at_mut((end - start) * cols);
        rest = tail;
        jobs.push(Box::new(move || kernel(start..end, chunk)));
        start = end;
    }
    pool.run(jobs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline_without_threads() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 1);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn pool_size_is_clamped() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
        assert_eq!(ThreadPool::new(MAX_THREADS + 7).workers(), MAX_THREADS);
    }

    #[test]
    fn env_default_is_a_valid_pool_size() {
        let threads = env_default_threads();
        assert!((1..=MAX_THREADS).contains(&threads));
        // Stable across calls (cached once).
        assert_eq!(threads, env_default_threads());
    }

    #[test]
    fn parallel_pool_runs_every_job_exactly_once() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), (0..64).sum());
    }

    #[test]
    fn jobs_may_borrow_and_mutate_stack_data() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 300];
        {
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (idx, chunk) in data.chunks_mut(100).enumerate() {
                jobs.push(Box::new(move || {
                    for v in chunk.iter_mut() {
                        *v = idx as u64 + 1;
                    }
                }));
            }
            pool.run(jobs);
        }
        assert!(data[..100].iter().all(|&v| v == 1));
        assert!(data[100..200].iter().all(|&v| v == 2));
        assert!(data[200..].iter().all(|&v| v == 3));
    }

    #[test]
    fn panic_in_a_job_propagates_after_the_batch_drains() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            jobs.push(Box::new(|| panic!("boom in worker")));
            for _ in 0..7 {
                jobs.push(Box::new(|| {
                    finished.fetch_add(1, Ordering::SeqCst);
                }));
            }
            pool.run(jobs);
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-string payload");
        assert!(message.contains("boom"), "unexpected payload {message}");
        // Every non-panicking job still ran: the latch drains the batch.
        assert_eq!(finished.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn run_row_chunks_covers_all_rows_without_overlap() {
        // Local pools cannot drive run_row_chunks (it uses the global pool),
        // so check the splitting arithmetic through the serial path and the
        // global path in one process-safe test: every row is written once.
        let rows = 97; // odd on purpose
        let cols = 5;
        let mut data = vec![0.0f32; rows * cols];
        run_row_chunks(rows, cols, &mut data, |range, chunk| {
            assert_eq!(chunk.len(), range.len() * cols);
            for (local, row) in range.enumerate() {
                for c in 0..cols {
                    chunk[local * cols + c] += (row * cols + c) as f32 + 1.0;
                }
            }
        });
        for (idx, &v) in data.iter().enumerate() {
            assert_eq!(v, idx as f32 + 1.0, "row element {idx} written once");
        }
    }

    #[test]
    fn nested_run_degrades_to_inline_instead_of_deadlocking() {
        let pool = Arc::new(ThreadPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let inner_pool = Arc::clone(&pool);
        let inner_counter = Arc::clone(&counter);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(move || {
            // A job submitting to its own (possibly saturated) pool must not
            // block on the queue.
            let c = Arc::clone(&inner_counter);
            let nested: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            inner_pool.run(nested);
        })];
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
