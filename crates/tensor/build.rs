//! Probes the active `rustc` version so the AVX-512 kernels can be gated at
//! compile time: the `std::arch` AVX-512 intrinsics stabilised in Rust 1.89,
//! while this workspace's MSRV is 1.74. On toolchains older than 1.89 the
//! `tensor_avx512` cfg is simply absent and runtime dispatch tops out at
//! AVX2 (the scalar fallback is always compiled).

use std::process::Command;

fn rustc_minor_version() -> Option<u32> {
    let rustc = std::env::var_os("RUSTC")?;
    let output = Command::new(rustc).arg("--version").output().ok()?;
    let version = String::from_utf8(output.stdout).ok()?;
    // "rustc 1.95.0 (hash date)" or "rustc 1.97.0-nightly (...)".
    let semver = version.split_whitespace().nth(1)?;
    semver.split(['.', '-']).nth(1)?.parse().ok()
}

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    let minor = rustc_minor_version().unwrap_or(0);
    // `--check-cfg` metadata only exists from 1.80 (as does the
    // `unexpected_cfgs` lint it silences); older cargos would warn on the
    // unknown directive.
    if minor >= 80 {
        println!("cargo:rustc-check-cfg=cfg(tensor_avx512)");
    }
    if minor >= 89 {
        println!("cargo:rustc-cfg=tensor_avx512");
    }
}
