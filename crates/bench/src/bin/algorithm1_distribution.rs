//! Algorithm 1 in isolation — the SGD-based Search Algorithm.
//!
//! For each target dropout rate this binary prints the searched pattern
//! distribution, its expected global dropout rate (Eq. 3), the empirical
//! per-neuron drop rate measured over thousands of sampled iterations
//! (Eq. 2), and the number of distinct sub-models observed — the
//! statistical-equivalence and diversity claims of §III-C/D. It also sweeps
//! the entropy weight λ₂ to show the rate/diversity trade-off (the design
//! choice DESIGN.md flags for ablation).

use approx_dropout::equivalence::{distinct_sub_models, measure_equivalence};
use approx_dropout::{search, DropoutRate, PatternKind, PatternSampler, SearchConfig};
use bench::Report;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let max_dp = 16;
    let mut report = Report::new(
        "Algorithm 1 — statistical equivalence of the searched distribution",
        &[
            "target p",
            "E[global rate]",
            "empirical p_n",
            "max unit dev",
            "entropy",
            "distinct sub-models",
        ],
    );
    for &p in &[0.3, 0.5, 0.7] {
        let dist = search::sgd_search(
            DropoutRate::new(p).expect("static rates are valid"),
            max_dp,
            &SearchConfig::default(),
        )
        .expect("default search succeeds");
        let sampler = PatternSampler::new(dist.clone(), PatternKind::Row);
        let mut rng = StdRng::seed_from_u64(1234);
        let equivalence = measure_equivalence(&sampler, &mut rng, 256, 5_000);
        let sub_models = distinct_sub_models(&sampler, &mut rng, 256, 5_000);
        report.add_row(&[
            format!("{p:.1}"),
            format!("{:.4}", dist.expected_global_rate()),
            format!("{:.4}", equivalence.empirical_mean),
            format!("{:.4}", equivalence.max_unit_deviation),
            format!("{:.3}", dist.entropy()),
            format!("{sub_models}"),
        ]);
    }
    report.print();

    let mut ablation = Report::new(
        "Ablation — entropy weight λ2 (target p = 0.5)",
        &["lambda2", "E[global rate]", "entropy", "effective support"],
    );
    for &lambda2 in &[0.0, 0.01, 0.05, 0.1, 0.3] {
        let config = SearchConfig {
            lambda1: 1.0 - lambda2,
            lambda2,
            ..SearchConfig::default()
        };
        let dist = search::sgd_search(DropoutRate::new(0.5).expect("valid"), max_dp, &config)
            .expect("search succeeds");
        ablation.add_row(&[
            format!("{lambda2:.2}"),
            format!("{:.4}", dist.expected_global_rate()),
            format!("{:.3}", dist.entropy()),
            format!("{:.2}", dist.effective_support()),
        ]);
    }
    ablation.print();
}
