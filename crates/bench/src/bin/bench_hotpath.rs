//! Hot-path benchmark: packed GEMM kernels and batch-dimension threading.
//!
//! Times four things and writes `BENCH_HOTPATH.json` at the repository root,
//! seeding the perf trajectory the ROADMAP calls for:
//!
//! 1. the *seed* cache-blocked GEMM (per-element `Index` ops + zero-skip
//!    branch, reproduced verbatim below) versus the packed micro-kernel
//!    pipeline, single-threaded — the kernel-rewrite speedup;
//! 2. the packed dense GEMM at 1/2/4 threads — batch-dimension scaling;
//! 3. the row- and tile-compacted kernels at a dp=2 pattern versus the dense
//!    kernel — the speedup the paper's compaction is supposed to buy once
//!    constant overhead stops drowning it;
//! 4. one MLP training epoch (row-pattern dropout) at 1/2/4 threads;
//! 5. the fused whole-layer forward (one GEMM+bias+ReLU kernel per layer)
//!    versus the separate GEMM → bias → ReLU chain, on the CPU *and* in the
//!    GPU timing model on both device presets.
//!
//! plus the `simd` section: the packed dense / `A·Bᵀ` / fused-ReLU kernels
//! with the runtime dispatch forced to the scalar fallback versus the active
//! vector level (AVX2 / AVX-512 / NEON), single-threaded.
//!
//! Run `cargo run --release -p bench --bin bench_hotpath` for the full
//! shapes, or pass `--smoke` (CI) for tiny shapes that finish in seconds.
//! `--threads N` sets the pool width (`TENSOR_THREADS` is the fallback; a
//! conflicting flag + env pair is a hard error), `--no-simd` forces the
//! scalar kernel path, and `--tune` reruns the blocking autotuner and
//! persists the winners to `TUNE_GEMM.json` (`TENSOR_TUNE_FILE` overrides
//! the path), which is otherwise loaded at startup when it matches this
//! machine. Pass `--check-baseline` to additionally compare every
//! speedup/scaling ratio of this run against the committed
//! `BENCH_HOTPATH.json` and fail on a regression beyond the tolerance
//! (`BENCH_TOLERANCE`, default 15%); `simd.*` ratios are skipped when the
//! baseline was recorded on a different ISA.

use approx_dropout::{scheme, DropoutRate};
use gpu_sim::{GpuConfig, MlpSpec, NetworkTimingModel};
use nn::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tensor::{
    blocked_gemm, gemm_a_bt, gemm_bias_act, init, pool, row_compact_gemm, simd, tile_compact_gemm,
    Activation, Matrix, SimdLevel,
};

/// The seed repository's cache-blocked GEMM, kept verbatim as the baseline
/// the kernel rewrite is measured against: per-element `Index` ops (bounds
/// checks) in the inner loops and a data-dependent `aip == 0.0` branch.
fn seed_blocked_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    const BLOCK: usize = 32;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for ii in (0..m).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(m);
        for pp in (0..k).step_by(BLOCK) {
            let p_end = (pp + BLOCK).min(k);
            for jj in (0..n).step_by(BLOCK) {
                let j_end = (jj + BLOCK).min(n);
                for i in ii..i_end {
                    for p in pp..p_end {
                        let aip = a[(i, p)];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = b.row(p);
                        let crow = c.row_mut(i);
                        for j in jj..j_end {
                            crow[j] += aip * brow[j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Best-of-`reps` wall-clock seconds for one invocation of `f` (after one
/// warm-up call), which filters scheduler noise better than a mean.
fn bench(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Config {
    mode: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    mlp_batch: usize,
    mlp_hidden: usize,
    mlp_batches: usize,
    mlp_reps: usize,
}

const FULL: Config = Config {
    mode: "full",
    m: 256,
    k: 512,
    n: 512,
    reps: 7,
    mlp_batch: 256,
    mlp_hidden: 512,
    mlp_batches: 4,
    mlp_reps: 3,
};

/// Tiny shapes for CI: still wide enough (`m > PAR_MIN_ROWS`) that the
/// thread pool actually engages, so a threading regression fails fast.
const SMOKE: Config = Config {
    mode: "smoke",
    m: 48,
    k: 64,
    n: 64,
    reps: 2,
    mlp_batch: 48,
    mlp_hidden: 64,
    mlp_batches: 2,
    mlp_reps: 1,
};

fn json_threads_map(entries: &[(usize, f64)]) -> String {
    let fields: Vec<String> = entries
        .iter()
        .map(|(t, secs)| format!("\"{t}\": {secs:.6}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let cfg = if smoke { SMOKE } else { FULL };
    // Shared startup: resolve `--threads`/`TENSOR_THREADS` (loudly on a
    // conflict), apply `--no-simd`, run `--tune` or load the persisted
    // blocking config. Sections 2–4 sweep explicit pool widths regardless;
    // the resolved width drives the fused section and any `--tune` search.
    let setup = bench::init_bench("bench_hotpath");
    let thread_counts = [1usize, 2, 4];

    let mut rng = StdRng::seed_from_u64(0xB0A7);
    let a = init::uniform(&mut rng, cfg.m, cfg.k, -1.0, 1.0);
    let b = init::uniform(&mut rng, cfg.k, cfg.n, -1.0, 1.0);

    // 1. Seed kernel baseline (single-threaded by construction).
    let seed_secs = bench(cfg.reps, || {
        std::hint::black_box(seed_blocked_gemm(&a, &b));
    });
    eprintln!("seed blocked gemm      {:>10.3} ms", seed_secs * 1e3);

    // 1b. SIMD micro-kernel effect, single-threaded: the same packed
    //     kernels with the runtime dispatch forced to the scalar fallback
    //     versus the active level — the pure vectorisation win, no pool.
    //     Under `--no-simd` / `TENSOR_SIMD=0` both sides run the scalar
    //     path and the ratios sit at ~1.0; the BENCH_ASSERT gate only arms
    //     when a vector level is active.
    pool::set_threads(1);
    let bias = init::uniform(&mut rng, 1, cfg.n, -0.5, 0.5);
    let bt = b.transpose();
    let simd_pair = |f: &mut dyn FnMut()| {
        simd::set_level(SimdLevel::Scalar);
        let scalar = bench(cfg.reps, &mut *f);
        simd::set_level(setup.simd_level);
        let vector = bench(cfg.reps, &mut *f);
        (scalar, vector)
    };
    let (dense_scalar, dense_simd) = simd_pair(&mut || {
        std::hint::black_box(blocked_gemm(&a, &b).unwrap());
    });
    let (abt_scalar, abt_simd) = simd_pair(&mut || {
        std::hint::black_box(gemm_a_bt(&a, &bt).unwrap());
    });
    let (fused_relu_scalar, fused_relu_simd) = simd_pair(&mut || {
        std::hint::black_box(gemm_bias_act(&a, &b, &bias, Activation::Relu).unwrap());
    });
    let simd_speedups = [
        ("dense", dense_scalar / dense_simd),
        ("a_bt", abt_scalar / abt_simd),
        ("fused_relu", fused_relu_scalar / fused_relu_simd),
    ];
    for ((key, speedup), (scalar, vector)) in simd_speedups.iter().zip([
        (dense_scalar, dense_simd),
        (abt_scalar, abt_simd),
        (fused_relu_scalar, fused_relu_simd),
    ]) {
        eprintln!(
            "simd {key:<11} 1t     {:>10.3} ms scalar vs {:.3} ms {} ({speedup:.2}x)",
            scalar * 1e3,
            vector * 1e3,
            setup.simd_level.name()
        );
    }

    // 2. Packed kernel at 1/2/4 threads.
    let mut dense_by_threads = Vec::new();
    for &t in &thread_counts {
        pool::set_threads(t);
        let secs = bench(cfg.reps, || {
            std::hint::black_box(blocked_gemm(&a, &b).unwrap());
        });
        eprintln!("packed gemm {t} thread(s) {:>9.3} ms", secs * 1e3);
        dense_by_threads.push((t, secs));
    }
    let dense_1t = dense_by_threads[0].1;
    let single_thread_speedup = seed_secs / dense_1t;
    let scaling_2t = dense_1t / dense_by_threads[1].1;
    let scaling_4t = dense_1t / dense_by_threads[2].1;

    // 3. Compacted kernels at a dp=2 pattern, single-threaded, against the
    //    single-threaded dense kernel (pure kernel effect, no pool).
    pool::set_threads(1);
    let kept_cols: Vec<usize> = (0..cfg.n).step_by(2).collect();
    let row_secs = bench(cfg.reps, || {
        std::hint::black_box(row_compact_gemm(&a, &b, &kept_cols).unwrap());
    });
    let tile = 32.min(cfg.k).min(cfg.n);
    let tiles_per_row = cfg.n.div_ceil(tile);
    let tiles_per_col = cfg.k.div_ceil(tile);
    let kept_tiles: Vec<usize> = (0..tiles_per_row * tiles_per_col).step_by(2).collect();
    let tile_secs = bench(cfg.reps, || {
        std::hint::black_box(tile_compact_gemm(&a, &b, &kept_tiles, tile).unwrap());
    });
    eprintln!(
        "row-compact dp=2       {:>10.3} ms ({:.2}x dense)",
        row_secs * 1e3,
        dense_1t / row_secs
    );
    eprintln!(
        "tile-compact dp=2      {:>10.3} ms ({:.2}x dense)",
        tile_secs * 1e3,
        dense_1t / tile_secs
    );

    // 4. One MLP training epoch (row-pattern dropout) at 1/2/4 threads.
    let dropout = scheme::row(DropoutRate::new(0.5).unwrap(), 8).unwrap();
    let config = MlpConfig {
        input_dim: cfg.k,
        hidden: vec![cfg.mlp_hidden, cfg.mlp_hidden],
        output_dim: 10,
        dropout,
        learning_rate: 0.01,
        momentum: 0.9,
    };
    let inputs = init::uniform(&mut rng, cfg.mlp_batch, cfg.k, -1.0, 1.0);
    let labels: Vec<usize> = (0..cfg.mlp_batch).map(|i| i % 10).collect();
    let mut mlp_by_threads = Vec::new();
    for &t in &thread_counts {
        pool::set_threads(t);
        let mut mlp = Mlp::new(&config, &mut rng);
        let mut train_rng = StdRng::seed_from_u64(7);
        let secs = bench(cfg.mlp_reps, || {
            for _ in 0..cfg.mlp_batches {
                std::hint::black_box(mlp.train_batch(&inputs, &labels, &mut train_rng));
            }
        });
        eprintln!("mlp epoch {t} thread(s)  {:>10.3} ms", secs * 1e3);
        mlp_by_threads.push((t, secs));
    }
    let mlp_scaling_2t = mlp_by_threads[0].1 / mlp_by_threads[1].1;

    eprintln!(
        "single-thread speedup vs seed kernel: {single_thread_speedup:.2}x; \
         dense scaling 2t {scaling_2t:.2}x / 4t {scaling_4t:.2}x; \
         mlp scaling 2t {mlp_scaling_2t:.2}x"
    );

    // Thread scaling is bounded by the physical cores of the machine the
    // bench ran on; record it so a flat scaling curve on a 1-core box is
    // interpretable (the pool cannot beat the hardware).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // 5. Fused vs unfused whole-layer MLP forward at the *default* thread
    //    count (TENSOR_THREADS or the machine width): the same network and
    //    the same deterministic dp=8 row plans (rate 0.875, inside the
    //    paper's swept range — the high-dropout regime where the compacted
    //    GEMM shrinks and the per-layer bias/ReLU epilogue kernels dominate,
    //    which is exactly what fusion removes), once as one fused
    //    GEMM+bias+ReLU kernel per layer and once as the separate chain.
    //    The two sides are timed interleaved (best-of per side) so machine
    //    drift cancels; their outputs are bitwise equal (covered by
    //    tests/fused_kernels.rs) — this measures time only.
    let default_threads = setup.threads;
    pool::set_threads(default_threads);
    const FUSED_DP: usize = 8;
    let fused_config = MlpConfig {
        dropout: Box::new(approx_dropout::RowPattern::new(FUSED_DP, 0).unwrap()),
        ..config
    };
    let mut mlp_fused = Mlp::new(&fused_config, &mut rng);
    let mut mlp_unfused = mlp_fused.clone();
    mlp_unfused.set_fused(false);
    let forward_epoch = |mlp: &mut Mlp| {
        let mut fwd_rng = StdRng::seed_from_u64(11);
        for _ in 0..cfg.mlp_batches {
            std::hint::black_box(mlp.forward_train(&inputs, &mut fwd_rng));
        }
    };
    forward_epoch(&mut mlp_fused); // warm both sides
    forward_epoch(&mut mlp_unfused);
    let mut fused_secs = f64::INFINITY;
    let mut unfused_secs = f64::INFINITY;
    for _ in 0..cfg.reps.max(5) {
        let start = Instant::now();
        forward_epoch(&mut mlp_fused);
        fused_secs = fused_secs.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        forward_epoch(&mut mlp_unfused);
        unfused_secs = unfused_secs.min(start.elapsed().as_secs_f64());
    }
    let fused_speedup = unfused_secs / fused_secs;
    eprintln!(
        "mlp forward fused      {:>10.3} ms vs unfused {:.3} ms ({fused_speedup:.2}x, dp={FUSED_DP}, {default_threads} thread(s))",
        fused_secs * 1e3,
        unfused_secs * 1e3
    );

    // Simulated fused-vs-unfused iteration on the paper's MLP, both device
    // presets: the timing model prices the same sampled plans with and
    // without KernelSchedule::Fused (launch overhead once per layer).
    let sim_scheme = scheme::row(DropoutRate::new(0.5).unwrap(), 16).unwrap();
    let mut sim_fused_speedups = Vec::new();
    for (device_key, gpu) in [
        ("gtx_1080ti", GpuConfig::gtx_1080ti()),
        ("server_hbm", GpuConfig::server_hbm()),
    ] {
        let model = NetworkTimingModel::mlp(gpu, MlpSpec::paper_mlp());
        let unfused_us = model
            .expected_iteration_time(&*sim_scheme, 128, 0x5EED)
            .total_us();
        let fused_us = model
            .clone()
            .with_fusion(true)
            .expected_iteration_time(&*sim_scheme, 128, 0x5EED)
            .total_us();
        let speedup = unfused_us / fused_us;
        eprintln!("sim fused iteration    {speedup:>10.3}x on {device_key}");
        sim_fused_speedups.push((device_key, speedup));
    }

    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"available_parallelism\": {cores},\n  \"simd\": {{\n    \"isa\": \"{simd_isa}\",\n    \"dense_scalar_secs\": {dense_scalar:.6},\n    \"dense_simd_secs\": {dense_simd:.6},\n    \"dense_speedup\": {simd_dense_speedup:.3},\n    \"a_bt_scalar_secs\": {abt_scalar:.6},\n    \"a_bt_simd_secs\": {abt_simd:.6},\n    \"a_bt_speedup\": {simd_abt_speedup:.3},\n    \"fused_relu_scalar_secs\": {fused_relu_scalar:.6},\n    \"fused_relu_simd_secs\": {fused_relu_simd:.6},\n    \"fused_relu_speedup\": {simd_fused_speedup:.3}\n  }},\n  \"dense_gemm\": {{\n    \"shape\": [{m}, {k}, {n}],\n    \"seed_blocked_secs\": {seed:.6},\n    \"packed_secs_by_threads\": {dense_map},\n    \"single_thread_speedup_vs_seed\": {speedup:.3},\n    \"scaling_2_threads\": {s2:.3},\n    \"scaling_4_threads\": {s4:.3}\n  }},\n  \"row_compact\": {{\n    \"dp\": 2,\n    \"secs\": {row:.6},\n    \"speedup_vs_dense_1t\": {row_speedup:.3}\n  }},\n  \"tile_compact\": {{\n    \"dp\": 2,\n    \"tile\": {tile},\n    \"secs\": {tile_secs:.6},\n    \"speedup_vs_dense_1t\": {tile_speedup:.3}\n  }},\n  \"mlp_epoch\": {{\n    \"batch\": {mlp_batch},\n    \"batches\": {mlp_batches},\n    \"hidden\": [{hid}, {hid}],\n    \"secs_by_threads\": {mlp_map},\n    \"scaling_2_threads\": {mlp_s2:.3}\n  }},\n  \"fused_forward\": {{\n    \"threads\": {fused_threads},\n    \"row_pattern_dp\": {fused_dp},\n    \"unfused_secs\": {unfused_secs:.6},\n    \"fused_secs\": {fused_secs:.6},\n    \"speedup\": {fused_speedup:.3},\n    \"sim_iteration_speedup_{sim0_key}\": {sim0:.3},\n    \"sim_iteration_speedup_{sim1_key}\": {sim1:.3}\n  }}\n}}\n",
        mode = cfg.mode,
        simd_isa = setup.simd_level.name(),
        dense_scalar = dense_scalar,
        dense_simd = dense_simd,
        simd_dense_speedup = simd_speedups[0].1,
        abt_scalar = abt_scalar,
        abt_simd = abt_simd,
        simd_abt_speedup = simd_speedups[1].1,
        fused_relu_scalar = fused_relu_scalar,
        fused_relu_simd = fused_relu_simd,
        simd_fused_speedup = simd_speedups[2].1,
        m = cfg.m,
        k = cfg.k,
        n = cfg.n,
        seed = seed_secs,
        dense_map = json_threads_map(&dense_by_threads),
        speedup = single_thread_speedup,
        s2 = scaling_2t,
        s4 = scaling_4t,
        row = row_secs,
        row_speedup = dense_1t / row_secs,
        tile = tile,
        tile_secs = tile_secs,
        tile_speedup = dense_1t / tile_secs,
        mlp_batch = cfg.mlp_batch,
        mlp_batches = cfg.mlp_batches,
        hid = cfg.mlp_hidden,
        mlp_map = json_threads_map(&mlp_by_threads),
        mlp_s2 = mlp_scaling_2t,
        fused_threads = default_threads,
        fused_dp = FUSED_DP,
        unfused_secs = unfused_secs,
        fused_secs = fused_secs,
        fused_speedup = fused_speedup,
        sim0_key = sim_fused_speedups[0].0,
        sim0 = sim_fused_speedups[0].1,
        sim1_key = sim_fused_speedups[1].0,
        sim1 = sim_fused_speedups[1].1,
    );

    let out_path = std::env::var("BENCH_HOTPATH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_HOTPATH.json", env!("CARGO_MANIFEST_DIR")));
    // In --check-baseline mode the committed file is the baseline; read it
    // before the fresh result overwrites it, and write the fresh JSON
    // before enforcing so the CI artifact carries the regressed run too.
    let check_baseline = std::env::args().any(|a| a == "--check-baseline");
    let baseline_path = std::env::var("BENCH_HOTPATH_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../BENCH_HOTPATH.json", env!("CARGO_MANIFEST_DIR")));
    let baseline = check_baseline
        .then(|| bench::baseline::read_baseline_or_exit(&baseline_path, "bench_hotpath"));
    std::fs::write(&out_path, &json).expect("writing BENCH_HOTPATH.json failed");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if let Some(baseline) = baseline {
        bench::baseline::enforce_baseline(&baseline, &baseline_path, &json, "bench_hotpath");
    }

    // Regression gates, opt-in via BENCH_ASSERT=1 (CI). The kernel speedup
    // is machine-portable; the scaling gate only arms on hardware that can
    // actually scale (>= 2 cores), so a 1-core container passes honestly
    // while a change that serializes the pool fails fast on CI runners.
    if std::env::var("BENCH_ASSERT").is_ok_and(|v| v != "0") {
        let mut failures = Vec::new();
        // The vector kernels must beat the forced-scalar path whenever a
        // vector level is actually active; under `--no-simd` /
        // `TENSOR_SIMD=0` both sides run the same code and the gate stands
        // down rather than comparing noise against noise.
        if setup.simd_level != SimdLevel::Scalar {
            for (key, speedup) in &simd_speedups {
                if *speedup <= 1.0 {
                    failures.push(format!(
                        "simd {key} kernel speedup {speedup:.3}x <= 1.0x over forced-scalar \
                         at 1 thread ({})",
                        setup.simd_level.name()
                    ));
                }
            }
        }
        if !smoke && single_thread_speedup < 3.0 {
            failures.push(format!(
                "single-thread kernel speedup {single_thread_speedup:.2}x < 3.0x vs seed kernel"
            ));
        }
        if !smoke && cores >= 2 && scaling_2t < 1.25 {
            failures.push(format!(
                "dense 2-thread scaling {scaling_2t:.2}x < 1.25x on a {cores}-core machine"
            ));
        }
        // The fused whole-layer forward must beat the separate chain: it
        // does strictly less work (no extra pass over the activations, no
        // per-iteration output allocation). Smoke shapes are too small to
        // time reliably, so the CPU gate arms on full runs only; the
        // simulated ratios are deterministic and gate everywhere.
        if !smoke && fused_speedup <= 1.0 {
            failures.push(format!(
                "fused MLP forward speedup {fused_speedup:.3}x <= 1.0x at {default_threads} thread(s)"
            ));
        }
        for (device, speedup) in &sim_fused_speedups {
            if *speedup <= 1.0 {
                failures.push(format!(
                    "simulated fused iteration speedup {speedup:.3}x <= 1.0x on {device}"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("BENCH_ASSERT failures:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("BENCH_ASSERT passed");
    }
}
