//! Fig. 1(b) motivation — naive `if (kept)` skipping inside the GEMM does not
//! speed anything up because the SIMT front-end serialises divergent warps,
//! while the regular patterns do.

use approx_dropout::{scheme, DropoutRate, DropoutScheme};
use bench::Report;
use gpu_sim::{kernels, GpuConfig, MlpSpec, NetworkTimingModel, DEFAULT_TIMING_SAMPLES};

fn main() {
    let gpu = GpuConfig::gtx_1080ti();
    let (m, k, n) = (128usize, 2048usize, 2048usize);

    let mut kernel_report = Report::new(
        "Fig. 1(b) — single GEMM (128 x 2048 x 2048), dropout rate 0.5",
        &["kernel", "time (us)", "vs dense"],
    );
    let dense = kernels::dense_gemm(&gpu, m, k, n);
    let divergent = kernels::divergent_gemm(&gpu, m, k, n, 0.5);
    let row = kernels::row_compact_gemm(&gpu, m, k, n, n / 2);
    let grid = (k / 32) * (n / 32);
    let tile = kernels::tile_compact_gemm(&gpu, m, k, n, grid / 2, grid);
    for (name, stats) in [
        ("dense GEMM", &dense),
        ("divergent if-else skip", &divergent),
        ("row-compact GEMM", &row),
        ("tile-compact GEMM", &tile),
    ] {
        kernel_report.add_row(&[
            name.to_string(),
            format!("{:.1}", stats.time_us()),
            format!("{:.2}x", dense.time_us() / stats.time_us()),
        ]);
    }
    kernel_report.print();

    let model = NetworkTimingModel::mlp(gpu, MlpSpec::paper_mlp());
    let mut net_report = Report::new(
        "End-to-end MLP iteration (2048x2048, batch 128, dropout 0.5)",
        &["method", "iteration time (ms)", "speedup vs conventional"],
    );
    let rate = DropoutRate::new(0.5).expect("static rate is valid");
    let schemes: Vec<(&str, Box<dyn DropoutScheme>)> = vec![
        ("conventional dropout", scheme::bernoulli(rate)),
        ("divergent if-else skip", scheme::divergent_bernoulli(rate)),
        ("row pattern", scheme::row(rate, 16).expect("valid")),
        ("tile pattern", scheme::tile(rate, 16, 32).expect("valid")),
    ];
    let time_of = |s: &dyn DropoutScheme| {
        model
            .expected_iteration_time(s, DEFAULT_TIMING_SAMPLES, 7)
            .total_us()
    };
    let baseline = time_of(&*scheme::bernoulli(rate));
    for (name, dropout_scheme) in &schemes {
        let t = time_of(&**dropout_scheme);
        net_report.add_row(&[
            name.to_string(),
            format!("{:.3}", t / 1e3),
            format!("{:.2}x", baseline / t),
        ]);
    }
    net_report.print();
}
