//! Serving benchmark: closed-loop policy comparison plus an open-loop
//! overload scenario against the `serve` crate.
//!
//! **Closed loop** — each tenant thread replays a deterministic trace of
//! train/infer jobs over a mixed catalog (two MLPs and an LSTM language
//! model, so dispatches span several `LayerShape` mixes) with a bounded
//! window of outstanding requests, so offered load adapts to service rate.
//! The **identical** trace runs against per-request dispatch, fixed-deadline
//! dynamic batching and adaptive (marginal-rule) batching; the differences
//! between the runs are purely the dispatch decision. On top of the
//! measured CPU numbers, the same batching decision is priced on the
//! `gpu-sim` device model ([`serve::simulated_policy_speedup`]).
//!
//! **Open-loop overload** — two Background tenants flood far more work
//! than one worker can serve while an Interactive tenant submits paced
//! jobs, with *no* feedback from service rate to offered load. The
//! scenario runs three ways: *protected* (QoS weights + bounded queue with
//! price-based shedding), *unprotected* (flat weights, unbounded queue —
//! the pre-admission behavior), and *autoscaled* (protected plus a
//! supervisor growing the fleet from queue depth). Admission control must
//! keep Interactive p99 within a small multiple of the execution p99 while
//! the unprotected run's overall p99 grows with the backlog — the
//! [`gpu_sim::md1_wait_us`] estimate printed alongside shows why: above
//! capacity (ρ ≥ 1) the queueing delay diverges, so the only bounded
//! answer is to shed.
//!
//! Writes `BENCH_SERVE.json` at the repository root. Flags: `--smoke`
//! (tiny CI shapes), `--threads N` (tensor-pool width; `TENSOR_THREADS`
//! stays the fallback), `--no-simd`, `--tune`, `--tenants N`,
//! `--requests N`, `--window N`, `--check-baseline` (regression gate
//! against the committed JSON). `BENCH_ASSERT=1` enforces the win
//! conditions: dynamic must beat per-request and adaptive must beat
//! fixed-deadline dynamic on throughput (full runs), the simulated ratios
//! must exceed 1 everywhere, and the overload scenario must shed
//! Background (never Interactive) work while keeping the protected
//! Interactive p99 within a gated bound of execution time.

use gpu_sim::GpuConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{
    simulated_policy_speedup, AdmissionError, AutoscaleConfig, BatchPolicy, JobKind, JobReply,
    JobSpec, ModelSpec, QosClass, QosWeights, SchemeSpec, ServeConfig, ServeReport, Server,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};
use tensor::pool;

struct Config {
    mode: &'static str,
    tenants: u64,
    requests_per_tenant: usize,
    window: usize,
    workers: usize,
    max_batch_rows: usize,
    deadline_us: u64,
    epoch_rounds: u64,
    /// Simulated pricing scenario: this many same-shape requests of this
    /// many rows each, dispatched one by one versus as one batch.
    sim_requests: usize,
    sim_rows_per_request: usize,
    /// Open-loop overload scenario: Background flood jobs per flood tenant
    /// (2 tenants), paced Interactive jobs, queue bound (jobs/shard).
    flood_per_tenant: usize,
    interactive_jobs: usize,
    interactive_gap_us: u64,
    queue_bound: usize,
}

const FULL: Config = Config {
    mode: "full",
    tenants: 8,
    requests_per_tenant: 48,
    window: 8,
    workers: 4,
    max_batch_rows: 192,
    deadline_us: 800,
    epoch_rounds: 8,
    sim_requests: 16,
    sim_rows_per_request: 8,
    flood_per_tenant: 300,
    interactive_jobs: 60,
    interactive_gap_us: 500,
    queue_bound: 64,
};

const SMOKE: Config = Config {
    mode: "smoke",
    tenants: 3,
    requests_per_tenant: 10,
    window: 4,
    workers: 2,
    max_batch_rows: 64,
    deadline_us: 300,
    epoch_rounds: 4,
    sim_requests: 16,
    sim_rows_per_request: 8,
    flood_per_tenant: 80,
    interactive_jobs: 20,
    interactive_gap_us: 300,
    queue_bound: 32,
};

/// The served catalog: a row-pattern MLP, an N:M structured MLP and a
/// small LSTM language model — three distinct `LayerShape` families, so
/// the batcher has real shape mixing to contend with.
fn catalog(smoke: bool) -> Vec<ModelSpec> {
    let scale = if smoke { 4 } else { 1 };
    vec![
        ModelSpec::mlp(
            "mlp-row",
            64,
            vec![256 / scale, 256 / scale],
            10,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 8,
            },
        ),
        ModelSpec::mlp(
            "mlp-nm",
            48,
            vec![128 / scale, 128 / scale],
            10,
            SchemeSpec::Nm { n: 2, m: 4 },
        ),
        ModelSpec::lstm(
            "lstm-row",
            64,
            32 / scale,
            2,
            if smoke { 4 } else { 8 },
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        ),
    ]
}

/// One tenant's deterministic job trace: model/shape mix and train/infer
/// mix drawn from a per-tenant seed, identical across policy runs.
fn tenant_trace(cfg: &Config, models: usize, tenant: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00 ^ tenant.wrapping_mul(0x9E37_79B9));
    (0..cfg.requests_per_tenant)
        .map(|i| {
            let model = rng.gen_range(0..models);
            // LSTM rows are sequences (BPTT-heavy); keep them smaller than
            // MLP rows so the shape mix stays balanced in wall-clock terms.
            let rows = if model == 2 {
                rng.gen_range(1..3usize)
            } else {
                rng.gen_range(2..9usize)
            };
            let kind = if rng.gen::<f32>() < 0.25 {
                JobKind::Infer
            } else {
                JobKind::Train
            };
            JobSpec {
                tenant,
                model,
                rows,
                seed: (tenant << 32) | i as u64,
                kind,
                qos: QosClass::Batch,
            }
        })
        .collect()
}

struct PolicyStats {
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    queue_wait_p99_us: f64,
    exec_p99_us: f64,
    mean_batch_rows: f64,
    jobs: u64,
    batches: u64,
    plan_cache_hit_rate: f64,
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx].as_secs_f64() * 1e6
}

fn recv_result(rx: Receiver<JobReply>) -> serve::JobResult {
    rx.recv()
        .expect("job must complete")
        .expect("closed-loop runs have no admission control")
}

/// Latency cost for the throughput-oriented adaptive run: a worker spends
/// up to 1 device-µs of hold time per 200 job-µs of queueing it inflicts,
/// so hot keys batch aggressively (the closed-loop trace measures
/// throughput; the overload scenario uses the latency-leaning default).
const THROUGHPUT_LATENCY_COST: f64 = 0.005;

/// Replays every tenant trace against fresh servers under `policy`,
/// best-of-N on throughput (full runs last ~100 ms each, so scheduler
/// noise between two runs of the *same* policy easily reaches ±15%;
/// best-of compares the policies' ceilings instead of their draws).
fn run_policy(cfg: &Config, policy: BatchPolicy, traces: &[Vec<JobSpec>]) -> PolicyStats {
    run_policy_with(cfg, policy, traces, 0.05)
}

fn run_policy_with(
    cfg: &Config,
    policy: BatchPolicy,
    traces: &[Vec<JobSpec>],
    latency_cost: f64,
) -> PolicyStats {
    let repeats = if cfg.mode == "smoke" { 1 } else { 3 };
    (0..repeats)
        .map(|_| run_policy_once(cfg, policy, traces, latency_cost))
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
        .expect("at least one repeat")
}

fn run_policy_once(
    cfg: &Config,
    policy: BatchPolicy,
    traces: &[Vec<JobSpec>],
    latency_cost: f64,
) -> PolicyStats {
    let config = ServeConfig::builder()
        .workers(cfg.workers)
        .policy(policy)
        .epoch_rounds(cfg.epoch_rounds)
        .latency_cost(latency_cost)
        .build()
        .expect("bench serve configuration is valid");
    let server = Server::start(config, catalog(cfg.mode == "smoke"));
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .iter()
            .map(|trace| {
                let client = server.client();
                scope.spawn(move || {
                    let mut outstanding: VecDeque<Receiver<JobReply>> = VecDeque::new();
                    let mut latencies = Vec::with_capacity(trace.len());
                    for &spec in trace {
                        if outstanding.len() >= cfg.window {
                            let rx = outstanding.pop_front().expect("window is non-empty");
                            latencies.push(recv_result(rx).latency);
                        }
                        outstanding.push_back(client.submit(spec).expect("unbounded queue admits"));
                    }
                    for rx in outstanding {
                        latencies.push(recv_result(rx).latency);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let report: ServeReport = server.shutdown();
    let mut sorted = latencies;
    sorted.sort();
    let cache = report.plan_cache.expect("plan cache is enabled");
    PolicyStats {
        throughput_rps: report.jobs as f64 / elapsed.as_secs_f64(),
        p50_us: percentile_us(&sorted, 0.50),
        p99_us: percentile_us(&sorted, 0.99),
        p999_us: percentile_us(&sorted, 0.999),
        queue_wait_p99_us: report.queue_wait.p99_us,
        exec_p99_us: report.exec.p99_us,
        mean_batch_rows: report.mean_batch_rows(),
        jobs: report.jobs,
        batches: report.batches,
        plan_cache_hit_rate: cache.hit_rate(),
    }
}

/// Outcome of one open-loop overload run.
struct OverloadStats {
    /// p99 over every job that completed (any class).
    overall_p99_us: f64,
    /// p99 over completed Interactive jobs.
    interactive_p99_us: f64,
    /// Execution-time p99 from the server report (the scale Interactive
    /// latency is judged against).
    exec_p99_us: f64,
    completed: u64,
    interactive_shed: u64,
    interactive_rejected: u64,
    background_shed: u64,
    background_rejected: u64,
    elapsed: Duration,
    report: ServeReport,
}

/// Drives the open-loop overload trace against `config`: two Background
/// tenants dump `flood_per_tenant` train jobs each as fast as they can
/// while one Interactive tenant submits paced infer jobs (starting once
/// half the flood is in, so pacing always overlaps the backlog). No
/// closed-loop window anywhere — offered load does not adapt.
fn run_overload(cfg: &Config, config: ServeConfig, models: Vec<ModelSpec>) -> OverloadStats {
    let server = Server::start(config, models);
    let flood_submitted = AtomicUsize::new(0);
    let start = Instant::now();
    type Outcomes = Vec<(QosClass, Result<Receiver<JobReply>, AdmissionError>)>;
    let outcomes: Outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tenant in 0..2u64 {
            let client = server.client();
            let flood_submitted = &flood_submitted;
            handles.push(scope.spawn(move || {
                let mut out: Outcomes = Vec::with_capacity(cfg.flood_per_tenant);
                for i in 0..cfg.flood_per_tenant {
                    let spec = JobSpec {
                        tenant,
                        model: 0,
                        rows: 4,
                        seed: (tenant << 32) | i as u64,
                        kind: JobKind::Train,
                        qos: QosClass::Background,
                    };
                    out.push((spec.qos, client.submit(spec)));
                    flood_submitted.fetch_add(1, Ordering::SeqCst);
                }
                out
            }));
        }
        {
            let client = server.client();
            let flood_submitted = &flood_submitted;
            handles.push(scope.spawn(move || {
                // Start paced submission once the flood is half in, so the
                // Interactive jobs always contend with a real backlog.
                while flood_submitted.load(Ordering::SeqCst) < cfg.flood_per_tenant {
                    std::hint::spin_loop();
                }
                let mut out: Outcomes = Vec::with_capacity(cfg.interactive_jobs);
                for i in 0..cfg.interactive_jobs {
                    let spec = JobSpec {
                        tenant: 9,
                        model: 0,
                        rows: 2,
                        seed: 0xFACE_0000 | i as u64,
                        kind: JobKind::Infer,
                        qos: QosClass::Interactive,
                    };
                    out.push((spec.qos, client.submit(spec)));
                    std::thread::sleep(Duration::from_micros(cfg.interactive_gap_us));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("overload tenant thread panicked"))
            .collect()
    });
    // Every submission is in; wait for each admitted job's reply.
    let mut all = Vec::new();
    let mut interactive = Vec::new();
    let mut stats = OverloadStats {
        overall_p99_us: 0.0,
        interactive_p99_us: 0.0,
        exec_p99_us: 0.0,
        completed: 0,
        interactive_shed: 0,
        interactive_rejected: 0,
        background_shed: 0,
        background_rejected: 0,
        elapsed: Duration::ZERO,
        report: ServeReport {
            batches: 0,
            jobs: 0,
            rows: 0,
            shed: 0,
            rejected: 0,
            scale_ups: 0,
            scale_downs: 0,
            peak_workers: 0,
            queue_wait: serve::LatencySummary::from_us(Vec::new()),
            exec: serve::LatencySummary::from_us(Vec::new()),
            plan_cache: None,
        },
    };
    for (qos, outcome) in outcomes {
        match outcome {
            Err(AdmissionError::Rejected { .. }) => match qos {
                QosClass::Interactive => stats.interactive_rejected += 1,
                _ => stats.background_rejected += 1,
            },
            Err(AdmissionError::Shed { .. }) => unreachable!("submit never returns Shed"),
            Ok(rx) => match rx.recv().expect("admitted job must be answered") {
                Ok(result) => {
                    stats.completed += 1;
                    all.push(result.latency);
                    if qos == QosClass::Interactive {
                        interactive.push(result.latency);
                    }
                }
                Err(AdmissionError::Shed { .. }) => match qos {
                    QosClass::Interactive => stats.interactive_shed += 1,
                    _ => stats.background_shed += 1,
                },
                Err(AdmissionError::Rejected { .. }) => {
                    unreachable!("reply channels never carry Rejected")
                }
            },
        }
    }
    stats.elapsed = start.elapsed();
    stats.report = server.shutdown();
    all.sort();
    interactive.sort();
    stats.overall_p99_us = percentile_us(&all, 0.99);
    stats.interactive_p99_us = percentile_us(&interactive, 0.99);
    stats.exec_p99_us = stats.report.exec.p99_us;
    stats
}

fn usize_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == name {
            iter.next().map(String::as_str)
        } else if let Some(inline) = arg.strip_prefix(&format!("{name}=")) {
            Some(inline)
        } else {
            continue;
        };
        match value
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            Some(n) => return n,
            None => {
                eprintln!("{name} expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn policy_json(label: &str, stats: &PolicyStats) -> String {
    format!(
        "  \"{label}\": {{\n    \"throughput_rps\": {:.3},\n    \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    \"p999_us\": {:.1},\n    \"queue_wait_p99_us\": {:.1},\n    \"exec_p99_us\": {:.1},\n    \"mean_batch_rows\": {:.3},\n    \"jobs\": {},\n    \"batches\": {},\n    \"plan_cache_hit_rate\": {:.4}\n  }}",
        stats.throughput_rps,
        stats.p50_us,
        stats.p99_us,
        stats.p999_us,
        stats.queue_wait_p99_us,
        stats.exec_p99_us,
        stats.mean_batch_rows,
        stats.jobs,
        stats.batches,
        stats.plan_cache_hit_rate,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mut cfg = if smoke { SMOKE } else { FULL };
    bench::init_bench("bench_serve");
    cfg.tenants = usize_flag("--tenants", cfg.tenants as usize) as u64;
    cfg.requests_per_tenant = usize_flag("--requests", cfg.requests_per_tenant);
    cfg.window = usize_flag("--window", cfg.window);

    let models = catalog(smoke);
    let traces: Vec<Vec<JobSpec>> = (0..cfg.tenants)
        .map(|tenant| tenant_trace(&cfg, models.len(), tenant))
        .collect();
    let total_jobs: usize = traces.iter().map(Vec::len).sum();
    eprintln!(
        "serving {} jobs from {} tenants over {} models ({} workers, window {}, {} pool thread(s))",
        total_jobs,
        cfg.tenants,
        models.len(),
        cfg.workers,
        cfg.window,
        pool::threads(),
    );

    let per_request = run_policy(&cfg, BatchPolicy::PerRequest, &traces);
    eprintln!(
        "per-request   {:>8.1} jobs/s  p50 {:>8.0} us  p99 {:>8.0} us  ({} batches)",
        per_request.throughput_rps, per_request.p50_us, per_request.p99_us, per_request.batches
    );
    let dynamic = run_policy(
        &cfg,
        BatchPolicy::Dynamic {
            max_batch_rows: cfg.max_batch_rows,
            deadline: Duration::from_micros(cfg.deadline_us),
        },
        &traces,
    );
    eprintln!(
        "dynamic       {:>8.1} jobs/s  p50 {:>8.0} us  p99 {:>8.0} us  ({} batches, {:.1} rows/batch, {:.0}% cache hits)",
        dynamic.throughput_rps,
        dynamic.p50_us,
        dynamic.p99_us,
        dynamic.batches,
        dynamic.mean_batch_rows,
        dynamic.plan_cache_hit_rate * 100.0
    );
    // Same worst-case hold as the fixed-deadline run: the adaptive win is
    // cutting *early* when the flow dries up, not holding longer.
    let adaptive = run_policy_with(
        &cfg,
        BatchPolicy::Adaptive {
            max_batch_rows: cfg.max_batch_rows,
            max_deadline: Duration::from_micros(cfg.deadline_us),
        },
        &traces,
        THROUGHPUT_LATENCY_COST,
    );
    eprintln!(
        "adaptive      {:>8.1} jobs/s  p50 {:>8.0} us  p99 {:>8.0} us  ({} batches, {:.1} rows/batch)",
        adaptive.throughput_rps,
        adaptive.p50_us,
        adaptive.p99_us,
        adaptive.batches,
        adaptive.mean_batch_rows,
    );
    let speedup = dynamic.throughput_rps / per_request.throughput_rps;
    let adaptive_speedup = adaptive.throughput_rps / dynamic.throughput_rps;
    eprintln!("dynamic batching throughput speedup: {speedup:.2}x");
    eprintln!("adaptive over fixed-deadline dynamic: {adaptive_speedup:.2}x");

    // Price the same dispatch decision on the device model: deterministic,
    // so the baseline gate holds these at the tight sim_* tolerance.
    let sim_devices = [
        ("gtx_1080ti", GpuConfig::gtx_1080ti()),
        ("sparse_tensor_core", GpuConfig::sparse_tensor_core()),
    ];
    let sim_speedups: Vec<(&str, f64)> = sim_devices
        .iter()
        .map(|(key, gpu)| {
            let s = simulated_policy_speedup(
                gpu,
                &models[0],
                0,
                0,
                cfg.sim_rows_per_request,
                cfg.sim_requests,
            );
            eprintln!(
                "sim {}x{}-row dispatches coalesced: {s:.2}x on {key}",
                cfg.sim_requests, cfg.sim_rows_per_request
            );
            (*key, s)
        })
        .collect();

    // ---- Open-loop overload: admission control versus unbounded queueing.
    let overload_catalog = vec![models[0].clone()];
    let flood_total = 2 * cfg.flood_per_tenant;
    eprintln!(
        "overload: {} background jobs flood 1 worker while {} interactive jobs arrive every {} us",
        flood_total, cfg.interactive_jobs, cfg.interactive_gap_us
    );
    let protected_config = || {
        ServeConfig::builder()
            .workers(1)
            .policy(BatchPolicy::Adaptive {
                max_batch_rows: 256,
                max_deadline: Duration::from_millis(2),
            })
            .epoch_rounds(cfg.epoch_rounds)
            .queue_bound(cfg.queue_bound)
            .build()
            .expect("protected overload configuration is valid")
    };
    let protected = run_overload(&cfg, protected_config(), overload_catalog.clone());
    eprintln!(
        "  protected    interactive p99 {:>8.0} us  exec p99 {:>6.0} us  shed {} bg / {} int  rejected {} bg / {} int",
        protected.interactive_p99_us,
        protected.exec_p99_us,
        protected.background_shed,
        protected.interactive_shed,
        protected.background_rejected,
        protected.interactive_rejected,
    );
    let unprotected_config = ServeConfig::builder()
        .workers(1)
        .policy(BatchPolicy::Adaptive {
            max_batch_rows: 256,
            max_deadline: Duration::from_millis(2),
        })
        .epoch_rounds(cfg.epoch_rounds)
        .qos_weights(QosWeights {
            interactive: 1,
            batch: 1,
            background: 1,
        })
        .build()
        .expect("unprotected overload configuration is valid");
    let unprotected = run_overload(&cfg, unprotected_config, overload_catalog.clone());
    eprintln!(
        "  unprotected  overall p99 {:>10.0} us  interactive p99 {:>8.0} us  (everything queued)",
        unprotected.overall_p99_us, unprotected.interactive_p99_us,
    );
    let autoscaled_config = ServeConfig::builder()
        .workers(1)
        .policy(BatchPolicy::Adaptive {
            max_batch_rows: 256,
            max_deadline: Duration::from_millis(2),
        })
        .epoch_rounds(cfg.epoch_rounds)
        .queue_bound(cfg.queue_bound)
        .autoscale(AutoscaleConfig {
            min_workers: 1,
            max_workers: 4,
            ..AutoscaleConfig::default()
        })
        .build()
        .expect("autoscaled overload configuration is valid");
    let autoscaled = run_overload(&cfg, autoscaled_config, overload_catalog);
    eprintln!(
        "  autoscaled   interactive p99 {:>8.0} us  scale ups {}  downs {}  peak workers {}",
        autoscaled.interactive_p99_us,
        autoscaled.report.scale_ups,
        autoscaled.report.scale_downs,
        autoscaled.report.peak_workers,
    );
    // Why shedding is the only bounded answer: the M/D/1 estimate at the
    // offered flood rate diverges once utilization crosses 1.
    let service_us = protected.report.exec.mean_us
        / (protected.report.jobs as f64 / protected.report.batches.max(1) as f64).max(1.0);
    let arrival_per_us = flood_total as f64 / protected.elapsed.as_secs_f64().max(1e-9) / 1e6;
    let md1 = gpu_sim::md1_wait_us(arrival_per_us, service_us);
    eprintln!(
        "  M/D/1 estimate at the offered rate: {} (arrival {:.4}/us, service {:.0} us)",
        if md1.is_finite() {
            format!("{md1:.0} us wait")
        } else {
            "divergent (rho >= 1) — shedding required".to_string()
        },
        arrival_per_us,
        service_us,
    );
    let p99_bound_ratio = if protected.interactive_p99_us > 0.0 {
        unprotected.overall_p99_us / protected.interactive_p99_us
    } else {
        f64::INFINITY
    };
    eprintln!("  unprotected overall p99 / protected interactive p99: {p99_bound_ratio:.1}x");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let model_names: Vec<String> = models.iter().map(|m| format!("\"{}\"", m.name)).collect();
    let scheme_specs: Vec<String> = models.iter().map(|m| format!("\"{}\"", m.scheme)).collect();
    let overload_json = format!(
        "  \"overload\": {{\n    \"flood_jobs\": {flood},\n    \"interactive_jobs\": {int_jobs},\n    \"queue_bound\": {bound},\n    \"protected_interactive_p99_us\": {pi:.1},\n    \"protected_exec_p99_us\": {pe:.1},\n    \"protected_background_shed\": {pbs},\n    \"protected_background_rejected\": {pbr},\n    \"protected_interactive_shed\": {pis},\n    \"protected_interactive_rejected\": {pir},\n    \"unprotected_overall_p99_us\": {uo:.1},\n    \"unprotected_interactive_p99_us\": {ui:.1},\n    \"p99_bound_ratio_unprotected_over_protected\": {ratio:.3},\n    \"autoscale_ups\": {ups},\n    \"autoscale_downs\": {downs},\n    \"autoscale_peak_workers\": {peak}\n  }}",
        flood = flood_total,
        int_jobs = cfg.interactive_jobs,
        bound = cfg.queue_bound,
        pi = protected.interactive_p99_us,
        pe = protected.exec_p99_us,
        pbs = protected.background_shed,
        pbr = protected.background_rejected,
        pis = protected.interactive_shed,
        pir = protected.interactive_rejected,
        uo = unprotected.overall_p99_us,
        ui = unprotected.interactive_p99_us,
        ratio = p99_bound_ratio,
        ups = autoscaled.report.scale_ups,
        downs = autoscaled.report.scale_downs,
        peak = autoscaled.report.peak_workers,
    );
    let json = format!
        (
        "{{\n  \"mode\": \"{mode}\",\n  \"available_parallelism\": {cores},\n  \"tensor_threads\": {threads},\n  \"workers\": {workers},\n  \"tenants\": {tenants},\n  \"requests_per_tenant\": {requests},\n  \"window\": {window},\n  \"max_batch_rows\": {max_rows},\n  \"deadline_us\": {deadline},\n  \"epoch_rounds\": {epoch_rounds},\n  \"models\": [{names}],\n  \"scheme_specs\": [{specs}],\n{per_request},\n{dynamic},\n{adaptive},\n{overload},\n  \"speedup_dynamic_vs_per_request\": {speedup:.3},\n  \"speedup_adaptive_vs_dynamic\": {adaptive_speedup:.3},\n  \"sim_speedup_dynamic_vs_per_request_{sim0_key}\": {sim0:.3},\n  \"sim_speedup_dynamic_vs_per_request_{sim1_key}\": {sim1:.3}\n}}\n",
        mode = cfg.mode,
        threads = pool::threads(),
        workers = cfg.workers,
        tenants = cfg.tenants,
        requests = cfg.requests_per_tenant,
        window = cfg.window,
        max_rows = cfg.max_batch_rows,
        deadline = cfg.deadline_us,
        epoch_rounds = cfg.epoch_rounds,
        names = model_names.join(", "),
        specs = scheme_specs.join(", "),
        per_request = policy_json("per_request", &per_request),
        dynamic = policy_json("dynamic", &dynamic),
        adaptive = policy_json("adaptive", &adaptive),
        overload = overload_json,
        speedup = speedup,
        adaptive_speedup = adaptive_speedup,
        sim0_key = sim_speedups[0].0,
        sim0 = sim_speedups[0].1,
        sim1_key = sim_speedups[1].0,
        sim1 = sim_speedups[1].1,
    );

    let out_path = std::env::var("BENCH_SERVE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_SERVE.json", env!("CARGO_MANIFEST_DIR")));
    // In --check-baseline mode the committed file is the baseline; read it
    // before the fresh result overwrites it, and write the fresh JSON
    // before enforcing so the CI artifact carries the regressed run too.
    let check_baseline = std::env::args().any(|a| a == "--check-baseline");
    let baseline_path = std::env::var("BENCH_SERVE_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../BENCH_SERVE.json", env!("CARGO_MANIFEST_DIR")));
    let baseline = check_baseline
        .then(|| bench::baseline::read_baseline_or_exit(&baseline_path, "bench_serve"));
    std::fs::write(&out_path, &json).expect("writing BENCH_SERVE.json failed");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if let Some(baseline) = baseline {
        bench::baseline::enforce_baseline(&baseline, &baseline_path, &json, "bench_serve");
    }

    // Win conditions, opt-in via BENCH_ASSERT=1 (CI). Measured wall-clock
    // ratio gates arm on full runs only — smoke traffic is far too small
    // for stable timing — while the simulated ratios and the structural
    // overload properties (what was shed, and whom) gate everywhere.
    if std::env::var("BENCH_ASSERT").is_ok_and(|v| v != "0") {
        let mut failures = Vec::new();
        if !smoke && speedup <= 1.0 {
            failures.push(format!(
                "dynamic batching throughput speedup {speedup:.3}x <= 1.0x over per-request dispatch"
            ));
        }
        if !smoke && adaptive_speedup < 1.0 {
            failures.push(format!(
                "adaptive batching throughput {adaptive_speedup:.3}x < 1.0x of fixed-deadline dynamic"
            ));
        }
        if dynamic.plan_cache_hit_rate <= 0.0 {
            failures.push("plan cache recorded no hits under dynamic batching".to_string());
        }
        for (device, s) in &sim_speedups {
            if *s <= 1.0 {
                failures.push(format!(
                    "simulated coalescing speedup {s:.3}x <= 1.0x on {device}"
                ));
            }
        }
        // Overload structure: overload must shed/reject Background work…
        if protected.background_shed + protected.background_rejected == 0 {
            failures.push(
                "admission control shed no background work under an open-loop flood".to_string(),
            );
        }
        // …and never Interactive work (the flood is always cheaper).
        if protected.interactive_shed + protected.interactive_rejected > 0 {
            failures.push(format!(
                "admission control dropped {} interactive jobs (shed {}, rejected {})",
                protected.interactive_shed + protected.interactive_rejected,
                protected.interactive_shed,
                protected.interactive_rejected,
            ));
        }
        if protected.completed == 0 || protected.interactive_p99_us <= 0.0 {
            failures.push("protected overload run completed no interactive jobs".to_string());
        }
        if !smoke {
            // The tail-latency contract: with admission control the
            // Interactive p99 stays within a small multiple of execution
            // time, while the unbounded baseline's p99 carries the whole
            // backlog.
            let bound = 25.0 * protected.exec_p99_us.max(1.0);
            if protected.interactive_p99_us > bound {
                failures.push(format!(
                    "protected interactive p99 {:.0} us exceeds {bound:.0} us (25x exec p99)",
                    protected.interactive_p99_us
                ));
            }
            if p99_bound_ratio < 2.0 {
                failures.push(format!(
                    "unprotected overall p99 only {p99_bound_ratio:.2}x the protected interactive p99 (want > 2x)"
                ));
            }
            if autoscaled.report.scale_ups == 0 {
                failures.push(
                    "autoscaler never scaled up under a sustained open-loop flood".to_string(),
                );
            }
        }
        if !failures.is_empty() {
            eprintln!("BENCH_ASSERT failures:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("BENCH_ASSERT passed");
    }
}
