//! Serving benchmark: multi-tenant closed-loop load against the `serve`
//! crate, per-request dispatch versus dynamic batching.
//!
//! Simulates heavy traffic from many tenants: each tenant thread replays a
//! deterministic trace of train/infer jobs over a mixed catalog (two MLPs
//! and an LSTM language model, so dispatches span several `LayerShape`
//! mixes) with a bounded window of outstanding requests — a closed loop,
//! so offered load adapts to service rate instead of overrunning it. The
//! **identical** trace is replayed against both batching policies; the
//! difference between the runs is purely the dispatch decision.
//!
//! Reported per policy: throughput (jobs/s) and p50/p99/p999 latency, mean
//! coalesced rows per dispatch, and the plan-cache hit rate. On top of the
//! measured CPU numbers, the same batching decision is priced on the
//! `gpu-sim` device model ([`serve::simulated_policy_speedup`], which runs
//! on `price_fc_schedule`): coalescing `B` requests into one dispatch pays
//! per-kernel launch overhead once instead of `B` times, a deterministic
//! ratio the baseline gate holds at the tight `sim_*` tolerance.
//!
//! Writes `BENCH_SERVE.json` at the repository root. Flags: `--smoke`
//! (tiny CI shapes), `--threads N` (tensor-pool width; `TENSOR_THREADS`
//! stays the fallback, a conflicting pair is a hard error), `--no-simd`
//! (scalar kernels), `--tune` (rerun the blocking autotuner),
//! `--tenants N`, `--requests N` (per tenant),
//! `--window N` (outstanding requests per tenant), `--check-baseline`
//! (regression gate against the committed JSON). `BENCH_ASSERT=1` enforces
//! the win conditions: dynamic batching must beat per-request dispatch on
//! throughput (full runs; smoke shapes are too small to time reliably) and
//! the simulated ratios must exceed 1 everywhere.

use gpu_sim::GpuConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{
    simulated_policy_speedup, BatchPolicy, JobKind, JobSpec, ModelSpec, SchemeKind, ServeConfig,
    ServeReport, Server,
};
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use tensor::pool;

struct Config {
    mode: &'static str,
    tenants: u64,
    requests_per_tenant: usize,
    window: usize,
    workers: usize,
    max_batch_rows: usize,
    deadline_us: u64,
    epoch_rounds: u64,
    /// Simulated pricing scenario: this many same-shape requests of this
    /// many rows each, dispatched one by one versus as one batch.
    sim_requests: usize,
    sim_rows_per_request: usize,
}

const FULL: Config = Config {
    mode: "full",
    tenants: 8,
    requests_per_tenant: 48,
    window: 8,
    workers: 4,
    max_batch_rows: 192,
    deadline_us: 800,
    epoch_rounds: 8,
    sim_requests: 16,
    sim_rows_per_request: 8,
};

const SMOKE: Config = Config {
    mode: "smoke",
    tenants: 3,
    requests_per_tenant: 10,
    window: 4,
    workers: 2,
    max_batch_rows: 64,
    deadline_us: 300,
    epoch_rounds: 4,
    sim_requests: 16,
    sim_rows_per_request: 8,
};

/// The served catalog: a row-pattern MLP, an N:M structured MLP and a
/// small LSTM language model — three distinct `LayerShape` families, so
/// the batcher has real shape mixing to contend with.
fn catalog(smoke: bool) -> Vec<ModelSpec> {
    let scale = if smoke { 4 } else { 1 };
    vec![
        ModelSpec::mlp(
            "mlp-row",
            64,
            vec![256 / scale, 256 / scale],
            10,
            SchemeKind::Row {
                rate: 0.5,
                max_dp: 8,
            },
        ),
        ModelSpec::mlp(
            "mlp-nm",
            48,
            vec![128 / scale, 128 / scale],
            10,
            SchemeKind::Nm { n: 2, m: 4 },
        ),
        ModelSpec::lstm(
            "lstm-row",
            64,
            32 / scale,
            2,
            if smoke { 4 } else { 8 },
            SchemeKind::Row {
                rate: 0.5,
                max_dp: 4,
            },
        ),
    ]
}

/// One tenant's deterministic job trace: model/shape mix and train/infer
/// mix drawn from a per-tenant seed, identical across policy runs.
fn tenant_trace(cfg: &Config, models: usize, tenant: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00 ^ tenant.wrapping_mul(0x9E37_79B9));
    (0..cfg.requests_per_tenant)
        .map(|i| {
            let model = rng.gen_range(0..models);
            // LSTM rows are sequences (BPTT-heavy); keep them smaller than
            // MLP rows so the shape mix stays balanced in wall-clock terms.
            let rows = if model == 2 {
                rng.gen_range(1..3usize)
            } else {
                rng.gen_range(2..9usize)
            };
            let kind = if rng.gen::<f32>() < 0.25 {
                JobKind::Infer
            } else {
                JobKind::Train
            };
            JobSpec {
                tenant,
                model,
                rows,
                seed: (tenant << 32) | i as u64,
                kind,
            }
        })
        .collect()
}

struct PolicyStats {
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    mean_batch_rows: f64,
    jobs: u64,
    batches: u64,
    plan_cache_hit_rate: f64,
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx].as_secs_f64() * 1e6
}

/// Replays every tenant trace against a fresh server under `policy` and
/// collects end-to-end latencies plus the server's own report.
fn run_policy(cfg: &Config, policy: BatchPolicy, traces: &[Vec<JobSpec>]) -> PolicyStats {
    let server = Server::start(
        ServeConfig {
            workers: cfg.workers,
            policy,
            plan_cache: true,
            plan_cache_shards: 16,
            epoch_rounds: cfg.epoch_rounds,
            init_seed: 42,
        },
        catalog(cfg.mode == "smoke"),
    );
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .iter()
            .map(|trace| {
                let client = server.client();
                scope.spawn(move || {
                    let mut outstanding: VecDeque<std::sync::mpsc::Receiver<serve::JobResult>> =
                        VecDeque::new();
                    let mut latencies = Vec::with_capacity(trace.len());
                    for &spec in trace {
                        if outstanding.len() >= cfg.window {
                            let rx = outstanding.pop_front().expect("window is non-empty");
                            latencies.push(rx.recv().expect("job must complete").latency);
                        }
                        outstanding.push_back(client.submit(spec));
                    }
                    for rx in outstanding {
                        latencies.push(rx.recv().expect("job must complete").latency);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let report: ServeReport = server.shutdown();
    let mut sorted = latencies;
    sorted.sort();
    let cache = report.plan_cache.expect("plan cache is enabled");
    PolicyStats {
        throughput_rps: report.jobs as f64 / elapsed.as_secs_f64(),
        p50_us: percentile_us(&sorted, 0.50),
        p99_us: percentile_us(&sorted, 0.99),
        p999_us: percentile_us(&sorted, 0.999),
        mean_batch_rows: report.mean_batch_rows(),
        jobs: report.jobs,
        batches: report.batches,
        plan_cache_hit_rate: cache.hit_rate(),
    }
}

fn usize_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == name {
            iter.next().map(String::as_str)
        } else if let Some(inline) = arg.strip_prefix(&format!("{name}=")) {
            Some(inline)
        } else {
            continue;
        };
        match value
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            Some(n) => return n,
            None => {
                eprintln!("{name} expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn policy_json(label: &str, stats: &PolicyStats) -> String {
    format!(
        "  \"{label}\": {{\n    \"throughput_rps\": {:.3},\n    \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    \"p999_us\": {:.1},\n    \"mean_batch_rows\": {:.3},\n    \"jobs\": {},\n    \"batches\": {},\n    \"plan_cache_hit_rate\": {:.4}\n  }}",
        stats.throughput_rps,
        stats.p50_us,
        stats.p99_us,
        stats.p999_us,
        stats.mean_batch_rows,
        stats.jobs,
        stats.batches,
        stats.plan_cache_hit_rate,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mut cfg = if smoke { SMOKE } else { FULL };
    bench::init_bench("bench_serve");
    cfg.tenants = usize_flag("--tenants", cfg.tenants as usize) as u64;
    cfg.requests_per_tenant = usize_flag("--requests", cfg.requests_per_tenant);
    cfg.window = usize_flag("--window", cfg.window);

    let models = catalog(smoke);
    let traces: Vec<Vec<JobSpec>> = (0..cfg.tenants)
        .map(|tenant| tenant_trace(&cfg, models.len(), tenant))
        .collect();
    let total_jobs: usize = traces.iter().map(Vec::len).sum();
    eprintln!(
        "serving {} jobs from {} tenants over {} models ({} workers, window {}, {} pool thread(s))",
        total_jobs,
        cfg.tenants,
        models.len(),
        cfg.workers,
        cfg.window,
        pool::threads(),
    );

    let per_request = run_policy(&cfg, BatchPolicy::PerRequest, &traces);
    eprintln!(
        "per-request   {:>8.1} jobs/s  p50 {:>8.0} us  p99 {:>8.0} us  ({} batches)",
        per_request.throughput_rps, per_request.p50_us, per_request.p99_us, per_request.batches
    );
    let dynamic = run_policy(
        &cfg,
        BatchPolicy::Dynamic {
            max_batch_rows: cfg.max_batch_rows,
            deadline: Duration::from_micros(cfg.deadline_us),
        },
        &traces,
    );
    eprintln!(
        "dynamic       {:>8.1} jobs/s  p50 {:>8.0} us  p99 {:>8.0} us  ({} batches, {:.1} rows/batch, {:.0}% cache hits)",
        dynamic.throughput_rps,
        dynamic.p50_us,
        dynamic.p99_us,
        dynamic.batches,
        dynamic.mean_batch_rows,
        dynamic.plan_cache_hit_rate * 100.0
    );
    let speedup = dynamic.throughput_rps / per_request.throughput_rps;
    eprintln!("dynamic batching throughput speedup: {speedup:.2}x");

    // Price the same dispatch decision on the device model: deterministic,
    // so the baseline gate holds these at the tight sim_* tolerance.
    let sim_devices = [
        ("gtx_1080ti", GpuConfig::gtx_1080ti()),
        ("sparse_tensor_core", GpuConfig::sparse_tensor_core()),
    ];
    let sim_speedups: Vec<(&str, f64)> = sim_devices
        .iter()
        .map(|(key, gpu)| {
            let s = simulated_policy_speedup(
                gpu,
                &models[0],
                0,
                0,
                cfg.sim_rows_per_request,
                cfg.sim_requests,
            );
            eprintln!(
                "sim {}x{}-row dispatches coalesced: {s:.2}x on {key}",
                cfg.sim_requests, cfg.sim_rows_per_request
            );
            (*key, s)
        })
        .collect();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let model_names: Vec<String> = models.iter().map(|m| format!("\"{}\"", m.name)).collect();
    let json = format!
        (
        "{{\n  \"mode\": \"{mode}\",\n  \"available_parallelism\": {cores},\n  \"tensor_threads\": {threads},\n  \"workers\": {workers},\n  \"tenants\": {tenants},\n  \"requests_per_tenant\": {requests},\n  \"window\": {window},\n  \"max_batch_rows\": {max_rows},\n  \"deadline_us\": {deadline},\n  \"epoch_rounds\": {epoch_rounds},\n  \"models\": [{names}],\n{per_request},\n{dynamic},\n  \"speedup_dynamic_vs_per_request\": {speedup:.3},\n  \"sim_speedup_dynamic_vs_per_request_{sim0_key}\": {sim0:.3},\n  \"sim_speedup_dynamic_vs_per_request_{sim1_key}\": {sim1:.3}\n}}\n",
        mode = cfg.mode,
        threads = pool::threads(),
        workers = cfg.workers,
        tenants = cfg.tenants,
        requests = cfg.requests_per_tenant,
        window = cfg.window,
        max_rows = cfg.max_batch_rows,
        deadline = cfg.deadline_us,
        epoch_rounds = cfg.epoch_rounds,
        names = model_names.join(", "),
        per_request = policy_json("per_request", &per_request),
        dynamic = policy_json("dynamic", &dynamic),
        speedup = speedup,
        sim0_key = sim_speedups[0].0,
        sim0 = sim_speedups[0].1,
        sim1_key = sim_speedups[1].0,
        sim1 = sim_speedups[1].1,
    );

    let out_path = std::env::var("BENCH_SERVE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_SERVE.json", env!("CARGO_MANIFEST_DIR")));
    // In --check-baseline mode the committed file is the baseline; read it
    // before the fresh result overwrites it, and write the fresh JSON
    // before enforcing so the CI artifact carries the regressed run too.
    let check_baseline = std::env::args().any(|a| a == "--check-baseline");
    let baseline_path = std::env::var("BENCH_SERVE_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../BENCH_SERVE.json", env!("CARGO_MANIFEST_DIR")));
    let baseline = check_baseline
        .then(|| bench::baseline::read_baseline_or_exit(&baseline_path, "bench_serve"));
    std::fs::write(&out_path, &json).expect("writing BENCH_SERVE.json failed");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if let Some(baseline) = baseline {
        bench::baseline::enforce_baseline(&baseline, &baseline_path, &json, "bench_serve");
    }

    // Win conditions, opt-in via BENCH_ASSERT=1 (CI). The measured
    // throughput gate arms on full runs only — smoke traffic is far too
    // small for stable wall-clock ratios — while the simulated ratios are
    // deterministic and gate everywhere.
    if std::env::var("BENCH_ASSERT").is_ok_and(|v| v != "0") {
        let mut failures = Vec::new();
        if !smoke && speedup <= 1.0 {
            failures.push(format!(
                "dynamic batching throughput speedup {speedup:.3}x <= 1.0x over per-request dispatch"
            ));
        }
        if dynamic.plan_cache_hit_rate <= 0.0 {
            failures.push("plan cache recorded no hits under dynamic batching".to_string());
        }
        for (device, s) in &sim_speedups {
            if *s <= 1.0 {
                failures.push(format!(
                    "simulated coalescing speedup {s:.3}x <= 1.0x on {device}"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("BENCH_ASSERT failures:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("BENCH_ASSERT passed");
    }
}
