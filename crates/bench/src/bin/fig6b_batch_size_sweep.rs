//! Fig. 6(b) — speedup and perplexity as the batch size grows from 20 to 40
//! (Row pattern, fixed dropout rate).
//!
//! The paper observes that the speedup rises with the batch size (the GEMMs
//! grow while the one-time pattern-search cost stays fixed) while perplexity
//! creeps up because a single pattern is shared by the whole, larger batch —
//! fewer distinct sub-models per epoch.

use bench::{
    default_train_iterations, ptb_timing_model, speedup_vs_baseline, train_scaled_lstm, Method,
    Report,
};

fn main() {
    let batch_sizes = [20usize, 25, 30, 35, 40];
    let rate = 0.5;
    let iterations = default_train_iterations().min(120);

    let mut report = Report::new(
        "Fig. 6(b) — batch-size sweep at dropout rate 0.5 (Row pattern)",
        &[
            "batch size",
            "speedup",
            "perplexity (ROW)",
            "perplexity (baseline)",
        ],
    );
    for &batch in &batch_sizes {
        let model = ptb_timing_model(batch);
        let speedup = speedup_vs_baseline(&model, Method::Row, rate);
        // The scaled CPU run keeps the same number of *iterations*, so a
        // larger batch means fewer distinct patterns per token processed —
        // the effect responsible for the perplexity increase in the paper.
        let scaled_batch = (batch / 2).max(4);
        let row = train_scaled_lstm(Method::Row, rate, 150, 32, 3, scaled_batch, iterations);
        let baseline =
            train_scaled_lstm(Method::Baseline, rate, 150, 32, 3, scaled_batch, iterations);
        report.add_row(&[
            format!("{batch}"),
            format!("{speedup:.2}x"),
            format!("{:.2}", row.perplexity),
            format!("{:.2}", baseline.perplexity),
        ]);
    }
    report.print();
}
