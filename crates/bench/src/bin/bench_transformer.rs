//! Transformer encoder benchmark: structured attention dropout end-to-end.
//!
//! The third model family's paper-figure run. For every dropout variant the
//! bench records
//!
//! 1. held-out perplexity (and next-token accuracy) of the down-scaled
//!    encoder LM trained on the synthetic PTB-like corpus — the quality
//!    axis of the speedup-vs-perplexity curve, plus the measured CPU
//!    wall-clock of that training run (speedup vs the conventional
//!    Bernoulli run), and
//! 2. the simulated per-iteration speedup of the paper-scale encoder
//!    (512-wide, 8 heads, 4× FFN, 2 blocks, seq 35, PTB vocab) on the
//!    three device presets — GTX 1080Ti, server-class HBM and the
//!    A100-class sparse-tensor-core preset — against a rate-matched
//!    conventional-dropout baseline on the same droppable positions.
//!
//! Variants cover the structured attention family: whole-head drop
//! (`BlockUnit` over the head dimension) at two rates, 2:4 `NmSparsity` on
//! the Q/K/V/O projection weights, row dropout on the FFN expansion, and
//! the conventional Bernoulli point that anchors the curve at 1×.
//!
//! Results land in `BENCH_TRANSFORMER.json` at the repository root. Run
//! `cargo run --release -p bench --bin bench_transformer` for the full
//! shapes, or pass `--smoke` (CI) for tiny shapes that finish in seconds.
//! Pass `--check-baseline` to compare every speedup ratio against the
//! committed `BENCH_TRANSFORMER.json` (`BENCH_TOLERANCE`, default 15%).

use approx_dropout::{scheme, DropoutRate, DropoutScheme};
use data::{CorpusConfig, SyntheticCorpus};
use gpu_sim::{GpuConfig, NetworkTimingModel, TransformerSpec};
use nn::transformer::{TransformerLm, TransformerLmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tensor::pool;

/// Encoder blocks of both the scaled CPU model and the paper-scale spec.
const LAYERS: usize = 2;

struct Config {
    mode: &'static str,
    vocab: usize,
    model_dim: usize,
    heads: usize,
    ff_dim: usize,
    batch: usize,
    seq_len: usize,
    iterations: usize,
    samples: usize,
}

const FULL: Config = Config {
    mode: "full",
    vocab: 800,
    model_dim: 64,
    heads: 4,
    ff_dim: 128,
    batch: 16,
    seq_len: 12,
    iterations: 600,
    samples: 192,
};

const SMOKE: Config = Config {
    mode: "smoke",
    vocab: 120,
    model_dim: 32,
    heads: 4,
    ff_dim: 64,
    batch: 8,
    seq_len: 8,
    iterations: 8,
    samples: 48,
};

/// One benchmarked dropout variant: the `(attention, FFN)` scheme pair at
/// paper scale (drives the timing model), the same pair down-scaled for the
/// CPU convergence run, and the rate-matched conventional baseline pair the
/// simulated speedup is taken against.
struct Variant {
    key: &'static str,
    params: String,
    rate: f64,
    attn_full: Box<dyn DropoutScheme>,
    ffn_full: Box<dyn DropoutScheme>,
    attn_scaled: Box<dyn DropoutScheme>,
    ffn_scaled: Box<dyn DropoutScheme>,
    attn_base: Box<dyn DropoutScheme>,
    ffn_base: Box<dyn DropoutScheme>,
}

fn variants(cfg: &Config) -> Vec<Variant> {
    let rate = |p: f64| DropoutRate::new(p).unwrap();
    let full_hd = TransformerSpec::paper_ptb_transformer().head_dim();
    let scaled_hd = cfg.model_dim / cfg.heads;
    vec![
        Variant {
            key: "bernoulli_0_25",
            params: "conventional, rate 0.25 on both positions".into(),
            rate: 0.25,
            attn_full: scheme::bernoulli(rate(0.25)),
            ffn_full: scheme::bernoulli(rate(0.25)),
            attn_scaled: scheme::bernoulli(rate(0.25)),
            ffn_scaled: scheme::bernoulli(rate(0.25)),
            attn_base: scheme::bernoulli(rate(0.25)),
            ffn_base: scheme::bernoulli(rate(0.25)),
        },
        Variant {
            key: "head_drop_0_25",
            params: format!("whole-head BlockUnit rate 0.25, block {full_hd}"),
            rate: 0.25,
            attn_full: scheme::block_unit(rate(0.25), full_hd).unwrap(),
            ffn_full: scheme::none(),
            attn_scaled: scheme::block_unit(rate(0.25), scaled_hd).unwrap(),
            ffn_scaled: scheme::none(),
            attn_base: scheme::bernoulli(rate(0.25)),
            ffn_base: scheme::none(),
        },
        Variant {
            key: "head_drop_0_5",
            params: format!("whole-head BlockUnit rate 0.5, block {full_hd}"),
            rate: 0.5,
            attn_full: scheme::block_unit(rate(0.5), full_hd).unwrap(),
            ffn_full: scheme::none(),
            attn_scaled: scheme::block_unit(rate(0.5), scaled_hd).unwrap(),
            ffn_scaled: scheme::none(),
            attn_base: scheme::bernoulli(rate(0.5)),
            ffn_base: scheme::none(),
        },
        Variant {
            key: "nm_2_4_proj",
            params: "2:4 lanes on the Q/K/V/O projections".into(),
            rate: 0.5,
            attn_full: scheme::nm(2, 4).unwrap(),
            ffn_full: scheme::none(),
            attn_scaled: scheme::nm(2, 4).unwrap(),
            ffn_scaled: scheme::none(),
            attn_base: scheme::bernoulli(rate(0.5)),
            ffn_base: scheme::none(),
        },
        Variant {
            key: "ffn_row_0_3",
            params: "FFN row dropout rate 0.3, max_dp 8".into(),
            rate: 0.3,
            attn_full: scheme::none(),
            ffn_full: scheme::row(rate(0.3), 8).unwrap(),
            attn_scaled: scheme::none(),
            ffn_scaled: scheme::row(rate(0.3), 8).unwrap(),
            attn_base: scheme::none(),
            ffn_base: scheme::bernoulli(rate(0.3)),
        },
    ]
}

/// Trains the down-scaled encoder LM on the synthetic PTB-like corpus and
/// returns `(train_secs, perplexity, accuracy)` on a held-out batch.
fn train_scaled(
    cfg: &Config,
    attn: Box<dyn DropoutScheme>,
    ffn: Box<dyn DropoutScheme>,
) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let corpus = SyntheticCorpus::new(CorpusConfig {
        vocab: cfg.vocab,
        ..CorpusConfig::ptb_like()
    });
    let config = TransformerLmConfig {
        vocab: cfg.vocab,
        model_dim: cfg.model_dim,
        heads: cfg.heads,
        ff_dim: cfg.ff_dim,
        layers: LAYERS,
        attn_dropout: attn,
        ffn_dropout: ffn,
        learning_rate: 0.05,
        momentum: 0.0,
        grad_clip: 5.0,
    };
    let mut lm = TransformerLm::new(&config, &mut rng);
    let start = Instant::now();
    for it in 0..cfg.iterations {
        let tokens = corpus.batch(cfg.batch, cfg.seq_len, it as u64);
        let _ = lm.train_batch(&tokens, &mut rng);
    }
    let secs = start.elapsed().as_secs_f64();
    let eval = lm.evaluate(&corpus.batch(cfg.batch, cfg.seq_len, u64::MAX / 5));
    (secs, eval.perplexity, eval.accuracy)
}

/// Per-position scheme vector for the paper-scale timing model: one
/// `(attention, FFN)` pair per encoder block.
fn positions(attn: &dyn DropoutScheme, ffn: &dyn DropoutScheme) -> Vec<Box<dyn DropoutScheme>> {
    let mut schemes = Vec::with_capacity(2 * LAYERS);
    for _ in 0..LAYERS {
        schemes.push(attn.clone_box());
        schemes.push(ffn.clone_box());
    }
    schemes
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let cfg = if smoke { SMOKE } else { FULL };
    bench::init_bench("bench_transformer");

    let spec = TransformerSpec::paper_ptb_transformer();
    let models: Vec<(&str, NetworkTimingModel)> = vec![
        ("gtx_1080ti", GpuConfig::gtx_1080ti()),
        ("server_hbm", GpuConfig::server_hbm()),
        ("sparse_tensor_core", GpuConfig::sparse_tensor_core()),
    ]
    .into_iter()
    .map(|(key, gpu)| (key, NetworkTimingModel::transformer(gpu, spec.clone())))
    .collect();

    // Dense (no dropout) anchor of the perplexity axis.
    let (dense_secs, dense_ppl, dense_acc) = train_scaled(&cfg, scheme::none(), scheme::none());
    eprintln!(
        "dense       train {:>8.3} s  ppl {:>9.4}  acc {:.3} (anchor)",
        dense_secs, dense_ppl, dense_acc
    );

    let mut rows = Vec::new();
    for variant in variants(&cfg) {
        let (cpu_secs, ppl, acc) = train_scaled(
            &cfg,
            variant.attn_scaled.clone_box(),
            variant.ffn_scaled.clone_box(),
        );
        let mut sims = Vec::new();
        for (device_key, model) in &models {
            let mut baseline = positions(&*variant.attn_base, &*variant.ffn_base);
            let mut new = positions(&*variant.attn_full, &*variant.ffn_full);
            let speedup = model.speedup_per_layer(&mut baseline, &mut new, cfg.samples, 0x5EED);
            sims.push((*device_key, speedup));
        }
        eprintln!(
            "{:<15} train {:>8.3} s  ppl {:>9.4}  acc {:.3} (sim {:.2}x / {:.2}x / {:.2}x)",
            variant.key, cpu_secs, ppl, acc, sims[0].1, sims[1].1, sims[2].1
        );
        rows.push((variant, cpu_secs, ppl, acc, sims));
    }

    // The conventional Bernoulli run is the measured-CPU baseline the
    // structured variants are compared against (it pays the mask kernels the
    // structured plans avoid).
    let bernoulli_secs = rows
        .iter()
        .find(|(variant, ..)| variant.key == "bernoulli_0_25")
        .map(|(_, secs, ..)| *secs)
        .expect("the conventional variant is always benchmarked");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let variant_json: Vec<String> = rows
        .iter()
        .map(|(variant, cpu_secs, ppl, acc, sims)| {
            let sim_fields: Vec<String> = sims
                .iter()
                .map(|(device, speedup)| format!("\"sim_speedup_{device}\": {speedup:.3}"))
                .collect();
            format!(
                "    \"{key}\": {{\n      \"params\": \"{params}\",\n      \"nominal_rate\": {rate:.2},\n      \"perplexity\": {ppl:.4},\n      \"accuracy\": {acc:.4},\n      \"cpu_secs\": {cpu_secs:.6},\n      \"cpu_speedup_vs_bernoulli\": {cpu_speedup:.3},\n      {sim}\n    }}",
                key = variant.key,
                params = variant.params,
                rate = variant.rate,
                cpu_speedup = bernoulli_secs / cpu_secs,
                sim = sim_fields.join(",\n      "),
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"available_parallelism\": {cores},\n  \"tensor_threads\": {threads},\n  \"simulated_network\": \"transformer encoder {d}x{h}h ff{ff} x{layers}, batch {sb}, seq {ss}, vocab {sv}\",\n  \"corpus\": {{\n    \"vocab\": {vocab},\n    \"batch\": {batch},\n    \"seq_len\": {seq},\n    \"iterations\": {iters}\n  }},\n  \"scaled_model\": {{\n    \"model_dim\": {md},\n    \"heads\": {heads},\n    \"ff_dim\": {ffd},\n    \"layers\": {layers}\n  }},\n  \"dense\": {{\n    \"cpu_secs\": {dsecs:.6},\n    \"perplexity\": {dppl:.4},\n    \"accuracy\": {dacc:.4}\n  }},\n  \"curve\": {{\n{variants}\n  }}\n}}\n",
        mode = cfg.mode,
        threads = pool::threads(),
        d = spec.model_dim,
        h = spec.heads,
        ff = spec.ff_dim,
        layers = LAYERS,
        sb = spec.batch,
        ss = spec.seq_len,
        sv = spec.vocab,
        vocab = cfg.vocab,
        batch = cfg.batch,
        seq = cfg.seq_len,
        iters = cfg.iterations,
        md = cfg.model_dim,
        heads = cfg.heads,
        ffd = cfg.ff_dim,
        dsecs = dense_secs,
        dppl = dense_ppl,
        dacc = dense_acc,
        variants = variant_json.join(",\n"),
    );

    let out_path = std::env::var("BENCH_TRANSFORMER_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_TRANSFORMER.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    // In --check-baseline mode the committed file is the baseline; read it
    // before the fresh result overwrites it, and write the fresh JSON
    // before enforcing so the CI artifact carries the regressed run too.
    let check_baseline = std::env::args().any(|a| a == "--check-baseline");
    let baseline_path = std::env::var("BENCH_TRANSFORMER_BASELINE").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_TRANSFORMER.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let baseline = check_baseline
        .then(|| bench::baseline::read_baseline_or_exit(&baseline_path, "bench_transformer"));
    std::fs::write(&out_path, &json).expect("writing BENCH_TRANSFORMER.json failed");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if let Some(baseline) = baseline {
        bench::baseline::enforce_baseline(&baseline, &baseline_path, &json, "bench_transformer");
    }

    // Regression gates, opt-in via BENCH_ASSERT=1 (CI): every structured
    // attention variant — whole-head drop at both rates, 2:4 on the
    // projections, row dropout on the FFN — must keep a simulated speedup
    // over its rate-matched conventional baseline on every device preset,
    // and every training run must end at a finite perplexity (the
    // convergence half of the curve).
    if std::env::var("BENCH_ASSERT").is_ok_and(|v| v != "0") {
        let mut failures = Vec::new();
        for (variant, _, ppl, _, sims) in &rows {
            if !ppl.is_finite() {
                failures.push(format!("{} perplexity is not finite", variant.key));
            }
            if variant.key == "bernoulli_0_25" {
                continue;
            }
            for (device, speedup) in sims {
                if *speedup <= 1.0 {
                    failures.push(format!(
                        "{} simulated speedup {speedup:.2}x <= 1.0x on {device}",
                        variant.key
                    ));
                }
            }
        }
        if !dense_ppl.is_finite() {
            failures.push("dense perplexity is not finite".to_string());
        }
        if !failures.is_empty() {
            eprintln!("BENCH_ASSERT failures:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("BENCH_ASSERT passed");
    }
}
