//! Fig. 4 — accuracy and speedup of RDP and TDP vs conventional dropout on
//! the 4-layer MLP (hidden 2048, 2048), sweeping per-layer dropout-rate
//! pairs from (0.3, 0.3) to (0.7, 0.7).
//!
//! Speedups are computed with the GPU timing model at the paper's full
//! network size; accuracies come from training a down-scaled MLP on the
//! synthetic MNIST task (see DESIGN.md for the substitution rationale).

use bench::{
    default_train_iterations, mlp_speedup, mlp_timing_model, train_scaled_mlp, Method, Report,
};

fn main() {
    let rate_pairs = [
        (0.3, 0.3),
        (0.5, 0.3),
        (0.7, 0.3),
        (0.3, 0.5),
        (0.5, 0.5),
        (0.7, 0.5),
        (0.3, 0.7),
        (0.5, 0.7),
        (0.7, 0.7),
    ];
    let iterations = default_train_iterations();
    let model = mlp_timing_model(2048, 2048);

    for method in [Method::Row, Method::Tile] {
        let mut report = Report::new(
            format!(
                "Fig. 4 — {} Dropout Pattern (MLP 2048x2048, batch 128)",
                method.label()
            ),
            &[
                "rates (p1,p2)",
                "speedup",
                "new accuracy",
                "old accuracy",
                "acc. delta",
            ],
        );
        for &(r1, r2) in &rate_pairs {
            let speedup = mlp_speedup(&model, method, r1, r2);
            let new_acc = train_scaled_mlp(method, r1, r2, 128, iterations);
            let old_acc = train_scaled_mlp(Method::Baseline, r1, r2, 128, iterations);
            report.add_row(&[
                format!("({r1:.1}, {r2:.1})"),
                format!("{speedup:.2}x"),
                format!("{:.2}%", new_acc.accuracy * 100.0),
                format!("{:.2}%", old_acc.accuracy * 100.0),
                format!("{:+.2}%", (new_acc.accuracy - old_acc.accuracy) * 100.0),
            ]);
        }
        report.print();
    }
}
