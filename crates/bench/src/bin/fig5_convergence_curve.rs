//! Fig. 5 — accuracy-vs-time training curves of the row pattern vs
//! conventional dropout at rate 0.5 on the LSTM.
//!
//! Both runs train the same down-scaled language model; the time axis
//! charges each iteration the time of its *own concretely sampled* dropout
//! plans on the GPU timing model at the paper's LSTM size
//! (`NetworkTimingModel::iteration_time_from_plans`), so the row-pattern
//! curve is compressed horizontally exactly as in the paper's figure — and
//! its per-iteration jitter (the sampled `(dp, bias)` varies) is carried
//! into the simulated clock instead of being averaged away.

use approx_dropout::DropoutScheme;
use bench::{lstm_timing_model, Method, TIMING_SEED};
use data::{CorpusConfig, SyntheticCorpus};
use nn::lstm::{LstmLm, LstmLmConfig};
use nn::trainer::{first_reaching_accuracy, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(method: Method, iterations: usize) -> Vec<nn::trainer::TrainRecord> {
    let corpus = SyntheticCorpus::new(CorpusConfig {
        vocab: 120,
        ..CorpusConfig::small()
    });
    let mut rng = StdRng::seed_from_u64(42);
    let config = LstmLmConfig {
        vocab: 120,
        embed_dim: 32,
        hidden: 32,
        layers: 2,
        dropout: method.scaled_scheme(0.5),
        learning_rate: 0.5,
        momentum: 0.0,
        grad_clip: 5.0,
    };
    let mut lm = LstmLm::new(&config, &mut rng);

    // Paper-scale timing: one scheme per droppable layer of the full-size
    // LSTM, planned iteration by iteration exactly like the training loop
    // plans its own layers — the time of iteration `t` is the time of the
    // plans sampled for iteration `t`.
    let model = lstm_timing_model();
    let mut timing_schemes: Vec<Box<dyn DropoutScheme>> = (0..model.dropout_layers())
        .map(|_| method.scheme(0.5))
        .collect();
    let mut timing_rng = StdRng::seed_from_u64(TIMING_SEED);

    let trainer = Trainer::new(TrainerConfig::new(iterations, 10, 0.0));
    trainer.run_timed(|it| {
        let batch = corpus.batch(10, 12, it as u64);
        let stats = lm.train_batch(&batch, &mut rng);
        let plans = model.plan_iteration(&mut timing_schemes, &mut timing_rng);
        let time_us = model.iteration_time_from_plans(&plans).total_us();
        (stats.loss as f64, stats.accuracy, time_us)
    })
}

fn main() {
    let iterations = if std::env::var("ARD_FAST").map(|v| v == "1").unwrap_or(false) {
        60
    } else {
        300
    };

    println!("# Fig. 5 — training accuracy vs simulated time (dropout 0.5)");
    println!("# time axis: per-iteration sampled plan times on the paper-scale LSTM model");
    println!(
        "{:<12} {:>16} {:>12} {:>18} {:>14}",
        "iteration", "baseline_time_ms", "baseline_acc", "row_pattern_time_ms", "row_pattern_acc"
    );

    let baseline = run(Method::Baseline, iterations);
    let row = run(Method::Row, iterations);
    for (b, r) in baseline.iter().zip(&row) {
        println!(
            "{:<12} {:>16.2} {:>12.3} {:>18.2} {:>14.3}",
            b.iteration,
            b.elapsed_us / 1e3,
            b.accuracy,
            r.elapsed_us / 1e3,
            r.accuracy
        );
    }

    if let (Some(b), Some(r)) = (baseline.last(), row.last()) {
        println!(
            "\n# mean per-iteration time: baseline {:.1} us, row pattern {:.1} us",
            b.elapsed_us / b.iteration as f64,
            r.elapsed_us / r.iteration as f64
        );
    }

    let target = 0.5;
    match (
        first_reaching_accuracy(&baseline, target),
        first_reaching_accuracy(&row, target),
    ) {
        (Some(b), Some(r)) => println!(
            "time to reach {:.0}% accuracy: baseline {:.1} ms, row pattern {:.1} ms ({:.2}x earlier)",
            target * 100.0,
            b.elapsed_us / 1e3,
            r.elapsed_us / 1e3,
            b.elapsed_us / r.elapsed_us
        ),
        _ => println!("target accuracy {:.0}% not reached within {iterations} iterations", target * 100.0),
    }
}
