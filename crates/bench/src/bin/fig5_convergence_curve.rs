//! Fig. 5 — accuracy-vs-time training curves of the row pattern vs
//! conventional dropout at rate 0.5 on the LSTM.
//!
//! Both runs train the same down-scaled language model; the time axis charges
//! each iteration the per-iteration time of the corresponding method on the
//! GPU timing model at the paper's LSTM size, so the row-pattern curve is
//! compressed horizontally exactly as in the paper's figure.

use bench::{iteration_time_us, lstm_timing_model, Method};
use data::{CorpusConfig, SyntheticCorpus};
use nn::lstm::{LstmLm, LstmLmConfig};
use nn::trainer::{first_reaching_accuracy, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(
    method: Method,
    iterations: usize,
    time_per_iteration_us: f64,
) -> Vec<nn::trainer::TrainRecord> {
    let corpus = SyntheticCorpus::new(CorpusConfig {
        vocab: 120,
        ..CorpusConfig::small()
    });
    let mut rng = StdRng::seed_from_u64(42);
    let config = LstmLmConfig {
        vocab: 120,
        embed_dim: 32,
        hidden: 32,
        layers: 2,
        dropout: method.scaled_scheme(0.5),
        learning_rate: 0.5,
        momentum: 0.0,
        grad_clip: 5.0,
    };
    let mut lm = LstmLm::new(&config, &mut rng);
    let trainer = Trainer::new(TrainerConfig::new(iterations, 10, time_per_iteration_us));
    trainer.run(|it| {
        let batch = corpus.batch(10, 12, it as u64);
        let stats = lm.train_batch(&batch, &mut rng);
        (stats.loss as f64, stats.accuracy)
    })
}

fn main() {
    let iterations = if std::env::var("ARD_FAST").map(|v| v == "1").unwrap_or(false) {
        60
    } else {
        300
    };
    let model = lstm_timing_model();
    let baseline_time = iteration_time_us(&model, Method::Baseline, 0.5);
    let row_time = iteration_time_us(&model, Method::Row, 0.5);

    println!("# Fig. 5 — training accuracy vs simulated time (dropout 0.5)");
    println!(
        "# per-iteration time: baseline {:.1} us, row pattern {:.1} us",
        baseline_time, row_time
    );
    println!(
        "{:<12} {:>16} {:>12} {:>18} {:>14}",
        "iteration", "baseline_time_ms", "baseline_acc", "row_pattern_time_ms", "row_pattern_acc"
    );

    let baseline = run(Method::Baseline, iterations, baseline_time);
    let row = run(Method::Row, iterations, row_time);
    for (b, r) in baseline.iter().zip(&row) {
        println!(
            "{:<12} {:>16.2} {:>12.3} {:>18.2} {:>14.3}",
            b.iteration,
            b.elapsed_us / 1e3,
            b.accuracy,
            r.elapsed_us / 1e3,
            r.accuracy
        );
    }

    let target = 0.5;
    match (
        first_reaching_accuracy(&baseline, target),
        first_reaching_accuracy(&row, target),
    ) {
        (Some(b), Some(r)) => println!(
            "\ntime to reach {:.0}% accuracy: baseline {:.1} ms, row pattern {:.1} ms ({:.2}x earlier)",
            target * 100.0,
            b.elapsed_us / 1e3,
            r.elapsed_us / 1e3,
            b.elapsed_us / r.elapsed_us
        ),
        _ => println!("\ntarget accuracy {:.0}% not reached within {iterations} iterations", target * 100.0),
    }
}
