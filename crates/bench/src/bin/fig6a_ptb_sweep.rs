//! Fig. 6(a) — 3-layer LSTM on the PTB-scale corpus: test perplexity and
//! speedup of the Row-based Dropout Pattern as the dropout rate sweeps from
//! 0.3 to 0.7.

use bench::{
    default_train_iterations, ptb_timing_model, speedup_vs_baseline, train_scaled_lstm, Method,
    Report,
};

fn main() {
    let rates = [0.3, 0.4, 0.5, 0.6, 0.7];
    let iterations = default_train_iterations().min(120);
    let model = ptb_timing_model(20);

    let mut report = Report::new(
        "Fig. 6(a) — PTB-scale corpus, 3-layer LSTM, Row pattern",
        &[
            "dropout rate",
            "speedup",
            "perplexity (ROW)",
            "perplexity (baseline)",
            "delta",
        ],
    );
    for &rate in &rates {
        let speedup = speedup_vs_baseline(&model, Method::Row, rate);
        let row = train_scaled_lstm(Method::Row, rate, 150, 32, 3, 10, iterations);
        let baseline = train_scaled_lstm(Method::Baseline, rate, 150, 32, 3, 10, iterations);
        report.add_row(&[
            format!("{rate:.1}"),
            format!("{speedup:.2}x"),
            format!("{:.2}", row.perplexity),
            format!("{:.2}", baseline.perplexity),
            format!("{:+.2}", row.perplexity - baseline.perplexity),
        ]);
    }
    report.print();
}
