//! Structured-sparsity benchmark: N:M and block-unit schemes against the
//! Bernoulli baseline and the paper's RDP/TDP patterns.
//!
//! For every variant the bench records
//!
//! 1. CPU wall-clock of one MLP training epoch executing the scheme's
//!    plans through the compacted kernels (speedup vs the Bernoulli
//!    baseline epoch), and
//! 2. the simulated per-iteration speedup on the paper's MLP at full scale,
//!    on **three** device shapes — the consumer GTX 1080Ti, the
//!    bandwidth-rich server-class HBM preset and the A100-class
//!    sparse-tensor-core preset — each against a Bernoulli baseline at the
//!    variant's own nominal dropout rate, and
//! 3. the `tensor_core_2_4` section: the hardware-2:4 win on the
//!    sparse-tensor-core preset — the same 2:4 plans priced through the
//!    tensor-core roofline vs their SIMT-gather pricing on identical
//!    silicon (tensor cores stripped), and vs the Bernoulli baseline, and
//! 4. the `crs` section: the sampled-GEMM (CRS) approximation axis at
//!    `k/K ∈ {1/4, 1/2, 3/4}` plus the composed row-dropout × CRS scheme.
//!    CRS approximates the *dense* GEMM rather than emulating dropout, so
//!    this section's baseline is the no-dropout epoch/iteration — and the
//!    composed row must beat both of its axes alone against that common
//!    baseline.
//!
//! Results land in `BENCH_STRUCTURED.json` at the repository root,
//! extending the perf trajectory started by `BENCH_HOTPATH.json`. Run
//! `cargo run --release -p bench --bin bench_structured` for the full
//! shapes, or pass `--smoke` (CI) for tiny shapes that finish in seconds.
//! Pass `--check-baseline` to additionally compare every speedup ratio of
//! this run against the committed `BENCH_STRUCTURED.json` and fail on a
//! regression beyond the tolerance (`BENCH_TOLERANCE`, default 15%).

use approx_dropout::{scheme, DropoutRate, DropoutScheme};
use gpu_sim::{GpuConfig, MlpSpec, NetworkTimingModel};
use nn::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tensor::{init, pool};

struct Config {
    mode: &'static str,
    input_dim: usize,
    hidden: usize,
    batch: usize,
    batches: usize,
    reps: usize,
    samples: usize,
}

const FULL: Config = Config {
    mode: "full",
    input_dim: 512,
    hidden: 512,
    batch: 256,
    batches: 4,
    reps: 3,
    samples: 192,
};

const SMOKE: Config = Config {
    mode: "smoke",
    input_dim: 64,
    hidden: 64,
    batch: 48,
    batches: 2,
    reps: 1,
    samples: 48,
};

/// One benchmarked scheme variant. `rate` is the nominal dropout rate the
/// Bernoulli baseline is matched at.
struct Variant {
    key: &'static str,
    params: String,
    rate: f64,
    /// Scheme at the paper's full network scale (drives the timing model).
    full: Box<dyn DropoutScheme>,
    /// Scheme for the down-scaled CPU training run.
    scaled: Box<dyn DropoutScheme>,
}

fn variants() -> Vec<Variant> {
    let rate = |p: f64| DropoutRate::new(p).unwrap();
    vec![
        Variant {
            key: "row",
            params: "rate 0.5, max_dp 16".into(),
            rate: 0.5,
            full: scheme::row(rate(0.5), 16).unwrap(),
            scaled: scheme::row(rate(0.5), 8).unwrap(),
        },
        Variant {
            key: "tile",
            params: "rate 0.5, tile 32".into(),
            rate: 0.5,
            full: scheme::tile(rate(0.5), 16, 32).unwrap(),
            scaled: scheme::tile(rate(0.5), 8, 16).unwrap(),
        },
        Variant {
            key: "nm_2_4",
            params: "2:4 lanes".into(),
            rate: 0.5,
            full: scheme::nm(2, 4).unwrap(),
            scaled: scheme::nm(2, 4).unwrap(),
        },
        Variant {
            key: "nm_1_4",
            params: "1:4 lanes".into(),
            rate: 0.75,
            full: scheme::nm(1, 4).unwrap(),
            scaled: scheme::nm(1, 4).unwrap(),
        },
        Variant {
            key: "block_16",
            params: "rate 0.5, block 16".into(),
            rate: 0.5,
            full: scheme::block_unit(rate(0.5), 16).unwrap(),
            scaled: scheme::block_unit(rate(0.5), 16).unwrap(),
        },
        Variant {
            key: "block_32",
            params: "rate 0.5, block 32".into(),
            rate: 0.5,
            full: scheme::block_unit(rate(0.5), 32).unwrap(),
            scaled: scheme::block_unit(rate(0.5), 32).unwrap(),
        },
    ]
}

/// Best-of-`reps` wall-clock seconds for one invocation of `f` (after one
/// warm-up call).
fn bench(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Wall-clock seconds of one MLP training epoch under `dropout`.
fn cpu_epoch_secs(cfg: &Config, dropout: Box<dyn DropoutScheme>) -> f64 {
    let mut rng = StdRng::seed_from_u64(0x57A7);
    let config = MlpConfig {
        input_dim: cfg.input_dim,
        hidden: vec![cfg.hidden, cfg.hidden],
        output_dim: 10,
        dropout,
        learning_rate: 0.01,
        momentum: 0.9,
    };
    let inputs = init::uniform(&mut rng, cfg.batch, cfg.input_dim, -1.0, 1.0);
    let labels: Vec<usize> = (0..cfg.batch).map(|i| i % 10).collect();
    let mut mlp = Mlp::new(&config, &mut rng);
    let mut train_rng = StdRng::seed_from_u64(7);
    bench(cfg.reps, || {
        for _ in 0..cfg.batches {
            std::hint::black_box(mlp.train_batch(&inputs, &labels, &mut train_rng));
        }
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0");
    let cfg = if smoke { SMOKE } else { FULL };
    // Shared startup: `--threads N` overrides the pool width
    // (TENSOR_THREADS is the fallback, a conflicting pair is a hard
    // error), `--no-simd` forces the scalar kernels, `--tune` reruns the
    // blocking autotuner; the chosen width lands in the JSON as
    // "tensor_threads".
    bench::init_bench("bench_structured");

    let devices: Vec<(&str, GpuConfig)> = vec![
        ("gtx_1080ti", GpuConfig::gtx_1080ti()),
        ("server_hbm", GpuConfig::server_hbm()),
        ("sparse_tensor_core", GpuConfig::sparse_tensor_core()),
    ];
    let models: Vec<(&str, NetworkTimingModel)> = devices
        .into_iter()
        .map(|(key, gpu)| (key, NetworkTimingModel::mlp(gpu, MlpSpec::paper_mlp())))
        .collect();

    // Bernoulli baseline CPU epoch (rate 0.5; the N:M 1:4 variant's CPU
    // speedup is also reported against this epoch, its simulated speedup
    // against a rate-matched baseline).
    let bernoulli_secs = cpu_epoch_secs(&cfg, scheme::bernoulli(DropoutRate::new(0.5).unwrap()));
    eprintln!(
        "bernoulli 0.5 epoch     {:>10.3} ms (baseline)",
        bernoulli_secs * 1e3
    );

    let mut rows = Vec::new();
    for variant in variants() {
        let cpu_secs = cpu_epoch_secs(&cfg, variant.scaled.clone());
        let cpu_speedup = bernoulli_secs / cpu_secs;
        let mut sims = Vec::new();
        for (device_key, model) in &models {
            let baseline = scheme::bernoulli(DropoutRate::new(variant.rate).unwrap());
            let speedup = model.speedup(&*baseline, &*variant.full, cfg.samples, 0x5EED);
            sims.push((*device_key, speedup));
        }
        eprintln!(
            "{:<10} epoch {:>10.3} ms ({:.2}x cpu; sim {:.2}x / {:.2}x / {:.2}x)",
            variant.key,
            cpu_secs * 1e3,
            cpu_speedup,
            sims[0].1,
            sims[1].1,
            sims[2].1
        );
        rows.push((variant, cpu_secs, cpu_speedup, sims));
    }

    // The hardware-2:4 section: on the sparse-tensor-core preset, the same
    // 2:4 plans priced through the tensor-core roofline vs (a) their
    // SIMT-gather pricing on identical silicon (tensor cores stripped) and
    // (b) the rate-matched Bernoulli baseline. Only (a) needs fresh
    // pricing; (b) is exactly the nm_2_4 variant's sparse-preset speedup
    // already computed above (same model, samples, seed and baseline).
    let sparse = GpuConfig::sparse_tensor_core();
    let tc_model = NetworkTimingModel::mlp(sparse.clone(), MlpSpec::paper_mlp());
    let gather_model = NetworkTimingModel::mlp(sparse.without_tensor_cores(), MlpSpec::paper_mlp());
    let nm24 = scheme::nm(2, 4).unwrap();
    let t_tc = tc_model
        .expected_iteration_time(&*nm24, cfg.samples, 0x5EED)
        .total_us();
    let t_gather = gather_model
        .expected_iteration_time(&*nm24, cfg.samples, 0x5EED)
        .total_us();
    let tc_vs_gather = t_gather / t_tc;
    let tc_vs_bernoulli = rows
        .iter()
        .find(|(variant, ..)| variant.key == "nm_2_4")
        .and_then(|(_, _, _, sims)| {
            sims.iter()
                .find(|(device, _)| *device == "sparse_tensor_core")
        })
        .map(|(_, speedup)| *speedup)
        .expect("nm_2_4 is benchmarked on the sparse preset");
    eprintln!(
        "tensor-core 2:4 on {}: {:.3}x vs SIMT-gather pricing, {:.3}x vs bernoulli",
        sparse.name, tc_vs_gather, tc_vs_bernoulli
    );

    // The CRS (sampled-GEMM) section. CRS approximates the dense GEMM, so
    // its baseline — on the CPU and in the simulator — is the no-dropout
    // run, not the Bernoulli one. The row-only entry prices the row scheme
    // against the same dense baseline so the composed row×CRS entry can be
    // compared against either axis alone on equal footing.
    let dense_secs = cpu_epoch_secs(&cfg, scheme::none());
    eprintln!(
        "dense (no dropout) epoch {:>9.3} ms (crs baseline)",
        dense_secs * 1e3
    );
    let rate = |p: f64| DropoutRate::new(p).unwrap();
    let crs_variants: Vec<Variant> = vec![
        Variant {
            key: "crs_0_25",
            params: "keep 0.25".into(),
            rate: 0.0,
            full: scheme::crs(0.25).unwrap(),
            scaled: scheme::crs(0.25).unwrap(),
        },
        Variant {
            key: "crs_0_50",
            params: "keep 0.5".into(),
            rate: 0.0,
            full: scheme::crs(0.5).unwrap(),
            scaled: scheme::crs(0.5).unwrap(),
        },
        Variant {
            key: "crs_0_75",
            params: "keep 0.75".into(),
            rate: 0.0,
            full: scheme::crs(0.75).unwrap(),
            scaled: scheme::crs(0.75).unwrap(),
        },
        Variant {
            key: "row_only",
            params: "rate 0.5, max_dp 16".into(),
            rate: 0.5,
            full: scheme::row(rate(0.5), 16).unwrap(),
            scaled: scheme::row(rate(0.5), 8).unwrap(),
        },
        Variant {
            key: "row_crs",
            params: "rate 0.5, max_dp 16, keep 0.5".into(),
            rate: 0.5,
            full: scheme::row_crs(rate(0.5), 16, 0.5).unwrap(),
            scaled: scheme::row_crs(rate(0.5), 8, 0.5).unwrap(),
        },
    ];
    let mut crs_rows = Vec::new();
    for variant in crs_variants {
        let cpu_secs = cpu_epoch_secs(&cfg, variant.scaled.clone());
        let cpu_speedup = dense_secs / cpu_secs;
        let baseline = scheme::none();
        let sims: Vec<(&str, f64)> = models
            .iter()
            .map(|(device_key, model)| {
                (
                    *device_key,
                    model.speedup(&*baseline, &*variant.full, cfg.samples, 0x5EED),
                )
            })
            .collect();
        eprintln!(
            "{:<10} epoch {:>10.3} ms ({:.2}x cpu vs dense; sim {:.2}x / {:.2}x / {:.2}x)",
            variant.key,
            cpu_secs * 1e3,
            cpu_speedup,
            sims[0].1,
            sims[1].1,
            sims[2].1
        );
        crs_rows.push((variant, cpu_secs, cpu_speedup, sims));
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let variant_json: Vec<String> = rows
        .iter()
        .map(|(variant, cpu_secs, cpu_speedup, sims)| {
            let sim_fields: Vec<String> = sims
                .iter()
                .map(|(device, speedup)| format!("\"sim_speedup_{device}\": {speedup:.3}"))
                .collect();
            format!(
                "    \"{key}\": {{\n      \"params\": \"{params}\",\n      \"nominal_rate\": {rate:.2},\n      \"cpu_secs\": {cpu_secs:.6},\n      \"cpu_speedup_vs_bernoulli\": {cpu_speedup:.3},\n      {sim}\n    }}",
                key = variant.key,
                params = variant.params,
                rate = variant.rate,
                sim = sim_fields.join(",\n      "),
            )
        })
        .collect();

    let crs_json: Vec<String> = crs_rows
        .iter()
        .map(|(variant, cpu_secs, cpu_speedup, sims)| {
            let sim_fields: Vec<String> = sims
                .iter()
                .map(|(device, speedup)| format!("\"sim_speedup_{device}\": {speedup:.3}"))
                .collect();
            format!(
                "    \"{key}\": {{\n      \"params\": \"{params}\",\n      \"cpu_secs\": {cpu_secs:.6},\n      \"cpu_speedup_vs_dense\": {cpu_speedup:.3},\n      {sim}\n    }}",
                key = variant.key,
                params = variant.params,
                sim = sim_fields.join(",\n      "),
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"available_parallelism\": {cores},\n  \"tensor_threads\": {threads},\n  \"cpu_epoch\": {{\n    \"batch\": {batch},\n    \"batches\": {batches},\n    \"hidden\": [{hid}, {hid}],\n    \"bernoulli_secs\": {bern:.6},\n    \"dense_secs\": {dense:.6}\n  }},\n  \"simulated_network\": \"paper MLP 784x2048x2048x10, batch 128\",\n  \"tensor_core_2_4\": {{\n    \"device\": \"sparse_tensor_core\",\n    \"sim_speedup_vs_gather_pricing\": {tc_vs_gather:.3},\n    \"sim_speedup_vs_bernoulli\": {tc_vs_bernoulli:.3}\n  }},\n  \"variants\": {{\n{variants}\n  }},\n  \"crs\": {{\n{crs}\n  }}\n}}\n",
        mode = cfg.mode,
        threads = pool::threads(),
        batch = cfg.batch,
        batches = cfg.batches,
        hid = cfg.hidden,
        bern = bernoulli_secs,
        dense = dense_secs,
        variants = variant_json.join(",\n"),
        crs = crs_json.join(",\n"),
    );

    let out_path = std::env::var("BENCH_STRUCTURED_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_STRUCTURED.json", env!("CARGO_MANIFEST_DIR")));
    // In --check-baseline mode the committed file is the baseline; read it
    // before the fresh result overwrites it, and write the fresh JSON
    // before enforcing so the CI artifact carries the regressed run too.
    let check_baseline = std::env::args().any(|a| a == "--check-baseline");
    let baseline_path = std::env::var("BENCH_STRUCTURED_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../BENCH_STRUCTURED.json", env!("CARGO_MANIFEST_DIR")));
    let baseline = check_baseline
        .then(|| bench::baseline::read_baseline_or_exit(&baseline_path, "bench_structured"));
    std::fs::write(&out_path, &json).expect("writing BENCH_STRUCTURED.json failed");
    println!("{json}");
    eprintln!("wrote {out_path}");
    if let Some(baseline) = baseline {
        bench::baseline::enforce_baseline(&baseline, &baseline_path, &json, "bench_structured");
    }

    // Regression gates, opt-in via BENCH_ASSERT=1 (CI): every scheme of the
    // structured family (N:M and block-unit) must keep a simulated speedup
    // over the rate-matched Bernoulli baseline on every device shape, and
    // the sparse-tensor-core preset must realise the hardware 2:4 win (the
    // tensor-core pricing beats the same plan's gather pricing). The
    // row/tile rows are informational baselines — tile hovers near 1.0x on
    // the compute-rich presets by design.
    if std::env::var("BENCH_ASSERT").is_ok_and(|v| v != "0") {
        let mut failures = Vec::new();
        for (variant, _, _, sims) in &rows {
            if !variant.key.starts_with("nm_") && !variant.key.starts_with("block_") {
                continue;
            }
            for (device, speedup) in sims {
                if *speedup <= 1.0 {
                    failures.push(format!(
                        "{} simulated speedup {speedup:.2}x <= 1.0x on {device}",
                        variant.key
                    ));
                }
            }
        }
        // (The vs-bernoulli leaf is the nm_2_4 variant's sparse-preset
        // speedup, already gated by the loop above.)
        if tc_vs_gather <= 1.0 {
            failures.push(format!(
                "tensor-core 2:4 pricing {tc_vs_gather:.3}x <= 1.0x vs its own gather pricing"
            ));
        }
        // CRS gates: every sampled-GEMM row must keep a simulated win over
        // the dense baseline on every device, the k/K = 1/2 row must show a
        // *measured* CPU win over the dense epoch, and the composed row×CRS
        // entry must beat both of its axes alone on every device.
        for (variant, _, cpu_speedup, sims) in &crs_rows {
            if !variant.key.starts_with("crs_") && variant.key != "row_crs" {
                continue;
            }
            for (device, speedup) in sims {
                if *speedup <= 1.0 {
                    failures.push(format!(
                        "{} simulated speedup {speedup:.2}x <= 1.0x vs dense on {device}",
                        variant.key
                    ));
                }
            }
            if variant.key == "crs_0_50" && *cpu_speedup <= 1.0 {
                failures.push(format!(
                    "crs_0_50 measured CPU speedup {cpu_speedup:.2}x <= 1.0x vs the dense epoch"
                ));
            }
        }
        let crs_sims = |key: &str| -> &[(&str, f64)] {
            crs_rows
                .iter()
                .find(|(variant, ..)| variant.key == key)
                .map(|(_, _, _, sims)| sims.as_slice())
                .expect("crs section rows are always benchmarked")
        };
        for ((d_composed, s_composed), ((_, s_crs), (_, s_row))) in crs_sims("row_crs")
            .iter()
            .zip(crs_sims("crs_0_50").iter().zip(crs_sims("row_only")))
        {
            if s_composed <= s_crs || s_composed <= s_row {
                failures.push(format!(
                    "composed row_crs {s_composed:.2}x must exceed both axes alone \
                     (crs {s_crs:.2}x, row {s_row:.2}x) on {d_composed}"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("BENCH_ASSERT failures:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("BENCH_ASSERT passed");
    }
}
