//! Table I — speedup and accuracy of ROW and TILE patterns at dropout
//! (0.7, 0.7) across network sizes 1024×64, 1024×1024, 2048×2048, 4096×4096.
//!
//! The headline trend the paper reports — the speedup grows with the network
//! size, reaching ≈2× at 4096×4096 — comes from the GPU timing model at the
//! real layer widths; accuracies come from proportionally scaled CPU runs.

use bench::{
    default_train_iterations, mlp_speedup, mlp_timing_model, train_scaled_mlp, Method, Report,
};

fn main() {
    let sizes = [
        (1024usize, 64usize),
        (1024, 1024),
        (2048, 2048),
        (4096, 4096),
    ];
    let rate = 0.7;
    let iterations = default_train_iterations();

    let mut report = Report::new(
        "Table I — network-size sweep at dropout rate 0.7",
        &["network", "pattern", "accuracy", "accuracy loss", "speedup"],
    );
    for &(h1, h2) in &sizes {
        let model = mlp_timing_model(h1, h2);
        // Scale the CPU run roughly with the network (capped so the largest
        // case still finishes quickly on one core).
        let scaled_hidden = (h1.min(h2) / 16).clamp(32, 128);
        let baseline = train_scaled_mlp(Method::Baseline, rate, rate, scaled_hidden, iterations);
        for method in [Method::Row, Method::Tile] {
            let speedup = mlp_speedup(&model, method, rate, rate);
            let acc = train_scaled_mlp(method, rate, rate, scaled_hidden, iterations);
            report.add_row(&[
                format!("{h1}*{h2}"),
                method.label().to_string(),
                format!("{:.2}%", acc.accuracy * 100.0),
                format!("{:+.2}%", (acc.accuracy - baseline.accuracy) * 100.0),
                format!("{speedup:.2}"),
            ]);
        }
    }
    report.print();
}
