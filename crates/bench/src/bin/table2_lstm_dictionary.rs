//! Table II — 2-layer LSTM (1500 hidden) on the 8800-word dictionary corpus:
//! next-word accuracy and speedup for ROW and TILE patterns at dropout rates
//! (0.3, 0.3), (0.5, 0.5) and (0.7, 0.7).
//!
//! Speedups use the GPU timing model at the paper's LSTM size; accuracies
//! come from a down-scaled LSTM on the synthetic Zipf/Markov corpus.

use bench::{
    default_train_iterations, lstm_timing_model, speedup_vs_baseline, train_scaled_lstm, Method,
    Report,
};

fn main() {
    let rates = [0.3, 0.5, 0.7];
    let iterations = default_train_iterations().min(150);
    let model = lstm_timing_model();

    let mut report = Report::new(
        "Table II — dictionary corpus (8800 words) on 2-layer LSTM",
        &["dropout rate", "method", "accuracy", "speedup"],
    );
    for &rate in &rates {
        let baseline = train_scaled_lstm(Method::Baseline, rate, 120, 32, 2, 10, iterations);
        report.add_row(&[
            format!("({rate:.1},{rate:.1})"),
            "original".to_string(),
            format!("{:.1}%", baseline.accuracy * 100.0),
            "1.00".to_string(),
        ]);
        for method in [Method::Row, Method::Tile] {
            let speedup = speedup_vs_baseline(&model, method, rate);
            let result = train_scaled_lstm(method, rate, 120, 32, 2, 10, iterations);
            report.add_row(&[
                format!("({rate:.1},{rate:.1})"),
                method.label().to_string(),
                format!("{:.1}%", result.accuracy * 100.0),
                format!("{speedup:.2}"),
            ]);
        }
    }
    report.print();
}
