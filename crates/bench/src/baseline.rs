//! Committed-baseline perf-regression checking for the bench binaries.
//!
//! The repository commits the JSON emitted by `bench_hotpath`,
//! `bench_structured` and `bench_serve` (`BENCH_HOTPATH.json` /
//! `BENCH_STRUCTURED.json` / `BENCH_SERVE.json`) as
//! the perf trajectory. The `--check-baseline` mode of those binaries runs
//! this module: every **speedup** leaf of the committed baseline is compared
//! against the same leaf of the fresh run, and a drop of more than the
//! tolerance fails the run — turning CI from a smoke runner into a
//! perf-regression gate. Deterministic simulated ratios (`sim_*`) are gated
//! at the base tolerance (default 15%, override with `BENCH_TOLERANCE`),
//! measured CPU wall-clock ratios at twice that (shared runners swing real
//! measurements by 10–20% with no code change).
//!
//! Only ratios are compared, never absolute seconds or thread-scaling
//! factors: ratios are the part of a bench result that transfers between
//! machines (the committed numbers and the CI runner do not share
//! hardware), while scaling tracks the runner's core count. The workspace
//! has no crates.io access, so the JSON reader below is a minimal in-house
//! parser covering exactly the subset the bench binaries emit.

use std::collections::BTreeMap;

/// Flattened leaves of a JSON document: numbers keyed by `a.b.c` paths
/// (array elements use their index as a segment) plus string leaves for
/// metadata such as the bench `mode`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Leaves {
    /// Numeric leaves by dotted path.
    pub numbers: BTreeMap<String, f64>,
    /// String leaves by dotted path.
    pub strings: BTreeMap<String, String>,
}

/// Parses a JSON document into its flattened leaves.
///
/// # Errors
///
/// Returns a description of the first syntax error encountered.
pub fn parse_leaves(json: &str) -> Result<Leaves, String> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    let mut leaves = Leaves::default();
    parser.skip_ws();
    parser.value("", &mut leaves)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing content at byte {}", parser.pos));
    }
    Ok(leaves)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn join(path: &str, key: &str) -> String {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    }

    fn value(&mut self, path: &str, leaves: &mut Leaves) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(path, leaves),
            Some(b'[') => self.array(path, leaves),
            Some(b'"') => {
                let s = self.string()?;
                leaves.strings.insert(path.to_string(), s);
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => {
                let v = self.number()?;
                leaves.numbers.insert(path.to_string(), v);
                Ok(())
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, path: &str, leaves: &mut Leaves) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(&Self::join(path, &key), leaves)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, path: &str, leaves: &mut Leaves) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut index = 0usize;
        loop {
            self.skip_ws();
            self.value(&Self::join(path, &index.to_string()), leaves)?;
            index += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            // The bench output never emits \u escapes; skip
                            // the four hex digits and keep a placeholder.
                            self.pos += 4.min(self.bytes.len().saturating_sub(self.pos + 1));
                            out.push('?');
                        }
                        Some(b) => out.push(b as char),
                        None => return Err("unterminated escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        token
            .parse::<f64>()
            .map_err(|_| format!("invalid number '{token}' at byte {start}"))
    }
}

/// `true` when a dotted path names a performance *ratio* the baseline gate
/// protects: speedup leaves only. Absolute seconds never transfer between
/// machines, and thread-*scaling* leaves depend on the runner's core
/// topology (a 1-core container legitimately records ~1.0 where a CI runner
/// records ~1.5), so both are recorded for inspection but not gated —
/// gating them would fail CI on unchanged code whenever the hardware class
/// shifts.
pub fn is_ratio_key(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.contains("speedup")
}

/// Result of one baseline comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineReport {
    /// Ratio leaves found in the baseline and compared.
    pub checked: usize,
    /// Human-readable regression descriptions (empty ⇒ the gate passes).
    pub failures: Vec<String>,
    /// Ratio leaves deliberately not compared, with the reason (currently
    /// only `simd.*` ratios across an ISA change).
    pub skipped: Vec<String>,
}

impl BaselineReport {
    /// `true` when no ratio regressed beyond tolerance.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The tolerance applied to one ratio leaf given the base `tolerance`:
/// simulated ratios (`sim_*` leaves) come from the deterministic timing
/// model and are gated at the base tolerance, while measured CPU wall-clock
/// ratios get twice that — shared CI runners swing real measurements by
/// 10–20% run to run with no code change, and a gate that cries wolf gets
/// turned off.
pub fn key_tolerance(path: &str, tolerance: f64) -> f64 {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.starts_with("sim_") {
        tolerance
    } else {
        2.0 * tolerance
    }
}

/// Compares every ratio leaf of the committed `baseline` JSON against the
/// `fresh` run: a fresh ratio below `baseline · (1 − key_tolerance)` (or
/// missing entirely) is a failure. Both documents must record the same
/// `mode` (comparing a smoke run against a full baseline would be
/// meaningless).
///
/// # Errors
///
/// Returns an error if either document fails to parse or the modes differ.
pub fn compare_ratios(
    baseline: &str,
    fresh: &str,
    tolerance: f64,
) -> Result<BaselineReport, String> {
    let base = parse_leaves(baseline).map_err(|e| format!("baseline JSON: {e}"))?;
    let new = parse_leaves(fresh).map_err(|e| format!("fresh JSON: {e}"))?;
    if base.strings.get("mode") != new.strings.get("mode") {
        return Err(format!(
            "bench mode mismatch: baseline {:?} vs fresh run {:?} — compare like with like",
            base.strings.get("mode"),
            new.strings.get("mode")
        ));
    }
    // SIMD-vs-scalar ratios only transfer between machines with the same
    // detected ISA: a baseline recorded on an AVX-512 box against a fresh
    // run on an AVX2 (or NEON) runner would gate apples against oranges, so
    // those leaves are skipped — with a note, never silently — when the
    // recorded `simd.isa` strings differ. Every other ratio still gates.
    let isa_skip = match (base.strings.get("simd.isa"), new.strings.get("simd.isa")) {
        (Some(b), Some(f)) if b != f => Some((b.clone(), f.clone())),
        _ => None,
    };
    let mut report = BaselineReport::default();
    for (path, &b) in base.numbers.iter().filter(|(p, _)| is_ratio_key(p)) {
        if let Some((base_isa, fresh_isa)) = &isa_skip {
            if path.starts_with("simd.") {
                report.skipped.push(format!(
                    "{path}: skipped (baseline ISA {base_isa:?} vs fresh run {fresh_isa:?})"
                ));
                continue;
            }
        }
        report.checked += 1;
        let tol = key_tolerance(path, tolerance);
        match new.numbers.get(path) {
            None => report.failures.push(format!(
                "{path}: present in baseline but missing from the fresh run"
            )),
            Some(&f) if f < b * (1.0 - tol) => report.failures.push(format!(
                "{path}: regressed to {f:.3} from baseline {b:.3} ({:+.1}% > {:.0}% tolerance)",
                (f / b - 1.0) * 100.0,
                tol * 100.0
            )),
            Some(_) => {}
        }
    }
    Ok(report)
}

/// The tolerance the `--check-baseline` mode applies: `BENCH_TOLERANCE`
/// (a fraction, e.g. `0.15`) or 15% by default.
pub fn tolerance_from_env() -> f64 {
    std::env::var("BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.15)
}

/// Reads the committed baseline for the bench binaries' `--check-baseline`
/// mode, terminating the process when it is missing. Must be called
/// **before** the fresh result is written: the baseline and output paths
/// default to the same committed file.
pub fn read_baseline_or_exit(baseline_path: &str, label: &str) -> String {
    match std::fs::read_to_string(baseline_path) {
        Ok(content) => content,
        Err(err) => {
            eprintln!("{label}: cannot read committed baseline {baseline_path}: {err}");
            std::process::exit(1);
        }
    }
}

/// Driver for the bench binaries' `--check-baseline` mode: compares
/// `fresh_json` against the already-read committed `baseline` content
/// (see [`read_baseline_or_exit`]) and terminates the process with a
/// non-zero status when a ratio regressed. Prints the verdict either way.
/// `baseline_path` is only used for messages.
pub fn enforce_baseline(baseline: &str, baseline_path: &str, fresh_json: &str, label: &str) {
    let tolerance = tolerance_from_env();
    match compare_ratios(baseline, fresh_json, tolerance) {
        Ok(report) if report.passed() => {
            for note in &report.skipped {
                eprintln!("{label}: note: {note}");
            }
            eprintln!(
                "{label}: baseline check passed ({} ratios within tolerance of {baseline_path}; \
                 base {:.0}%, measured CPU ratios {:.0}%)",
                report.checked,
                tolerance * 100.0,
                tolerance * 200.0
            );
        }
        Ok(report) => {
            for note in &report.skipped {
                eprintln!("{label}: note: {note}");
            }
            eprintln!(
                "{label}: baseline check FAILED ({}/{} ratios regressed beyond tolerance):",
                report.failures.len(),
                report.checked,
            );
            for failure in &report.failures {
                eprintln!("  - {failure}");
            }
            std::process::exit(1);
        }
        Err(err) => {
            eprintln!("{label}: baseline check error: {err}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "mode": "full",
      "available_parallelism": 4,
      "dense_gemm": { "shape": [256, 512, 512], "single_thread_speedup_vs_seed": 6.0, "scaling_2_threads": 1.4, "packed_secs_by_threads": {"1": 0.005} },
      "row_compact": { "secs": 0.003, "speedup_vs_dense_1t": 1.7 }
    }"#;

    fn fresh(speedup: f64) -> String {
        BASELINE.replace("6.0", &format!("{speedup:.3}"))
    }

    #[test]
    fn parser_flattens_numbers_and_strings() {
        let leaves = parse_leaves(BASELINE).unwrap();
        assert_eq!(leaves.strings.get("mode").unwrap(), "full");
        assert_eq!(leaves.numbers["dense_gemm.shape.1"], 512.0);
        assert_eq!(leaves.numbers["dense_gemm.scaling_2_threads"], 1.4);
        assert_eq!(leaves.numbers["dense_gemm.packed_secs_by_threads.1"], 0.005);
        assert_eq!(leaves.numbers["row_compact.speedup_vs_dense_1t"], 1.7);
    }

    #[test]
    fn ratio_keys_cover_speedups_but_not_seconds_or_scaling() {
        assert!(is_ratio_key("dense_gemm.single_thread_speedup_vs_seed"));
        assert!(is_ratio_key("variants.row.sim_speedup_gtx_1080ti"));
        assert!(is_ratio_key("fused_forward.speedup"));
        // Thread scaling depends on the runner's core topology; recorded
        // but never gated.
        assert!(!is_ratio_key("dense_gemm.scaling_2_threads"));
        assert!(!is_ratio_key("row_compact.secs"));
        assert!(!is_ratio_key("dense_gemm.shape.0"));
        assert!(!is_ratio_key("available_parallelism"));
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let report = compare_ratios(BASELINE, BASELINE, 0.15).unwrap();
        assert!(report.passed());
        // speedup_vs_seed and speedup_vs_dense_1t; scaling_2_threads is
        // deliberately not gated.
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn small_dips_within_tolerance_pass() {
        // 6.0 -> 5.4 is a 10% dip, inside the 15% tolerance.
        let report = compare_ratios(BASELINE, &fresh(5.4), 0.15).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn regressions_beyond_tolerance_fail_demonstrably() {
        // 6.0 -> 3.0 is a 50% drop, past even the doubled measured-CPU
        // tolerance: the gate must fire.
        let report = compare_ratios(BASELINE, &fresh(3.0), 0.15).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].contains("single_thread_speedup_vs_seed"),
            "{}",
            report.failures[0]
        );
    }

    #[test]
    fn simulated_ratios_are_gated_tighter_than_measured_ones() {
        assert_eq!(
            key_tolerance("variants.row.sim_speedup_gtx_1080ti", 0.15),
            0.15
        );
        assert_eq!(
            key_tolerance("fused_forward.sim_iteration_speedup_server_hbm", 0.15),
            0.15
        );
        assert_eq!(key_tolerance("row_compact.speedup_vs_dense_1t", 0.15), 0.30);
        // A 20% dip passes on a measured CPU ratio (within the doubled
        // tolerance) …
        let report = compare_ratios(BASELINE, &fresh(4.8), 0.15).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        // … but the same dip on a simulated ratio fails.
        let sim_base = BASELINE.replace("single_thread_speedup_vs_seed", "sim_speedup_vs_seed");
        let sim_fresh = sim_base.replace("6.0", "4.800");
        let report = compare_ratios(&sim_base, &sim_fresh, 0.15).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn improvements_never_fail() {
        let report = compare_ratios(BASELINE, &fresh(9.0), 0.15).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn missing_ratio_keys_fail() {
        let pruned = BASELINE.replace("\"single_thread_speedup_vs_seed\": 6.0, ", "");
        let report = compare_ratios(BASELINE, &pruned, 0.15).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing"));
    }

    #[test]
    fn simd_ratios_skip_across_an_isa_change_but_still_gate_same_isa() {
        let with_simd = |isa: &str, speedup: f64| {
            BASELINE.replace(
                "\"mode\": \"full\",",
                &format!(
                    "\"mode\": \"full\",\n  \"simd\": {{ \"isa\": \"{isa}\", \
                     \"dense_speedup\": {speedup:.3} }},"
                ),
            )
        };
        // Same ISA: the simd ratio gates like any other measured ratio
        // (8.0 -> 2.0 is far past the doubled tolerance).
        let report =
            compare_ratios(&with_simd("avx2", 8.0), &with_simd("avx2", 2.0), 0.15).unwrap();
        assert!(!report.passed());
        assert!(report.skipped.is_empty());
        // Different ISA: the simd ratio is skipped with a note — the two
        // vectorisation wins are not comparable — while every other ratio
        // still gates.
        let report =
            compare_ratios(&with_simd("avx2", 8.0), &with_simd("neon", 2.0), 0.15).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].contains("simd.dense_speedup"));
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn mode_mismatch_is_an_error_not_a_pass() {
        let smoke = BASELINE.replace("\"full\"", "\"smoke\"");
        assert!(compare_ratios(BASELINE, &smoke, 0.15).is_err());
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(parse_leaves("{ \"a\": }").is_err());
        assert!(parse_leaves("{ \"a\": 1 } trailing").is_err());
        assert!(compare_ratios("not json", BASELINE, 0.15).is_err());
    }

    #[test]
    fn committed_baselines_parse_and_expose_ratio_keys() {
        // The real committed files must stay parseable by this gate.
        for path in [
            "../../BENCH_HOTPATH.json",
            "../../BENCH_STRUCTURED.json",
            "../../BENCH_SERVE.json",
            "../../BENCH_TRANSFORMER.json",
        ] {
            let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
            let content = std::fs::read_to_string(&full).expect("committed bench JSON exists");
            let leaves = parse_leaves(&content).expect("committed bench JSON parses");
            assert!(
                leaves.numbers.keys().any(|k| is_ratio_key(k)),
                "{path} has no ratio leaves to gate on"
            );
            assert!(leaves.strings.contains_key("mode"));
        }
    }

    #[test]
    fn env_tolerance_defaults_sanely() {
        // Not asserting on the env var itself (process-global), only the
        // default path.
        if std::env::var("BENCH_TOLERANCE").is_err() {
            assert_eq!(tolerance_from_env(), 0.15);
        }
    }
}
