//! Shared experiment plumbing for the per-table / per-figure binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper.
//! They share three ingredients, provided here:
//!
//! * [`Method::scheme`] — one `DropoutScheme` constructor per evaluated
//!   method. The **same** scheme type drives both the GPU timing model (at
//!   the paper's network sizes) and the scaled CPU training runs, so the
//!   reported speedups and accuracies come from a single dropout path.
//! * [`train_scaled_mlp`] / [`train_scaled_lstm`] — train down-scaled
//!   networks on the synthetic datasets to obtain accuracy/perplexity
//!   numbers on a single CPU core within seconds. The scale factor does not
//!   change the *qualitative* accuracy comparison (pattern dropout vs
//!   conventional dropout), which is what EXPERIMENTS.md records.
//! * [`Report`] — a plain-text table printer so each binary emits rows in
//!   the same format as the corresponding table of the paper.
//! * [`baseline`] — the committed-baseline perf-regression gate behind the
//!   bench binaries' `--check-baseline` mode.

pub mod baseline;

use approx_dropout::{DropoutScheme, SchemeSpec};
use data::{CorpusConfig, MnistConfig, SyntheticCorpus, SyntheticMnist};
use gpu_sim::{GpuConfig, LstmSpec, MlpSpec, NetworkTimingModel, DEFAULT_TIMING_SAMPLES};
use nn::builder::{LstmBuilder, NetworkBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed RNG seed shared by every timing expectation so tables are
/// reproducible run to run.
pub const TIMING_SEED: u64 = 0x5EED;

/// Parses the `--threads N` (or `--threads=N`) flag the bench binaries
/// share, so the pool width is settable per invocation without the
/// `TENSOR_THREADS` environment variable (which stays as the fallback
/// when the flag is absent). Returns `None` when the flag was not given;
/// terminates the process on a malformed value rather than silently
/// benchmarking at the wrong width.
pub fn threads_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--threads" {
            iter.next().map(String::as_str)
        } else if let Some(inline) = arg.strip_prefix("--threads=") {
            Some(inline)
        } else {
            continue;
        };
        match value
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            Some(n) => return Some(n),
            None => {
                eprintln!("--threads expects a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
    }
    None
}

/// Applies [`threads_from_args`] to the global tensor pool and returns the
/// explicit width, if one was given.
pub fn apply_threads_flag() -> Option<usize> {
    let threads = threads_from_args()?;
    tensor::pool::set_threads(threads);
    Some(threads)
}

/// `TENSOR_THREADS` parsed exactly as the pool parses it (clamped to
/// [`tensor::pool::MAX_THREADS`]; unparsable values mean 1, the documented
/// slow-and-correct misconfiguration behaviour). `None` when unset.
fn env_threads_override() -> Option<usize> {
    let value = std::env::var("TENSOR_THREADS").ok()?;
    Some(match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n.min(tensor::pool::MAX_THREADS),
        _ => 1,
    })
}

/// Resolves the pool width the bench runs (and any `--tune` search) at:
/// `--threads` wins, `TENSOR_THREADS` is the fallback, the machine width is
/// the default. When the flag **and** the environment variable are both set
/// and disagree, the process exits loudly instead of letting one silently
/// shadow the other — a bench (or autotune) at the wrong width is worse
/// than no bench. The winner is applied to the global pool and returned.
pub fn resolve_threads() -> usize {
    let flag = threads_from_args();
    let env = env_threads_override();
    if let (Some(f), Some(e)) = (flag, env) {
        if f != e {
            eprintln!(
                "--threads {f} conflicts with TENSOR_THREADS={e}: one would silently shadow \
                 the other; drop one or make them agree"
            );
            std::process::exit(2);
        }
    }
    let threads = flag
        .or(env)
        .unwrap_or_else(tensor::pool::env_default_threads);
    tensor::pool::set_threads(threads);
    threads
}

/// `true` when `--no-simd` was passed: the bench forces the scalar kernel
/// path regardless of what the CPU supports (equivalent to
/// `TENSOR_SIMD=0`, but scoped to the invocation).
pub fn no_simd_flag() -> bool {
    std::env::args().any(|a| a == "--no-simd")
}

/// `true` when `--tune` was passed: rerun the blocking autotuner and
/// persist the result instead of loading a committed config.
fn tune_flag() -> bool {
    std::env::args().any(|a| a == "--tune")
}

/// The tune-file path the bench binaries use and whether it was named
/// explicitly: `TENSOR_TUNE_FILE` when set (explicit — mismatches are hard
/// errors), else the committed `TUNE_GEMM.json` at the workspace root
/// (lenient — a config tuned on other hardware is skipped with a warning).
pub fn tune_file_path() -> (std::path::PathBuf, bool) {
    match std::env::var(tensor::tune::TUNE_FILE_ENV) {
        Ok(p) if !p.trim().is_empty() => (std::path::PathBuf::from(p), true),
        _ => {
            let default = format!(
                "{}/../../{}",
                env!("CARGO_MANIFEST_DIR"),
                tensor::tune::TUNE_FILE_NAME
            );
            (std::path::PathBuf::from(default), false)
        }
    }
}

/// What [`init_bench`] resolved for this invocation.
#[derive(Debug, Clone)]
pub struct BenchSetup {
    /// Global pool width after `--threads` / `TENSOR_THREADS` resolution.
    pub threads: usize,
    /// Active SIMD dispatch level after `--no-simd` / `TENSOR_SIMD`.
    pub simd_level: tensor::SimdLevel,
    /// Tune file whose blockings are active (`None`: built-in defaults).
    pub tuned_from: Option<std::path::PathBuf>,
}

/// Shared startup for the bench binaries: resolves the pool width (loudly,
/// see [`resolve_threads`]), applies `--no-simd`, then either reruns the
/// blocking autotuner (`--tune`, persisting to the tune file) or loads the
/// persisted config. A loaded config only applies when its recorded thread
/// count and ISA match this invocation: a mismatch is a hard error for an
/// explicit `TENSOR_TUNE_FILE` and a warning (config skipped) for the
/// committed default, which legitimately travels between machines.
pub fn init_bench(label: &str) -> BenchSetup {
    let threads = resolve_threads();
    if no_simd_flag() {
        tensor::simd::set_level(tensor::SimdLevel::Scalar);
    }
    let simd_level = tensor::simd::level();
    let (path, explicit) = tune_file_path();
    let tuned_from = if tune_flag() {
        eprintln!(
            "{label}: autotuning GEMM blockings ({threads} thread(s), {})...",
            simd_level.name()
        );
        let config = tensor::tune::autotune();
        if let Err(err) = config.save(&path) {
            eprintln!("{label}: cannot write tune file {}: {err}", path.display());
            std::process::exit(1);
        }
        config.apply().expect("freshly searched config is valid");
        eprintln!("{label}: wrote tuned config to {}", path.display());
        Some(path)
    } else {
        match tensor::tune::TuneConfig::load(&path) {
            Ok(config) => {
                let mismatch = if config.threads != threads {
                    Some(format!(
                        "tuned at {} thread(s), running at {threads}",
                        config.threads
                    ))
                } else if config.isa != simd_level.name() {
                    Some(format!(
                        "tuned for isa {:?}, running with {:?}",
                        config.isa,
                        simd_level.name()
                    ))
                } else {
                    None
                };
                match mismatch {
                    None => {
                        config.apply().expect("config validated on load");
                        eprintln!("{label}: applied tuned config {}", path.display());
                        Some(path)
                    }
                    Some(why) if explicit => {
                        eprintln!(
                            "{label}: refusing tune file {} ({why}); regenerate with --tune",
                            path.display()
                        );
                        std::process::exit(2);
                    }
                    Some(why) => {
                        eprintln!(
                            "{label}: skipping tune file {} ({why}); using default blockings",
                            path.display()
                        );
                        None
                    }
                }
            }
            Err(err) if explicit => {
                eprintln!("{label}: cannot load tune file: {err}");
                std::process::exit(2);
            }
            Err(err) => {
                if path.exists() {
                    eprintln!("{label}: skipping unreadable tune file: {err}");
                }
                None
            }
        }
    };
    BenchSetup {
        threads,
        simd_level,
        tuned_from,
    }
}

/// Number of training iterations the scaled accuracy runs use by default.
/// Set the `ARD_FAST=1` environment variable to cut this down for smoke runs.
pub fn default_train_iterations() -> usize {
    if std::env::var("ARD_FAST").map(|v| v == "1").unwrap_or(false) {
        40
    } else {
        250
    }
}

/// The three dropout execution modes compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Conventional random dropout (the baseline).
    Baseline,
    /// Row-based Dropout Pattern.
    Row,
    /// Tile-based Dropout Pattern.
    Tile,
}

impl Method {
    /// Label used in the printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Baseline => "original",
            Method::Row => "ROW",
            Method::Tile => "TILE",
        }
    }

    /// The plain-data [`SchemeSpec`] of this method at the paper's full
    /// network scale (`max_dp = 16`, 32×32 tiles) — printable and
    /// parseable through the spec text grammar.
    pub fn spec(&self, rate: f64) -> SchemeSpec {
        match self {
            Method::Baseline => SchemeSpec::Bernoulli { rate },
            Method::Row => SchemeSpec::Row { rate, max_dp: 16 },
            Method::Tile => SchemeSpec::Tile {
                rate,
                max_dp: 16,
                tile: 32,
            },
        }
    }

    /// The [`SchemeSpec`] for the down-scaled CPU training runs: same
    /// families, smaller period cap and tile so the narrow layers still see
    /// several tiles per grid.
    pub fn scaled_spec(&self, rate: f64) -> SchemeSpec {
        match self {
            Method::Baseline => SchemeSpec::Bernoulli { rate },
            Method::Row => SchemeSpec::Row { rate, max_dp: 8 },
            Method::Tile => SchemeSpec::Tile {
                rate,
                max_dp: 8,
                tile: 16,
            },
        }
    }

    /// The dropout scheme for this method at the paper's full network scale
    /// ([`Method::spec`] materialized). Drives the GPU timing model.
    ///
    /// # Panics
    ///
    /// Panics only if the statically chosen rate is invalid.
    pub fn scheme(&self, rate: f64) -> Box<dyn DropoutScheme> {
        self.spec(rate)
            .build()
            .expect("experiment scheme configurations are valid")
    }

    /// The dropout scheme for the down-scaled CPU training runs
    /// ([`Method::scaled_spec`] materialized).
    ///
    /// # Panics
    ///
    /// Panics only if the statically chosen rate is invalid.
    pub fn scaled_scheme(&self, rate: f64) -> Box<dyn DropoutScheme> {
        self.scaled_spec(rate)
            .build()
            .expect("experiment scheme configurations are valid")
    }
}

/// GPU timing model for the paper's MLP with the given hidden sizes.
pub fn mlp_timing_model(h1: usize, h2: usize) -> NetworkTimingModel {
    NetworkTimingModel::mlp(GpuConfig::gtx_1080ti(), MlpSpec::with_hidden(h1, h2))
}

/// GPU timing model for the paper's dictionary LSTM (2 × 1500, vocab 8800).
pub fn lstm_timing_model() -> NetworkTimingModel {
    NetworkTimingModel::lstm(GpuConfig::gtx_1080ti(), LstmSpec::paper_dictionary_lstm())
}

/// GPU timing model for the PTB LSTM (3 × 1500, vocab 10 000) with an
/// adjustable batch size (Fig. 6(b) sweeps it from 20 to 40).
pub fn ptb_timing_model(batch: usize) -> NetworkTimingModel {
    let mut spec = LstmSpec::paper_ptb_lstm();
    spec.batch = batch;
    NetworkTimingModel::lstm(GpuConfig::gtx_1080ti(), spec)
}

/// Expected per-iteration time (µs) of `method` at `rate` on `model`,
/// averaged over the default number of sampled plans.
pub fn iteration_time_us(model: &NetworkTimingModel, method: Method, rate: f64) -> f64 {
    model
        .expected_iteration_time(&*method.scheme(rate), DEFAULT_TIMING_SAMPLES, TIMING_SEED)
        .total_us()
}

/// Simulated speedup of `method` over the conventional-dropout baseline at a
/// uniform per-layer `rate`.
pub fn speedup_vs_baseline(model: &NetworkTimingModel, method: Method, rate: f64) -> f64 {
    model.speedup(
        &*Method::Baseline.scheme(rate),
        &*method.scheme(rate),
        DEFAULT_TIMING_SAMPLES,
        TIMING_SEED,
    )
}

/// Simulated speedup of `method` over the conventional-dropout baseline for
/// an MLP with per-layer rates `(r1, r2)`.
pub fn mlp_speedup(model: &NetworkTimingModel, method: Method, r1: f64, r2: f64) -> f64 {
    let mut baseline = vec![Method::Baseline.scheme(r1), Method::Baseline.scheme(r2)];
    let mut new = vec![method.scheme(r1), method.scheme(r2)];
    model.speedup_per_layer(&mut baseline, &mut new, DEFAULT_TIMING_SAMPLES, TIMING_SEED)
}

/// Result of a scaled accuracy-training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyResult {
    /// Held-out accuracy (fraction in `[0, 1]`).
    pub accuracy: f64,
    /// Final training loss.
    pub loss: f64,
}

/// Trains the down-scaled MLP on the synthetic MNIST task with per-layer
/// dropout rates `(r1, r2)` and the given method; returns held-out accuracy.
pub fn train_scaled_mlp(
    method: Method,
    r1: f64,
    r2: f64,
    hidden: usize,
    iterations: usize,
) -> AccuracyResult {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let data = SyntheticMnist::new(MnistConfig::small());
    let mut mlp = NetworkBuilder::new(data.dim(), data.classes())
        .hidden_layers(&[hidden, hidden])
        .layer_dropout(0, method.scaled_scheme(r1))
        .layer_dropout(1, method.scaled_scheme(r2))
        .learning_rate(0.05)
        .momentum(0.5)
        .build(&mut rng);
    let mut loss = f64::INFINITY;
    for it in 0..iterations {
        let (x, y) = data.batch(64, it as u64);
        loss = mlp.train_batch(&x, &y, &mut rng).loss as f64;
    }
    let (ex, ey) = data.eval_set(256);
    let (_, accuracy) = mlp.evaluate(&ex, &ey);
    AccuracyResult { accuracy, loss }
}

/// Trains the down-scaled LSTM language model on the synthetic corpus and
/// returns held-out next-token accuracy and perplexity.
pub fn train_scaled_lstm(
    method: Method,
    rate: f64,
    vocab: usize,
    hidden: usize,
    layers: usize,
    batch: usize,
    iterations: usize,
) -> LmResult {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let corpus = SyntheticCorpus::new(CorpusConfig {
        vocab,
        ..CorpusConfig::small()
    });
    let mut lm = LstmBuilder::new(vocab, hidden)
        .layers(layers)
        .dropout(method.scaled_scheme(rate))
        .learning_rate(0.5)
        .momentum(0.0)
        .grad_clip(5.0)
        .build(&mut rng);
    for it in 0..iterations {
        let tokens = corpus.batch(batch, 12, it as u64);
        let _ = lm.train_batch(&tokens, &mut rng);
    }
    let eval = lm.evaluate(&corpus.batch(batch, 12, u64::MAX / 5));
    LmResult {
        accuracy: eval.accuracy,
        perplexity: eval.perplexity,
    }
}

/// Result of a scaled language-model run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmResult {
    /// Held-out next-token accuracy.
    pub accuracy: f64,
    /// Held-out perplexity.
    pub perplexity: f64,
}

/// Fixed-width plain-text table printer used by every experiment binary.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    pub fn add_row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows added so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered report to standard output.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_and_schemes() {
        assert_eq!(Method::Baseline.label(), "original");
        assert_eq!(Method::Row.label(), "ROW");
        assert_eq!(Method::Tile.label(), "TILE");
        assert_eq!(Method::Row.scheme(0.5).label(), "row");
        assert_eq!(Method::Tile.scheme(0.5).label(), "tile");
        assert_eq!(Method::Baseline.scheme(0.5).label(), "bernoulli");
        assert!((Method::Row.scaled_scheme(0.5).nominal_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mlp_speedup_reproduces_paper_ordering() {
        let model = mlp_timing_model(2048, 2048);
        let row = mlp_speedup(&model, Method::Row, 0.5, 0.5);
        let tile = mlp_speedup(&model, Method::Tile, 0.5, 0.5);
        let baseline = mlp_speedup(&model, Method::Baseline, 0.5, 0.5);
        assert!((baseline - 1.0).abs() < 1e-9);
        assert!(row > tile && tile > 1.0, "row {row}, tile {tile}");
    }

    #[test]
    fn scaled_mlp_training_reaches_reasonable_accuracy() {
        let result = train_scaled_mlp(Method::Baseline, 0.3, 0.3, 64, 60);
        assert!(result.accuracy > 0.6, "accuracy {}", result.accuracy);
        assert!(result.loss.is_finite());
    }

    #[test]
    fn scaled_lstm_training_beats_chance() {
        let result = train_scaled_lstm(Method::Row, 0.3, 60, 24, 2, 8, 40);
        assert!(result.accuracy > 1.0 / 60.0, "accuracy {}", result.accuracy);
        assert!(result.perplexity < 60.0, "perplexity {}", result.perplexity);
    }

    #[test]
    fn report_renders_aligned_rows() {
        let mut report = Report::new("Demo", &["a", "bbbb"]);
        assert!(report.is_empty());
        report.add_row(&["x".to_string(), "y".to_string()]);
        assert_eq!(report.len(), 1);
        let rendered = report.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("a  bbbb"));
        assert!(rendered.contains("x  y"));
    }
}
