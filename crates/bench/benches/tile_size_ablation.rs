//! Ablation of the tile size used by the Tile-based Dropout Pattern.
//!
//! The paper fixes 32×32 to match the 32 shared-memory banks; this bench
//! measures how the CPU compacted GEMM behaves for 8/16/32/64 tiles at the
//! same dropout rate, and the `gpu-sim` model covers the GPU-side argument.

use approx_dropout::{TileGrid, TilePattern};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::{gemm, init};

const BATCH: usize = 32;
const DIM: usize = 256;

fn bench_tile_sizes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let x = init::uniform(&mut rng, BATCH, DIM, -1.0, 1.0);
    let w = init::uniform(&mut rng, DIM, DIM, -0.1, 0.1);
    let dp = 2;

    let mut group = c.benchmark_group("tile_size_ablation");
    group.sample_size(10);
    for &tile in &[8usize, 16, 32, 64] {
        let grid = TileGrid::new(DIM, DIM, tile).expect("valid grid");
        let pattern = TilePattern::new(dp, 0, tile).expect("valid pattern");
        let kept = pattern.kept_tiles(&grid);
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, _| {
            b.iter(|| {
                black_box(
                    gemm::tile_compact_gemm(black_box(&x), black_box(&w), &kept, tile)
                        .expect("tiles in bounds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tile_sizes);
criterion_main!(benches);
