//! CPU counterpart of Fig. 1(b): skipping dropped neurons with a per-element
//! branch inside the dense GEMM loop does not pay off, while the compacted
//! GEMM does. (On the GPU the branch is even worse because of warp
//! divergence; here it merely fails to remove the memory traffic.)

use approx_dropout::RowPattern;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::{gemm, init, Matrix};

const BATCH: usize = 32;
const DIM: usize = 256;

/// Dense GEMM with an `if kept[j]` branch in the inner loop — the naive
/// skipping approach of Fig. 1(b).
fn branchy_gemm(x: &Matrix, w: &Matrix, kept: &[bool]) -> Matrix {
    let (m, k) = x.shape();
    let n = w.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let xip = x[(i, p)];
            for j in 0..n {
                if kept[j] {
                    c[(i, j)] += xip * w[(p, j)];
                }
            }
        }
    }
    c
}

fn bench_divergence(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = init::uniform(&mut rng, BATCH, DIM, -1.0, 1.0);
    let w = init::uniform(&mut rng, DIM, DIM, -0.1, 0.1);
    let pattern = RowPattern::new(2, 0).expect("valid pattern");
    let kept_idx = pattern.kept_rows(DIM);
    let kept_mask: Vec<bool> = (0..DIM).map(|j| pattern.is_kept(j)).collect();

    let mut group = c.benchmark_group("divergence_motivation");
    group.sample_size(10);
    group.bench_function("dense_gemm", |b| {
        b.iter(|| {
            black_box(gemm::blocked_gemm(black_box(&x), black_box(&w)).expect("shapes agree"))
        })
    });
    group.bench_function("branchy_skip_gemm", |b| {
        b.iter(|| black_box(branchy_gemm(black_box(&x), black_box(&w), &kept_mask)))
    });
    group.bench_function("row_compact_gemm", |b| {
        b.iter(|| {
            black_box(
                gemm::row_compact_gemm(black_box(&x), black_box(&w), &kept_idx)
                    .expect("indices in bounds"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_divergence);
criterion_main!(benches);
