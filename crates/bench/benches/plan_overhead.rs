//! Plan–execute micro-benchmark: per-iteration cost of sampling a
//! `DropoutPlan` from each scheme, and of executing the planned GEMM
//! (dense + mask for the Bernoulli baseline, compacted for the patterns).
//!
//! This is the CPU-side counterpart of the paper's claim that planning the
//! pattern *before* launch is cheap relative to the GEMM work it saves: plan
//! creation is O(layer width) bookkeeping, while the compacted GEMM removes
//! an `(1 - 1/dp)` share of the O(M·K·N) multiply.

use approx_dropout::{scheme, DropoutRate, DropoutScheme, LayerShape};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::Linear;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::init;

const BATCH: usize = 32;
const DIM: usize = 256;

fn schemes() -> Vec<(&'static str, Box<dyn DropoutScheme>)> {
    let rate = DropoutRate::new(0.5).expect("static rate is valid");
    vec![
        ("bernoulli", scheme::bernoulli(rate)),
        ("row", scheme::row(rate, 16).expect("valid")),
        ("tile", scheme::tile(rate, 16, 32).expect("valid")),
    ]
}

/// Cost of `DropoutScheme::plan` alone — the pre-launch planning step.
fn bench_plan_creation(c: &mut Criterion) {
    let shape = LayerShape::new(DIM, DIM);
    let mut group = c.benchmark_group("plan_creation");
    group.sample_size(20);
    for (name, mut s) in schemes() {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("plan", name), &(), |b, ()| {
            b.iter(|| black_box(s.plan(&mut rng, black_box(shape))))
        });
    }
    group.finish();
}

/// Cost of plan sampling *plus* executing the planned forward GEMM — what
/// one training iteration of a single layer pays end to end.
fn bench_planned_forward(c: &mut Criterion) {
    let shape = LayerShape::new(DIM, DIM);
    let mut init_rng = StdRng::seed_from_u64(2);
    let layer = Linear::new(&mut init_rng, DIM, DIM);
    let x = init::uniform(&mut init_rng, BATCH, DIM, -1.0, 1.0);

    let mut group = c.benchmark_group("plan_plus_forward");
    group.sample_size(10);
    for (name, mut s) in schemes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut work_layer = layer.clone();
        group.bench_with_input(BenchmarkId::new("forward", name), &(), |b, ()| {
            b.iter(|| {
                let plan = s.plan(&mut rng, shape);
                black_box(work_layer.forward(black_box(&x), &plan))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_creation, bench_planned_forward);
criterion_main!(benches);
