//! Measured CPU wall-clock of the dense GEMM + mask path (conventional
//! dropout) vs the compacted GEMMs (Fig. 4 / Table I, CPU counterpart).
//!
//! The compacted kernels really do skip the dropped work, so the ratio of
//! the `dense_plus_mask` group to the `row_compact` / `tile_compact` groups
//! is a measured (not modelled) speedup with the same shape as the paper's.

use approx_dropout::{BernoulliDropout, DropoutRate, RowPattern, TileGrid, TilePattern};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::{gemm, init, Matrix};

const BATCH: usize = 32;
const DIM: usize = 256;

fn operands() -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(99);
    let x = init::uniform(&mut rng, BATCH, DIM, -1.0, 1.0);
    let w = init::uniform(&mut rng, DIM, DIM, -0.1, 0.1);
    (x, w)
}

fn bench_gemm_dropout(c: &mut Criterion) {
    let (x, w) = operands();
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("gemm_dropout");
    group.sample_size(10);

    for &dp in &[2usize, 3, 5] {
        let rate = (dp - 1) as f64 / dp as f64;
        let bernoulli = BernoulliDropout::new(DropoutRate::new(rate).expect("valid rate"));
        let mask = bernoulli.mask(&mut rng, BATCH, DIM);
        group.bench_with_input(BenchmarkId::new("dense_plus_mask", dp), &dp, |b, _| {
            b.iter(|| {
                let z = gemm::blocked_gemm(black_box(&x), black_box(&w)).expect("shapes agree");
                black_box(z.hadamard(&mask).expect("shapes agree"))
            })
        });

        let row = RowPattern::new(dp, 0).expect("valid pattern");
        let kept_rows = row.kept_rows(DIM);
        group.bench_with_input(BenchmarkId::new("row_compact", dp), &dp, |b, _| {
            b.iter(|| {
                black_box(
                    gemm::row_compact_gemm(black_box(&x), black_box(&w), &kept_rows)
                        .expect("indices in bounds"),
                )
            })
        });

        let grid = TileGrid::new(DIM, DIM, 32).expect("valid grid");
        let tile = TilePattern::new(dp, 0, 32).expect("valid pattern");
        let kept_tiles = tile.kept_tiles(&grid);
        group.bench_with_input(BenchmarkId::new("tile_compact", dp), &dp, |b, _| {
            b.iter(|| {
                black_box(
                    gemm::tile_compact_gemm(black_box(&x), black_box(&w), &kept_tiles, 32)
                        .expect("tiles in bounds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_dropout);
criterion_main!(benches);
