//! Synthetic language-model corpus standing in for the 8800-word dictionary
//! data set and Penn Treebank.
//!
//! Tokens are drawn from a Zipf-like unigram distribution modulated by a
//! sparse first-order Markov chain: each word has a small set of likely
//! successors, so an LSTM can reduce perplexity well below the unigram
//! baseline, while the heavy-tailed vocabulary keeps the task from becoming
//! trivial — the same qualitative properties the paper's corpora have.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic corpus generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Vocabulary size (8800 for the dictionary set, 10 000 for PTB; tests
    /// use much smaller values).
    pub vocab: usize,
    /// Zipf exponent of the unigram distribution.
    pub zipf_exponent: f64,
    /// Number of preferred successors per word in the Markov chain.
    pub successors_per_word: usize,
    /// Probability of following the Markov chain rather than sampling from
    /// the unigram distribution (higher = more predictable text).
    pub coherence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            vocab: 8800,
            zipf_exponent: 1.05,
            successors_per_word: 4,
            coherence: 0.8,
            seed: 11,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and quick examples.
    pub fn small() -> Self {
        Self {
            vocab: 200,
            ..Self::default()
        }
    }

    /// A PTB-scale configuration (10 000 words).
    pub fn ptb_like() -> Self {
        Self {
            vocab: 10_000,
            ..Self::default()
        }
    }
}

/// Deterministic synthetic corpus generator.
///
/// # Example
///
/// ```
/// use data::{CorpusConfig, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::new(CorpusConfig::small());
/// let batch = corpus.batch(20, 35, 0);
/// assert_eq!(batch.len(), 20);
/// assert_eq!(batch[0].len(), 36); // seq_len inputs + 1 trailing target
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    config: CorpusConfig,
    unigram_cdf: Vec<f64>,
    successors: Vec<Vec<usize>>,
}

impl SyntheticCorpus {
    /// Builds the generator (unigram distribution and Markov chain).
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary is empty, `successors_per_word` is zero or
    /// `coherence` is outside `[0, 1]`.
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.vocab > 0, "vocabulary must not be empty");
        assert!(
            config.successors_per_word > 0,
            "successors_per_word must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.coherence),
            "coherence must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Zipf unigram distribution: p(rank r) ∝ 1 / r^s.
        let weights: Vec<f64> = (1..=config.vocab)
            .map(|r| 1.0 / (r as f64).powf(config.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let unigram_cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Sparse successor lists, biased towards frequent words by sampling
        // them from the Zipf unigram distribution (real text's frequent words
        // are frequent both marginally and as successors).
        let cdf: &Vec<f64> = &unigram_cdf;
        let sample_zipf = |rng: &mut StdRng| -> usize {
            let u: f64 = rng.gen();
            match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf entries are finite")) {
                Ok(i) | Err(i) => i.min(config.vocab - 1),
            }
        };
        let successors = (0..config.vocab)
            .map(|_| {
                (0..config.successors_per_word)
                    .map(|_| sample_zipf(&mut rng))
                    .collect()
            })
            .collect();
        Self {
            config,
            unigram_cdf,
            successors,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.config.vocab
    }

    fn sample_unigram(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .unigram_cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf entries are finite"))
        {
            Ok(i) | Err(i) => i.min(self.config.vocab - 1),
        }
    }

    fn next_token(&self, prev: usize, rng: &mut StdRng) -> usize {
        if rng.gen::<f64>() < self.config.coherence {
            let options = &self.successors[prev];
            options[rng.gen_range(0..options.len())]
        } else {
            self.sample_unigram(rng)
        }
    }

    /// Generates one token stream of the requested length.
    pub fn stream(&self, length: usize, seed_offset: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (seed_offset.wrapping_mul(0xA24B_AED4_963E_E407)).wrapping_add(1),
        );
        let mut tokens = Vec::with_capacity(length);
        let mut prev = self.sample_unigram(&mut rng);
        tokens.push(prev);
        while tokens.len() < length {
            prev = self.next_token(prev, &mut rng);
            tokens.push(prev);
        }
        tokens
    }

    /// Generates a PTB-style training batch: `batch_size` independent
    /// sequences of `seq_len + 1` tokens (inputs plus the final prediction
    /// target). Batch `index` is deterministic.
    pub fn batch(&self, batch_size: usize, seq_len: usize, index: u64) -> Vec<Vec<usize>> {
        (0..batch_size)
            .map(|b| self.stream(seq_len + 1, index.wrapping_mul(65_537) + b as u64))
            .collect()
    }

    /// Empirical unigram entropy (in nats) of a generated stream — useful as
    /// the "no model" perplexity reference in experiments.
    pub fn unigram_entropy_estimate(&self, sample_tokens: usize) -> f64 {
        let stream = self.stream(sample_tokens.max(1), u64::MAX / 3);
        let mut counts = vec![0usize; self.config.vocab];
        for &t in &stream {
            counts[t] += 1;
        }
        let n = stream.len() as f64;
        -counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                p * p.ln()
            })
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_requested_shape() {
        let corpus = SyntheticCorpus::new(CorpusConfig::small());
        let batch = corpus.batch(20, 35, 0);
        assert_eq!(batch.len(), 20);
        assert!(batch.iter().all(|s| s.len() == 36));
        assert!(batch.iter().flatten().all(|&t| t < corpus.vocab()));
    }

    #[test]
    fn batches_are_deterministic_per_index() {
        let corpus = SyntheticCorpus::new(CorpusConfig::small());
        assert_eq!(corpus.batch(4, 10, 1), corpus.batch(4, 10, 1));
        assert_ne!(corpus.batch(4, 10, 1), corpus.batch(4, 10, 2));
    }

    #[test]
    fn frequent_words_dominate_the_stream() {
        let corpus = SyntheticCorpus::new(CorpusConfig::small());
        let stream = corpus.stream(20_000, 0);
        let head = stream.iter().filter(|&&t| t < 20).count() as f64 / stream.len() as f64;
        // With a Zipf exponent near 1, the 10% most frequent words should
        // cover well over a third of the tokens.
        assert!(head > 0.35, "head coverage {head}");
    }

    #[test]
    fn markov_structure_makes_text_more_predictable_than_unigrams() {
        let corpus = SyntheticCorpus::new(CorpusConfig::small());
        let stream = corpus.stream(20_000, 0);
        // Estimate the conditional entropy H(next | prev) from bigram counts
        // and compare against the unigram entropy.
        let v = corpus.vocab();
        let mut bigram = vec![0usize; v * v];
        let mut prev_counts = vec![0usize; v];
        for w in stream.windows(2) {
            bigram[w[0] * v + w[1]] += 1;
            prev_counts[w[0]] += 1;
        }
        let n = (stream.len() - 1) as f64;
        let mut conditional = 0.0;
        for p in 0..v {
            for q in 0..v {
                let c = bigram[p * v + q];
                if c > 0 {
                    let joint = c as f64 / n;
                    let cond = c as f64 / prev_counts[p] as f64;
                    conditional -= joint * cond.ln();
                }
            }
        }
        let unigram = corpus.unigram_entropy_estimate(20_000);
        assert!(
            conditional < unigram * 0.8,
            "conditional {conditional} vs unigram {unigram}"
        );
    }

    #[test]
    fn ptb_like_config_has_ptb_vocab() {
        assert_eq!(CorpusConfig::ptb_like().vocab, 10_000);
        assert_eq!(CorpusConfig::default().vocab, 8800);
    }

    #[test]
    #[should_panic(expected = "vocabulary must not be empty")]
    fn rejects_empty_vocab() {
        let _ = SyntheticCorpus::new(CorpusConfig {
            vocab: 0,
            ..CorpusConfig::small()
        });
    }

    #[test]
    #[should_panic(expected = "coherence must be in [0, 1]")]
    fn rejects_bad_coherence() {
        let _ = SyntheticCorpus::new(CorpusConfig {
            coherence: 1.5,
            ..CorpusConfig::small()
        });
    }
}
