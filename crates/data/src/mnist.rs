//! Synthetic MNIST-like classification data.
//!
//! Each of the 10 classes is a fixed prototype vector in `[0, 1]^dim`;
//! samples are the prototype plus Gaussian pixel noise, clipped to `[0, 1]`.
//! The task difficulty is controlled by the noise level: with the default
//! settings a linear model fits it imperfectly while a small MLP reaches
//! high-90s accuracy, mirroring the role MNIST plays in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::{init, Matrix};

/// Configuration of the synthetic MNIST-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnistConfig {
    /// Input dimensionality (784 to match 28×28 MNIST, smaller for fast tests).
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Standard deviation of the per-pixel Gaussian noise.
    pub noise: f32,
    /// RNG seed for prototype construction and sampling.
    pub seed: u64,
}

impl Default for MnistConfig {
    fn default() -> Self {
        Self {
            dim: 784,
            classes: 10,
            noise: 0.25,
            seed: 7,
        }
    }
}

impl MnistConfig {
    /// A down-scaled configuration used by fast tests and the examples.
    pub fn small() -> Self {
        Self {
            dim: 64,
            classes: 10,
            noise: 0.25,
            seed: 7,
        }
    }
}

/// Deterministic synthetic MNIST-like dataset generator.
///
/// # Example
///
/// ```
/// use data::{MnistConfig, SyntheticMnist};
///
/// let dataset = SyntheticMnist::new(MnistConfig::small());
/// let (images, labels) = dataset.batch(32, 0);
/// assert_eq!(images.shape(), (32, 64));
/// assert_eq!(labels.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    config: MnistConfig,
    prototypes: Matrix,
}

impl SyntheticMnist {
    /// Builds the generator (constructs the class prototypes).
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `classes` is zero, or the noise is negative.
    pub fn new(config: MnistConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.classes > 0, "classes must be positive");
        assert!(config.noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Prototypes: sparse blobs of high intensity on a dark background,
        // loosely imitating stroke images.
        let prototypes = Matrix::from_fn(config.classes, config.dim, |_, _| {
            if rng.gen::<f32>() < 0.25 {
                0.6 + 0.4 * rng.gen::<f32>()
            } else {
                0.05 * rng.gen::<f32>()
            }
        });
        Self { config, prototypes }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &MnistConfig {
        &self.config
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.config.classes
    }

    /// Borrow the class prototypes (one row per class).
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Generates a deterministic batch: batch `index` always contains the
    /// same samples, and labels cycle through the classes so every batch is
    /// balanced.
    pub fn batch(&self, batch_size: usize, index: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index + 1)),
        );
        let mut images = Matrix::zeros(batch_size, self.config.dim);
        let mut labels = Vec::with_capacity(batch_size);
        for b in 0..batch_size {
            let class = (b + index as usize) % self.config.classes;
            labels.push(class);
            for j in 0..self.config.dim {
                let noisy = self.prototypes[(class, j)]
                    + self.config.noise * init::standard_normal(&mut rng);
                images[(b, j)] = noisy.clamp(0.0, 1.0);
            }
        }
        (images, labels)
    }

    /// Generates a held-out evaluation set (uses a batch index far away from
    /// any training batch index).
    pub fn eval_set(&self, size: usize) -> (Matrix, Vec<usize>) {
        self.batch(size, u64::MAX / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_requested_shape_and_balanced_labels() {
        let data = SyntheticMnist::new(MnistConfig::small());
        let (x, y) = data.batch(40, 3);
        assert_eq!(x.shape(), (40, 64));
        assert_eq!(y.len(), 40);
        // Balanced: each class appears 4 times in a 40-sample batch.
        for class in 0..10 {
            assert_eq!(y.iter().filter(|&&l| l == class).count(), 4);
        }
    }

    #[test]
    fn batches_are_deterministic_per_index() {
        let data = SyntheticMnist::new(MnistConfig::small());
        let (a, _) = data.batch(8, 5);
        let (b, _) = data.batch(8, 5);
        let (c, _) = data.batch(8, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pixels_are_in_unit_interval() {
        let data = SyntheticMnist::new(MnistConfig::small());
        let (x, _) = data.batch(64, 0);
        assert!(x.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn prototypes_are_distinct_across_classes() {
        let data = SyntheticMnist::new(MnistConfig::small());
        let p = data.prototypes();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let dist: f32 = (0..64)
                    .map(|j| (p[(a, j)] - p[(b, j)]).powi(2))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 0.5, "classes {a} and {b} too close ({dist})");
            }
        }
    }

    #[test]
    fn eval_set_differs_from_training_batches() {
        let data = SyntheticMnist::new(MnistConfig::small());
        let (train, _) = data.batch(16, 0);
        let (eval, _) = data.eval_set(16);
        assert_ne!(train, eval);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn rejects_zero_dim() {
        let _ = SyntheticMnist::new(MnistConfig {
            dim: 0,
            ..MnistConfig::small()
        });
    }

    #[test]
    fn default_matches_mnist_shape() {
        let cfg = MnistConfig::default();
        assert_eq!(cfg.dim, 784);
        assert_eq!(cfg.classes, 10);
    }
}
