//! Synthetic datasets standing in for MNIST and the language-model corpora.
//!
//! The paper evaluates on MNIST (MLP), an 8800-word dictionary corpus and
//! Penn Treebank (LSTM). Those datasets are not shipped with this
//! reproduction; instead this crate generates synthetic equivalents with the
//! same shape and the properties the experiments rely on:
//!
//! * [`SyntheticMnist`] — a 10-class, 784-dimensional classification task
//!   built from Gaussian class prototypes with controllable noise, on which
//!   an MLP without regularisation overfits and a dropout-regularised MLP
//!   generalises.
//! * [`SyntheticCorpus`] — a Zipf-distributed vocabulary driven by a sparse
//!   Markov chain, emitted as PTB-style `(batch, seq_len + 1)` token
//!   sequences for next-word prediction.
//!
//! Both generators are deterministic given a seed, so every experiment in
//! the bench crate is reproducible.

pub mod corpus;
pub mod mnist;

pub use corpus::{CorpusConfig, SyntheticCorpus};
pub use mnist::{MnistConfig, SyntheticMnist};
