//! Execution engine: replicas, deterministic plan resolution, pricing.
//!
//! A [`Replica`] is one worker shard's instance of a catalog model — an
//! [`nn::Mlp`] or [`nn::lstm::LstmLm`] plus its per-layer dropout schemes
//! and recycled [`DropoutPlan`] slots. A [`ShardEngine`] owns the replicas
//! of one worker shard and executes coalesced batches against them.
//!
//! # The determinism contract
//!
//! Every plan a replica executes is a pure function of its [`PlanKey`]:
//! layer `l` of model `m` in seed epoch `e` is always sampled from
//! `StdRng::seed_from_u64(key.seed())`, whether the resolution goes through
//! the shared [`PlanCache`] (miss → sample once, hit → reuse) or samples
//! directly because caching is disabled. Turning the cache on therefore
//! changes *when* sampling work happens — once per `(model, layer, epoch)`
//! instead of once per dispatch — but never *what* is executed: the
//! cache-on and cache-off serving paths are bitwise identical, which the
//! integration tests pin. The **seed epoch** advances every
//! `epoch_rounds` dispatches of a model, so dropout keeps re-randomizing
//! across training while sampling cost is amortized within an epoch — the
//! software analogue of moving mask generation off the training hot path.
//!
//! # Pricing
//!
//! [`simulated_iteration_us`] prices one coalesced dispatch on a
//! [`GpuConfig`] through the same `price_fc_schedule`-based timing model
//! the reproduction uses everywhere else, and
//! [`simulated_policy_speedup`] compares per-request dispatch against a
//! coalesced batch — the launch-overhead amortization that makes dynamic
//! batching win on the device model, independent of CPU wall clock.

use crate::job::{JobKind, JobSpec};
use crate::model::{ModelSpec, NetworkKind};
use approx_dropout::{DropoutPlan, DropoutScheme, LayerShape, PlanCache, PlanKey};
use gpu_sim::GpuConfig;
use nn::lstm::LstmLm;
use nn::Mlp;
use nn::TransformerLm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tensor::Matrix;

/// Epochs of history [`ShardEngine`] keeps in the shared plan cache before
/// evicting: generous enough that shards serving skewed traffic (whose
/// models advance epochs at different rates) rarely evict each other's
/// live entries, small enough that the table stays bounded by the live
/// `(model, layer)` pairs.
const EVICT_MARGIN: u64 = 4;

/// Stable scheme identifier of one model layer, used in [`PlanKey`]s: a
/// catalog model's layer `l` resolves the same plans on every shard and in
/// every process serving the same catalog.
pub fn scheme_id(model: usize, layer: usize) -> u64 {
    ((model as u64) << 16) | layer as u64
}

/// Materialized inputs of one coalesced batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchInputs {
    /// MLP inputs: one matrix row and one label per request row.
    Dense {
        /// `(rows, input_dim)` input samples.
        inputs: Matrix,
        /// One class label per row.
        labels: Vec<usize>,
    },
    /// LSTM inputs: one token sequence (`seq_len + 1` ids) per request row.
    Tokens(Vec<Vec<usize>>),
}

/// Expands a coalesced batch's jobs into concrete inputs, deterministically
/// from each job's seed — replaying a trace materializes identical bytes
/// regardless of which worker runs it or how jobs were grouped.
pub fn materialize(spec: &ModelSpec, jobs: &[JobSpec]) -> BatchInputs {
    match &spec.network {
        NetworkKind::Mlp {
            input_dim, classes, ..
        } => {
            let rows: usize = jobs.iter().map(|j| j.rows).sum();
            let mut inputs = Matrix::zeros(rows, *input_dim);
            let mut labels = Vec::with_capacity(rows);
            let mut row = 0;
            for job in jobs {
                let mut rng = StdRng::seed_from_u64(job.seed);
                for _ in 0..job.rows {
                    for value in inputs.row_mut(row) {
                        *value = rng.gen::<f32>();
                    }
                    labels.push(rng.gen_range(0..*classes));
                    row += 1;
                }
            }
            BatchInputs::Dense { inputs, labels }
        }
        NetworkKind::Lstm { vocab, seq_len, .. }
        | NetworkKind::TransformerLm { vocab, seq_len, .. } => {
            let mut sequences = Vec::with_capacity(jobs.iter().map(|j| j.rows).sum());
            for job in jobs {
                let mut rng = StdRng::seed_from_u64(job.seed);
                for _ in 0..job.rows {
                    sequences.push((0..seq_len + 1).map(|_| rng.gen_range(0..*vocab)).collect());
                }
            }
            BatchInputs::Tokens(sequences)
        }
    }
}

/// Resolves the full plan set of `model`'s spec for one seed epoch without
/// a replica or cache — the reference the determinism tests compare
/// against, and the plan source for the simulated pricing path.
pub fn resolve_spec_plans(spec: &ModelSpec, model: usize, epoch: u64) -> Vec<DropoutPlan> {
    spec.layer_shapes()
        .into_iter()
        .enumerate()
        .map(|(layer, shape)| {
            let key = PlanKey::new(scheme_id(model, layer), shape, epoch);
            let mut scheme = spec
                .scheme
                .build()
                .expect("catalog scheme configuration must be valid");
            let mut rng = StdRng::seed_from_u64(key.seed());
            scheme.plan(&mut rng, shape)
        })
        .collect()
}

/// The network a replica wraps. Boxed: the variants are large (inline
/// weight matrices and workspaces) and replicas live on worker threads.
#[derive(Debug)]
enum ReplicaNet {
    Mlp(Box<Mlp>),
    Lstm(Box<LstmLm>),
    Transformer(Box<TransformerLm>),
}

/// One worker shard's instance of a catalog model.
#[derive(Debug)]
pub struct Replica {
    model: usize,
    spec: ModelSpec,
    net: ReplicaNet,
    /// One scheme instance per droppable layer (layers keep independent
    /// pattern statistics, like the training loops do).
    schemes: Vec<Box<dyn DropoutScheme>>,
    /// Recycled per-layer plan slots — warmed once, then re-resolved in
    /// place on every dispatch with zero allocation.
    plans: Vec<DropoutPlan>,
    shapes: Vec<LayerShape>,
    /// Train dispatches executed so far; `dispatches / epoch_rounds` is the
    /// replica's current seed epoch.
    dispatches: u64,
}

impl Replica {
    /// Instantiates `spec` as catalog model `model`, with weights drawn
    /// from `init_seed` (mixed with the model id, so replicas of different
    /// models never share initialization).
    pub fn new(model: usize, spec: &ModelSpec, init_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(
            init_seed.wrapping_add((model as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let net = match &spec.network {
            NetworkKind::Mlp { .. } => {
                ReplicaNet::Mlp(Box::new(Mlp::new(&spec.mlp_config(), &mut rng)))
            }
            NetworkKind::Lstm { .. } => {
                ReplicaNet::Lstm(Box::new(LstmLm::new(&spec.lstm_config(), &mut rng)))
            }
            NetworkKind::TransformerLm { .. } => ReplicaNet::Transformer(Box::new(
                TransformerLm::new(&spec.transformer_config(), &mut rng),
            )),
        };
        let shapes = spec.layer_shapes();
        Self {
            model,
            spec: spec.clone(),
            net,
            schemes: (0..shapes.len())
                .map(|_| {
                    spec.scheme
                        .build()
                        .expect("catalog scheme configuration must be valid")
                })
                .collect(),
            plans: vec![DropoutPlan::default(); shapes.len()],
            shapes,
            dispatches: 0,
        }
    }

    /// Catalog index of the model this replica serves.
    pub fn model(&self) -> usize {
        self.model
    }

    /// The spec the replica was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Train dispatches executed so far.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// The per-layer plans of the last resolved epoch.
    pub fn plans(&self) -> &[DropoutPlan] {
        &self.plans
    }

    /// Resolves the replica's per-layer plans for `epoch`, through `cache`
    /// when given (hit → allocation-free `clone_from`, miss → sample once
    /// and memoize) and by direct seeded sampling otherwise. Either path
    /// yields the bitwise-identical plans of [`resolve_spec_plans`].
    pub fn resolve_plans(&mut self, epoch: u64, cache: Option<&PlanCache>) {
        for (layer, ((plan, scheme), &shape)) in self
            .plans
            .iter_mut()
            .zip(self.schemes.iter_mut())
            .zip(self.shapes.iter())
            .enumerate()
        {
            let key = PlanKey::new(scheme_id(self.model, layer), shape, epoch);
            match cache {
                Some(cache) => {
                    cache.fetch(key, plan, |dest| {
                        let mut rng = StdRng::seed_from_u64(key.seed());
                        scheme.plan_into(&mut rng, shape, dest);
                    });
                }
                None => {
                    let mut rng = StdRng::seed_from_u64(key.seed());
                    scheme.plan_into(&mut rng, shape, plan);
                }
            }
        }
    }

    /// One SGD step over the batch with the currently resolved plans.
    /// Returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the replica's network family.
    pub fn train(&mut self, inputs: &BatchInputs) -> f32 {
        match (&mut self.net, inputs) {
            (ReplicaNet::Mlp(mlp), BatchInputs::Dense { inputs, labels }) => {
                mlp.train_batch_with_plans(inputs, labels, &self.plans).loss
            }
            (ReplicaNet::Lstm(lm), BatchInputs::Tokens(tokens)) => {
                lm.train_batch_with_plans(tokens, &self.plans).loss
            }
            (ReplicaNet::Transformer(lm), BatchInputs::Tokens(tokens)) => {
                lm.train_batch_with_plans(tokens, &self.plans).loss
            }
            _ => panic!("batch inputs do not match the replica's network family"),
        }
    }

    /// Dense evaluation over the batch (dropout off). Returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the replica's network family.
    pub fn infer(&self, inputs: &BatchInputs) -> f32 {
        match (&self.net, inputs) {
            (ReplicaNet::Mlp(mlp), BatchInputs::Dense { inputs, labels }) => {
                mlp.evaluate(inputs, labels).0
            }
            (ReplicaNet::Lstm(lm), BatchInputs::Tokens(tokens)) => lm.evaluate(tokens).loss,
            (ReplicaNet::Transformer(lm), BatchInputs::Tokens(tokens)) => lm.evaluate(tokens).loss,
            _ => panic!("batch inputs do not match the replica's network family"),
        }
    }
}

/// Result of one dispatched batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOutcome {
    /// Catalog model the batch ran against.
    pub model: usize,
    /// Train or infer.
    pub kind: JobKind,
    /// Total coalesced request rows.
    pub rows: usize,
    /// Seed epoch the dispatch resolved plans for.
    pub epoch: u64,
    /// Batch loss (training loss or dense evaluation loss).
    pub value: f32,
}

/// The execution core of one worker shard: its replicas, the shared plan
/// cache, and the epoch schedule. Single-threaded by construction — the
/// threaded server gives each worker its own engine, and the deterministic
/// tests drive one engine directly.
#[derive(Debug)]
pub struct ShardEngine {
    replicas: Vec<Replica>,
    cache: Option<Arc<PlanCache>>,
    epoch_rounds: u64,
    /// Highest epoch this engine has evicted up to (avoids re-locking every
    /// shard of the cache on every dispatch).
    evicted_to: u64,
}

impl ShardEngine {
    /// Builds the engine for the models of `catalog` whose index satisfies
    /// `owns` (the threaded server passes `model % workers == w`; tests
    /// pass `|_| true`). `epoch_rounds` train dispatches of a model share
    /// one seed epoch (clamped to at least 1).
    pub fn new(
        catalog: &[ModelSpec],
        owns: impl Fn(usize) -> bool,
        cache: Option<Arc<PlanCache>>,
        epoch_rounds: u64,
        init_seed: u64,
    ) -> Self {
        Self {
            replicas: catalog
                .iter()
                .enumerate()
                .filter(|(model, _)| owns(*model))
                .map(|(model, spec)| Replica::new(model, spec, init_seed))
                .collect(),
            cache,
            epoch_rounds: epoch_rounds.max(1),
            evicted_to: 0,
        }
    }

    /// The replicas this engine owns.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Executes one coalesced batch (all jobs must share a batch key owned
    /// by this engine) and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty, mixes batch keys, or targets a model
    /// this engine does not own.
    pub fn execute(&mut self, jobs: &[JobSpec]) -> BatchOutcome {
        let (model, kind) = jobs
            .first()
            .expect("a batch carries at least one job")
            .batch_key();
        assert!(
            jobs.iter().all(|j| j.batch_key() == (model, kind)),
            "a batch must not mix models or kinds"
        );
        let epoch_rounds = self.epoch_rounds;
        let cache = self.cache.clone();
        let replica = self
            .replicas
            .iter_mut()
            .find(|r| r.model() == model)
            .unwrap_or_else(|| panic!("model {model} is not owned by this shard"));
        let inputs = materialize(replica.spec(), jobs);
        let rows = jobs.iter().map(|j| j.rows).sum();
        let epoch = replica.dispatches / epoch_rounds;
        let value = match kind {
            JobKind::Train => {
                replica.resolve_plans(epoch, cache.as_deref());
                replica.dispatches += 1;
                replica.train(&inputs)
            }
            JobKind::Infer => replica.infer(&inputs),
        };
        if let Some(cache) = &cache {
            // Keep the shared table bounded: drop epochs that have fallen
            // well behind this engine's progress. Other shards' slower
            // models may get evicted early and simply re-sample on their
            // next fetch — plans are pure functions of their key, so this
            // costs a miss, never correctness.
            if epoch > self.evicted_to + EVICT_MARGIN {
                self.evicted_to = epoch;
                cache.evict_before(epoch - EVICT_MARGIN);
            }
        }
        BatchOutcome {
            model,
            kind,
            rows,
            epoch,
            value,
        }
    }
}

/// Simulated device time (µs) of one training dispatch of `spec` at
/// `batch_rows` coalesced rows under the given per-layer `plans`, priced
/// through the repo's kernel-level timing model (`price_fc_schedule` under
/// the hood).
pub fn simulated_iteration_us(
    gpu: &GpuConfig,
    spec: &ModelSpec,
    plans: &[DropoutPlan],
    batch_rows: usize,
) -> f64 {
    spec.timing_model(gpu.clone(), batch_rows)
        .iteration_time_from_plans(plans)
        .total_us()
}

/// Simulated speedup of dispatching `requests` jobs of `rows_per_request`
/// rows as **one** coalesced batch instead of one dispatch each, with both
/// sides executing the identical epoch-`epoch` plans of catalog model
/// `model`. Deterministic — every input is a pure function of the
/// arguments — so bench baselines can gate it at the tight `sim_*`
/// tolerance.
pub fn simulated_policy_speedup(
    gpu: &GpuConfig,
    spec: &ModelSpec,
    model: usize,
    epoch: u64,
    rows_per_request: usize,
    requests: usize,
) -> f64 {
    assert!(rows_per_request > 0 && requests > 0, "empty workload");
    let plans = resolve_spec_plans(spec, model, epoch);
    let per_request = requests as f64 * simulated_iteration_us(gpu, spec, &plans, rows_per_request);
    let coalesced = simulated_iteration_us(gpu, spec, &plans, rows_per_request * requests);
    per_request / coalesced
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_dropout::SchemeSpec;

    fn mlp_spec() -> ModelSpec {
        ModelSpec::mlp(
            "m",
            16,
            vec![32, 24],
            4,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        )
    }

    fn train_job(rows: usize, seed: u64) -> JobSpec {
        JobSpec {
            tenant: 0,
            model: 0,
            rows,
            seed,
            kind: JobKind::Train,
            qos: crate::qos::QosClass::Batch,
        }
    }

    #[test]
    fn materialize_is_grouping_invariant() {
        // The same two jobs materialize the same bytes whether coalesced
        // or split — the property that lets batching change cost without
        // changing the workload.
        let spec = mlp_spec();
        let (a, b) = (train_job(3, 11), train_job(2, 22));
        let coalesced = materialize(&spec, &[a, b]);
        let (first, second) = (materialize(&spec, &[a]), materialize(&spec, &[b]));
        let BatchInputs::Dense { inputs, labels } = coalesced else {
            panic!("mlp batch must be dense");
        };
        let (
            BatchInputs::Dense {
                inputs: ia,
                labels: la,
            },
            BatchInputs::Dense {
                inputs: ib,
                labels: lb,
            },
        ) = (first, second)
        else {
            panic!("mlp batch must be dense");
        };
        assert_eq!(inputs.row(0), ia.row(0));
        assert_eq!(inputs.row(3), ib.row(0));
        assert_eq!(labels[..3], la[..]);
        assert_eq!(labels[3..], lb[..]);
    }

    #[test]
    fn replica_plans_match_spec_resolution_with_and_without_cache() {
        let spec = mlp_spec();
        let reference = resolve_spec_plans(&spec, 0, 3);
        let mut direct = Replica::new(0, &spec, 9);
        direct.resolve_plans(3, None);
        assert_eq!(direct.plans(), &reference[..]);
        let cache = PlanCache::new(4);
        let mut cached = Replica::new(0, &spec, 9);
        cached.resolve_plans(3, Some(&cache)); // miss path
        cached.resolve_plans(3, Some(&cache)); // hit path
        assert_eq!(cached.plans(), &reference[..]);
        assert_eq!(cache.stats().hits, spec.dropout_layers() as u64);
    }

    #[test]
    fn engine_epochs_advance_every_epoch_rounds_dispatches() {
        let spec = mlp_spec();
        let mut engine = ShardEngine::new(&[spec], |_| true, None, 2, 7);
        let epochs: Vec<u64> = (0..5)
            .map(|i| engine.execute(&[train_job(2, i)]).epoch)
            .collect();
        assert_eq!(epochs, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn lstm_replicas_train_and_infer() {
        let spec = ModelSpec::lstm("l", 40, 16, 2, 4, SchemeSpec::Bernoulli { rate: 0.25 });
        let mut engine = ShardEngine::new(&[spec], |_| true, None, 4, 1);
        let job = JobSpec {
            tenant: 1,
            model: 0,
            rows: 2,
            seed: 5,
            kind: JobKind::Train,
            qos: crate::qos::QosClass::Batch,
        };
        let outcome = engine.execute(&[job]);
        assert!(outcome.value.is_finite());
        let infer = JobSpec {
            kind: JobKind::Infer,
            ..job
        };
        assert!(engine.execute(&[infer]).value.is_finite());
    }

    #[test]
    fn coalesced_dispatch_prices_cheaper_than_per_request() {
        let spec = mlp_spec();
        for gpu in [GpuConfig::gtx_1080ti(), GpuConfig::sparse_tensor_core()] {
            let speedup = simulated_policy_speedup(&gpu, &spec, 0, 0, 8, 16);
            assert!(
                speedup > 1.0,
                "coalescing must amortize launch overhead, got {speedup}"
            );
        }
    }
}
