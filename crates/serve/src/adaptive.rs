//! Adaptive batching: arrival-rate tracking and the priced hold decision.
//!
//! The fixed `Dynamic { deadline }` knob burns its full deadline whenever
//! traffic is quiet and still cuts batches too early when traffic is hot —
//! the deadline encodes a *guess* about the arrival rate. The adaptive
//! policy measures instead: an [`ArrivalTracker`] keeps a per-batch-key
//! EWMA of inter-arrival gaps (fed by [`crate::Client::submit`]), an
//! [`AdaptiveController`] prices each model's **merge win** — the
//! simulated device time saved by coalescing one more arrival, dominated
//! by the kernel-launch overhead the paper's economics revolve around —
//! once at startup, and every hold decision is then
//! [`gpu_sim::hold_batch`]: keep the batch open only while
//! `arrival_rate × merge_win` exceeds `latency_cost × jobs_waiting`.
//!
//! The controller lives on the submit *and* worker paths, so it is shared
//! behind a mutexed map; the map holds two `f64`s per live batch key.

use crate::engine::{resolve_spec_plans, simulated_iteration_us};
use crate::job::JobKind;
use crate::model::ModelSpec;
use gpu_sim::GpuConfig;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// EWMA smoothing factor for inter-arrival gaps: light enough to ride out
/// single stragglers, heavy enough to track a rate change within ~10
/// arrivals.
const GAP_ALPHA: f64 = 0.2;

/// Smoothed gaps of silence after which a key's rate collapses to zero.
/// The reciprocal-of-silence decay alone shrinks the rate too slowly for
/// a worker that is *blocking tenants while it holds*: a key that has
/// missed this many expected arrivals in a row has changed regime — the
/// flow stopped (often *because* everything it could batch with is
/// already in the held batch) — so predicting another arrival from the
/// historical gap is wrong, not just stale.
const STALE_GAPS: f64 = 3.0;

/// Floor on the smoothed gap when judging staleness, in µs: workers poll
/// the queue at ~20 µs granularity, so silences shorter than a couple of
/// polls say nothing about the flow even for extremely hot keys.
const STALE_FLOOR_US: f64 = 50.0;

/// Per-key arrival state: the smoothed gap and the last arrival time.
#[derive(Debug, Clone, Copy)]
struct Arrivals {
    ewma_gap_us: f64,
    last: Instant,
}

/// Observes job submissions and estimates per-batch-key arrival rates.
///
/// Rates are *staleness-decayed*: a key that stopped arriving reports a
/// rate based on the time since its last arrival, not its historical gap,
/// so a worker never holds a batch for traffic that has dried up.
#[derive(Debug, Default)]
pub struct ArrivalTracker {
    keys: Mutex<HashMap<(usize, JobKind), Arrivals>>,
}

impl ArrivalTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one arrival of `key` at `now`.
    pub fn observe(&self, key: (usize, JobKind), now: Instant) {
        let mut keys = self.keys.lock().expect("arrival tracker poisoned");
        match keys.get_mut(&key) {
            Some(state) => {
                let gap = now.duration_since(state.last).as_secs_f64() * 1e6;
                state.ewma_gap_us = if state.ewma_gap_us > 0.0 {
                    (1.0 - GAP_ALPHA) * state.ewma_gap_us + GAP_ALPHA * gap
                } else {
                    gap
                };
                state.last = now;
            }
            None => {
                keys.insert(
                    key,
                    Arrivals {
                        ewma_gap_us: 0.0,
                        last: now,
                    },
                );
            }
        }
    }

    /// Estimated arrival rate of `key` in jobs per µs at `now`: the
    /// reciprocal of the smoothed gap, widened by the time already waited
    /// since the last arrival, and collapsing to 0 outright once the key
    /// has been silent for [`STALE_GAPS`] smoothed gaps (the flow stopped;
    /// holding for it would stall the batch). Returns 0 for keys never
    /// observed twice.
    pub fn rate_per_us(&self, key: (usize, JobKind), now: Instant) -> f64 {
        let keys = self.keys.lock().expect("arrival tracker poisoned");
        let Some(state) = keys.get(&key) else {
            return 0.0;
        };
        if state.ewma_gap_us <= 0.0 {
            return 0.0;
        }
        let silent_us = now.duration_since(state.last).as_secs_f64() * 1e6;
        if silent_us > STALE_GAPS * state.ewma_gap_us.max(STALE_FLOOR_US) {
            return 0.0;
        }
        1.0 / state.ewma_gap_us.max(silent_us).max(1.0)
    }
}

/// The worker-side half of adaptive batching: per-model merge wins priced
/// once at startup, consulted on every hold decision.
#[derive(Debug)]
pub struct AdaptiveController {
    /// Simulated device µs saved by merging one more typical-size arrival
    /// into an open dispatch of model `m`, indexed by catalog position.
    merge_win_us: Vec<f64>,
    /// Device-µs a worker will spend holding to save one job-µs of queue
    /// latency; higher values dispatch sooner.
    latency_cost: f64,
}

/// Rows of the "typical arrival" the merge win is priced at. The win is
/// dominated by the per-dispatch launch overhead, which is independent of
/// the probe size, so a small probe prices every realistic job size well.
const PROBE_ROWS: usize = 4;

impl AdaptiveController {
    /// Prices the merge win of every catalog model on `gpu` at epoch-0
    /// plans: dispatching two probe batches separately versus coalesced —
    /// the launch-overhead amortization [`crate::simulated_policy_speedup`]
    /// measures, expressed as an absolute µs win per merge.
    pub fn new(catalog: &[ModelSpec], gpu: &GpuConfig, latency_cost: f64) -> Self {
        let merge_win_us = catalog
            .iter()
            .enumerate()
            .map(|(model, spec)| {
                let plans = resolve_spec_plans(spec, model, 0);
                let solo = simulated_iteration_us(gpu, spec, &plans, PROBE_ROWS);
                let merged = simulated_iteration_us(gpu, spec, &plans, 2 * PROBE_ROWS);
                gpu_sim::merge_win_us(solo, solo, merged)
            })
            .collect();
        Self {
            merge_win_us,
            latency_cost,
        }
    }

    /// The priced merge win of catalog model `model` in simulated µs.
    pub fn merge_win_us(&self, model: usize) -> f64 {
        self.merge_win_us.get(model).copied().unwrap_or(0.0)
    }

    /// Whether a worker holding `jobs_waiting` jobs of `spec`'s batch key
    /// should keep the batch open for the next expected arrival.
    pub fn should_hold(
        &self,
        tracker: &ArrivalTracker,
        key: (usize, JobKind),
        jobs_waiting: usize,
        now: Instant,
    ) -> bool {
        gpu_sim::hold_batch(
            tracker.rate_per_us(key, now),
            self.merge_win_us(key.0),
            jobs_waiting,
            self.latency_cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_dropout::SchemeSpec;
    use std::time::Duration;

    #[test]
    fn tracker_estimates_a_steady_rate() {
        let tracker = ArrivalTracker::new();
        let key = (0, JobKind::Train);
        let start = Instant::now();
        // One arrival every 100 µs, injected via synthetic instants.
        for i in 0..20u64 {
            tracker.observe(key, start + Duration::from_micros(100 * i));
        }
        let rate = tracker.rate_per_us(key, start + Duration::from_micros(1900));
        assert!(
            (rate - 0.01).abs() < 0.002,
            "expected ~0.01 jobs/µs, got {rate}"
        );
    }

    #[test]
    fn rate_decays_while_a_key_is_silent() {
        let tracker = ArrivalTracker::new();
        let key = (0, JobKind::Infer);
        let start = Instant::now();
        for i in 0..10u64 {
            tracker.observe(key, start + Duration::from_micros(50 * i));
        }
        let hot = tracker.rate_per_us(key, start + Duration::from_micros(500));
        let cold = tracker.rate_per_us(key, start + Duration::from_micros(500_000));
        assert!(hot > 100.0 * cold, "silence must decay the rate");
    }

    #[test]
    fn unseen_keys_report_zero_rate() {
        let tracker = ArrivalTracker::new();
        assert_eq!(
            tracker.rate_per_us((9, JobKind::Train), Instant::now()),
            0.0
        );
        // A single arrival is not a rate either.
        tracker.observe((9, JobKind::Train), Instant::now());
        assert_eq!(
            tracker.rate_per_us((9, JobKind::Train), Instant::now()),
            0.0
        );
    }

    #[test]
    fn controller_prices_a_positive_merge_win() {
        let catalog = vec![ModelSpec::mlp(
            "m",
            32,
            vec![64],
            8,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        )];
        let controller = AdaptiveController::new(&catalog, &GpuConfig::gtx_1080ti(), 0.05);
        assert!(
            controller.merge_win_us(0) > 0.0,
            "coalescing must save launch overhead"
        );
        assert_eq!(controller.merge_win_us(7), 0.0, "unknown model, no win");
    }

    #[test]
    fn hot_keys_hold_and_cold_keys_dispatch() {
        let catalog = vec![ModelSpec::mlp(
            "m",
            32,
            vec![64],
            8,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        )];
        let controller = AdaptiveController::new(&catalog, &GpuConfig::gtx_1080ti(), 0.05);
        let tracker = ArrivalTracker::new();
        let key = (0, JobKind::Train);
        let start = Instant::now();
        // Hot: arrivals every 2 µs → holding one job is clearly worth it.
        for i in 0..50u64 {
            tracker.observe(key, start + Duration::from_micros(2 * i));
        }
        let now = start + Duration::from_micros(100);
        assert!(controller.should_hold(&tracker, key, 1, now));
        // The same key long silent: the decayed rate must cut the batch.
        let much_later = start + Duration::from_secs(10);
        assert!(!controller.should_hold(&tracker, key, 1, much_later));
        // A key with no observed traffic never holds.
        assert!(!controller.should_hold(&tracker, (0, JobKind::Infer), 1, now));
    }
}
