//! Replica autoscaling: worker count follows smoothed queue depth.
//!
//! The serving layer can spawn and retire worker shards at runtime. The
//! policy half lives here as a pure state machine — [`Autoscaler::observe`]
//! consumes queue-depth samples and emits [`ScaleDecision`]s — so the
//! hysteresis behavior is unit-testable with synthetic clocks; the
//! mechanism half (actually spawning/retiring threads and re-routing
//! shards) lives in [`crate::server`].
//!
//! Three guards keep the controller from thrashing:
//!
//! * **Smoothing** — depth samples pass through an EWMA, so a single bursty
//!   poll cannot trigger a scale event.
//! * **Hysteresis band** — scale up above `high_watermark` queued jobs per
//!   worker, down below `low_watermark`; depth oscillating inside the band
//!   changes nothing.
//! * **Cooldown** — after any event the controller holds still for
//!   `cooldown`, giving the new worker count time to move the depth before
//!   being judged.
//!
//! The plan cache feeds the decision ([`PlanCacheStats::is_warm`]): a warm
//! cache means a fresh replica resolves its dropout plans from memoized
//! entries instead of re-running pattern searches, so scaling up is cheap
//! and the up-threshold drops by a quarter.

use std::time::{Duration, Instant};

/// Configuration of the [`Autoscaler`] (validated by
/// [`crate::ServeConfig::builder`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Fewest workers the scaler may retire down to (≥ 1).
    pub min_workers: usize,
    /// Most workers the scaler may spawn, capped by
    /// [`tensor::pool::MAX_THREADS`].
    pub max_workers: usize,
    /// Scale up when the smoothed queue depth (queued jobs per active
    /// worker) exceeds this.
    pub high_watermark: f64,
    /// Scale down when the smoothed depth falls below this (must stay
    /// below `high_watermark` — the gap is the hysteresis band).
    pub low_watermark: f64,
    /// EWMA smoothing factor applied to depth samples, in `(0, 1]`.
    pub alpha: f64,
    /// Minimum time between scale events.
    pub cooldown: Duration,
    /// How often the supervisor samples the queue.
    pub interval: Duration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_workers: 1,
            max_workers: 8,
            high_watermark: 8.0,
            low_watermark: 1.0,
            alpha: 0.3,
            cooldown: Duration::from_millis(5),
            interval: Duration::from_micros(500),
        }
    }
}

impl AutoscaleConfig {
    /// Why this configuration is invalid, if it is.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.min_workers == 0 {
            return Err("autoscale min_workers must be at least 1");
        }
        if self.max_workers < self.min_workers {
            return Err("autoscale max_workers must be >= min_workers");
        }
        if self.max_workers > tensor::pool::MAX_THREADS {
            return Err("autoscale max_workers exceeds tensor::pool::MAX_THREADS");
        }
        if !(self.low_watermark >= 0.0 && self.high_watermark > self.low_watermark) {
            return Err("autoscale watermarks need 0 <= low < high");
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("autoscale alpha must be in (0, 1]");
        }
        if self.cooldown.is_zero() || self.interval.is_zero() {
            return Err("autoscale cooldown and interval must be nonzero");
        }
        Ok(())
    }
}

/// What the scaler wants done to the worker fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Spawn one worker.
    Up,
    /// Retire one worker.
    Down,
}

/// The pure scaling state machine; see the module docs.
#[derive(Debug)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    smoothed: f64,
    seeded: bool,
    last_event: Option<Instant>,
}

impl Autoscaler {
    /// Creates the scaler (config must already be validated).
    pub fn new(config: AutoscaleConfig) -> Self {
        Self {
            config,
            smoothed: 0.0,
            seeded: false,
            last_event: None,
        }
    }

    /// The current smoothed queue depth in jobs per worker.
    pub fn smoothed_depth(&self) -> f64 {
        self.smoothed
    }

    /// Feeds one sample — `queued_jobs` across the queue, `active` current
    /// workers, whether the plan cache [`is
    /// warm`](approx_dropout::PlanCacheStats::is_warm) — and returns the
    /// scale event to apply, if any.
    pub fn observe(
        &mut self,
        queued_jobs: usize,
        active: usize,
        warm_cache: bool,
        now: Instant,
    ) -> Option<ScaleDecision> {
        let depth = queued_jobs as f64 / active.max(1) as f64;
        self.smoothed = if self.seeded {
            (1.0 - self.config.alpha) * self.smoothed + self.config.alpha * depth
        } else {
            self.seeded = true;
            depth
        };
        if let Some(last) = self.last_event {
            if now.duration_since(last) < self.config.cooldown {
                return None;
            }
        }
        // A warm cache makes spawning a replica cheap (plans resolve as
        // cache hits), so react to congestion a quarter-threshold earlier.
        let high = if warm_cache {
            self.config.high_watermark * 0.75
        } else {
            self.config.high_watermark
        };
        if self.smoothed > high && active < self.config.max_workers {
            self.last_event = Some(now);
            Some(ScaleDecision::Up)
        } else if self.smoothed < self.config.low_watermark && active > self.config.min_workers {
            self.last_event = Some(now);
            Some(ScaleDecision::Down)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscaleConfig {
        AutoscaleConfig {
            min_workers: 1,
            max_workers: 4,
            high_watermark: 8.0,
            low_watermark: 1.0,
            alpha: 0.5,
            cooldown: Duration::from_millis(10),
            interval: Duration::from_millis(1),
        }
    }

    #[test]
    fn default_config_validates() {
        AutoscaleConfig::default()
            .validate()
            .expect("default valid");
    }

    #[test]
    fn invalid_configs_are_named() {
        let mut c = config();
        c.min_workers = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.max_workers = tensor::pool::MAX_THREADS + 1;
        assert!(c.validate().is_err());
        let mut c = config();
        c.low_watermark = c.high_watermark;
        assert!(c.validate().is_err());
        let mut c = config();
        c.alpha = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sustained_depth_scales_up_then_idles_down() {
        let mut scaler = Autoscaler::new(config());
        let t0 = Instant::now();
        // Deep queue, sustained: first samples smooth up, then an Up fires.
        let mut ups = 0;
        for i in 0..10 {
            if scaler.observe(100, 1, false, t0 + Duration::from_millis(20 * i))
                == Some(ScaleDecision::Up)
            {
                ups += 1;
            }
        }
        assert!(ups > 0, "sustained depth must scale up");
        // Queue drained: downs follow once the smoothed depth decays.
        let mut downs = 0;
        for i in 10..30 {
            if scaler.observe(0, 2, false, t0 + Duration::from_millis(20 * i))
                == Some(ScaleDecision::Down)
            {
                downs += 1;
            }
        }
        assert!(downs > 0, "an idle queue must scale down");
    }

    #[test]
    fn oscillation_inside_the_band_never_thrashes() {
        let mut scaler = Autoscaler::new(config());
        let t0 = Instant::now();
        // Depth bounces between 2 and 6 jobs/worker — inside the 1..8 band.
        for i in 0..50 {
            let depth = if i % 2 == 0 { 2 } else { 6 };
            assert_eq!(
                scaler.observe(depth, 1, false, t0 + Duration::from_millis(20 * i)),
                None,
                "in-band oscillation at sample {i} must not scale"
            );
        }
    }

    #[test]
    fn cooldown_blocks_back_to_back_events() {
        let mut scaler = Autoscaler::new(config());
        let t0 = Instant::now();
        // Prime the EWMA past the watermark, then fire.
        assert_eq!(scaler.observe(100, 1, false, t0), Some(ScaleDecision::Up));
        // A sample right after — still over the watermark — must wait out
        // the 10 ms cooldown even though the depth justifies another Up.
        assert_eq!(
            scaler.observe(100, 2, false, t0 + Duration::from_millis(1)),
            None
        );
        assert_eq!(
            scaler.observe(100, 2, false, t0 + Duration::from_millis(12)),
            Some(ScaleDecision::Up)
        );
    }

    #[test]
    fn bounds_are_respected() {
        let mut scaler = Autoscaler::new(config());
        let t0 = Instant::now();
        // At max_workers no Up fires regardless of depth.
        assert_eq!(scaler.observe(1000, 4, false, t0), None);
        // At min_workers no Down fires regardless of idleness.
        let mut scaler = Autoscaler::new(config());
        assert_eq!(scaler.observe(0, 1, false, t0), None);
    }

    #[test]
    fn warm_cache_lowers_the_scale_up_threshold() {
        // Smoothed depth of 7 sits under the cold watermark (8) but over
        // the warm one (6): only the warm-cache path scales up.
        let t0 = Instant::now();
        let mut cold = Autoscaler::new(config());
        assert_eq!(cold.observe(7, 1, false, t0), None);
        let mut warm = Autoscaler::new(config());
        assert_eq!(warm.observe(7, 1, true, t0), Some(ScaleDecision::Up));
    }
}
