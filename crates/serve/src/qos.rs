//! Quality-of-service classes and their scheduling weights.
//!
//! Every [`crate::JobSpec`] carries a [`QosClass`]; the request queue
//! schedules across `(tenant, class)` lanes with weighted fairness
//! ([`crate::ShardedQueue::pop_fair`]) and the admission controller sheds
//! the cheapest-to-retry class first when the queue is bounded. The three
//! classes cover the serving taxonomy the ROADMAP's north star names:
//! latency-sensitive interactive traffic, ordinary batch work, and
//! best-effort background jobs that soak up spare capacity.

use std::fmt;

/// How latency-sensitive a job is — its scheduling weight and shedding
/// priority, not its semantics (any [`crate::JobKind`] can run under any
/// class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    /// Latency-sensitive traffic: heaviest scheduling weight, shed last.
    Interactive,
    /// Ordinary work — the default.
    #[default]
    Batch,
    /// Best-effort traffic: lightest weight, shed first under overload.
    Background,
}

impl QosClass {
    /// All classes, heaviest first.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Batch, QosClass::Background];

    /// Stable lowercase label (bench output, error messages).
    pub fn label(&self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Batch => "batch",
            QosClass::Background => "background",
        }
    }

    /// Shedding rank of the class alone: higher survives longer under
    /// overload (Background 0, Batch 1, Interactive 2). Combined with the
    /// job kind in [`crate::JobSpec::shed_rank`].
    pub fn rank(&self) -> u8 {
        match self {
            QosClass::Background => 0,
            QosClass::Batch => 1,
            QosClass::Interactive => 2,
        }
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Scheduling weights of the three classes, as served-row shares: under
/// contention a class receives service proportional to its weight.
///
/// Weights are validated by [`crate::ServeConfig::builder`] (every weight
/// nonzero); the default 8 / 2 / 1 split keeps Interactive latency flat
/// while a Background flood still makes progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosWeights {
    /// Weight of [`QosClass::Interactive`].
    pub interactive: u32,
    /// Weight of [`QosClass::Batch`].
    pub batch: u32,
    /// Weight of [`QosClass::Background`].
    pub background: u32,
}

impl Default for QosWeights {
    fn default() -> Self {
        Self {
            interactive: 8,
            batch: 2,
            background: 1,
        }
    }
}

impl QosWeights {
    /// The weight of `class`.
    pub fn weight(&self, class: QosClass) -> u32 {
        match class {
            QosClass::Interactive => self.interactive,
            QosClass::Batch => self.batch,
            QosClass::Background => self.background,
        }
    }

    /// `true` when every class has a nonzero weight (a zero weight would
    /// starve the class outright instead of de-prioritizing it).
    pub fn all_nonzero(&self) -> bool {
        self.interactive > 0 && self.batch > 0 && self.background > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_order_shedding_priority() {
        assert!(QosClass::Background.rank() < QosClass::Batch.rank());
        assert!(QosClass::Batch.rank() < QosClass::Interactive.rank());
    }

    #[test]
    fn default_weights_are_nonzero_and_ordered() {
        let w = QosWeights::default();
        assert!(w.all_nonzero());
        assert!(w.weight(QosClass::Interactive) > w.weight(QosClass::Batch));
        assert!(w.weight(QosClass::Batch) > w.weight(QosClass::Background));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QosClass::Interactive.to_string(), "interactive");
        assert_eq!(QosClass::default(), QosClass::Batch);
    }
}
