//! Batching policy and the dynamic coalescing rule.
//!
//! The dispatch decision the paper's economics hinge on, transplanted to a
//! serving front end: a GEMM over `B·r` coalesced rows costs far less than
//! `B` GEMMs over `r` rows each, because per-launch overhead (kernel launch
//! on the device model, operand packing on the CPU implementation) is paid
//! once instead of `B` times. The dynamic batcher therefore holds a dispatch
//! open for up to a deadline, merging queued jobs that share a
//! [`JobSpec::batch_key`] — same model, same kind, hence the same
//! `LayerShape`s and the same resolved plans — until the batch is full.
//!
//! [`coalesce`] is the *pure* form of that rule over an already-drained job
//! trace (no clock, no queue): the deterministic engine tests and the
//! simulated pricing path use it so batch composition is reproducible
//! bit-for-bit; the threaded server applies the same rule online against
//! its shard of the request queue.

use crate::job::JobSpec;
use std::time::Duration;

/// When a worker dispatches the jobs it has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Dispatch every job alone — the baseline the dynamic policy must
    /// beat.
    PerRequest,
    /// Coalesce jobs sharing a batch key until the batch reaches
    /// `max_batch_rows` or `deadline` has elapsed since the first job was
    /// drained, whichever comes first.
    Dynamic {
        /// Upper bound on coalesced rows per dispatch.
        max_batch_rows: usize,
        /// How long a partially filled batch may wait for more jobs.
        deadline: Duration,
    },
    /// Marginal-value batching: hold a partially filled batch open only
    /// while the expected merge win of the next arrival — the key's
    /// observed arrival rate times the launch-overhead saving priced on
    /// the gpu-sim timing model — exceeds the latency cost imposed on the
    /// jobs already waiting ([`gpu_sim::hold_batch`]). A quiet queue
    /// dispatches immediately instead of burning a fixed deadline;
    /// `max_deadline` only backstops the decision rule.
    Adaptive {
        /// Upper bound on coalesced rows per dispatch.
        max_batch_rows: usize,
        /// Hard cap on how long a batch may be held regardless of the
        /// marginal rule.
        max_deadline: Duration,
    },
}

impl BatchPolicy {
    /// A dynamic policy with defaults sized for the bench workloads:
    /// 256-row batches, half-millisecond deadline.
    pub fn dynamic_default() -> Self {
        BatchPolicy::Dynamic {
            max_batch_rows: 256,
            deadline: Duration::from_micros(500),
        }
    }

    /// The adaptive policy with defaults sized for the bench workloads:
    /// 256-row batches, 2 ms backstop deadline (the marginal rule usually
    /// dispatches far earlier).
    pub fn adaptive_default() -> Self {
        BatchPolicy::Adaptive {
            max_batch_rows: 256,
            max_deadline: Duration::from_millis(2),
        }
    }

    /// Stable label for bench output.
    pub fn label(&self) -> &'static str {
        match self {
            BatchPolicy::PerRequest => "per_request",
            BatchPolicy::Dynamic { .. } => "dynamic",
            BatchPolicy::Adaptive { .. } => "adaptive",
        }
    }

    /// The row bound of a coalescing policy (`None` for per-request).
    pub fn max_batch_rows(&self) -> Option<usize> {
        match *self {
            BatchPolicy::PerRequest => None,
            BatchPolicy::Dynamic { max_batch_rows, .. }
            | BatchPolicy::Adaptive { max_batch_rows, .. } => Some(max_batch_rows),
        }
    }
}

/// Groups a job trace into dispatches under `policy`, preserving
/// submission order within every batch key.
///
/// Jobs with different keys interleave freely; a batch is cut when adding
/// the next same-key job would exceed the policy's row bound. Batches are
/// emitted in the order they were *opened*, which makes the grouping a pure
/// function of the trace — the property the cache-on/cache-off bitwise
/// tests and the simulated pricing rely on.
pub fn coalesce(jobs: &[JobSpec], policy: &BatchPolicy) -> Vec<Vec<JobSpec>> {
    let max_rows = match policy.max_batch_rows() {
        None => return jobs.iter().map(|&job| vec![job]).collect(),
        // Offline there is no clock, so Dynamic and Adaptive coalesce
        // identically: group by key up to the row bound.
        Some(max_batch_rows) => max_batch_rows.max(1),
    };
    let mut out: Vec<Vec<JobSpec>> = Vec::new();
    // Open batch per key: (key, index into `out`, rows so far).
    let mut open: Vec<((usize, crate::job::JobKind), usize, usize)> = Vec::new();
    for &job in jobs {
        let key = job.batch_key();
        match open.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, slot, rows)) if *rows + job.rows <= max_rows => {
                out[*slot].push(job);
                *rows += job.rows;
            }
            Some((_, slot, rows)) => {
                // Full: cut the batch and open a fresh one for this key.
                out.push(vec![job]);
                *slot = out.len() - 1;
                *rows = job.rows;
            }
            None => {
                out.push(vec![job]);
                open.push((key, out.len() - 1, job.rows));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec};

    fn job(model: usize, rows: usize, kind: JobKind) -> JobSpec {
        JobSpec {
            tenant: 0,
            model,
            rows,
            seed: 0,
            kind,
            qos: crate::qos::QosClass::Batch,
        }
    }

    #[test]
    fn adaptive_coalesces_like_dynamic_offline() {
        let jobs = vec![job(0, 4, JobKind::Train); 5];
        let adaptive = BatchPolicy::Adaptive {
            max_batch_rows: 8,
            max_deadline: Duration::ZERO,
        };
        let dynamic = BatchPolicy::Dynamic {
            max_batch_rows: 8,
            deadline: Duration::ZERO,
        };
        assert_eq!(coalesce(&jobs, &adaptive), coalesce(&jobs, &dynamic));
    }

    #[test]
    fn per_request_never_merges() {
        let jobs = vec![job(0, 4, JobKind::Train); 3];
        let batches = coalesce(&jobs, &BatchPolicy::PerRequest);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn dynamic_merges_same_key_up_to_the_row_bound() {
        let jobs = vec![job(0, 4, JobKind::Train); 5];
        let policy = BatchPolicy::Dynamic {
            max_batch_rows: 8,
            deadline: Duration::ZERO,
        };
        let batches = coalesce(&jobs, &policy);
        // 5 × 4 rows under an 8-row cap → 2 + 2 + 1 jobs.
        assert_eq!(
            batches.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn different_models_and_kinds_never_share_a_batch() {
        let jobs = vec![
            job(0, 2, JobKind::Train),
            job(1, 2, JobKind::Train),
            job(0, 2, JobKind::Infer),
            job(0, 2, JobKind::Train),
        ];
        let policy = BatchPolicy::dynamic_default();
        let batches = coalesce(&jobs, &policy);
        assert_eq!(batches.len(), 3);
        for batch in &batches {
            let key = batch[0].batch_key();
            assert!(batch.iter().all(|j| j.batch_key() == key));
        }
        // The two same-key train jobs merged despite the interleaving.
        assert_eq!(batches[0].len(), 2);
    }
}
