//! Training-as-a-service front end for the Approximate Random Dropout
//! reproduction.
//!
//! The paper amortizes dropout overhead so training runs at hardware
//! speed; this crate is the subsystem that turns the repo's
//! plan–execute–price pipeline into a multi-tenant service that stays
//! predictable under heavy traffic. The request path is
//!
//! ```text
//!  tenants ──▶ admission ──▶ ShardedQueue ──▶ adaptive batcher ──▶ workers
//!             (bounded,      (QoS-weighted    (hold only while     (replicas on
//!              shed-or-       fair queueing    the merge win        the tensor
//!              reject by      per tenant ×     beats the queueing   pool; fleet
//!              shed rank)     class lane)      cost)                autoscaled)
//! ```
//!
//! * [`ServeConfig`] — builder-validated configuration: every field is
//!   private, construction goes through [`ServeConfig::builder`], and an
//!   invalid deployment fails with a typed [`ServeConfigError`].
//! * [`QosClass`] / [`QosWeights`] — every [`JobSpec`] carries a QoS
//!   class; [`ShardedQueue::pop_fair`] serves `(tenant, class)` lanes by
//!   virtual-time weighted fair queueing, so a flooding Background tenant
//!   cannot starve Interactive traffic.
//! * Admission control — with a bounded queue, overload shreds by price:
//!   the cheapest queued work ([`JobSpec::shed_rank`]: Background before
//!   Interactive, Infer before Train) is displaced first, and a job that
//!   is itself the cheapest in sight bounces as
//!   [`AdmissionError::Rejected`] instead of growing the backlog.
//! * [`BatchPolicy::Adaptive`] — workers hold a partially filled batch
//!   only while `arrival_rate × merge_win > latency_cost × jobs_waiting`
//!   ([`gpu_sim::hold_batch`]); the arrival rate is a per-batch-key EWMA
//!   ([`ArrivalTracker`]) and the merge win is priced once per model on
//!   the gpu-sim timing model ([`AdaptiveController`]).
//! * [`Autoscaler`] — the worker fleet follows smoothed queue depth with
//!   hysteresis and cooldown, capped by `tensor::pool::MAX_THREADS`; a
//!   warm [`PlanCache`] (plans resolve as hits, so replicas spawn cheap)
//!   lowers the scale-up threshold.
//! * [`PlanCache`] (from `approx_dropout`) — dropout plans are pure
//!   functions of `(scheme, LayerShape, seed epoch)`, so one worker's
//!   sample is every other dispatch's allocation-free `clone_from`; see
//!   the determinism contract in [`engine`].
//! * [`SchemeSpec`] (re-exported from `approx_dropout`) — catalog entries
//!   configure dropout as plain data round-trippable through the text
//!   grammar (`"row:0.5:8"`, `"nm:2:4"`, `"crs:0.5"`).
//!
//! Completed jobs report latency split into queue wait and execution
//! ([`JobResult`]); the post-shutdown [`ServeReport`] summarizes both as
//! percentile [`LatencySummary`]s. The `bench_serve` binary in
//! `crates/bench` drives this crate with closed-loop policy comparisons
//! and an open-loop overload scenario, and gates both the adaptive
//! batcher's throughput and the admission controller's tail-latency
//! protection in CI.

pub mod adaptive;
pub mod admission;
pub mod autoscale;
pub mod batcher;
pub mod config;
pub mod engine;
pub mod job;
pub mod model;
pub mod qos;
pub mod queue;
pub mod server;

pub use adaptive::{AdaptiveController, ArrivalTracker};
pub use admission::{AdmissionError, JobReply};
pub use approx_dropout::{PlanCache, PlanCacheStats, PlanKey, SchemeSpec, SchemeSpecError};
pub use autoscale::{AutoscaleConfig, Autoscaler, ScaleDecision};
pub use batcher::{coalesce, BatchPolicy};
pub use config::{ServeConfig, ServeConfigBuilder, ServeConfigError};
pub use engine::{
    materialize, resolve_spec_plans, scheme_id, simulated_iteration_us, simulated_policy_speedup,
    BatchInputs, BatchOutcome, Replica, ShardEngine,
};
pub use job::{JobKind, JobSpec};
pub use model::{ModelSpec, NetworkKind};
pub use qos::{QosClass, QosWeights};
pub use queue::{Push, ShardedQueue};
pub use server::{Client, JobResult, LatencySummary, ServeReport, Server};
