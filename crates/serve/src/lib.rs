//! Training-as-a-service front end for the Approximate Random Dropout
//! reproduction.
//!
//! The paper amortizes dropout overhead so training runs at hardware
//! speed; this crate is the subsystem that turns the repo's
//! plan–execute–price pipeline into a multi-tenant service under heavy
//! traffic. The request path is
//!
//! ```text
//!  tenants ──▶ ShardedQueue ──▶ dynamic batcher ──▶ PlanCache ──▶ worker shards
//!             (per-tenant       (coalesce same-     (memoized      (Mlp / LstmLm
//!              fairness)         shape jobs up       DropoutPlans)  replicas on the
//!                                to a deadline)                     tensor pool)
//! ```
//!
//! * [`ShardedQueue`] — one mutex shard per worker, per-tenant lanes popped
//!   round-robin so no tenant's backlog starves another.
//! * [`BatchPolicy`] / [`coalesce`] — per-request dispatch (the baseline)
//!   or dynamic batching: jobs sharing a [`JobSpec::batch_key`] (same
//!   model, same kind, hence the same `LayerShape`s) merge until a row
//!   bound or deadline.
//! * [`PlanCache`] (from `approx_dropout`) — dropout plans are pure
//!   functions of `(scheme, LayerShape, seed epoch)`, so one worker's
//!   sample is every other dispatch's allocation-free `clone_from`. The
//!   cache can be switched off without changing a single bit of any result
//!   — see the determinism contract in [`engine`].
//! * [`ShardEngine`] / [`Server`] — single-threaded execution cores, one
//!   per worker thread, running [`nn::Mlp`] / [`nn::lstm::LstmLm`] replicas
//!   whose GEMMs ride the shared `tensor::pool`.
//! * [`simulated_policy_speedup`] — prices a batching decision on the
//!   `gpu-sim` device model (`price_fc_schedule` under the hood), so
//!   policy is tunable against simulated device time as well as measured
//!   CPU wall clock.
//!
//! The `bench_serve` binary in `crates/bench` drives this crate with a
//! closed-loop multi-tenant load generator and gates dynamic batching's
//! throughput win over per-request dispatch in CI.

pub mod batcher;
pub mod engine;
pub mod job;
pub mod model;
pub mod queue;
pub mod server;

pub use approx_dropout::{PlanCache, PlanCacheStats, PlanKey};
pub use batcher::{coalesce, BatchPolicy};
pub use engine::{
    materialize, resolve_spec_plans, scheme_id, simulated_iteration_us, simulated_policy_speedup,
    BatchInputs, BatchOutcome, Replica, ShardEngine,
};
pub use job::{JobKind, JobSpec};
pub use model::{ModelSpec, NetworkKind, SchemeKind};
pub use queue::ShardedQueue;
pub use server::{Client, JobResult, ServeConfig, ServeReport, Server};
