//! Model catalog: what each served model looks like and how to build it.
//!
//! A [`ModelSpec`] is everything a worker shard needs to instantiate a
//! replica — the network family and dimensions ([`NetworkKind`]) plus the
//! dropout scheme every droppable layer runs ([`SchemeKind`]) — and
//! everything the pricing path needs to build the matching
//! [`gpu_sim::NetworkTimingModel`]. Specs are plain data (no boxed trait
//! objects) so a catalog can be cloned into every worker thread and
//! compared in tests.

use approx_dropout::{scheme, DropoutRate, DropoutScheme, LayerShape};
use gpu_sim::{GpuConfig, LstmSpec, MlpSpec, NetworkTimingModel};
use nn::lstm::LstmLmConfig;
use nn::MlpConfig;

/// Dropout scheme configuration of a served model, as plain data.
///
/// `build` materializes the boxed [`DropoutScheme`]; the variants mirror
/// the constructors of [`approx_dropout::scheme`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeKind {
    /// No dropout (dense execution).
    None,
    /// Conventional per-unit Bernoulli dropout (the paper's baseline).
    Bernoulli {
        /// Dropout rate in `(0, 1)`.
        rate: f64,
    },
    /// Row-based Dropout Pattern via Algorithm 1.
    Row {
        /// Target global dropout rate.
        rate: f64,
        /// Maximum pattern period explored by the search.
        max_dp: usize,
    },
    /// Tile-based Dropout Pattern via Algorithm 1.
    Tile {
        /// Target global dropout rate.
        rate: f64,
        /// Maximum pattern period explored by the search.
        max_dp: usize,
        /// Tile edge length (32 in the paper).
        tile: usize,
    },
    /// N:M structured sparsity (keep `n` of every `m` output lanes).
    Nm {
        /// Kept lanes per group.
        n: usize,
        /// Group width.
        m: usize,
    },
    /// Block-structured unit dropout.
    BlockUnit {
        /// Per-block drop probability.
        rate: f64,
        /// Contiguous block width.
        block: usize,
    },
    /// Sampled GEMM under column-row sampling (CRS): keep a `keep` fraction
    /// of the inner (K) dimension, scaled by `K/k` for unbiasedness.
    Crs {
        /// Kept fraction of the inner dimension, in `(0, 1]`.
        keep: f64,
    },
    /// Composed row-dropout × CRS: row dropout compacts the output (N)
    /// dimension while CRS samples the inner (K) dimension of the same
    /// kernel call.
    RowCrs {
        /// Target global dropout rate of the row axis.
        rate: f64,
        /// Maximum pattern period explored by the row search.
        max_dp: usize,
        /// Kept fraction of the inner dimension, in `(0, 1]`.
        keep: f64,
    },
}

impl SchemeKind {
    /// Materializes the boxed scheme.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (rate outside `(0, 1)`,
    /// degenerate `n:m`, …) — catalog entries are static configuration, so
    /// an invalid one is a programming error, not a runtime condition.
    pub fn build(&self) -> Box<dyn DropoutScheme> {
        let rate = |r: f64| DropoutRate::new(r).expect("catalog dropout rate must be in (0, 1)");
        match *self {
            SchemeKind::None => scheme::none(),
            SchemeKind::Bernoulli { rate: r } => scheme::bernoulli(rate(r)),
            SchemeKind::Row { rate: r, max_dp } => {
                scheme::row(rate(r), max_dp).expect("row scheme configuration must be valid")
            }
            SchemeKind::Tile {
                rate: r,
                max_dp,
                tile,
            } => scheme::tile(rate(r), max_dp, tile)
                .expect("tile scheme configuration must be valid"),
            SchemeKind::Nm { n, m } => {
                scheme::nm(n, m).expect("n:m scheme configuration must be valid")
            }
            SchemeKind::BlockUnit { rate: r, block } => scheme::block_unit(rate(r), block)
                .expect("block scheme configuration must be valid"),
            SchemeKind::Crs { keep } => {
                scheme::crs(keep).expect("crs scheme configuration must be valid")
            }
            SchemeKind::RowCrs {
                rate: r,
                max_dp,
                keep,
            } => scheme::row_crs(rate(r), max_dp, keep)
                .expect("row-crs scheme configuration must be valid"),
        }
    }
}

/// Network family and dimensions of a served model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkKind {
    /// Fully connected classifier ([`nn::Mlp`]); a request row is one
    /// input sample.
    Mlp {
        /// Input dimensionality.
        input_dim: usize,
        /// Hidden-layer widths.
        hidden: Vec<usize>,
        /// Output classes.
        classes: usize,
    },
    /// LSTM language model ([`nn::lstm::LstmLm`]); a request row is one
    /// token sequence of `seq_len + 1` ids.
    Lstm {
        /// Vocabulary size.
        vocab: usize,
        /// Hidden width of every layer (also the embedding width).
        hidden: usize,
        /// Stacked LSTM layers.
        layers: usize,
        /// Unrolled sequence length (inputs; targets shift by one).
        seq_len: usize,
    },
}

/// One entry of the serving catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Human-readable name (appears in bench output).
    pub name: String,
    /// Network family and dimensions.
    pub network: NetworkKind,
    /// Dropout scheme applied to every droppable layer.
    pub scheme: SchemeKind,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
}

impl ModelSpec {
    /// An MLP entry with the paper's SGD hyper-parameters.
    pub fn mlp(
        name: impl Into<String>,
        input_dim: usize,
        hidden: Vec<usize>,
        classes: usize,
        scheme: SchemeKind,
    ) -> Self {
        Self {
            name: name.into(),
            network: NetworkKind::Mlp {
                input_dim,
                hidden,
                classes,
            },
            scheme,
            learning_rate: 0.01,
            momentum: 0.9,
        }
    }

    /// An LSTM language-model entry with the paper's SGD hyper-parameters.
    pub fn lstm(
        name: impl Into<String>,
        vocab: usize,
        hidden: usize,
        layers: usize,
        seq_len: usize,
        scheme: SchemeKind,
    ) -> Self {
        Self {
            name: name.into(),
            network: NetworkKind::Lstm {
                vocab,
                hidden,
                layers,
                seq_len,
            },
            scheme,
            learning_rate: 0.01,
            momentum: 0.9,
        }
    }

    /// Number of droppable layers (one plan per such layer).
    pub fn dropout_layers(&self) -> usize {
        match &self.network {
            NetworkKind::Mlp { hidden, .. } => hidden.len(),
            NetworkKind::Lstm { layers, .. } => *layers,
        }
    }

    /// The [`LayerShape`] each droppable layer plans against — identical to
    /// what the instantiated replica reports, so plan keys built from the
    /// spec resolve the exact plans the replica executes.
    pub fn layer_shapes(&self) -> Vec<LayerShape> {
        match &self.network {
            NetworkKind::Mlp {
                input_dim, hidden, ..
            } => {
                let mut shapes = Vec::with_capacity(hidden.len());
                let mut in_dim = *input_dim;
                for &width in hidden {
                    shapes.push(LayerShape::new(in_dim, width));
                    in_dim = width;
                }
                shapes
            }
            NetworkKind::Lstm { hidden, layers, .. } => {
                vec![LayerShape::vector(*hidden); *layers]
            }
        }
    }

    /// The [`nn::MlpConfig`] this spec instantiates (MLP entries only).
    ///
    /// # Panics
    ///
    /// Panics on an LSTM spec.
    pub fn mlp_config(&self) -> MlpConfig {
        match &self.network {
            NetworkKind::Mlp {
                input_dim,
                hidden,
                classes,
            } => MlpConfig {
                input_dim: *input_dim,
                hidden: hidden.clone(),
                output_dim: *classes,
                dropout: self.scheme.build(),
                learning_rate: self.learning_rate,
                momentum: self.momentum,
            },
            NetworkKind::Lstm { .. } => panic!("{}: not an MLP spec", self.name),
        }
    }

    /// The [`nn::lstm::LstmLmConfig`] this spec instantiates (LSTM entries
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on an MLP spec.
    pub fn lstm_config(&self) -> LstmLmConfig {
        match &self.network {
            NetworkKind::Lstm {
                vocab,
                hidden,
                layers,
                ..
            } => LstmLmConfig {
                vocab: *vocab,
                embed_dim: *hidden,
                hidden: *hidden,
                layers: *layers,
                dropout: self.scheme.build(),
                learning_rate: self.learning_rate,
                momentum: self.momentum,
                grad_clip: 5.0,
            },
            NetworkKind::Mlp { .. } => panic!("{}: not an LSTM spec", self.name),
        }
    }

    /// The [`NetworkTimingModel`] that prices one training iteration of
    /// this model at `batch_rows` coalesced request rows on `gpu` — the
    /// bridge between a batching decision and simulated device time.
    pub fn timing_model(&self, gpu: GpuConfig, batch_rows: usize) -> NetworkTimingModel {
        match &self.network {
            NetworkKind::Mlp {
                input_dim,
                hidden,
                classes,
            } => NetworkTimingModel::mlp(
                gpu,
                MlpSpec {
                    batch: batch_rows,
                    input_dim: *input_dim,
                    hidden: hidden.clone(),
                    output_dim: *classes,
                },
            ),
            NetworkKind::Lstm {
                vocab,
                hidden,
                layers,
                seq_len,
            } => NetworkTimingModel::lstm(
                gpu,
                LstmSpec {
                    batch: batch_rows,
                    input_dim: *hidden,
                    hidden: *hidden,
                    layers: *layers,
                    seq_len: *seq_len,
                    vocab: *vocab,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_layer_shapes_chain_dimensions() {
        let spec = ModelSpec::mlp("m", 64, vec![128, 96], 10, SchemeKind::None);
        assert_eq!(
            spec.layer_shapes(),
            vec![LayerShape::new(64, 128), LayerShape::new(128, 96)]
        );
        assert_eq!(spec.dropout_layers(), 2);
    }

    #[test]
    fn lstm_layer_shapes_are_hidden_vectors() {
        let spec = ModelSpec::lstm("l", 200, 48, 2, 6, SchemeKind::Bernoulli { rate: 0.25 });
        assert_eq!(spec.layer_shapes(), vec![LayerShape::vector(48); 2]);
    }

    #[test]
    fn every_scheme_kind_builds() {
        for kind in [
            SchemeKind::None,
            SchemeKind::Bernoulli { rate: 0.5 },
            SchemeKind::Row {
                rate: 0.5,
                max_dp: 8,
            },
            SchemeKind::Tile {
                rate: 0.5,
                max_dp: 8,
                tile: 32,
            },
            SchemeKind::Nm { n: 2, m: 4 },
            SchemeKind::BlockUnit {
                rate: 0.5,
                block: 16,
            },
            SchemeKind::Crs { keep: 0.5 },
            SchemeKind::RowCrs {
                rate: 0.5,
                max_dp: 8,
                keep: 0.5,
            },
        ] {
            let _ = kind.build();
        }
    }

    #[test]
    fn timing_model_matches_dropout_layers() {
        let spec = ModelSpec::mlp("m", 64, vec![128, 96], 10, SchemeKind::None);
        let model = spec.timing_model(GpuConfig::gtx_1080ti(), 32);
        assert_eq!(model.dropout_layers(), spec.dropout_layers());
        assert_eq!(model.layer_shapes(), spec.layer_shapes());
    }
}
