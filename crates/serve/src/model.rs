//! Model catalog: what each served model looks like and how to build it.
//!
//! A [`ModelSpec`] is everything a worker shard needs to instantiate a
//! replica — the network family and dimensions ([`NetworkKind`]) plus the
//! dropout scheme every droppable layer runs, as a plain-data
//! [`SchemeSpec`] shared with the rest of the workspace — and everything
//! the pricing path needs to build the matching
//! [`gpu_sim::NetworkTimingModel`]. Specs are plain data (no boxed trait
//! objects) so a catalog can be cloned into every worker thread, compared
//! in tests, and round-tripped through the `SchemeSpec` text grammar
//! (`"row:0.5:8"`, `"nm:2:4"`, …).

use approx_dropout::{LayerShape, SchemeSpec};
use gpu_sim::{GpuConfig, LstmSpec, MlpSpec, NetworkTimingModel, TransformerSpec};
use nn::lstm::LstmLmConfig;
use nn::transformer::TransformerLmConfig;
use nn::MlpConfig;

/// Network family and dimensions of a served model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkKind {
    /// Fully connected classifier ([`nn::Mlp`]); a request row is one
    /// input sample.
    Mlp {
        /// Input dimensionality.
        input_dim: usize,
        /// Hidden-layer widths.
        hidden: Vec<usize>,
        /// Output classes.
        classes: usize,
    },
    /// LSTM language model ([`nn::lstm::LstmLm`]); a request row is one
    /// token sequence of `seq_len + 1` ids.
    Lstm {
        /// Vocabulary size.
        vocab: usize,
        /// Hidden width of every layer (also the embedding width).
        hidden: usize,
        /// Stacked LSTM layers.
        layers: usize,
        /// Unrolled sequence length (inputs; targets shift by one).
        seq_len: usize,
    },
    /// Transformer encoder language model ([`nn::TransformerLm`]); a
    /// request row is one token sequence of `seq_len + 1` ids. Each encoder
    /// block carries two droppable positions (attention, then FFN), so the
    /// catalog scheme plans `2 · layers` positions per iteration.
    TransformerLm {
        /// Vocabulary size.
        vocab: usize,
        /// Model width (`d_model`, also the embedding width).
        model_dim: usize,
        /// Attention heads per block; must divide `model_dim`.
        heads: usize,
        /// FFN expansion width.
        ff_dim: usize,
        /// Stacked encoder blocks.
        layers: usize,
        /// Sequence length (inputs; targets shift by one).
        seq_len: usize,
    },
}

/// One entry of the serving catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Human-readable name (appears in bench output).
    pub name: String,
    /// Network family and dimensions.
    pub network: NetworkKind,
    /// Dropout scheme applied to every droppable layer.
    pub scheme: SchemeSpec,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
}

impl ModelSpec {
    /// An MLP entry with the paper's SGD hyper-parameters.
    pub fn mlp(
        name: impl Into<String>,
        input_dim: usize,
        hidden: Vec<usize>,
        classes: usize,
        scheme: SchemeSpec,
    ) -> Self {
        Self {
            name: name.into(),
            network: NetworkKind::Mlp {
                input_dim,
                hidden,
                classes,
            },
            scheme,
            learning_rate: 0.01,
            momentum: 0.9,
        }
    }

    /// An LSTM language-model entry with the paper's SGD hyper-parameters.
    pub fn lstm(
        name: impl Into<String>,
        vocab: usize,
        hidden: usize,
        layers: usize,
        seq_len: usize,
        scheme: SchemeSpec,
    ) -> Self {
        Self {
            name: name.into(),
            network: NetworkKind::Lstm {
                vocab,
                hidden,
                layers,
                seq_len,
            },
            scheme,
            learning_rate: 0.01,
            momentum: 0.9,
        }
    }

    /// A transformer encoder language-model entry; `learning_rate` defaults
    /// to the value the `nn` convergence tests pin (0.1, no momentum — the
    /// un-normalised encoder stack relies on global gradient clipping).
    #[allow(clippy::too_many_arguments)]
    pub fn transformer_lm(
        name: impl Into<String>,
        vocab: usize,
        model_dim: usize,
        heads: usize,
        ff_dim: usize,
        layers: usize,
        seq_len: usize,
        scheme: SchemeSpec,
    ) -> Self {
        Self {
            name: name.into(),
            network: NetworkKind::TransformerLm {
                vocab,
                model_dim,
                heads,
                ff_dim,
                layers,
                seq_len,
            },
            scheme,
            learning_rate: 0.1,
            momentum: 0.0,
        }
    }

    /// Number of droppable layers (one plan per such layer).
    pub fn dropout_layers(&self) -> usize {
        match &self.network {
            NetworkKind::Mlp { hidden, .. } => hidden.len(),
            NetworkKind::Lstm { layers, .. } => *layers,
            NetworkKind::TransformerLm { layers, .. } => 2 * layers,
        }
    }

    /// The [`LayerShape`] each droppable layer plans against — identical to
    /// what the instantiated replica reports, so plan keys built from the
    /// spec resolve the exact plans the replica executes.
    pub fn layer_shapes(&self) -> Vec<LayerShape> {
        match &self.network {
            NetworkKind::Mlp {
                input_dim, hidden, ..
            } => {
                let mut shapes = Vec::with_capacity(hidden.len());
                let mut in_dim = *input_dim;
                for &width in hidden {
                    shapes.push(LayerShape::new(in_dim, width));
                    in_dim = width;
                }
                shapes
            }
            NetworkKind::Lstm { hidden, layers, .. } => {
                vec![LayerShape::vector(*hidden); *layers]
            }
            NetworkKind::TransformerLm {
                model_dim,
                ff_dim,
                layers,
                ..
            } => {
                let mut shapes = Vec::with_capacity(2 * layers);
                for _ in 0..*layers {
                    shapes.push(LayerShape::new(*model_dim, *model_dim));
                    shapes.push(LayerShape::new(*model_dim, *ff_dim));
                }
                shapes
            }
        }
    }

    /// The [`nn::MlpConfig`] this spec instantiates (MLP entries only).
    ///
    /// # Panics
    ///
    /// Panics on an LSTM spec.
    pub fn mlp_config(&self) -> MlpConfig {
        match &self.network {
            NetworkKind::Mlp {
                input_dim,
                hidden,
                classes,
            } => MlpConfig {
                input_dim: *input_dim,
                hidden: hidden.clone(),
                output_dim: *classes,
                dropout: self
                    .scheme
                    .build()
                    .expect("catalog scheme configuration must be valid"),
                learning_rate: self.learning_rate,
                momentum: self.momentum,
            },
            _ => panic!("{}: not an MLP spec", self.name),
        }
    }

    /// The [`nn::lstm::LstmLmConfig`] this spec instantiates (LSTM entries
    /// only).
    ///
    /// # Panics
    ///
    /// Panics on an MLP spec.
    pub fn lstm_config(&self) -> LstmLmConfig {
        match &self.network {
            NetworkKind::Lstm {
                vocab,
                hidden,
                layers,
                ..
            } => LstmLmConfig {
                vocab: *vocab,
                embed_dim: *hidden,
                hidden: *hidden,
                layers: *layers,
                dropout: self
                    .scheme
                    .build()
                    .expect("catalog scheme configuration must be valid"),
                learning_rate: self.learning_rate,
                momentum: self.momentum,
                grad_clip: 5.0,
            },
            _ => panic!("{}: not an LSTM spec", self.name),
        }
    }

    /// The [`nn::transformer::TransformerLmConfig`] this spec instantiates
    /// (transformer entries only). The one catalog scheme drives both the
    /// attention and FFN dropout positions, exactly as the replica plans
    /// them.
    ///
    /// # Panics
    ///
    /// Panics on a non-transformer spec.
    pub fn transformer_config(&self) -> TransformerLmConfig {
        match &self.network {
            NetworkKind::TransformerLm {
                vocab,
                model_dim,
                heads,
                ff_dim,
                layers,
                ..
            } => TransformerLmConfig {
                vocab: *vocab,
                model_dim: *model_dim,
                heads: *heads,
                ff_dim: *ff_dim,
                layers: *layers,
                attn_dropout: self
                    .scheme
                    .build()
                    .expect("catalog scheme configuration must be valid"),
                ffn_dropout: self
                    .scheme
                    .build()
                    .expect("catalog scheme configuration must be valid"),
                learning_rate: self.learning_rate,
                momentum: self.momentum,
                grad_clip: 5.0,
            },
            _ => panic!("{}: not a transformer spec", self.name),
        }
    }

    /// The [`NetworkTimingModel`] that prices one training iteration of
    /// this model at `batch_rows` coalesced request rows on `gpu` — the
    /// bridge between a batching decision and simulated device time.
    pub fn timing_model(&self, gpu: GpuConfig, batch_rows: usize) -> NetworkTimingModel {
        match &self.network {
            NetworkKind::Mlp {
                input_dim,
                hidden,
                classes,
            } => NetworkTimingModel::mlp(
                gpu,
                MlpSpec {
                    batch: batch_rows,
                    input_dim: *input_dim,
                    hidden: hidden.clone(),
                    output_dim: *classes,
                },
            ),
            NetworkKind::Lstm {
                vocab,
                hidden,
                layers,
                seq_len,
            } => NetworkTimingModel::lstm(
                gpu,
                LstmSpec {
                    batch: batch_rows,
                    input_dim: *hidden,
                    hidden: *hidden,
                    layers: *layers,
                    seq_len: *seq_len,
                    vocab: *vocab,
                },
            ),
            NetworkKind::TransformerLm {
                vocab,
                model_dim,
                heads,
                ff_dim,
                layers,
                seq_len,
            } => NetworkTimingModel::transformer(
                gpu,
                TransformerSpec {
                    batch: batch_rows,
                    model_dim: *model_dim,
                    heads: *heads,
                    ff_dim: *ff_dim,
                    layers: *layers,
                    seq_len: *seq_len,
                    vocab: *vocab,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_layer_shapes_chain_dimensions() {
        let spec = ModelSpec::mlp("m", 64, vec![128, 96], 10, SchemeSpec::None);
        assert_eq!(
            spec.layer_shapes(),
            vec![LayerShape::new(64, 128), LayerShape::new(128, 96)]
        );
        assert_eq!(spec.dropout_layers(), 2);
    }

    #[test]
    fn lstm_layer_shapes_are_hidden_vectors() {
        let spec = ModelSpec::lstm("l", 200, 48, 2, 6, SchemeSpec::Bernoulli { rate: 0.25 });
        assert_eq!(spec.layer_shapes(), vec![LayerShape::vector(48); 2]);
    }

    #[test]
    fn transformer_layer_shapes_alternate_attention_and_ffn() {
        let spec = ModelSpec::transformer_lm(
            "t",
            40,
            16,
            4,
            32,
            2,
            6,
            SchemeSpec::Transformer {
                rate: 0.25,
                head_dim: 4,
            },
        );
        assert_eq!(spec.dropout_layers(), 4);
        assert_eq!(
            spec.layer_shapes(),
            vec![
                LayerShape::new(16, 16),
                LayerShape::new(16, 32),
                LayerShape::new(16, 16),
                LayerShape::new(16, 32),
            ]
        );
        let model = spec.timing_model(GpuConfig::gtx_1080ti(), 8);
        assert_eq!(model.dropout_layers(), spec.dropout_layers());
        assert_eq!(model.layer_shapes(), spec.layer_shapes());
    }

    #[test]
    fn specs_round_trip_through_the_text_grammar() {
        let spec = ModelSpec::mlp(
            "m",
            64,
            vec![128],
            10,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 8,
            },
        );
        let text = spec.scheme.to_string();
        assert_eq!(text, "row:0.5:8");
        assert_eq!(text.parse::<SchemeSpec>().unwrap(), spec.scheme);
    }

    #[test]
    fn timing_model_matches_dropout_layers() {
        let spec = ModelSpec::mlp("m", 64, vec![128, 96], 10, SchemeSpec::None);
        let model = spec.timing_model(GpuConfig::gtx_1080ti(), 32);
        assert_eq!(model.dropout_layers(), spec.dropout_layers());
        assert_eq!(model.layer_shapes(), spec.layer_shapes());
    }
}
