//! [`ServeConfig`]: the validated, builder-constructed server
//! configuration.
//!
//! The old field-struct `ServeConfig` let any call site assemble an
//! unchecked configuration (zero epoch rounds, more workers than the
//! tensor pool supports, starved QoS classes…). The redesigned type keeps
//! every field private and funnels construction through
//! [`ServeConfig::builder`], which checks the whole configuration at build
//! time and reports a typed [`ServeConfigError`] — so a running
//! [`crate::Server`] never has to re-validate and an invalid deployment
//! fails loudly at the one place it can be fixed.

use crate::autoscale::AutoscaleConfig;
use crate::batcher::BatchPolicy;
use crate::qos::QosWeights;
use std::fmt;

/// Why a [`ServeConfigBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeConfigError {
    /// More fixed workers requested than [`tensor::pool::MAX_THREADS`].
    TooManyWorkers {
        /// Workers requested.
        requested: usize,
        /// The hard cap.
        max: usize,
    },
    /// The plan cache needs at least one lock shard.
    ZeroPlanCacheShards,
    /// Seed epochs need at least one dispatch per epoch.
    ZeroEpochRounds,
    /// A QoS class was given weight 0, which would starve it outright.
    ZeroQosWeight,
    /// A bounded queue needs room for at least one job per shard.
    ZeroQueueBound,
    /// A coalescing policy with a zero row bound can never batch.
    ZeroBatchRows,
    /// The autoscale configuration is inconsistent; the message names the
    /// violated constraint.
    InvalidAutoscale(&'static str),
    /// The adaptive latency-cost knob must be finite and non-negative.
    InvalidLatencyCost(f64),
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::TooManyWorkers { requested, max } => {
                write!(
                    f,
                    "{requested} workers requested, but the pool caps at {max}"
                )
            }
            ServeConfigError::ZeroPlanCacheShards => {
                write!(f, "plan_cache_shards must be at least 1")
            }
            ServeConfigError::ZeroEpochRounds => write!(f, "epoch_rounds must be at least 1"),
            ServeConfigError::ZeroQosWeight => {
                write!(f, "every QoS class needs a nonzero weight")
            }
            ServeConfigError::ZeroQueueBound => {
                write!(f, "queue_bound must admit at least 1 job per shard")
            }
            ServeConfigError::ZeroBatchRows => {
                write!(f, "a coalescing policy needs max_batch_rows >= 1")
            }
            ServeConfigError::InvalidAutoscale(msg) => write!(f, "invalid autoscale config: {msg}"),
            ServeConfigError::InvalidLatencyCost(v) => {
                write!(f, "latency_cost must be finite and >= 0, got {v}")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Configuration of a [`crate::Server`]; constructed only through
/// [`ServeConfig::builder`] (fields are private so an unvalidated value
/// cannot exist).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    workers: usize,
    policy: BatchPolicy,
    plan_cache: bool,
    plan_cache_shards: usize,
    epoch_rounds: u64,
    init_seed: u64,
    qos_weights: QosWeights,
    queue_bound: Option<usize>,
    autoscale: Option<AutoscaleConfig>,
    latency_cost: f64,
}

impl ServeConfig {
    /// Starts a builder preloaded with the defaults: worker count follows
    /// the tensor pool, adaptive batching, plan cache on (16 shards), 8
    /// dispatches per seed epoch, default QoS weights, unbounded queue, no
    /// autoscaling.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            workers: 0,
            policy: BatchPolicy::adaptive_default(),
            plan_cache: true,
            plan_cache_shards: 16,
            epoch_rounds: 8,
            init_seed: 42,
            qos_weights: QosWeights::default(),
            queue_bound: None,
            autoscale: None,
            latency_cost: 0.05,
        }
    }

    /// Fixed worker shards (`0` = follow the tensor pool width).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The batching policy every worker applies.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Whether dropout plans resolve through the shared memoized cache.
    pub fn plan_cache(&self) -> bool {
        self.plan_cache
    }

    /// Lock shards of the plan cache.
    pub fn plan_cache_shards(&self) -> usize {
        self.plan_cache_shards
    }

    /// Train dispatches of one model that share a seed epoch.
    pub fn epoch_rounds(&self) -> u64 {
        self.epoch_rounds
    }

    /// Seed replica weight initialization derives from.
    pub fn init_seed(&self) -> u64 {
        self.init_seed
    }

    /// QoS scheduling weights of the request queue.
    pub fn qos_weights(&self) -> QosWeights {
        self.qos_weights
    }

    /// Per-shard job bound of the request queue (`None` = unbounded, no
    /// admission control).
    pub fn queue_bound(&self) -> Option<usize> {
        self.queue_bound
    }

    /// Autoscaling policy (`None` = fixed worker fleet).
    pub fn autoscale(&self) -> Option<AutoscaleConfig> {
        self.autoscale
    }

    /// Device-µs the adaptive batcher will spend holding a batch to save
    /// one job-µs of queueing latency.
    pub fn latency_cost(&self) -> f64 {
        self.latency_cost
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::builder()
            .build()
            .expect("the default serve configuration is valid")
    }
}

/// Builder for [`ServeConfig`]; see [`ServeConfig::builder`] for the
/// defaults and [`ServeConfigBuilder::build`] for the checks.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    workers: usize,
    policy: BatchPolicy,
    plan_cache: bool,
    plan_cache_shards: usize,
    epoch_rounds: u64,
    init_seed: u64,
    qos_weights: QosWeights,
    queue_bound: Option<usize>,
    autoscale: Option<AutoscaleConfig>,
    latency_cost: f64,
}

impl ServeConfigBuilder {
    /// Fixed worker shards; `0` follows the tensor pool width. Ignored as
    /// a fleet size when autoscaling is on (the initial count is clamped
    /// into the autoscale range).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The batching policy every worker applies.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Resolve dropout plans through the shared memoized cache.
    pub fn plan_cache(mut self, enabled: bool) -> Self {
        self.plan_cache = enabled;
        self
    }

    /// Lock shards of the plan cache.
    pub fn plan_cache_shards(mut self, shards: usize) -> Self {
        self.plan_cache_shards = shards;
        self
    }

    /// Train dispatches of one model that share a seed epoch.
    pub fn epoch_rounds(mut self, rounds: u64) -> Self {
        self.epoch_rounds = rounds;
        self
    }

    /// Seed replica weight initialization derives from.
    pub fn init_seed(mut self, seed: u64) -> Self {
        self.init_seed = seed;
        self
    }

    /// QoS scheduling weights of the request queue.
    pub fn qos_weights(mut self, weights: QosWeights) -> Self {
        self.qos_weights = weights;
        self
    }

    /// Bound the request queue at `bound` jobs per shard and turn on
    /// admission control (shed-or-reject by [`crate::JobSpec::shed_rank`]).
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = Some(bound);
        self
    }

    /// Autoscale the worker fleet under `config`.
    pub fn autoscale(mut self, config: AutoscaleConfig) -> Self {
        self.autoscale = Some(config);
        self
    }

    /// Device-µs the adaptive batcher spends holding a batch to save one
    /// job-µs of queueing latency (higher dispatches sooner).
    pub fn latency_cost(mut self, cost: f64) -> Self {
        self.latency_cost = cost;
        self
    }

    /// Validates the whole configuration and builds the [`ServeConfig`].
    pub fn build(self) -> Result<ServeConfig, ServeConfigError> {
        let max = tensor::pool::MAX_THREADS;
        if self.workers > max {
            return Err(ServeConfigError::TooManyWorkers {
                requested: self.workers,
                max,
            });
        }
        if self.plan_cache_shards == 0 {
            return Err(ServeConfigError::ZeroPlanCacheShards);
        }
        if self.epoch_rounds == 0 {
            return Err(ServeConfigError::ZeroEpochRounds);
        }
        if !self.qos_weights.all_nonzero() {
            return Err(ServeConfigError::ZeroQosWeight);
        }
        if self.queue_bound == Some(0) {
            return Err(ServeConfigError::ZeroQueueBound);
        }
        if self.policy.max_batch_rows() == Some(0) {
            return Err(ServeConfigError::ZeroBatchRows);
        }
        if let Some(autoscale) = &self.autoscale {
            autoscale
                .validate()
                .map_err(ServeConfigError::InvalidAutoscale)?;
        }
        if !(self.latency_cost.is_finite() && self.latency_cost >= 0.0) {
            return Err(ServeConfigError::InvalidLatencyCost(self.latency_cost));
        }
        Ok(ServeConfig {
            workers: self.workers,
            policy: self.policy,
            plan_cache: self.plan_cache,
            plan_cache_shards: self.plan_cache_shards,
            epoch_rounds: self.epoch_rounds,
            init_seed: self.init_seed,
            qos_weights: self.qos_weights,
            queue_bound: self.queue_bound,
            autoscale: self.autoscale,
            latency_cost: self.latency_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_config_builds() {
        let config = ServeConfig::default();
        assert_eq!(config.workers(), 0);
        assert!(config.plan_cache());
        assert!(config.queue_bound().is_none());
        assert_eq!(config.policy().label(), "adaptive");
    }

    #[test]
    fn builder_sets_every_field() {
        let config = ServeConfig::builder()
            .workers(2)
            .policy(BatchPolicy::PerRequest)
            .plan_cache(false)
            .plan_cache_shards(4)
            .epoch_rounds(3)
            .init_seed(7)
            .queue_bound(64)
            .latency_cost(0.1)
            .build()
            .expect("valid config");
        assert_eq!(config.workers(), 2);
        assert_eq!(config.policy(), BatchPolicy::PerRequest);
        assert!(!config.plan_cache());
        assert_eq!(config.plan_cache_shards(), 4);
        assert_eq!(config.epoch_rounds(), 3);
        assert_eq!(config.init_seed(), 7);
        assert_eq!(config.queue_bound(), Some(64));
        assert!((config.latency_cost() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_report_typed_errors() {
        let max = tensor::pool::MAX_THREADS;
        assert_eq!(
            ServeConfig::builder().workers(max + 1).build().unwrap_err(),
            ServeConfigError::TooManyWorkers {
                requested: max + 1,
                max
            }
        );
        assert_eq!(
            ServeConfig::builder()
                .plan_cache_shards(0)
                .build()
                .unwrap_err(),
            ServeConfigError::ZeroPlanCacheShards
        );
        assert_eq!(
            ServeConfig::builder().epoch_rounds(0).build().unwrap_err(),
            ServeConfigError::ZeroEpochRounds
        );
        assert_eq!(
            ServeConfig::builder()
                .qos_weights(crate::qos::QosWeights {
                    interactive: 8,
                    batch: 0,
                    background: 1
                })
                .build()
                .unwrap_err(),
            ServeConfigError::ZeroQosWeight
        );
        assert_eq!(
            ServeConfig::builder().queue_bound(0).build().unwrap_err(),
            ServeConfigError::ZeroQueueBound
        );
        assert_eq!(
            ServeConfig::builder()
                .policy(BatchPolicy::Dynamic {
                    max_batch_rows: 0,
                    deadline: Duration::from_micros(100)
                })
                .build()
                .unwrap_err(),
            ServeConfigError::ZeroBatchRows
        );
        assert!(matches!(
            ServeConfig::builder().latency_cost(f64::NAN).build(),
            Err(ServeConfigError::InvalidLatencyCost(_))
        ));
        let autoscale = crate::autoscale::AutoscaleConfig {
            min_workers: 0,
            ..Default::default()
        };
        assert!(matches!(
            ServeConfig::builder().autoscale(autoscale).build(),
            Err(ServeConfigError::InvalidAutoscale(_))
        ));
    }
}
