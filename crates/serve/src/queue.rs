//! Sharded request queue: QoS-weighted fairness and bounded admission.
//!
//! The front door of the serving layer: producers (tenant clients) push
//! into a shard chosen by the *model* a job targets, so each worker shard
//! drains a disjoint slice of the traffic and never contends with the
//! others for a lock. Within one shard, jobs are kept in per-`(tenant,
//! QosClass)` **lanes** and popped with **weighted fair queueing**: each
//! lane carries a virtual-finish clock that advances by `cost / weight`
//! per served item, and [`ShardedQueue::pop_fair`] always serves the lane
//! with the smallest clock. Under contention a class therefore receives
//! row-cost service proportional to its [`QosWeights`] weight — a tenant
//! flooding the Background class cannot starve Interactive traffic, and
//! within one class the old per-tenant round-robin fairness falls out as
//! the equal-weight special case.
//!
//! The queue can also be **bounded** (jobs per shard). A push over the
//! bound triggers price-based shedding: the queued job with the lowest
//! [`shed rank`](crate::JobSpec::shed_rank) *strictly below* the incoming
//! job's rank is evicted (newest first, so the victim has sunk the least
//! waiting) and handed back as [`Push::Displaced`]; when the incoming job
//! is itself the cheapest work in sight it is refused outright as
//! [`Push::Rejected`]. Either way the caller gets the victim back and can
//! answer it with a typed [`crate::AdmissionError`] — overload produces
//! *answers*, never an unbounded backlog.

use crate::qos::{QosClass, QosWeights};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One queued item plus the metadata fairness and shedding need.
#[derive(Debug)]
struct Item<T> {
    cost: usize,
    shed_rank: u8,
    value: T,
}

/// One `(tenant, class)` FIFO lane within a shard.
#[derive(Debug)]
struct Lane<T> {
    tenant: u64,
    qos: QosClass,
    /// Virtual finish time of the lane's last served item; the lane with
    /// the smallest clock is served next.
    vtime: f64,
    items: VecDeque<Item<T>>,
}

/// One independently locked shard: fairness lanes plus the shard-wide
/// virtual clock newly active lanes catch up to.
#[derive(Debug)]
struct Shard<T> {
    lanes: Vec<Lane<T>>,
    vclock: f64,
    jobs: usize,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Self {
            lanes: Vec::new(),
            vclock: 0.0,
            jobs: 0,
        }
    }
}

/// What happened to a pushed item; see [`ShardedQueue::push`].
#[derive(Debug)]
pub enum Push<T> {
    /// The item was enqueued (the unbounded / under-bound path).
    Enqueued,
    /// The item was enqueued by evicting a cheaper queued item, returned
    /// here so the caller can answer it as shed.
    Displaced(T),
    /// The shard is full and the item is itself the cheapest work in
    /// sight; it was not enqueued and is returned to the caller.
    Rejected(T),
}

/// A sharded multi-producer queue with QoS-weighted fair pops and an
/// optional per-shard admission bound.
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Box<[Mutex<Shard<T>>]>,
    weights: QosWeights,
    bound: Option<usize>,
    len: AtomicUsize,
    shed: AtomicU64,
    rejected: AtomicU64,
}

impl<T> ShardedQueue<T> {
    /// Creates an unbounded queue with `shards` independently locked shards
    /// (clamped to at least 1) scheduling under `weights`.
    pub fn new(shards: usize, weights: QosWeights) -> Self {
        Self::build(shards, weights, None)
    }

    /// Creates a bounded queue: each shard admits at most `bound` queued
    /// jobs (clamped to at least 1); pushes beyond that shed or reject by
    /// [`crate::JobSpec::shed_rank`].
    pub fn with_bound(shards: usize, weights: QosWeights, bound: usize) -> Self {
        Self::build(shards, weights, Some(bound.max(1)))
    }

    fn build(shards: usize, weights: QosWeights, bound: Option<usize>) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            weights,
            bound,
            len: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard job bound, when the queue is bounded.
    pub fn bound(&self) -> Option<usize> {
        self.bound
    }

    /// Pushes `item` onto the `(tenant, qos)` lane of `shard` (modulo the
    /// shard count, so callers can pass a raw model id). `cost` is the
    /// item's fair-share weight — request rows for jobs — and `shed_rank`
    /// its eviction priority under overload (lower sheds first).
    ///
    /// On a bounded queue a push over the bound evicts the newest queued
    /// item whose rank is strictly below `shed_rank` and returns it as
    /// [`Push::Displaced`]; if no queued item is cheaper, the incoming item
    /// bounces back as [`Push::Rejected`].
    pub fn push(
        &self,
        shard: usize,
        tenant: u64,
        qos: QosClass,
        shed_rank: u8,
        cost: usize,
        item: T,
    ) -> Push<T> {
        let mut guard = self.shards[shard % self.shards.len()]
            .lock()
            .expect("queue shard poisoned");
        let mut displaced = None;
        if let Some(bound) = self.bound {
            if guard.jobs >= bound {
                match Self::evict_cheapest_below(&mut guard, shed_rank) {
                    Some(victim) => {
                        self.len.fetch_sub(1, Ordering::SeqCst);
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        displaced = Some(victim);
                    }
                    None => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        return Push::Rejected(item);
                    }
                }
            }
        }
        let vclock = guard.vclock;
        let item = Item {
            cost: cost.max(1),
            shed_rank,
            value: item,
        };
        match guard
            .lanes
            .iter_mut()
            .find(|lane| lane.tenant == tenant && lane.qos == qos)
        {
            Some(lane) => {
                if lane.items.is_empty() {
                    // A lane going active again catches up to the shard
                    // clock so idle time never accumulates as credit.
                    lane.vtime = lane.vtime.max(vclock);
                }
                lane.items.push_back(item);
            }
            None => guard.lanes.push(Lane {
                tenant,
                qos,
                vtime: vclock,
                items: VecDeque::from([item]),
            }),
        }
        guard.jobs += 1;
        self.len.fetch_add(1, Ordering::SeqCst);
        match displaced {
            Some(victim) => Push::Displaced(victim),
            None => Push::Enqueued,
        }
    }

    /// Removes and returns the queued item with the lowest shed rank
    /// strictly below `below`, preferring the newest such item (back of
    /// its lane) so the victim has sunk the least waiting. `None` when
    /// every queued item is at least as valuable as the incoming one.
    fn evict_cheapest_below(shard: &mut Shard<T>, below: u8) -> Option<T> {
        let mut best: Option<(u8, usize, usize)> = None;
        for (lane_idx, lane) in shard.lanes.iter().enumerate() {
            for (item_idx, item) in lane.items.iter().enumerate().rev() {
                if item.shed_rank >= below {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((rank, _, _)) => item.shed_rank < rank,
                };
                if better {
                    best = Some((item.shed_rank, lane_idx, item_idx));
                }
                // Items further forward in this lane are older; within one
                // lane the back-most item of the minimal rank wins, and
                // `rev()` reaches it first, so the rest of the lane can
                // only improve via a strictly lower rank.
            }
        }
        let (_, lane_idx, item_idx) = best?;
        let victim = shard.lanes[lane_idx]
            .items
            .remove(item_idx)
            .expect("victim index valid under the shard lock");
        shard.jobs -= 1;
        Some(victim.value)
    }

    /// Pops the next item of `shard` under weighted fair queueing: the
    /// non-empty lane with the smallest virtual clock is served and its
    /// clock advances by `cost / weight(class)`. Returns `None` when the
    /// shard is empty.
    pub fn pop_fair(&self, shard: usize) -> Option<T> {
        let mut guard = self.shards[shard % self.shards.len()]
            .lock()
            .expect("queue shard poisoned");
        let lane_idx = guard
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, lane)| !lane.items.is_empty())
            .min_by(|(_, a), (_, b)| a.vtime.total_cmp(&b.vtime))
            .map(|(idx, _)| idx)?;
        let weight = f64::from(self.weights.weight(guard.lanes[lane_idx].qos).max(1));
        let lane = &mut guard.lanes[lane_idx];
        let item = lane.items.pop_front().expect("lane checked non-empty");
        let start = lane.vtime;
        lane.vtime += item.cost as f64 / weight;
        guard.vclock = guard.vclock.max(start);
        guard.jobs -= 1;
        self.len.fetch_sub(1, Ordering::SeqCst);
        Some(item.value)
    }

    /// Total queued items across all shards (approximate under concurrency,
    /// exact once producers have stopped).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// `true` when no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued items evicted to admit more valuable work.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Pushes refused because the incoming item was the cheapest in sight.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(shards: usize) -> ShardedQueue<u32> {
        ShardedQueue::new(shards, QosWeights::default())
    }

    fn push_batch(q: &ShardedQueue<u32>, shard: usize, tenant: u64, item: u32) {
        assert!(matches!(
            q.push(shard, tenant, QosClass::Batch, 3, 1, item),
            Push::Enqueued
        ));
    }

    #[test]
    fn push_pop_round_trips_per_shard() {
        let q = queue(2);
        push_batch(&q, 0, 1, 10);
        push_batch(&q, 1, 1, 20);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_fair(0), Some(10));
        assert_eq!(q.pop_fair(0), None);
        assert_eq!(q.pop_fair(1), Some(20));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_fair_round_robins_across_equal_weight_tenants() {
        // Tenant 1 floods the shard; tenant 2 submits three jobs at the
        // same class. Equal weights must interleave them, so tenant 2
        // finishes within the first six pops instead of waiting behind the
        // flood — the per-tenant fairness the pre-QoS queue guaranteed.
        let q: ShardedQueue<(u64, u32)> = ShardedQueue::new(1, QosWeights::default());
        for i in 0..100 {
            q.push(0, 1, QosClass::Batch, 3, 1, (1, i));
        }
        for i in 0..3 {
            q.push(0, 2, QosClass::Batch, 3, 1, (2, i));
        }
        let order: Vec<u64> = (0..6).map(|_| q.pop_fair(0).unwrap().0).collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn fifo_within_one_lane() {
        let q = queue(1);
        for i in 0..5 {
            push_batch(&q, 0, 7, i);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop_fair(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shard_index_wraps() {
        let q = queue(3);
        push_batch(&q, 5, 0, 42); // 5 % 3 == 2
        assert_eq!(q.pop_fair(2), Some(42));
    }

    #[test]
    fn weighted_pops_follow_the_class_weights() {
        // One tenant floods Background while another floods Interactive;
        // with the default 8:1 weights the first 18 pops must serve
        // Interactive ~8x as often as Background.
        let q: ShardedQueue<QosClass> = ShardedQueue::new(1, QosWeights::default());
        for _ in 0..100 {
            q.push(0, 1, QosClass::Background, 0, 1, QosClass::Background);
            q.push(0, 2, QosClass::Interactive, 4, 1, QosClass::Interactive);
        }
        let served: Vec<QosClass> = (0..18).map(|_| q.pop_fair(0).unwrap()).collect();
        let interactive = served
            .iter()
            .filter(|c| **c == QosClass::Interactive)
            .count();
        assert!(
            (15..=17).contains(&interactive),
            "interactive got {interactive}/18 pops, want ~16"
        );
        // Background still progresses — weighted fairness, not starvation.
        assert!(served.contains(&QosClass::Background));
    }

    #[test]
    fn fair_share_is_by_row_cost_not_job_count() {
        // Same class, equal weights: tenant 1 submits 8-row jobs, tenant 2
        // submits 1-row jobs. Row-cost fairness must serve tenant 2 about
        // eight jobs per tenant-1 job, not alternate one for one.
        let q: ShardedQueue<u64> = ShardedQueue::new(1, QosWeights::default());
        for _ in 0..10 {
            q.push(0, 1, QosClass::Batch, 3, 8, 1);
        }
        for _ in 0..40 {
            q.push(0, 2, QosClass::Batch, 3, 1, 2);
        }
        let served: Vec<u64> = (0..27).map(|_| q.pop_fair(0).unwrap()).collect();
        let small_jobs = served.iter().filter(|t| **t == 2).count();
        assert!(
            small_jobs >= 20,
            "1-row tenant got {small_jobs}/27 pops, want ~24"
        );
    }

    #[test]
    fn bounded_push_sheds_the_cheapest_item_newest_first() {
        let q: ShardedQueue<u32> = ShardedQueue::with_bound(1, QosWeights::default(), 3);
        // Fill the shard with Background (rank 0) items.
        for i in 0..3 {
            assert!(matches!(
                q.push(0, 1, QosClass::Background, 0, 1, i),
                Push::Enqueued
            ));
        }
        // An Interactive push displaces the *newest* Background item.
        match q.push(0, 2, QosClass::Interactive, 4, 1, 100) {
            Push::Displaced(victim) => assert_eq!(victim, 2),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.shed_count(), 1);
    }

    #[test]
    fn bounded_push_rejects_when_nothing_is_cheaper() {
        let q: ShardedQueue<u32> = ShardedQueue::with_bound(1, QosWeights::default(), 2);
        for i in 0..2 {
            q.push(0, 1, QosClass::Interactive, 5, 1, i);
        }
        // A Background push cannot displace Interactive work.
        match q.push(0, 2, QosClass::Background, 0, 1, 100) {
            Push::Rejected(item) => assert_eq!(item, 100),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Equal rank also bounces: shedding needs a *strictly* cheaper
        // victim, so two floods of the same class cannot churn each other.
        match q.push(0, 2, QosClass::Interactive, 5, 1, 101) {
            Push::Rejected(item) => assert_eq!(item, 101),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.rejected_count(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn displacement_prefers_the_lowest_rank_across_lanes() {
        let q: ShardedQueue<u32> = ShardedQueue::with_bound(1, QosWeights::default(), 2);
        q.push(0, 1, QosClass::Batch, 2, 1, 1); // batch infer, rank 2
        q.push(0, 2, QosClass::Background, 1, 1, 2); // background train, rank 1
        match q.push(0, 3, QosClass::Interactive, 4, 1, 3) {
            Push::Displaced(victim) => assert_eq!(victim, 2, "lowest rank sheds first"),
            other => panic!("expected displacement, got {other:?}"),
        }
    }
}
