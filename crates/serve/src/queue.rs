//! Sharded request queue with per-tenant fairness.
//!
//! The front door of the serving layer: producers (tenant clients) push
//! into a shard chosen by the *model* a job targets, so each worker shard
//! drains a disjoint slice of the traffic and never contends with the
//! others for a lock. Within one shard, jobs are kept in per-tenant
//! **lanes** and popped round-robin across lanes — a tenant that floods the
//! queue with thousands of requests cannot starve a tenant that submits
//! one, which is the fairness property a multi-tenant front end owes its
//! small customers.
//!
//! The queue is deliberately simple: one mutex per shard, `VecDeque` lanes,
//! and an atomic length for cheap emptiness checks. Under the serving
//! layer's shard-per-worker discipline a lock is only ever contended
//! between the producers targeting that shard and its single consumer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One tenant's FIFO lane within a shard.
#[derive(Debug)]
struct Lane<T> {
    tenant: u64,
    items: VecDeque<T>,
}

/// One independently locked shard: per-tenant lanes plus the round-robin
/// cursor [`ShardedQueue::pop_fair`] resumes from.
#[derive(Debug)]
struct Shard<T> {
    lanes: Vec<Lane<T>>,
    cursor: usize,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Self {
            lanes: Vec::new(),
            cursor: 0,
        }
    }
}

/// A sharded multi-producer queue whose pops rotate fairly across tenants.
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Box<[Mutex<Shard<T>>]>,
    len: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue with `shards` independently locked shards (clamped
    /// to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Pushes `item` onto `tenant`'s lane of `shard` (modulo the shard
    /// count, so callers can pass a raw model id).
    pub fn push(&self, shard: usize, tenant: u64, item: T) {
        let mut guard = self.shards[shard % self.shards.len()]
            .lock()
            .expect("queue shard poisoned");
        match guard.lanes.iter_mut().find(|lane| lane.tenant == tenant) {
            Some(lane) => lane.items.push_back(item),
            None => guard.lanes.push(Lane {
                tenant,
                items: VecDeque::from([item]),
            }),
        }
        self.len.fetch_add(1, Ordering::SeqCst);
    }

    /// Pops the next item of `shard`, rotating round-robin across tenant
    /// lanes so no tenant's backlog can starve another's. Returns `None`
    /// when the shard is empty.
    pub fn pop_fair(&self, shard: usize) -> Option<T> {
        let mut guard = self.shards[shard % self.shards.len()]
            .lock()
            .expect("queue shard poisoned");
        let lanes = guard.lanes.len();
        for step in 0..lanes {
            let idx = (guard.cursor + step) % lanes;
            if let Some(item) = guard.lanes[idx].items.pop_front() {
                // Resume *after* the lane we just served.
                guard.cursor = (idx + 1) % lanes;
                self.len.fetch_sub(1, Ordering::SeqCst);
                return Some(item);
            }
        }
        None
    }

    /// Total queued items across all shards (approximate under concurrency,
    /// exact once producers have stopped).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// `true` when no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trips_per_shard() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2);
        q.push(0, 1, 10);
        q.push(1, 1, 20);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_fair(0), Some(10));
        assert_eq!(q.pop_fair(0), None);
        assert_eq!(q.pop_fair(1), Some(20));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_fair_round_robins_across_tenants() {
        // Tenant 1 floods the shard; tenant 2 submits three jobs. Fair
        // popping must interleave them, so tenant 2 finishes within the
        // first six pops instead of waiting behind the flood.
        let q: ShardedQueue<(u64, u32)> = ShardedQueue::new(1);
        for i in 0..100 {
            q.push(0, 1, (1, i));
        }
        for i in 0..3 {
            q.push(0, 2, (2, i));
        }
        let order: Vec<u64> = (0..6).map(|_| q.pop_fair(0).unwrap().0).collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn fifo_within_one_tenant() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1);
        for i in 0..5 {
            q.push(0, 7, i);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop_fair(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shard_index_wraps() {
        let q: ShardedQueue<u32> = ShardedQueue::new(3);
        q.push(5, 0, 42); // 5 % 3 == 2
        assert_eq!(q.pop_fair(2), Some(42));
    }
}
