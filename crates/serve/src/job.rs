//! Job descriptions tenants submit to the serving layer.

use crate::qos::QosClass;

/// What a job asks of its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// One SGD step on the job's request rows (with dropout active).
    Train,
    /// A dense forward pass over the job's request rows (dropout off).
    Infer,
}

impl JobKind {
    /// Stable lowercase label (bench output).
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Train => "train",
            JobKind::Infer => "infer",
        }
    }

    /// Shedding rank of the kind alone: an inference is a stateless read
    /// and therefore cheaper to retry than a training step, so it sheds
    /// first (Infer 0, Train 1).
    pub fn rank(&self) -> u8 {
        match self {
            JobKind::Infer => 0,
            JobKind::Train => 1,
        }
    }
}

/// One tenant request: `rows` samples for `model`, generated
/// deterministically from `seed` by the worker that executes the job.
///
/// Jobs carry a seed instead of payload bytes so a load generator can
/// replay the exact same workload against different batching policies and
/// compare like with like — the serving analogue of the repo's
/// planned-seed benchmarking discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Submitting tenant (fairness lane in the request queue).
    pub tenant: u64,
    /// Catalog index of the target model.
    pub model: usize,
    /// Request rows: input samples for an MLP, token sequences for an LSTM.
    pub rows: usize,
    /// Seed the worker expands into the job's actual inputs.
    pub seed: u64,
    /// Train or infer.
    pub kind: JobKind,
    /// Latency sensitivity: scheduling weight and shedding priority.
    pub qos: QosClass,
}

impl JobSpec {
    /// The coalescing key: jobs may share a dispatch only when they target
    /// the same model with the same kind (same layer shapes, same pass).
    /// QoS deliberately does not split batches — a background job may ride
    /// in an interactive job's dispatch for free.
    pub fn batch_key(&self) -> (usize, JobKind) {
        (self.model, self.kind)
    }

    /// Price-based shedding rank: under overload the admission controller
    /// evicts the job with the **lowest** rank first. QoS class dominates,
    /// job kind breaks ties — so the order from first-shed to last-shed is
    /// Background/Infer, Background/Train, Batch/Infer, Batch/Train,
    /// Interactive/Infer, Interactive/Train.
    pub fn shed_rank(&self) -> u8 {
        self.qos.rank() * 2 + self.kind.rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_rank_orders_class_before_kind() {
        let job = |qos, kind| JobSpec {
            tenant: 0,
            model: 0,
            rows: 1,
            seed: 0,
            kind,
            qos,
        };
        let ranks: Vec<u8> = [
            job(QosClass::Background, JobKind::Infer),
            job(QosClass::Background, JobKind::Train),
            job(QosClass::Batch, JobKind::Infer),
            job(QosClass::Batch, JobKind::Train),
            job(QosClass::Interactive, JobKind::Infer),
            job(QosClass::Interactive, JobKind::Train),
        ]
        .iter()
        .map(JobSpec::shed_rank)
        .collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }
}
