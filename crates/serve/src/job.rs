//! Job descriptions tenants submit to the serving layer.

/// What a job asks of its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// One SGD step on the job's request rows (with dropout active).
    Train,
    /// A dense forward pass over the job's request rows (dropout off).
    Infer,
}

impl JobKind {
    /// Stable lowercase label (bench output).
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Train => "train",
            JobKind::Infer => "infer",
        }
    }
}

/// One tenant request: `rows` samples for `model`, generated
/// deterministically from `seed` by the worker that executes the job.
///
/// Jobs carry a seed instead of payload bytes so a load generator can
/// replay the exact same workload against different batching policies and
/// compare like with like — the serving analogue of the repo's
/// planned-seed benchmarking discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Submitting tenant (fairness lane in the request queue).
    pub tenant: u64,
    /// Catalog index of the target model.
    pub model: usize,
    /// Request rows: input samples for an MLP, token sequences for an LSTM.
    pub rows: usize,
    /// Seed the worker expands into the job's actual inputs.
    pub seed: u64,
    /// Train or infer.
    pub kind: JobKind,
}

impl JobSpec {
    /// The coalescing key: jobs may share a dispatch only when they target
    /// the same model with the same kind (same layer shapes, same pass).
    pub fn batch_key(&self) -> (usize, JobKind) {
        (self.model, self.kind)
    }
}
