//! The threaded serving front end: admission → weighted fair queue →
//! adaptive batcher → plan cache → autoscaled workers.
//!
//! [`Server::start`] spawns one OS thread per **worker shard** plus, when
//! autoscaling is configured, a supervisor thread that grows and shrinks
//! the fleet at runtime. Every worker builds replicas of the whole catalog
//! (so jobs can be re-routed as the fleet resizes), drains its shard of
//! the [`ShardedQueue`] under QoS-weighted fairness, coalesces jobs under
//! the configured [`BatchPolicy`] — holding adaptive batches open only
//! while the marginal merge win beats the queueing cost — and executes
//! them through its [`ShardEngine`], resolving dropout plans through the
//! shared [`PlanCache`] when caching is enabled.
//!
//! Tenants interact through [`Client`]: [`Client::submit`] runs admission
//! control against the (optionally bounded) queue and returns either a
//! receiver that yields the [`crate::JobReply`] or an immediate
//! [`AdmissionError::Rejected`]. Completed jobs report their latency split
//! into queue wait (submit → dispatch start, including any batching hold)
//! and execution time, and the post-shutdown [`ServeReport`] summarizes
//! both distributions as percentiles.
//!
//! ## Autoscaling mechanism
//!
//! The queue is sized for `max_workers` shards up front; the supervisor
//! only moves the `active` high-water mark. Jobs route to `model % active`,
//! so a scale event re-routes traffic instantly. A scaled-down worker
//! notices `shard >= active`, drains what its shard still holds, merges
//! its stats and exits; worker 0 adopts any stragglers left on orphaned
//! shards while idle. Scale-ups spawn a fresh worker for the next shard —
//! with a warm plan cache the new replicas resolve their dropout plans as
//! cache hits, which is exactly the condition under which the
//! [`crate::Autoscaler`] scales up earliest.

use crate::adaptive::{AdaptiveController, ArrivalTracker};
use crate::admission::{AdmissionError, JobReply};
use crate::autoscale::{AutoscaleConfig, Autoscaler, ScaleDecision};
use crate::batcher::BatchPolicy;
use crate::config::ServeConfig;
use crate::engine::ShardEngine;
use crate::job::JobSpec;
use crate::model::ModelSpec;
use crate::queue::{Push, ShardedQueue};
use approx_dropout::{PlanCache, PlanCacheStats};
use gpu_sim::GpuConfig;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between queue polls.
const IDLE_POLL: Duration = Duration::from_micros(50);

/// How long a worker holding a partially filled batch sleeps between queue
/// polls while its deadline runs.
const DEADLINE_POLL: Duration = Duration::from_micros(20);

/// What a tenant gets back for one completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResult {
    /// Batch loss of the dispatch the job rode in.
    pub value: f32,
    /// Total rows of that dispatch (1 job's rows under per-request
    /// dispatch, more under coalescing policies).
    pub batch_rows: usize,
    /// Seed epoch the dispatch resolved plans for.
    pub epoch: u64,
    /// Submit to dispatch start: queueing plus any batching hold.
    pub queue_wait: Duration,
    /// Dispatch start to completion: pure execution.
    pub exec: Duration,
    /// End-to-end latency (`queue_wait + exec`).
    pub latency: Duration,
}

/// A queued job: the spec plus everything needed to answer it.
#[derive(Debug)]
struct Job {
    spec: JobSpec,
    enqueued: Instant,
    reply: Sender<JobReply>,
}

/// Per-worker execution counters and latency samples, merged into the
/// [`ServeReport`] when the worker exits.
#[derive(Debug, Default)]
struct WorkerStats {
    batches: u64,
    jobs: u64,
    rows: u64,
    queue_wait_us: Vec<u64>,
    exec_us: Vec<u64>,
}

/// Order statistics of one latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Largest sample.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes `samples` (microseconds); all-zero for an empty input.
    /// Percentiles use the nearest-rank rule on the sorted samples.
    pub fn from_us(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean_us: 0.0,
                p50_us: 0.0,
                p99_us: 0.0,
                p999_us: 0.0,
                max_us: 0.0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let pct = |q: f64| samples[((q * count as f64).ceil() as usize).clamp(1, count) - 1] as f64;
        Self {
            count: count as u64,
            mean_us: samples.iter().sum::<u64>() as f64 / count as f64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            max_us: samples[count - 1] as f64,
        }
    }
}

/// What a drained [`Server`] reports after shutdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeReport {
    /// Dispatches executed across all workers.
    pub batches: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Request rows processed.
    pub rows: u64,
    /// Admitted jobs later displaced by more valuable arrivals.
    pub shed: u64,
    /// Submissions refused at the door.
    pub rejected: u64,
    /// Autoscaler scale-up events applied.
    pub scale_ups: u64,
    /// Autoscaler scale-down events applied.
    pub scale_downs: u64,
    /// Most workers ever simultaneously active.
    pub peak_workers: usize,
    /// Distribution of submit-to-dispatch-start waits.
    pub queue_wait: LatencySummary,
    /// Distribution of dispatch execution times.
    pub exec: LatencySummary,
    /// Plan-cache counters (`None` when caching was disabled).
    pub plan_cache: Option<PlanCacheStats>,
}

impl ServeReport {
    /// Mean coalesced rows per dispatch — 1-job batches under per-request
    /// dispatch push this toward the mean request size, coalescing pushes
    /// it up.
    pub fn mean_batch_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }
}

/// Everything the client, workers and supervisor share.
#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    catalog: Vec<ModelSpec>,
    queue: ShardedQueue<Job>,
    shutdown: AtomicBool,
    /// Worker shards currently receiving traffic (`model % active`).
    active: AtomicUsize,
    tracker: ArrivalTracker,
    controller: AdaptiveController,
    cache: Option<Arc<PlanCache>>,
    /// Stats merged by workers as they exit.
    stats: Mutex<Vec<WorkerStats>>,
    scale_ups: AtomicU64,
    scale_downs: AtomicU64,
    peak_workers: AtomicUsize,
}

/// Handle tenants submit through (cheaply cloneable).
#[derive(Debug, Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Runs admission for `spec` and, if admitted, enqueues it on its
    /// model's active worker shard, returning the receiver its
    /// [`crate::JobReply`] arrives on.
    ///
    /// On a bounded queue the push may displace a strictly cheaper queued
    /// job (that victim's receiver yields [`AdmissionError::Shed`]), or
    /// bounce off a shard full of work at least as valuable — then nothing
    /// is enqueued and the [`AdmissionError::Rejected`] comes back
    /// directly so the tenant can back off.
    pub fn submit(&self, spec: JobSpec) -> Result<Receiver<JobReply>, AdmissionError> {
        let now = Instant::now();
        self.shared.tracker.observe(spec.batch_key(), now);
        let (reply, result) = channel();
        let shard = spec.model % self.shared.active.load(Ordering::SeqCst).max(1);
        let job = Job {
            spec,
            enqueued: now,
            reply,
        };
        match self.shared.queue.push(
            shard,
            spec.tenant,
            spec.qos,
            spec.shed_rank(),
            spec.rows,
            job,
        ) {
            Push::Enqueued => Ok(result),
            Push::Displaced(victim) => {
                // The victim's tenant learns it was shed, and by whom.
                let _ = victim
                    .reply
                    .send(Err(AdmissionError::Shed { by: spec.qos }));
                Ok(result)
            }
            Push::Rejected(_) => Err(AdmissionError::Rejected {
                bound: self.shared.queue.bound().unwrap_or(usize::MAX),
            }),
        }
    }
}

/// The running serving layer.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Spawns the worker fleet for `catalog` and returns the running
    /// server. Each worker builds replicas of every catalog model inside
    /// its own thread; jobs route to worker `model % active`. With
    /// autoscaling configured the queue is sized for `max_workers` shards
    /// and a supervisor thread resizes the fleet at runtime.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty.
    pub fn start(config: ServeConfig, catalog: Vec<ModelSpec>) -> Self {
        assert!(!catalog.is_empty(), "a server needs at least one model");
        let base = if config.workers() == 0 {
            tensor::pool::threads().max(1)
        } else {
            config.workers()
        };
        let (initial, shards) = match config.autoscale() {
            Some(scale) => (
                base.clamp(scale.min_workers, scale.max_workers),
                scale.max_workers,
            ),
            None => (base, base),
        };
        let queue = match config.queue_bound() {
            Some(bound) => ShardedQueue::with_bound(shards, config.qos_weights(), bound),
            None => ShardedQueue::new(shards, config.qos_weights()),
        };
        let cache = config
            .plan_cache()
            .then(|| Arc::new(PlanCache::new(config.plan_cache_shards())));
        let controller =
            AdaptiveController::new(&catalog, &GpuConfig::gtx_1080ti(), config.latency_cost());
        let shared = Arc::new(Shared {
            catalog,
            queue,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(initial),
            tracker: ArrivalTracker::new(),
            controller,
            cache,
            stats: Mutex::new(Vec::new()),
            scale_ups: AtomicU64::new(0),
            scale_downs: AtomicU64::new(0),
            peak_workers: AtomicUsize::new(initial),
            config,
        });
        let workers = (0..initial)
            .map(|shard| spawn_worker(&shared, shard))
            .collect();
        let supervisor = shared
            .config
            .autoscale()
            .map(|scale| spawn_supervisor(&shared, scale));
        Self {
            shared,
            workers,
            supervisor,
        }
    }

    /// A submission handle.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Jobs currently queued (approximate while producers are active).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Worker shards currently receiving traffic.
    pub fn active_workers(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Signals shutdown, drains the queue, joins the supervisor and every
    /// worker, and returns the aggregate report.
    pub fn shutdown(self) -> ServeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut handles = self.workers;
        if let Some(supervisor) = self.supervisor {
            handles.extend(supervisor.join().expect("the serve supervisor panicked"));
        }
        for handle in handles {
            handle.join().expect("a serve worker panicked");
        }
        let mut report = ServeReport {
            batches: 0,
            jobs: 0,
            rows: 0,
            shed: self.shared.queue.shed_count(),
            rejected: self.shared.queue.rejected_count(),
            scale_ups: self.shared.scale_ups.load(Ordering::Relaxed),
            scale_downs: self.shared.scale_downs.load(Ordering::Relaxed),
            peak_workers: self.shared.peak_workers.load(Ordering::Relaxed),
            queue_wait: LatencySummary::from_us(Vec::new()),
            exec: LatencySummary::from_us(Vec::new()),
            plan_cache: self.shared.cache.as_ref().map(|c| c.stats()),
        };
        let mut queue_wait = Vec::new();
        let mut exec = Vec::new();
        let stats = self.shared.stats.lock().expect("stats mutex poisoned");
        for worker in stats.iter() {
            report.batches += worker.batches;
            report.jobs += worker.jobs;
            report.rows += worker.rows;
            queue_wait.extend_from_slice(&worker.queue_wait_us);
            exec.extend_from_slice(&worker.exec_us);
        }
        report.queue_wait = LatencySummary::from_us(queue_wait);
        report.exec = LatencySummary::from_us(exec);
        report
    }
}

/// Spawns the worker thread for `shard`.
fn spawn_worker(shared: &Arc<Shared>, shard: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("serve-worker-{shard}"))
        .spawn(move || {
            let engine = ShardEngine::new(
                &shared.catalog,
                // Every worker replicates the whole catalog so traffic can
                // be re-routed freely as the fleet resizes.
                |_| true,
                shared.cache.clone(),
                shared.config.epoch_rounds(),
                shared.config.init_seed(),
            );
            Worker {
                shard,
                engine,
                pending: VecDeque::new(),
                stats: WorkerStats::default(),
                shared,
            }
            .run()
        })
        .expect("spawning a serve worker thread failed")
}

/// Spawns the autoscale supervisor; returns the handles of every worker it
/// spawned so shutdown can join them.
fn spawn_supervisor(
    shared: &Arc<Shared>,
    scale: AutoscaleConfig,
) -> JoinHandle<Vec<JoinHandle<()>>> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name("serve-supervisor".into())
        .spawn(move || {
            let mut scaler = Autoscaler::new(scale);
            let mut spawned = Vec::new();
            while !shared.shutdown.load(Ordering::SeqCst) {
                thread::sleep(scale.interval);
                let active = shared.active.load(Ordering::SeqCst);
                let warm = shared
                    .cache
                    .as_ref()
                    .map(|c| c.stats().is_warm())
                    .unwrap_or(false);
                match scaler.observe(shared.queue.len(), active, warm, Instant::now()) {
                    Some(ScaleDecision::Up) => {
                        // Raise the routing mark first so the new worker
                        // sees itself active from its first loop.
                        shared.active.store(active + 1, Ordering::SeqCst);
                        spawned.push(spawn_worker(&shared, active));
                        shared.scale_ups.fetch_add(1, Ordering::Relaxed);
                        shared.peak_workers.fetch_max(active + 1, Ordering::Relaxed);
                    }
                    Some(ScaleDecision::Down) => {
                        // The highest-index worker notices and retires.
                        shared.active.store(active - 1, Ordering::SeqCst);
                        shared.scale_downs.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {}
                }
            }
            spawned
        })
        .expect("spawning the serve supervisor thread failed")
}

/// One worker shard's thread state.
struct Worker {
    shard: usize,
    engine: ShardEngine,
    /// Jobs drained while filling a batch they did not match; served with
    /// priority by the next dispatch so draining never reorders a tenant's
    /// lane unboundedly.
    pending: VecDeque<Job>,
    stats: WorkerStats,
    shared: Arc<Shared>,
}

impl Worker {
    fn run(mut self) {
        loop {
            if self.shard >= self.shared.active.load(Ordering::SeqCst) {
                // Retired by the autoscaler: serve what is already here,
                // then exit. Stragglers racing the scale-down are adopted
                // by worker 0.
                self.drain();
                break;
            }
            match self.next_batch() {
                Some(batch) => self.dispatch(batch),
                None => {
                    if self.shared.shutdown.load(Ordering::SeqCst)
                        && self.pending.is_empty()
                        && self.shared.queue.is_empty()
                    {
                        break;
                    }
                    if self.shard == 0 && self.adopt_orphans() {
                        continue;
                    }
                    thread::sleep(IDLE_POLL);
                }
            }
        }
        self.shared
            .stats
            .lock()
            .expect("stats mutex poisoned")
            .push(std::mem::take(&mut self.stats));
    }

    /// Serves everything left on this worker's shard and stash,
    /// per-request (no holds — nothing new is routed here anymore).
    fn drain(&mut self) {
        while let Some(job) = self.pending.pop_front() {
            self.dispatch(vec![job]);
        }
        while let Some(job) = self.shared.queue.pop_fair(self.shard) {
            self.dispatch(vec![job]);
        }
    }

    /// Moves jobs stranded on shards beyond the active mark into this
    /// worker's stash; returns whether anything was adopted.
    fn adopt_orphans(&mut self) -> bool {
        let active = self.shared.active.load(Ordering::SeqCst);
        let mut adopted = false;
        for shard in active..self.shared.queue.shards() {
            while let Some(job) = self.shared.queue.pop_fair(shard) {
                self.pending.push_back(job);
                adopted = true;
            }
        }
        adopted
    }

    /// Takes the stashed job with the highest QoS rank (FIFO among
    /// equals), so the stash cannot bypass the queue's class ordering —
    /// under overload this is what keeps Interactive ahead of a flood that
    /// was drained into the stash.
    fn take_pending(&mut self) -> Option<Job> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .max_by_key(|(i, job)| (job.spec.qos.rank(), std::cmp::Reverse(*i)))?
            .0;
        self.pending.remove(best)
    }

    /// Drains the next dispatch under the batching policy: the stash
    /// first, then the shard queue. A dynamic batch holds until full or
    /// its fixed deadline; an adaptive batch holds only while the marginal
    /// merge win of the next expected arrival beats the latency cost of
    /// the jobs already waiting, with `max_deadline` as a backstop.
    fn next_batch(&mut self) -> Option<Vec<Job>> {
        let first = self
            .take_pending()
            .or_else(|| self.shared.queue.pop_fair(self.shard))?;
        let policy = self.shared.config.policy();
        let (max_rows, deadline) = match policy {
            BatchPolicy::PerRequest => return Some(vec![first]),
            BatchPolicy::Dynamic {
                max_batch_rows,
                deadline,
            } => (max_batch_rows.max(1), deadline),
            BatchPolicy::Adaptive {
                max_batch_rows,
                max_deadline,
            } => (max_batch_rows.max(1), max_deadline),
        };
        let key = first.spec.batch_key();
        let mut rows = first.spec.rows;
        let mut batch = vec![first];
        // Matching jobs stashed by earlier fills join immediately.
        let mut i = 0;
        while i < self.pending.len() && rows < max_rows {
            if self.pending[i].spec.batch_key() == key
                && rows + self.pending[i].spec.rows <= max_rows
            {
                let job = self.pending.remove(i).expect("index checked above");
                rows += job.spec.rows;
                batch.push(job);
            } else {
                i += 1;
            }
        }
        let cutoff = Instant::now() + deadline;
        while rows < max_rows && Instant::now() < cutoff {
            match self.shared.queue.pop_fair(self.shard) {
                Some(job) if job.spec.batch_key() == key && rows + job.spec.rows <= max_rows => {
                    rows += job.spec.rows;
                    batch.push(job);
                }
                Some(job) => self.pending.push_back(job),
                None => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break; // No more traffic is coming; dispatch now.
                    }
                    if matches!(policy, BatchPolicy::Adaptive { .. })
                        && !self.shared.controller.should_hold(
                            &self.shared.tracker,
                            key,
                            batch.len(),
                            Instant::now(),
                        )
                    {
                        break; // Waiting costs more than merging would win.
                    }
                    thread::sleep(DEADLINE_POLL);
                }
            }
        }
        Some(batch)
    }

    fn dispatch(&mut self, batch: Vec<Job>) {
        let specs: Vec<JobSpec> = batch.iter().map(|job| job.spec).collect();
        let started = Instant::now();
        let outcome = self.engine.execute(&specs);
        let completed = Instant::now();
        let exec = completed.duration_since(started);
        self.stats.batches += 1;
        self.stats.jobs += batch.len() as u64;
        self.stats.rows += outcome.rows as u64;
        for job in batch {
            let queue_wait = started.saturating_duration_since(job.enqueued);
            self.stats.queue_wait_us.push(queue_wait.as_micros() as u64);
            self.stats.exec_us.push(exec.as_micros() as u64);
            // A tenant that dropped its receiver just stops listening; the
            // dispatch already happened, so ignore the send error.
            let _ = job.reply.send(Ok(JobResult {
                value: outcome.value,
                batch_rows: outcome.rows,
                epoch: outcome.epoch,
                queue_wait,
                exec,
                latency: queue_wait + exec,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::qos::QosClass;
    use approx_dropout::SchemeSpec;

    fn tiny_catalog() -> Vec<ModelSpec> {
        vec![ModelSpec::mlp(
            "tiny",
            8,
            vec![16],
            4,
            SchemeSpec::Row {
                rate: 0.5,
                max_dp: 4,
            },
        )]
    }

    fn job(tenant: u64, seed: u64, rows: usize) -> JobSpec {
        JobSpec {
            tenant,
            model: 0,
            rows,
            seed,
            kind: JobKind::Train,
            qos: QosClass::Batch,
        }
    }

    #[test]
    fn jobs_round_trip_through_the_server() {
        let config = ServeConfig::builder()
            .workers(2)
            .build()
            .expect("valid config");
        let server = Server::start(config, tiny_catalog());
        let client = server.client();
        let receivers: Vec<_> = (0..6)
            .map(|i| {
                client
                    .submit(job(i % 2, i, 2))
                    .expect("unbounded queue admits")
            })
            .collect();
        for rx in receivers {
            let result = rx
                .recv()
                .expect("job must complete")
                .expect("no admission control configured");
            assert!(result.value.is_finite());
            assert!(result.batch_rows >= 2);
            assert_eq!(result.latency, result.queue_wait + result.exec);
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 6);
        assert_eq!(report.rows, 12);
        assert_eq!(report.shed, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.queue_wait.count, 6);
        assert_eq!(report.exec.count, 6);
        assert!(report.exec.p99_us > 0.0);
        let cache = report.plan_cache.expect("cache enabled by default");
        assert!(cache.hits + cache.misses > 0);
    }

    #[test]
    fn per_request_policy_never_coalesces() {
        let config = ServeConfig::builder()
            .workers(1)
            .policy(BatchPolicy::PerRequest)
            .build()
            .expect("valid config");
        let server = Server::start(config, tiny_catalog());
        let client = server.client();
        let receivers: Vec<_> = (0..4)
            .map(|i| client.submit(job(0, i, 3)).expect("unbounded queue admits"))
            .collect();
        for rx in receivers {
            let result = rx.recv().expect("job must complete").expect("admitted");
            assert_eq!(result.batch_rows, 3);
        }
        let report = server.shutdown();
        assert_eq!(report.batches, 4);
        assert!((report.mean_batch_rows() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let summary = LatencySummary::from_us((1..=1000).collect());
        assert_eq!(summary.count, 1000);
        assert_eq!(summary.p50_us, 500.0);
        assert_eq!(summary.p99_us, 990.0);
        assert_eq!(summary.p999_us, 999.0);
        assert_eq!(summary.max_us, 1000.0);
        let empty = LatencySummary::from_us(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max_us, 0.0);
    }
}
