//! The threaded serving front end: queue → batcher → plan cache → workers.
//!
//! [`Server::start`] spawns one OS thread per **worker shard**. Each worker
//! owns the replicas of the catalog models assigned to it (`model %
//! workers`), drains its shard of the [`ShardedQueue`] with per-tenant
//! fairness, coalesces jobs under the configured [`BatchPolicy`], and
//! executes them through its [`ShardEngine`] — resolving dropout plans
//! through the shared [`PlanCache`] when caching is enabled. The GEMMs
//! inside every dispatch are executed by the shared `tensor::pool` worker
//! threads, so the serving layer's parallelism rides on the same pool the
//! rest of the reproduction uses (and the default worker-shard count
//! follows the pool width).
//!
//! Tenants interact through [`Client`]: `submit` enqueues a [`JobSpec`]
//! and returns a receiver that yields the [`JobResult`] when the dispatch
//! completes — measured end to end, so reported latency includes queueing,
//! any dynamic-batching deadline wait, and compute.

use crate::batcher::BatchPolicy;
use crate::engine::ShardEngine;
use crate::job::JobSpec;
use crate::model::ModelSpec;
use crate::queue::ShardedQueue;
use approx_dropout::{PlanCache, PlanCacheStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between queue polls.
const IDLE_POLL: Duration = Duration::from_micros(50);

/// How long a worker holding a partially filled dynamic batch sleeps
/// between queue polls while its deadline runs.
const DEADLINE_POLL: Duration = Duration::from_micros(20);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (threads). `0` means "follow the tensor pool width".
    pub workers: usize,
    /// Batching policy every worker applies.
    pub policy: BatchPolicy,
    /// Resolve dropout plans through a shared memoized [`PlanCache`].
    pub plan_cache: bool,
    /// Lock shards of the plan cache.
    pub plan_cache_shards: usize,
    /// Train dispatches of one model that share a seed epoch.
    pub epoch_rounds: u64,
    /// Seed replica weight initialization derives from.
    pub init_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            policy: BatchPolicy::dynamic_default(),
            plan_cache: true,
            plan_cache_shards: 16,
            epoch_rounds: 8,
            init_seed: 42,
        }
    }
}

/// What a tenant gets back for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResult {
    /// Batch loss of the dispatch the job rode in.
    pub value: f32,
    /// Total rows of that dispatch (1 job's rows under per-request
    /// dispatch, more under dynamic batching).
    pub batch_rows: usize,
    /// Seed epoch the dispatch resolved plans for.
    pub epoch: u64,
    /// Submit-to-completion latency (queueing + batching wait + compute).
    pub latency: Duration,
}

/// A queued job: the spec plus everything needed to answer it.
#[derive(Debug)]
struct Job {
    spec: JobSpec,
    enqueued: Instant,
    reply: Sender<JobResult>,
}

/// Per-worker execution counters, aggregated into the [`ServeReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WorkerStats {
    batches: u64,
    jobs: u64,
    rows: u64,
}

/// What a drained [`Server`] reports after shutdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeReport {
    /// Dispatches executed across all workers.
    pub batches: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Request rows processed.
    pub rows: u64,
    /// Plan-cache counters (`None` when caching was disabled).
    pub plan_cache: Option<PlanCacheStats>,
}

impl ServeReport {
    /// Mean coalesced rows per dispatch — 1-job batches under per-request
    /// dispatch push this toward the mean request size, dynamic batching
    /// pushes it up.
    pub fn mean_batch_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }
}

/// Handle tenants submit through (cheaply cloneable).
#[derive(Debug, Clone)]
pub struct Client {
    queue: Arc<ShardedQueue<Job>>,
}

impl Client {
    /// Enqueues `spec` on its model's worker shard and returns the receiver
    /// the [`JobResult`] arrives on.
    pub fn submit(&self, spec: JobSpec) -> Receiver<JobResult> {
        let (reply, result) = channel();
        self.queue.push(
            spec.model,
            spec.tenant,
            Job {
                spec,
                enqueued: Instant::now(),
                reply,
            },
        );
        result
    }
}

/// The running serving layer.
#[derive(Debug)]
pub struct Server {
    queue: Arc<ShardedQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<WorkerStats>>,
    cache: Option<Arc<PlanCache>>,
}

impl Server {
    /// Spawns the worker shards for `catalog` and returns the running
    /// server. Model `m` is owned by worker `m % workers`; each worker
    /// builds its replicas inside its own thread.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty.
    pub fn start(config: ServeConfig, catalog: Vec<ModelSpec>) -> Self {
        assert!(!catalog.is_empty(), "a server needs at least one model");
        let workers = if config.workers == 0 {
            tensor::pool::threads().max(1)
        } else {
            config.workers
        };
        let queue = Arc::new(ShardedQueue::new(workers));
        let shutdown = Arc::new(AtomicBool::new(false));
        let cache = config
            .plan_cache
            .then(|| Arc::new(PlanCache::new(config.plan_cache_shards)));
        let handles = (0..workers)
            .map(|shard| {
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let cache = cache.clone();
                let catalog = catalog.clone();
                let config = config.clone();
                thread::Builder::new()
                    .name(format!("serve-worker-{shard}"))
                    .spawn(move || {
                        let engine = ShardEngine::new(
                            &catalog,
                            |model| model % workers == shard,
                            cache,
                            config.epoch_rounds,
                            config.init_seed,
                        );
                        Worker {
                            shard,
                            queue,
                            shutdown,
                            policy: config.policy,
                            engine,
                            pending: VecDeque::new(),
                            stats: WorkerStats::default(),
                        }
                        .run()
                    })
                    .expect("spawning a serve worker thread failed")
            })
            .collect();
        Self {
            queue,
            shutdown,
            workers: handles,
            cache,
        }
    }

    /// A submission handle.
    pub fn client(&self) -> Client {
        Client {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Jobs currently queued (approximate while producers are active).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Signals shutdown, drains the queue, joins every worker and returns
    /// the aggregate report.
    pub fn shutdown(self) -> ServeReport {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut report = ServeReport {
            batches: 0,
            jobs: 0,
            rows: 0,
            plan_cache: self.cache.as_ref().map(|c| c.stats()),
        };
        for handle in self.workers {
            let stats = handle.join().expect("a serve worker panicked");
            report.batches += stats.batches;
            report.jobs += stats.jobs;
            report.rows += stats.rows;
        }
        // Counters may have advanced while workers drained; re-read.
        report.plan_cache = self.cache.as_ref().map(|c| c.stats());
        report
    }
}

/// One worker shard's thread state.
struct Worker {
    shard: usize,
    queue: Arc<ShardedQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    policy: BatchPolicy,
    engine: ShardEngine,
    /// Jobs drained while filling a batch they did not match; served with
    /// priority by the next dispatch so draining never reorders a tenant's
    /// lane unboundedly.
    pending: VecDeque<Job>,
    stats: WorkerStats,
}

impl Worker {
    fn run(mut self) -> WorkerStats {
        loop {
            match self.next_batch() {
                Some(batch) => self.dispatch(batch),
                None => {
                    if self.shutdown.load(Ordering::SeqCst)
                        && self.pending.is_empty()
                        && self.queue.is_empty()
                    {
                        return self.stats;
                    }
                    thread::sleep(IDLE_POLL);
                }
            }
        }
    }

    /// Drains the next dispatch under the batching policy: the stash first,
    /// then the shard queue, holding a dynamic batch open until it is full
    /// or the deadline has elapsed.
    fn next_batch(&mut self) -> Option<Vec<Job>> {
        let first = self
            .pending
            .pop_front()
            .or_else(|| self.queue.pop_fair(self.shard))?;
        let (max_rows, deadline) = match self.policy {
            BatchPolicy::PerRequest => return Some(vec![first]),
            BatchPolicy::Dynamic {
                max_batch_rows,
                deadline,
            } => (max_batch_rows.max(1), deadline),
        };
        let key = first.spec.batch_key();
        let mut rows = first.spec.rows;
        let mut batch = vec![first];
        // Matching jobs stashed by earlier fills join immediately.
        let mut i = 0;
        while i < self.pending.len() && rows < max_rows {
            if self.pending[i].spec.batch_key() == key
                && rows + self.pending[i].spec.rows <= max_rows
            {
                let job = self.pending.remove(i).expect("index checked above");
                rows += job.spec.rows;
                batch.push(job);
            } else {
                i += 1;
            }
        }
        let cutoff = Instant::now() + deadline;
        while rows < max_rows && Instant::now() < cutoff {
            match self.queue.pop_fair(self.shard) {
                Some(job) if job.spec.batch_key() == key && rows + job.spec.rows <= max_rows => {
                    rows += job.spec.rows;
                    batch.push(job);
                }
                Some(job) => self.pending.push_back(job),
                None => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break; // No more traffic is coming; dispatch now.
                    }
                    thread::sleep(DEADLINE_POLL);
                }
            }
        }
        Some(batch)
    }

    fn dispatch(&mut self, batch: Vec<Job>) {
        let specs: Vec<JobSpec> = batch.iter().map(|job| job.spec).collect();
        let outcome = self.engine.execute(&specs);
        let completed = Instant::now();
        self.stats.batches += 1;
        self.stats.jobs += batch.len() as u64;
        self.stats.rows += outcome.rows as u64;
        for job in batch {
            // A tenant that dropped its receiver just stops listening; the
            // dispatch already happened, so ignore the send error.
            let _ = job.reply.send(JobResult {
                value: outcome.value,
                batch_rows: outcome.rows,
                epoch: outcome.epoch,
                latency: completed.duration_since(job.enqueued),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::model::SchemeKind;

    fn tiny_catalog() -> Vec<ModelSpec> {
        vec![ModelSpec::mlp(
            "tiny",
            8,
            vec![16],
            4,
            SchemeKind::Row {
                rate: 0.5,
                max_dp: 4,
            },
        )]
    }

    #[test]
    fn jobs_round_trip_through_the_server() {
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::start(config, tiny_catalog());
        let client = server.client();
        let receivers: Vec<_> = (0..6)
            .map(|i| {
                client.submit(JobSpec {
                    tenant: i % 2,
                    model: 0,
                    rows: 2,
                    seed: i,
                    kind: JobKind::Train,
                })
            })
            .collect();
        for rx in receivers {
            let result = rx.recv().expect("job must complete");
            assert!(result.value.is_finite());
            assert!(result.batch_rows >= 2);
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 6);
        assert_eq!(report.rows, 12);
        let cache = report.plan_cache.expect("cache enabled by default");
        assert!(cache.hits + cache.misses > 0);
    }

    #[test]
    fn per_request_policy_never_coalesces() {
        let config = ServeConfig {
            workers: 1,
            policy: BatchPolicy::PerRequest,
            ..ServeConfig::default()
        };
        let server = Server::start(config, tiny_catalog());
        let client = server.client();
        let receivers: Vec<_> = (0..4)
            .map(|i| {
                client.submit(JobSpec {
                    tenant: 0,
                    model: 0,
                    rows: 3,
                    seed: i,
                    kind: JobKind::Train,
                })
            })
            .collect();
        for rx in receivers {
            assert_eq!(rx.recv().expect("job must complete").batch_rows, 3);
        }
        let report = server.shutdown();
        assert_eq!(report.batches, 4);
        assert!((report.mean_batch_rows() - 3.0).abs() < 1e-9);
    }
}
