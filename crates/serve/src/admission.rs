//! Typed admission outcomes: overload produces answers, not backlog.
//!
//! With a bounded [`crate::ShardedQueue`], submitting a job can fail in
//! two ways, both of which the serving layer reports explicitly instead of
//! silently enqueueing into an ever-growing queue:
//!
//! * [`AdmissionError::Rejected`] — the shard is full and the incoming job
//!   is the cheapest-to-retry work in sight; [`crate::Client::submit`]
//!   returns this immediately, so the tenant can back off and retry.
//! * [`AdmissionError::Shed`] — the job *was* admitted earlier but a more
//!   valuable job displaced it before a worker picked it up; it arrives on
//!   the job's reply channel as the `Err` arm of [`crate::JobReply`].
//!
//! "Cheaper" is [`crate::JobSpec::shed_rank`]: Background before Batch
//! before Interactive, and Infer before Train within a class — an
//! inference is a stateless read, so retrying it costs nothing, while a
//! dropped training step loses an SGD update.

use crate::qos::QosClass;
use std::fmt;

/// Why a job was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The target shard was at its bound and no queued job was cheaper to
    /// shed than the incoming one; the job was never enqueued.
    Rejected {
        /// The per-shard job bound that was hit.
        bound: usize,
    },
    /// The job was enqueued but later displaced by a more valuable
    /// arrival; delivered on the reply channel.
    Shed {
        /// QoS class of the job that displaced this one.
        by: QosClass,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Rejected { bound } => write!(
                f,
                "rejected: queue shard at its {bound}-job bound held no cheaper work"
            ),
            AdmissionError::Shed { by } => {
                write!(f, "shed from the queue by an arriving {by} job")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What a reply channel yields: the completed [`crate::JobResult`] or the
/// typed reason the job was dropped after admission.
pub type JobReply = Result<crate::JobResult, AdmissionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let rejected = AdmissionError::Rejected { bound: 64 };
        assert!(rejected.to_string().contains("64"));
        let shed = AdmissionError::Shed {
            by: QosClass::Interactive,
        };
        assert!(shed.to_string().contains("interactive"));
    }
}
