//! Queueing-cost helpers for the serving layer's batching decisions.
//!
//! Dynamic batching trades *latency* (jobs wait while a batch fills) for
//! *throughput* (per-launch overhead is amortized across the batch). The
//! timing model already prices the throughput side — the merge win of
//! coalescing two dispatches into one is just a difference of simulated
//! iteration times. This module supplies the latency side as first-order
//! queueing theory, so the serve crate's adaptive batcher can compare both
//! in the same simulated-microsecond currency:
//!
//! * [`md1_wait_us`] — expected queueing delay of an M/D/1 station
//!   (Poisson arrivals, deterministic service), the textbook model of a
//!   worker draining fixed-size dispatches.
//! * [`merge_win_us`] — device time saved by merging an arriving dispatch
//!   into one already open, from three priced iteration times.
//! * [`hold_batch`] — the marginal decision rule itself: keep the batch
//!   open only while the expected merge win of the *next* arrival exceeds
//!   the latency cost imposed on the jobs already waiting.

/// Expected wait in an M/D/1 queue (Poisson arrivals at `arrival_per_us`
/// jobs/µs, fixed service time `service_us`): `ρ·s / (2·(1 − ρ))` with
/// `ρ = λ·s`.
///
/// Saturated or degenerate stations (`ρ ≥ 1`, non-positive inputs) return
/// `f64::INFINITY` — an overloaded station's queue grows without bound, and
/// callers treat "infinite wait" as "shed or scale, don't batch harder".
pub fn md1_wait_us(arrival_per_us: f64, service_us: f64) -> f64 {
    // PartialOrd::gt rather than `>` so NaN inputs fall into the guard.
    if !arrival_per_us.gt(&0.0) || !service_us.gt(&0.0) {
        return 0.0;
    }
    let rho = arrival_per_us * service_us;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho * service_us / (2.0 * (1.0 - rho))
}

/// Device time saved by merging a dispatch of `a` rows into an open
/// dispatch of `r` rows, from the three priced iteration times: serving
/// them separately costs `open_us + solo_us`, merged costs `merged_us`.
/// Clamped at zero — a merge never *helps* by a negative amount.
pub fn merge_win_us(open_us: f64, solo_us: f64, merged_us: f64) -> f64 {
    (open_us + solo_us - merged_us).max(0.0)
}

/// The adaptive batcher's marginal rule: hold an open batch for the next
/// arrival only while the *expected* merge win outweighs the latency cost
/// of waiting.
///
/// `arrival_per_us · merge_win_us` is the expected device-µs saved per µs
/// of holding (arrivals per µs times the win each merge is worth);
/// `latency_cost · jobs_waiting` is the cost per µs of holding — every
/// queued job pays one µs of extra latency, weighted by `latency_cost`
/// (device-µs a caller is willing to spend to save one job-µs of latency).
/// Returns `false` for empty batches, zero rates, or infinite costs, so a
/// quiet queue always dispatches immediately.
pub fn hold_batch(
    arrival_per_us: f64,
    merge_win_us: f64,
    jobs_waiting: usize,
    latency_cost: f64,
) -> bool {
    if jobs_waiting == 0 {
        return false;
    }
    // PartialOrd::gt rather than `>` so NaN inputs fall into the guard.
    if !arrival_per_us.gt(&0.0) || !merge_win_us.gt(&0.0) {
        return false;
    }
    let win_rate = arrival_per_us * merge_win_us;
    let cost_rate = latency_cost.max(0.0) * jobs_waiting as f64;
    win_rate.is_finite() && win_rate > cost_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_wait_grows_with_utilization_and_saturates() {
        let light = md1_wait_us(0.001, 100.0); // ρ = 0.1
        let heavy = md1_wait_us(0.009, 100.0); // ρ = 0.9
        assert!(light > 0.0);
        assert!(heavy > light * 10.0, "{heavy} vs {light}");
        assert!(md1_wait_us(0.02, 100.0).is_infinite(), "ρ ≥ 1 saturates");
        assert_eq!(md1_wait_us(0.0, 100.0), 0.0);
        assert_eq!(md1_wait_us(0.5, 0.0), 0.0);
    }

    #[test]
    fn md1_matches_closed_form() {
        // ρ = 0.5, s = 10 → wait = 0.5·10 / (2·0.5) = 5.
        let w = md1_wait_us(0.05, 10.0);
        assert!((w - 5.0).abs() < 1e-12, "{w}");
    }

    #[test]
    fn merge_win_is_overhead_saved_and_never_negative() {
        // Separately 30 + 30, merged 40 → the merge saves 20.
        assert!((merge_win_us(30.0, 30.0, 40.0) - 20.0).abs() < 1e-12);
        // A merge that would cost more than separate dispatch clamps to 0.
        assert_eq!(merge_win_us(30.0, 30.0, 80.0), 0.0);
    }

    #[test]
    fn hold_batch_weighs_win_rate_against_latency_cost() {
        // Fast arrivals, big win, cheap latency → hold.
        assert!(hold_batch(0.01, 50.0, 2, 0.05));
        // Same arrivals but many waiters paying the delay → dispatch.
        assert!(!hold_batch(0.01, 50.0, 64, 0.05));
        // No arrivals expected → never hold.
        assert!(!hold_batch(0.0, 50.0, 2, 0.05));
        // Nothing waiting → nothing to hold.
        assert!(!hold_batch(0.01, 50.0, 0, 0.05));
        // Zero win → dispatch immediately.
        assert!(!hold_batch(0.01, 0.0, 2, 0.05));
    }

    #[test]
    fn higher_latency_cost_dispatches_sooner() {
        let rate = 0.002;
        let win = 40.0;
        assert!(hold_batch(rate, win, 1, 0.01));
        assert!(!hold_batch(rate, win, 1, 1.0));
    }
}
